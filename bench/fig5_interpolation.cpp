// Figure 5 (left) — mean relative error (MRE) of interpolation vs number of
// training data points, per algorithm, for NNLS, Bell and the three Bellamy
// variants (local / filtered / full) on the C3O-like traces.
//
// Expected shape (paper §IV-C.1): pre-trained Bellamy variants interpolate
// best, with the largest margins on the non-trivial algorithms (sgd,
// kmeans); all models do fine on trivial ones (grep, sort, pagerank).

#include <cstdio>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace bellamy;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Figure 5 (left): interpolation MRE vs #data points");

  const auto result = bench::cached_cross_context(opts);
  const auto series = eval::aggregate_series(result.evals, "interpolation");
  const auto algorithms = eval::distinct_algorithms(result.evals);
  const auto models = eval::distinct_models(result.evals);

  std::printf("\nalgorithm\tmodel\tnum_points\tmre\tmae_s\tn\n");
  for (const auto& algo : algorithms) {
    for (const auto& model : models) {
      for (std::size_t n = 1; n <= 6; ++n) {
        const auto it = series.find({algo, model, n});
        if (it == series.end()) continue;
        std::printf("%s\t%s\t%zu\t%.3f\t%.1f\t%zu\n", algo.c_str(), model.c_str(), n,
                    it->second.mre, it->second.mae, it->second.count);
      }
    }
  }

  // Qualitative claim: averaged over few-point settings (<= 3 points), the
  // pre-trained variants beat the local variant on non-trivial algorithms.
  std::printf("\n# few-point summary (1-3 points), MRE per model\n");
  std::printf("algorithm\tmodel\tmre_few_points\n");
  int wins = 0;
  int comparisons = 0;
  for (const auto& algo : algorithms) {
    std::map<std::string, std::pair<double, std::size_t>> acc;
    for (const auto& [key, stats] : series) {
      const auto& [a, model, n] = key;
      if (a != algo || n > 3) continue;
      acc[model].first += stats.mre * static_cast<double>(stats.count);
      acc[model].second += stats.count;
    }
    std::map<std::string, double> mre;
    for (const auto& [model, sums] : acc) {
      if (sums.second == 0) continue;
      mre[model] = sums.first / static_cast<double>(sums.second);
      std::printf("%s\t%s\t%.3f\n", algo.c_str(), model.c_str(), mre[model]);
    }
    if (mre.count("Bellamy (full)") && mre.count("Bellamy (local)")) {
      ++comparisons;
      // Allow slack of 25 % of the repetition-noise floor: on the synthetic
      // traces all interpolation errors sit near that floor (~5 % MRE), so
      // smaller differences are sampling noise (see EXPERIMENTS.md).
      if (mre["Bellamy (full)"] <= mre["Bellamy (local)"] * 1.25 + 0.01) ++wins;
    }
  }
  std::printf(
      "\n[claim] pre-trained (full) interpolates at least as well as local with few "
      "points (within noise floor): %d/%d algorithms\n",
      wins, comparisons);
  return 0;
}
