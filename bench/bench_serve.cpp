// Throughput of the serving facade: N client threads hammer ONE published
// model through the micro-batching PredictionService, with coalescing
// disabled (max_batch = 1 — every request runs its own forward pass) vs
// enabled at several flush deadlines.  This is the acceptance bench for the
// serve subsystem: coalescing must beat batch-size-1 aggregate throughput at
// >= 4 client threads, and every served value must be bit-identical to a
// serial predict loop over the same query stream.
//
//   ./build/bench/bench_serve [--requests=N] [--workers=N] [--json=PATH|-]
//
// Each client keeps a small async window in flight (a closed loop of
// depth 32), which is what a real frontend holding many concurrent user
// requests looks like — and what gives the dispatcher something to coalesce.
// ALL human-readable progress goes to stderr; --json writes the
// machine-parseable document ("-" = stdout).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "serve/serve.hpp"
#include "util/timer.hpp"

using namespace bellamy;

namespace {

constexpr std::size_t kWindow = 32;  ///< async requests in flight per client

std::vector<data::JobRun> make_queries(const data::JobRun& context_template, std::size_t n,
                                       std::size_t client) {
  std::vector<data::JobRun> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data::JobRun q = context_template;
    q.scale_out = static_cast<int>(1 + (client * n + i) % 60);
    queries.push_back(std::move(q));
  }
  return queries;
}

struct CellResult {
  double per_s = 0.0;
  bool identical = true;
};

/// One grid cell: `clients` threads, each issuing `requests` queries through
/// `service`, results checked bit-exactly against `expected` per scale-out.
CellResult run_cell(serve::PredictionService& service, const serve::ModelHandle& handle,
                    const data::JobRun& context_template, std::size_t clients,
                    std::size_t requests, const std::vector<double>& expected_by_scaleout) {
  std::vector<std::thread> threads;
  std::vector<char> ok(clients, 1);
  threads.reserve(clients);
  util::Timer timer;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::vector<data::JobRun> queries = make_queries(context_template, requests, c);
      std::vector<std::pair<std::size_t, std::future<serve::ServeResult<double>>>> window;
      auto drain_one = [&] {
        auto [index, future] = std::move(window.front());
        window.erase(window.begin());
        serve::ServeResult<double> r = future.get();
        if (!r.ok() || r.value() != expected_by_scaleout[queries[index].scale_out]) {
          ok[c] = 0;
        }
      };
      for (std::size_t i = 0; i < queries.size(); ++i) {
        window.emplace_back(i, service.predict_async(handle, queries[i]));
        if (window.size() >= kWindow) drain_one();
      }
      while (!window.empty()) drain_one();
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = timer.seconds();

  CellResult cell;
  cell.per_s = static_cast<double>(clients * requests) / std::max(seconds, 1e-12);
  for (const char c : ok) cell.identical = cell.identical && c;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 1024;
  std::size_t workers = 2;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<std::size_t>(std::atoi(argv[i] + 11));
      if (requests == 0) requests = 1;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = static_cast<std::size_t>(std::atoi(argv[i] + 10));
      if (workers == 0) workers = 1;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--requests=N] [--workers=N] [--json=PATH|-]\n",
                   argv[0]);
      return 2;
    }
  }

  // A quick pre-trained model; serving cost does not depend on how long it
  // trained.
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 71;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sgd", 6);
  core::BellamyModel model(core::BellamyConfig{}, /*seed=*/71);
  core::PreTrainConfig pre;
  pre.epochs = 60;
  core::pretrain(model, history.runs(), pre);
  const data::JobRun context_template = history.runs().front();

  // Serial reference: the per-sample predict loop, one value per scale-out.
  std::vector<double> expected_by_scaleout(61, 0.0);
  for (int x = 1; x <= 60; ++x) {
    data::JobRun q = context_template;
    q.scale_out = x;
    expected_by_scaleout[static_cast<std::size_t>(x)] = model.predict_one(q);
  }

  serve::ModelRegistry registry;
  const serve::ModelHandle handle = registry.publish({"sgd", "bench"}, model).unwrap();

  struct Mode {
    const char* name;     ///< JSON key prefix
    std::size_t max_batch;
    std::chrono::microseconds deadline;
  };
  const std::vector<Mode> modes = {
      {"batch1", 1, std::chrono::microseconds(100)},
      {"coalesced_100us", 64, std::chrono::microseconds(100)},
      {"coalesced_500us", 64, std::chrono::microseconds(500)},
      {"coalesced_2000us", 64, std::chrono::microseconds(2000)},
  };
  const std::vector<std::size_t> client_counts = {1, 2, 4, 8};

  std::fprintf(stderr, "bench_serve: %zu requests/client, %zu dispatcher worker(s)\n",
               requests, workers);
  std::fprintf(stderr, "%8s %14s %18s %18s %18s %10s\n", "clients", "batch1 p/s",
               "coal 100us p/s", "coal 500us p/s", "coal 2000us p/s", "speedup");

  bool all_identical = true;
  double speedup_at_4 = 0.0;
  struct Row {
    std::size_t clients;
    std::vector<double> per_s;  ///< one per mode
    double speedup;             ///< coalesced_500us / batch1
  };
  std::vector<Row> rows;
  for (const std::size_t clients : client_counts) {
    Row row;
    row.clients = clients;
    for (const Mode& mode : modes) {
      serve::ServiceConfig cfg;
      cfg.max_batch = mode.max_batch;
      cfg.flush_deadline = mode.deadline;
      cfg.workers = workers;
      cfg.max_queue = kWindow * clients + 64;
      serve::PredictionService service(registry, cfg);
      const CellResult cell = run_cell(service, handle, context_template, clients, requests,
                                       expected_by_scaleout);
      all_identical = all_identical && cell.identical;
      if (!cell.identical) {
        std::fprintf(stderr, "clients=%zu mode=%s: PREDICTION MISMATCH vs serial loop\n",
                     clients, mode.name);
      }
      row.per_s.push_back(cell.per_s);
    }
    row.speedup = row.per_s[2] / std::max(row.per_s[0], 1e-12);
    if (clients == 4) speedup_at_4 = row.speedup;
    std::fprintf(stderr, "%8zu %14.0f %18.0f %18.0f %18.0f %9.2fx\n", clients, row.per_s[0],
                 row.per_s[1], row.per_s[2], row.per_s[3], row.speedup);
    rows.push_back(std::move(row));
  }

  std::fprintf(stderr, "predictions identical to the serial loop: %s\n",
               all_identical ? "yes" : "NO");
  std::fprintf(stderr,
               "coalescing speedup over batch-size-1 at 4 clients: %.2fx "
               "(acceptance floor: > 1.0x)\n",
               speedup_at_4);

  if (!json_path.empty()) {
    std::FILE* f = json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      std::fprintf(f,
                   "{\n  \"requests_per_client\": %zu,\n  \"workers\": %zu,\n"
                   "  \"identical\": %s,\n  \"grid\": [\n",
                   requests, workers, all_identical ? "true" : "false");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(f, "    {\"clients\": %zu", r.clients);
        for (std::size_t m = 0; m < modes.size(); ++m) {
          std::fprintf(f, ", \"%s_per_s\": %.0f", modes[m].name, r.per_s[m]);
        }
        std::fprintf(f, ", \"coalesce_speedup\": %.2f}%s\n", r.speedup,
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      if (f != stdout) {
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
      }
    }
  }
  return all_identical ? 0 : 1;
}
