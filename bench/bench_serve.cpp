// Throughput of the serving facade: N client threads hammer ONE published
// model through the micro-batching PredictionService, with coalescing
// disabled (max_batch = 1 — every request runs its own forward pass) vs
// enabled at several flush deadlines.  This is the acceptance bench for the
// serve subsystem: coalescing must beat batch-size-1 aggregate throughput at
// >= 4 client threads, and every served value must be bit-identical to a
// serial predict loop over the same query stream.
//
//   ./build/bench/bench_serve [--requests=N] [--workers=N] [--json=PATH|-]
//
// Each client keeps a small async window in flight (a closed loop of
// depth 32), which is what a real frontend holding many concurrent user
// requests looks like — and what gives the dispatcher something to coalesce.
// ALL human-readable progress goes to stderr; --json writes the
// machine-parseable document ("-" = stdout).
//
// Beyond the throughput grid (PR 4) the bench exercises the adaptive
// scheduler (PR 5):
//   * an "adaptive" cell runs the 4-client workload with the flush band
//     enabled and reports the per-handle scheduler metrics (effective flush
//     deadline, inter-arrival EWMA, flush-reason counters, dispatch lag /
//     starvation counters) in the JSON document, and
//   * a "qos" scenario saturates a kBulk handle while probing a
//     kInteractive one, reporting the interactive lane's p50/p99 latency
//     loaded vs unloaded plus both lanes' starvation counters — the
//     measured form of the starvation acceptance test.
// See docs/BENCHMARKS.md for the full --json schema.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "serve/serve.hpp"
#include "util/timer.hpp"

using namespace bellamy;

namespace {

constexpr std::size_t kWindow = 32;  ///< async requests in flight per client

std::vector<data::JobRun> make_queries(const data::JobRun& context_template, std::size_t n,
                                       std::size_t client) {
  std::vector<data::JobRun> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data::JobRun q = context_template;
    q.scale_out = static_cast<int>(1 + (client * n + i) % 60);
    queries.push_back(std::move(q));
  }
  return queries;
}

struct CellResult {
  double per_s = 0.0;
  bool identical = true;
};

/// One grid cell: `clients` threads, each issuing `requests` queries through
/// `service`, results checked bit-exactly against `expected` per scale-out.
CellResult run_cell(serve::PredictionService& service, const serve::ModelHandle& handle,
                    const data::JobRun& context_template, std::size_t clients,
                    std::size_t requests, const std::vector<double>& expected_by_scaleout) {
  std::vector<std::thread> threads;
  std::vector<char> ok(clients, 1);
  threads.reserve(clients);
  util::Timer timer;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::vector<data::JobRun> queries = make_queries(context_template, requests, c);
      std::vector<std::pair<std::size_t, std::future<serve::ServeResult<double>>>> window;
      auto drain_one = [&] {
        auto [index, future] = std::move(window.front());
        window.erase(window.begin());
        serve::ServeResult<double> r = future.get();
        if (!r.ok() || r.value() != expected_by_scaleout[queries[index].scale_out]) {
          ok[c] = 0;
        }
      };
      for (std::size_t i = 0; i < queries.size(); ++i) {
        window.emplace_back(i, service.predict_async(handle, queries[i]));
        if (window.size() >= kWindow) drain_one();
      }
      while (!window.empty()) drain_one();
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = timer.seconds();

  CellResult cell;
  cell.per_s = static_cast<double>(clients * requests) / std::max(seconds, 1e-12);
  for (const char c : ok) cell.identical = cell.identical && c;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 1024;
  std::size_t workers = 2;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<std::size_t>(std::atoi(argv[i] + 11));
      if (requests == 0) requests = 1;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = static_cast<std::size_t>(std::atoi(argv[i] + 10));
      if (workers == 0) workers = 1;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--requests=N] [--workers=N] [--json=PATH|-]\n",
                   argv[0]);
      return 2;
    }
  }

  // A quick pre-trained model; serving cost does not depend on how long it
  // trained.
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 71;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sgd", 6);
  core::BellamyModel model(core::BellamyConfig{}, /*seed=*/71);
  core::PreTrainConfig pre;
  pre.epochs = 60;
  core::pretrain(model, history.runs(), pre);
  const data::JobRun context_template = history.runs().front();

  // Serial reference: the per-sample predict loop, one value per scale-out.
  std::vector<double> expected_by_scaleout(61, 0.0);
  for (int x = 1; x <= 60; ++x) {
    data::JobRun q = context_template;
    q.scale_out = x;
    expected_by_scaleout[static_cast<std::size_t>(x)] = model.predict_one(q);
  }

  serve::ModelRegistry registry;
  const serve::ModelHandle handle = registry.publish({"sgd", "bench"}, model).unwrap();

  struct Mode {
    const char* name;     ///< JSON key prefix
    std::size_t max_batch;
    std::chrono::microseconds deadline;
  };
  const std::vector<Mode> modes = {
      {"batch1", 1, std::chrono::microseconds(100)},
      {"coalesced_100us", 64, std::chrono::microseconds(100)},
      {"coalesced_500us", 64, std::chrono::microseconds(500)},
      {"coalesced_2000us", 64, std::chrono::microseconds(2000)},
  };
  const std::vector<std::size_t> client_counts = {1, 2, 4, 8};

  std::fprintf(stderr, "bench_serve: %zu requests/client, %zu dispatcher worker(s)\n",
               requests, workers);
  std::fprintf(stderr, "%8s %14s %18s %18s %18s %10s\n", "clients", "batch1 p/s",
               "coal 100us p/s", "coal 500us p/s", "coal 2000us p/s", "speedup");

  bool all_identical = true;
  double speedup_at_4 = 0.0;
  struct Row {
    std::size_t clients;
    std::vector<double> per_s;  ///< one per mode
    double speedup;             ///< coalesced_500us / batch1
  };
  std::vector<Row> rows;
  for (const std::size_t clients : client_counts) {
    Row row;
    row.clients = clients;
    for (const Mode& mode : modes) {
      serve::ServeOptions cfg;
      cfg.max_batch = mode.max_batch;
      cfg.flush_deadline = mode.deadline;
      cfg.workers = workers;
      cfg.max_queue = kWindow * clients + 64;
      serve::PredictionService service(registry, cfg);
      const CellResult cell = run_cell(service, handle, context_template, clients, requests,
                                       expected_by_scaleout);
      all_identical = all_identical && cell.identical;
      if (!cell.identical) {
        std::fprintf(stderr, "clients=%zu mode=%s: PREDICTION MISMATCH vs serial loop\n",
                     clients, mode.name);
      }
      row.per_s.push_back(cell.per_s);
    }
    row.speedup = row.per_s[2] / std::max(row.per_s[0], 1e-12);
    if (clients == 4) speedup_at_4 = row.speedup;
    std::fprintf(stderr, "%8zu %14.0f %18.0f %18.0f %18.0f %9.2fx\n", clients, row.per_s[0],
                 row.per_s[1], row.per_s[2], row.per_s[3], row.speedup);
    rows.push_back(std::move(row));
  }

  // ---- adaptive flush cell: the 4-client workload with the band enabled,
  // plus the per-handle scheduler metrics the static grid cannot show.
  serve::ServeMetrics adaptive_metrics;
  CellResult adaptive_cell;
  {
    serve::ServeOptions cfg;
    cfg.max_batch = 64;
    cfg.flush_deadline = std::chrono::microseconds(500);
    cfg.flush_deadline_min = std::chrono::microseconds(50);
    cfg.flush_deadline_max = std::chrono::microseconds(2000);
    cfg.workers = workers;
    cfg.max_queue = kWindow * 4 + 64;
    serve::PredictionService service(registry, cfg);
    adaptive_cell =
        run_cell(service, handle, context_template, 4, requests, expected_by_scaleout);
    all_identical = all_identical && adaptive_cell.identical;
    adaptive_metrics = service.metrics(handle).unwrap();
    std::fprintf(stderr,
                 "adaptive band [50, 2000]us @ 4 clients: %.0f p/s, effective deadline "
                 "%llu us (ewma %.1f us), %llu batches (%llu full / %llu deadline), "
                 "%llu starved, max dispatch lag %llu us\n",
                 adaptive_cell.per_s,
                 static_cast<unsigned long long>(adaptive_metrics.effective_flush_deadline_us),
                 adaptive_metrics.interarrival_ewma_us,
                 static_cast<unsigned long long>(adaptive_metrics.batches),
                 static_cast<unsigned long long>(adaptive_metrics.coalesced),
                 static_cast<unsigned long long>(adaptive_metrics.deadline_flushes),
                 static_cast<unsigned long long>(adaptive_metrics.starved_flushes),
                 static_cast<unsigned long long>(adaptive_metrics.max_dispatch_lag_us));
  }

  // ---- QoS scenario: a saturated kBulk handle next to a probed
  // kInteractive handle — the measured form of the starvation test.
  struct QosResult {
    double unloaded_p50_us = 0, unloaded_p99_us = 0;
    double loaded_p50_us = 0, loaded_p99_us = 0;
    std::uint64_t bulk_responses = 0;
    serve::ServeMetrics interactive;
    serve::ServeMetrics bulk;
  } qos;
  {
    const serve::ModelHandle bulk =
        registry.publish({"sgd", "bench-bulk"}, model).unwrap();
    const serve::ModelHandle interactive =
        registry.publish({"sgd", "bench-interactive"}, model).unwrap();
    serve::ServeOptions cfg;
    cfg.max_batch = 16;
    cfg.max_queue = 256;
    cfg.flush_deadline = std::chrono::microseconds(500);
    cfg.workers = 1;  // one dispatcher makes cross-handle ordering decisive
    serve::PredictionService service(registry, cfg);
    service.set_qos(bulk, serve::HandleQos{serve::QosClass::kBulk, 1.0}).expect();
    service.set_qos(interactive, serve::HandleQos{serve::QosClass::kInteractive, 4.0})
        .expect();

    const std::size_t probes = std::min<std::size_t>(200, requests);
    auto probe_us = [&](std::vector<double>& out) {
      out.clear();
      out.reserve(probes);
      for (std::size_t i = 0; i < probes; ++i) {
        data::JobRun q = context_template;
        q.scale_out = static_cast<int>(1 + i % 60);
        const auto start = std::chrono::steady_clock::now();
        const auto r = service.predict(interactive, q);
        const auto end = std::chrono::steady_clock::now();
        if (!r.ok() || r.value() != expected_by_scaleout[q.scale_out]) {
          all_identical = false;
        }
        out.push_back(std::chrono::duration<double, std::micro>(end - start).count());
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      std::sort(out.begin(), out.end());
    };
    std::vector<double> lat;
    probe_us(lat);
    qos.unloaded_p50_us = lat[probes / 2];
    qos.unloaded_p99_us = lat[(probes * 99) / 100];

    std::atomic<bool> stop_flood{false};
    std::atomic<std::uint64_t> bulk_ok{0};
    std::vector<std::thread> flood;
    for (int t = 0; t < 3; ++t) {
      flood.emplace_back([&, t] {
        std::deque<std::future<serve::ServeResult<double>>> window;
        std::size_t i = static_cast<std::size_t>(t) * 1000;
        while (!stop_flood.load(std::memory_order_relaxed)) {
          data::JobRun q = context_template;
          q.scale_out = static_cast<int>(1 + i++ % 60);
          window.push_back(service.predict_async(bulk, q));
          if (window.size() >= 48) {
            if (window.front().get().ok()) bulk_ok.fetch_add(1, std::memory_order_relaxed);
            window.pop_front();
          }
        }
        while (!window.empty()) {
          if (window.front().get().ok()) bulk_ok.fetch_add(1, std::memory_order_relaxed);
          window.pop_front();
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    probe_us(lat);
    stop_flood.store(true);
    for (std::thread& t : flood) t.join();
    qos.loaded_p50_us = lat[probes / 2];
    qos.loaded_p99_us = lat[(probes * 99) / 100];
    qos.bulk_responses = bulk_ok.load();
    qos.interactive = service.metrics(interactive).unwrap();
    qos.bulk = service.metrics(bulk).unwrap();
    std::fprintf(stderr,
                 "qos: %s p50/p99 %0.f/%.0f us unloaded -> %.0f/%.0f us under "
                 "%s saturation (%llu bulk responses; interactive starved %llu, max "
                 "dispatch lag %llu us)\n",
                 serve::to_string(service.qos(interactive).unwrap().qos),
                 qos.unloaded_p50_us, qos.unloaded_p99_us, qos.loaded_p50_us,
                 qos.loaded_p99_us, serve::to_string(service.qos(bulk).unwrap().qos),
                 static_cast<unsigned long long>(qos.bulk_responses),
                 static_cast<unsigned long long>(qos.interactive.starved_flushes),
                 static_cast<unsigned long long>(qos.interactive.max_dispatch_lag_us));
  }

  // ---- queue contention cell: the dispatcher's ThreadPool under external
  // submitters, work-stealing vs the retired single-mutex queue.  Sized to
  // the serve deployment (`--workers` dispatcher threads); the 8-submitter
  // ratio is the serve-side view of the scheduler acceptance cell in
  // bench_train_step (>= 2x on multi-core; measured ratio reported when the
  // host is hardware-bound).
  const std::vector<bench::PoolContentionCell> contention =
      bench::pool_contention_grid(workers, {1, 4, 8}, /*tasks_per_submitter=*/20000);
  for (const auto& c : contention) {
    std::fprintf(stderr,
                 "pool contention: %zu submitter(s) x %zu worker(s): stealing %.0f "
                 "tasks/s vs mutex-queue %.0f tasks/s (%.2fx)\n",
                 c.submitters, c.workers, c.ws_tasks_per_s, c.mutex_tasks_per_s,
                 c.speedup());
  }

  std::fprintf(stderr, "predictions identical to the serial loop: %s\n",
               all_identical ? "yes" : "NO");
  std::fprintf(stderr,
               "coalescing speedup over batch-size-1 at 4 clients: %.2fx "
               "(acceptance floor: > 1.0x)\n",
               speedup_at_4);

  if (!json_path.empty()) {
    std::FILE* f = json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      std::fprintf(f,
                   "{\n  \"requests_per_client\": %zu,\n  \"workers\": %zu,\n"
                   "  \"identical\": %s,\n  \"grid\": [\n",
                   requests, workers, all_identical ? "true" : "false");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(f, "    {\"clients\": %zu", r.clients);
        for (std::size_t m = 0; m < modes.size(); ++m) {
          std::fprintf(f, ", \"%s_per_s\": %.0f", modes[m].name, r.per_s[m]);
        }
        std::fprintf(f, ", \"coalesce_speedup\": %.2f}%s\n", r.speedup,
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      const serve::ServeMetrics& am = adaptive_metrics;
      std::fprintf(
          f,
          "  \"adaptive\": {\"clients\": 4, \"adaptive_per_s\": %.0f,\n"
          "    \"metrics\": {\"effective_flush_deadline_us\": %llu, "
          "\"interarrival_ewma_us\": %.1f,\n"
          "      \"batches\": %llu, \"coalesced\": %llu, \"deadline_flushes\": %llu, "
          "\"drain_flushes\": %llu,\n"
          "      \"coalesced_requests\": %llu, \"starved_flushes\": %llu, "
          "\"max_dispatch_lag_us\": %llu}},\n",
          adaptive_cell.per_s,
          static_cast<unsigned long long>(am.effective_flush_deadline_us),
          am.interarrival_ewma_us, static_cast<unsigned long long>(am.batches),
          static_cast<unsigned long long>(am.coalesced),
          static_cast<unsigned long long>(am.deadline_flushes),
          static_cast<unsigned long long>(am.drain_flushes),
          static_cast<unsigned long long>(am.coalesced_requests),
          static_cast<unsigned long long>(am.starved_flushes),
          static_cast<unsigned long long>(am.max_dispatch_lag_us));
      std::fprintf(f, "  ");
      bench::write_pool_contention_json(f, contention);
      std::fprintf(f, ",\n");
      std::fprintf(
          f,
          "  \"qos\": {\"interactive_unloaded_p50_us\": %.1f, "
          "\"interactive_unloaded_p99_us\": %.1f,\n"
          "    \"interactive_loaded_p50_us\": %.1f, \"interactive_loaded_p99_us\": %.1f,\n"
          "    \"p99_load_factor\": %.2f, \"bulk_responses\": %llu,\n"
          "    \"interactive_starved_flushes\": %llu, \"bulk_starved_flushes\": %llu,\n"
          "    \"interactive_max_dispatch_lag_us\": %llu, "
          "\"bulk_max_dispatch_lag_us\": %llu}\n",
          qos.unloaded_p50_us, qos.unloaded_p99_us, qos.loaded_p50_us, qos.loaded_p99_us,
          qos.unloaded_p99_us > 0 ? qos.loaded_p99_us / qos.unloaded_p99_us : 0.0,
          static_cast<unsigned long long>(qos.bulk_responses),
          static_cast<unsigned long long>(qos.interactive.starved_flushes),
          static_cast<unsigned long long>(qos.bulk.starved_flushes),
          static_cast<unsigned long long>(qos.interactive.max_dispatch_lag_us),
          static_cast<unsigned long long>(qos.bulk.max_dispatch_lag_us));
      std::fprintf(f, "}\n");
      if (f != stdout) {
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
      }
    }
  }
  return all_identical ? 0 : 1;
}
