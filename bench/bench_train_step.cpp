// Throughput of the batched training engine and the blocked GEMM kernels.
//
//   ./build/bench/bench_train_step [--epochs=N] [--json=PATH] [--skip-1024]
//
// Section 1 — GEMM: blocked matmul / matmul_tn / matmul_nt vs the naive
// matmul*_ref triple loops at 512x512x512 (acceptance floor: 3x for matmul).
//
// Section 1b — threaded GEMM: the blocked kernel split across a ThreadPool
// at 512^3 and 1024^3 with 1/4/8 threads, verified bit-identical to the
// serial kernel.
//
// Section 2 — pre-training epochs at batch size 64: the per-sample baseline
// (one singleton train_step per run, gradients accumulated and scaled by
// 1/B — the pre-batching engine) vs the batched path (encode-once corpus,
// dedup gather per mini-batch, one stacked forward/backward).  Both modes
// follow the same parameter trajectory, so their final losses must agree to
// 1e-9; the acceptance floor for the epoch speedup is 4x.
//
// Section 3 — queue contention: N external submitter threads firing tiny
// tasks at a 4-worker pool, tasks/s end-to-end, work-stealing scheduler vs
// the retired single-mutex queue (reference copy in bench_common.cpp).  The
// acceptance target is >= 2x at 8 submitters on multi-core hardware; on a
// hardware-bound host (single core: every thread timeslices one CPU, so
// submitters and workers cannot actually contend in parallel) the measured
// ratio is reported and committed instead of gated.
//
// --json writes the measurements as a small JSON document (CI artifact;
// scripts/bench-compare.py diffs it against bench/baselines/).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/bellamy_model.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace bellamy;

namespace {

struct GemmResult {
  const char* name;
  double blocked_s;
  double ref_s;
  double max_diff;
  double speedup() const { return ref_s / std::max(blocked_s, 1e-12); }
};

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

GemmResult bench_gemm(const char* name, const nn::Matrix& a, const nn::Matrix& b,
                      nn::Matrix (*blocked)(const nn::Matrix&, const nn::Matrix&),
                      nn::Matrix (*ref)(const nn::Matrix&, const nn::Matrix&)) {
  nn::Matrix out_blocked = blocked(a, b);  // warm-up + correctness operand
  const nn::Matrix out_ref = ref(a, b);
  GemmResult res;
  res.name = name;
  res.max_diff = nn::Matrix::max_abs_diff(out_blocked, out_ref);
  res.blocked_s = best_of(3, [&] { out_blocked = blocked(a, b); });
  res.ref_s = best_of(3, [&] { out_blocked = ref(a, b); });
  return res;
}

struct ThreadedGemmResult {
  std::size_t size = 0;
  double serial_s = 0.0;
  std::size_t threads[3] = {1, 4, 8};
  double threaded_s[3] = {0.0, 0.0, 0.0};
  bool identical = true;
  double speedup_t8() const { return serial_s / std::max(threaded_s[2], 1e-12); }
};

// Serial vs pool-split blocked GEMM at one size; each thread count runs on
// its own pool and the output is checked bit-identical to the serial kernel.
ThreadedGemmResult bench_threaded_gemm(std::size_t size, std::uint64_t seed) {
  using nn::Matrix;
  util::Rng rng(seed);
  const Matrix a = Matrix::randn(size, size, rng);
  const Matrix b = Matrix::randn(size, size, rng);
  const std::size_t saved_flops = Matrix::gemm_min_flops();

  ThreadedGemmResult res;
  res.size = size;
  Matrix::set_gemm_min_flops(static_cast<std::size_t>(-1));  // force serial
  Matrix serial = Matrix::matmul(a, b);
  res.serial_s = best_of(3, [&] { serial = Matrix::matmul(a, b); });

  Matrix::set_gemm_min_flops(0);  // always thread
  for (int t = 0; t < 3; ++t) {
    parallel::ThreadPool pool(res.threads[t]);
    Matrix::set_gemm_pool(&pool);
    Matrix out = Matrix::matmul(a, b);
    if (!(out == serial)) res.identical = false;
    res.threaded_s[t] = best_of(3, [&] { out = Matrix::matmul(a, b); });
    Matrix::set_gemm_pool(nullptr);
  }
  Matrix::set_gemm_min_flops(saved_flops);
  return res;
}

struct EpochResult {
  double per_sample_s = 0.0;  ///< mean wall-clock per epoch, per-sample mode
  double batched_s = 0.0;     ///< mean wall-clock per epoch, batched mode
  double per_sample_loss = 0.0;
  double batched_loss = 0.0;
  double speedup() const { return per_sample_s / std::max(batched_s, 1e-12); }
  double loss_diff() const { return std::abs(per_sample_loss - batched_loss); }
};

// The pre-batching engine: one singleton train_step per sample, gradients
// accumulated across the mini-batch and scaled by 1/B before the Adam step.
// This follows the exact same parameter trajectory as the batched path.
double per_sample_epoch(core::BellamyModel& model, const std::vector<data::JobRun>& runs,
                        const std::vector<std::size_t>& order, std::size_t batch_size,
                        nn::Adam& optimizer) {
  double epoch_loss = 0.0;
  std::size_t batches = 0;
  const auto params = model.parameters();
  for (std::size_t begin = 0; begin < order.size(); begin += batch_size) {
    const std::size_t end = std::min(order.size(), begin + batch_size);
    const double inv_b = 1.0 / static_cast<double>(end - begin);
    optimizer.zero_grad();
    double batch_loss = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto loss = model.train_step(model.make_batch({runs[order[i]]}), 1.0);
      batch_loss += loss.total;
    }
    for (nn::Parameter* p : params) p->grad *= inv_b;
    optimizer.step();
    epoch_loss += batch_loss * inv_b;
    ++batches;
  }
  return epoch_loss / static_cast<double>(batches);
}

double batched_epoch(core::BellamyModel& model, const core::BellamyEncodedRuns& encoded,
                     const std::vector<std::size_t>& order, std::size_t batch_size,
                     nn::Adam& optimizer) {
  double epoch_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t begin = 0; begin < order.size(); begin += batch_size) {
    const std::size_t end = std::min(order.size(), begin + batch_size);
    const std::span<const std::size_t> indices(order.data() + begin, end - begin);
    optimizer.zero_grad();
    const auto loss = model.train_step(model.gather_batch(encoded, indices), 1.0);
    optimizer.step();
    epoch_loss += loss.total;
    ++batches;
  }
  return epoch_loss / static_cast<double>(batches);
}

EpochResult bench_epochs(const std::vector<data::JobRun>& runs, std::size_t epochs,
                         std::size_t batch_size) {
  EpochResult res;
  // Two identically seeded models so both modes train the same network.
  // Dropout 0: the equivalence requires the deterministic path (the batched
  // engine shares dropout masks across deduplicated rows by design).
  auto make_model = [&] {
    core::BellamyModel model(core::BellamyConfig{}, /*seed=*/71);
    model.fit_normalization(runs);
    model.set_dropout_rate(0.0);
    model.set_trainable_components(true, true, true, true);
    return model;
  };
  nn::Adam::Config adam;
  adam.lr = 1e-2;
  adam.weight_decay = 1e-3;

  {
    core::BellamyModel model = make_model();
    nn::Adam optimizer(model.parameters(), adam);
    util::Rng rng(7);
    std::vector<std::size_t> order(runs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    util::Timer timer;
    for (std::size_t e = 0; e < epochs; ++e) {
      rng.shuffle(order);
      res.per_sample_loss = per_sample_epoch(model, runs, order, batch_size, optimizer);
    }
    res.per_sample_s = timer.seconds() / static_cast<double>(epochs);
  }
  {
    core::BellamyModel model = make_model();
    nn::Adam optimizer(model.parameters(), adam);
    util::Rng rng(7);
    std::vector<std::size_t> order(runs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const core::BellamyEncodedRuns encoded = model.encode_runs(runs);
    util::Timer timer;
    for (std::size_t e = 0; e < epochs; ++e) {
      rng.shuffle(order);
      res.batched_loss = batched_epoch(model, encoded, order, batch_size, optimizer);
    }
    res.batched_s = timer.seconds() / static_cast<double>(epochs);
  }
  return res;
}

void write_json(const std::string& path, const std::vector<GemmResult>& gemms,
                const std::vector<ThreadedGemmResult>& threaded,
                const std::vector<bench::PoolContentionCell>& contention,
                const EpochResult& epoch, std::size_t num_runs, std::size_t epochs,
                std::size_t batch_size) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"gemm_512\": {\n");
  for (std::size_t i = 0; i < gemms.size(); ++i) {
    const auto& g = gemms[i];
    std::fprintf(f,
                 "    \"%s\": {\"blocked_ms\": %.3f, \"ref_ms\": %.3f, "
                 "\"speedup\": %.2f, \"max_diff\": %.3e}%s\n",
                 g.name, g.blocked_s * 1e3, g.ref_s * 1e3, g.speedup(), g.max_diff,
                 i + 1 < gemms.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"gemm_threaded\": {\n");
  for (std::size_t i = 0; i < threaded.size(); ++i) {
    const auto& t = threaded[i];
    std::fprintf(f,
                 "    \"size_%zu\": {\"serial_ms\": %.3f, \"t1_ms\": %.3f, "
                 "\"t4_ms\": %.3f, \"t8_ms\": %.3f, \"speedup_t8\": %.2f, "
                 "\"identical\": %s}%s\n",
                 t.size, t.serial_s * 1e3, t.threaded_s[0] * 1e3, t.threaded_s[1] * 1e3,
                 t.threaded_s[2] * 1e3, t.speedup_t8(), t.identical ? "true" : "false",
                 i + 1 < threaded.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  ");
  bench::write_pool_contention_json(f, contention);
  std::fprintf(f, ",\n");
  std::fprintf(f,
               "  \"pretrain_epoch\": {\"runs\": %zu, \"epochs\": %zu, \"batch_size\": %zu, "
               "\"per_sample_ms\": %.2f, \"batched_ms\": %.2f, \"speedup\": %.2f, "
               "\"final_loss_diff\": %.3e}\n}\n",
               num_runs, epochs, batch_size, epoch.per_sample_s * 1e3, epoch.batched_s * 1e3,
               epoch.speedup(), epoch.loss_diff());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t epochs = 5;
  std::string json_path;
  bool skip_1024 = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::max(1, std::atoi(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--skip-1024") == 0) {
      skip_1024 = true;
    } else {
      std::fprintf(stderr, "usage: %s [--epochs=N] [--json=PATH] [--skip-1024]\n", argv[0]);
      return 2;
    }
  }

  // ---- Section 1: blocked GEMM vs naive reference at 512^3 -----------------
  util::Rng rng(3);
  const nn::Matrix a = nn::Matrix::randn(512, 512, rng);
  const nn::Matrix b = nn::Matrix::randn(512, 512, rng);
  std::vector<GemmResult> gemms;
  gemms.push_back(bench_gemm("matmul", a, b, &nn::Matrix::matmul, &nn::Matrix::matmul_ref));
  gemms.push_back(
      bench_gemm("matmul_tn", a, b, &nn::Matrix::matmul_tn, &nn::Matrix::matmul_tn_ref));
  gemms.push_back(
      bench_gemm("matmul_nt", a, b, &nn::Matrix::matmul_nt, &nn::Matrix::matmul_nt_ref));

  const double flops = 2.0 * 512.0 * 512.0 * 512.0;
  std::printf("GEMM 512x512x512 (blocked vs naive reference)\n");
  std::printf("%-10s %12s %12s %10s %10s %12s\n", "kernel", "blocked ms", "ref ms",
              "GFLOP/s", "speedup", "max |diff|");
  for (const auto& g : gemms) {
    std::printf("%-10s %12.1f %12.1f %10.2f %9.2fx %12.2e\n", g.name, g.blocked_s * 1e3,
                g.ref_s * 1e3, flops / g.blocked_s / 1e9, g.speedup(), g.max_diff);
  }
  std::printf("blocked matmul speedup: %.2fx (acceptance floor: 3x)\n\n",
              gemms[0].speedup());

  // ---- Section 1b: threaded blocked GEMM -----------------------------------
  std::vector<ThreadedGemmResult> threaded;
  threaded.push_back(bench_threaded_gemm(512, 5));
  if (!skip_1024) threaded.push_back(bench_threaded_gemm(1024, 6));

  std::printf("threaded GEMM (blocked kernel split over a ThreadPool)\n");
  std::printf("%-10s %11s %11s %11s %11s %10s %10s\n", "size", "serial ms", "1 thr ms",
              "4 thr ms", "8 thr ms", "8-thr spd", "identical");
  bool threaded_identical = true;
  for (const auto& t : threaded) {
    std::printf("%zu^3%6s %11.1f %11.1f %11.1f %11.1f %9.2fx %10s\n", t.size, "",
                t.serial_s * 1e3, t.threaded_s[0] * 1e3, t.threaded_s[1] * 1e3,
                t.threaded_s[2] * 1e3, t.speedup_t8(), t.identical ? "yes" : "NO");
    threaded_identical = threaded_identical && t.identical;
  }
  std::printf("threaded == serial bit-identical: %s\n\n",
              threaded_identical ? "yes" : "NO");

  // ---- Section 2: pre-training epoch, per-sample vs batched ----------------
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 71;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sort", 6);
  const auto& runs = history.runs();
  constexpr std::size_t kBatchSize = 64;
  std::printf("pre-training: %zu runs, batch size %zu, %zu epoch(s) per mode\n", runs.size(),
              kBatchSize, epochs);

  const EpochResult epoch = bench_epochs(runs, epochs, kBatchSize);
  std::printf("%-28s %12.1f ms/epoch\n", "per-sample baseline", epoch.per_sample_s * 1e3);
  std::printf("%-28s %12.1f ms/epoch\n", "batched (dedup gather)", epoch.batched_s * 1e3);
  std::printf("epoch speedup: %.2fx (acceptance floor: 4x)\n", epoch.speedup());
  std::printf("final epoch loss: per-sample %.12f vs batched %.12f (|diff| %.2e)\n",
              epoch.per_sample_loss, epoch.batched_loss, epoch.loss_diff());

  const bool losses_match = epoch.loss_diff() <= 1e-9;
  std::printf("losses match to 1e-9: %s\n\n", losses_match ? "yes" : "NO");

  // ---- Section 3: queue contention, work-stealing vs mutex queue -----------
  const std::vector<bench::PoolContentionCell> contention =
      bench::pool_contention_grid(/*workers=*/4, {1, 4, 8}, /*tasks_per_submitter=*/20000);
  std::printf("queue contention (4 workers, tiny tasks, tasks/s first-submit to drained)\n");
  std::printf("%-11s %10s %14s %14s %10s\n", "submitters", "tasks", "stealing/s",
              "mutex-q/s", "speedup");
  for (const auto& c : contention) {
    std::printf("%-11zu %10zu %14.0f %14.0f %9.2fx\n", c.submitters, c.tasks,
                c.ws_tasks_per_s, c.mutex_tasks_per_s, c.speedup());
  }
  std::printf(
      "8-submitter target: >=2x on multi-core; on a single-core host the ratio is\n"
      "hardware-bound (submitters and workers timeshare one CPU) and is reported,\n"
      "not gated.  hardware_concurrency here: %u\n",
      std::thread::hardware_concurrency());

  if (!json_path.empty()) {
    write_json(json_path, gemms, threaded, contention, epoch, runs.size(), epochs,
               kBatchSize);
  }
  return (losses_match && threaded_identical) ? 0 : 1;
}
