// Figure 5 (right) — mean relative error (MRE) of extrapolation vs number of
// training data points (0..6) per algorithm.
//
// Expected shape (paper §IV-C.1): the baselines need several points before
// they extrapolate at all (NNLS with one point is degenerate, Bell needs 3),
// while a pre-trained Bellamy model produces usable extrapolations already
// at 0 points, improving as points are added.

#include <cstdio>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace bellamy;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Figure 5 (right): extrapolation MRE vs #data points");

  const auto result = bench::cached_cross_context(opts);
  const auto series = eval::aggregate_series(result.evals, "extrapolation");
  const auto algorithms = eval::distinct_algorithms(result.evals);
  const auto models = eval::distinct_models(result.evals);

  std::printf("\nalgorithm\tmodel\tnum_points\tmre\tmae_s\tn\n");
  for (const auto& algo : algorithms) {
    for (const auto& model : models) {
      for (std::size_t n = 0; n <= 6; ++n) {
        const auto it = series.find({algo, model, n});
        if (it == series.end()) continue;
        std::printf("%s\t%s\t%zu\t%.3f\t%.1f\t%zu\n", algo.c_str(), model.c_str(), n,
                    it->second.mre, it->second.mae, it->second.count);
      }
    }
  }

  // Claim 1: pre-trained Bellamy produces finite extrapolations at 0 points.
  bool zero_point_works = false;
  double zero_point_mre = 0.0;
  std::size_t zero_count = 0;
  for (const auto& [key, stats] : series) {
    const auto& [algo, model, n] = key;
    if (n == 0 && (model == "Bellamy (full)" || model == "Bellamy (filtered)")) {
      zero_point_works = true;
      zero_point_mre += stats.mre * static_cast<double>(stats.count);
      zero_count += stats.count;
    }
  }
  if (zero_count) zero_point_mre /= static_cast<double>(zero_count);

  // Claim 2: more fine-tuning points reduce the pre-trained model's error.
  double mre_at_1 = 0.0;
  double mre_at_6 = 0.0;
  std::size_t c1 = 0;
  std::size_t c6 = 0;
  for (const auto& [key, stats] : series) {
    const auto& [algo, model, n] = key;
    if (model != "Bellamy (full)") continue;
    if (n <= 1) {
      mre_at_1 += stats.mre * static_cast<double>(stats.count);
      c1 += stats.count;
    }
    if (n >= 5) {
      mre_at_6 += stats.mre * static_cast<double>(stats.count);
      c6 += stats.count;
    }
  }
  if (c1) mre_at_1 /= static_cast<double>(c1);
  if (c6) mre_at_6 /= static_cast<double>(c6);

  std::printf("\n[claim] pre-trained Bellamy extrapolates with 0 data points: %s (MRE %.3f)\n",
              zero_point_works ? "CONFIRMED" : "NOT CONFIRMED", zero_point_mre);
  std::printf("[claim] fine-tuning points reduce extrapolation error (<=1 pt %.3f -> >=5 pts "
              "%.3f): %s\n",
              mre_at_1, mre_at_6, mre_at_6 <= mre_at_1 ? "CONFIRMED" : "NOT CONFIRMED");
  return 0;
}
