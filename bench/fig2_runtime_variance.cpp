// Figure 2 — "Runtime Variance across Contexts": normalized job runtimes of
// each algorithm across all its execution contexts and scale-outs.  The
// paper uses this to motivate context-aware models: the same algorithm at
// the same scale-out spans a wide range of runtimes depending on context.
//
// Output: one TSV block per algorithm with the normalized runtime
// distribution per scale-out (min / quartiles / max across contexts), plus a
// cross-context coefficient-of-variation summary.

#include <cstdio>

#include "bench_common.hpp"
#include "data/ground_truth.hpp"
#include "eval/report.hpp"
#include "util/stats.hpp"

using namespace bellamy;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Figure 2: runtime variance across contexts (C3O-like traces)");

  const data::Dataset ds = bench::make_c3o_dataset(opts);

  std::printf("\nalgorithm\tscale_out\tnorm_min\tnorm_p25\tnorm_median\tnorm_p75\tnorm_max\n");
  for (const auto& algo : data::c3o_algorithms()) {
    const data::Dataset algo_ds = ds.filter_algorithm(algo);
    const auto groups = algo_ds.contexts();

    // Per-context mean runtime at every scale-out, normalized per algorithm
    // over all (context, scale-out) cells — exactly the [0, 1] y-axis of
    // the paper's figure.
    std::vector<double> all_values;
    std::map<int, std::vector<double>> by_scaleout;
    for (const auto& g : groups) {
      for (int x : g.scale_outs()) {
        const double rt = g.mean_runtime_at(x);
        by_scaleout[x].push_back(rt);
        all_values.push_back(rt);
      }
    }
    const double lo = util::min(all_values);
    const double hi = util::max(all_values);
    const double range = hi - lo > 0.0 ? hi - lo : 1.0;

    for (auto& [x, values] : by_scaleout) {
      for (double& v : values) v = (v - lo) / range;
      std::printf("%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n", algo.c_str(), x,
                  util::min(values), util::percentile(values, 25.0), util::median(values),
                  util::percentile(values, 75.0), util::max(values));
    }
  }

  std::printf("\n# cross-context spread per algorithm (coefficient of variation of the\n");
  std::printf("# context-mean runtime at a fixed scale-out, averaged over scale-outs)\n");
  std::printf("algorithm\tmean_cv\tnontrivial_scaleout\n");
  bool variance_substantial = true;
  for (const auto& algo : data::c3o_algorithms()) {
    const auto groups = ds.filter_algorithm(algo).contexts();
    std::map<int, std::vector<double>> by_scaleout;
    for (const auto& g : groups) {
      for (int x : g.scale_outs()) by_scaleout[x].push_back(g.mean_runtime_at(x));
    }
    double cv_sum = 0.0;
    for (const auto& [x, values] : by_scaleout) cv_sum += util::coeff_of_variation(values);
    const double mean_cv = cv_sum / static_cast<double>(by_scaleout.size());
    variance_substantial &= mean_cv > 0.25;
    std::printf("%s\t%.3f\t%s\n", algo.c_str(), mean_cv,
                data::has_nontrivial_scaleout(algo) ? "yes" : "no");
  }

  std::printf("\n[claim] runtimes vary substantially across contexts at fixed scale-out: %s\n",
              variance_substantial ? "CONFIRMED" : "NOT CONFIRMED");
  return 0;
}
