#pragma once
// Shared infrastructure for the figure/table benchmark binaries.
//
// Every binary accepts:
//   --paper-scale   run with the paper's full split/context/epoch counts
//                   (hours of single-core compute) instead of the quick
//                   defaults that finish in minutes
//   --no-cache      recompute even if a cached experiment result exists
//   --seed=N        master seed (default 2021)
//
// The fig5/fig6/fig7/time-to-fit binaries all consume the *same* underlying
// cross-context experiment, so its result is cached on disk after the first
// run (directory ./bellamy-bench-cache) and reused by the siblings.

#include <cstdio>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "eval/experiment.hpp"

namespace bellamy::bench {

struct BenchOptions {
  bool paper_scale = false;
  bool no_cache = false;
  std::uint64_t seed = 2021;
  std::string cache_dir = "bellamy-bench-cache";
  /// Split-evaluation worker threads (--threads=N); results are bit-identical
  /// to the serial path at any thread count.
  std::size_t eval_threads = 1;
};

/// Parses the common flags; unknown flags abort with a usage message.
BenchOptions parse_options(int argc, char** argv);

/// The C3O-like / Bell-like trace datasets used by all benches.
data::Dataset make_c3o_dataset(const BenchOptions& opts);
data::Dataset make_bell_dataset(const BenchOptions& opts);

/// Experiment configurations: quick (default) vs paper-scale.
eval::CrossContextConfig cross_context_config(const BenchOptions& opts);
eval::CrossEnvironmentConfig cross_environment_config(const BenchOptions& opts);

/// Cached cross-context / cross-environment runs, keyed by a config
/// signature; recomputes on mismatch or --no-cache.
eval::ExperimentResult cached_cross_context(const BenchOptions& opts);
eval::ExperimentResult cached_cross_environment(const BenchOptions& opts);

/// TSV (de)serialization of experiment results (used by the cache and handy
/// for piping results into plotting scripts).
void save_result(const std::string& path, const std::string& signature,
                 const eval::ExperimentResult& result);
bool load_result(const std::string& path, const std::string& signature,
                 eval::ExperimentResult& out);

/// One cell of the queue-contention microbench: N external submitter
/// threads fire tiny tasks at an M-worker pool as fast as they can, and the
/// cell records end-to-end tasks/s (first submit to drained) for the
/// work-stealing ThreadPool vs a reference single-mutex + condvar pool (a
/// faithful copy of the pre-stealing scheduler, kept in bench_common.cpp as
/// the comparison baseline).  Both pools run the exact same submit API and
/// task body, so the ratio isolates the scheduler.
struct PoolContentionCell {
  std::size_t submitters = 0;
  std::size_t workers = 0;
  std::size_t tasks = 0;  ///< total tasks executed per pool (exactly-once checked)
  double ws_tasks_per_s = 0.0;
  double mutex_tasks_per_s = 0.0;
  double speedup() const {
    return mutex_tasks_per_s > 0 ? ws_tasks_per_s / mutex_tasks_per_s : 0.0;
  }
};

/// Runs the contention grid at the given submitter counts (typically
/// {1, 4, 8}) against `workers` pool workers, `tasks_per_submitter` tiny
/// tasks each.  Aborts (via std::abort after an stderr report) on any
/// lost or duplicated task — the bench doubles as an exactly-once check.
std::vector<PoolContentionCell> pool_contention_grid(
    std::size_t workers, const std::vector<std::size_t>& submitter_counts,
    std::size_t tasks_per_submitter);

/// Appends the standard JSON object for the contention grid to `f` as
///   "pool_contention": {"workers": W, "submitters_N": {...}, ...}
/// (no trailing comma or newline; caller owns surrounding punctuation).
void write_pool_contention_json(std::FILE* f, const std::vector<PoolContentionCell>& grid);

}  // namespace bellamy::bench
