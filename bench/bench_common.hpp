#pragma once
// Shared infrastructure for the figure/table benchmark binaries.
//
// Every binary accepts:
//   --paper-scale   run with the paper's full split/context/epoch counts
//                   (hours of single-core compute) instead of the quick
//                   defaults that finish in minutes
//   --no-cache      recompute even if a cached experiment result exists
//   --seed=N        master seed (default 2021)
//
// The fig5/fig6/fig7/time-to-fit binaries all consume the *same* underlying
// cross-context experiment, so its result is cached on disk after the first
// run (directory ./bellamy-bench-cache) and reused by the siblings.

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "eval/experiment.hpp"

namespace bellamy::bench {

struct BenchOptions {
  bool paper_scale = false;
  bool no_cache = false;
  std::uint64_t seed = 2021;
  std::string cache_dir = "bellamy-bench-cache";
  /// Split-evaluation worker threads (--threads=N); results are bit-identical
  /// to the serial path at any thread count.
  std::size_t eval_threads = 1;
};

/// Parses the common flags; unknown flags abort with a usage message.
BenchOptions parse_options(int argc, char** argv);

/// The C3O-like / Bell-like trace datasets used by all benches.
data::Dataset make_c3o_dataset(const BenchOptions& opts);
data::Dataset make_bell_dataset(const BenchOptions& opts);

/// Experiment configurations: quick (default) vs paper-scale.
eval::CrossContextConfig cross_context_config(const BenchOptions& opts);
eval::CrossEnvironmentConfig cross_environment_config(const BenchOptions& opts);

/// Cached cross-context / cross-environment runs, keyed by a config
/// signature; recomputes on mismatch or --no-cache.
eval::ExperimentResult cached_cross_context(const BenchOptions& opts);
eval::ExperimentResult cached_cross_environment(const BenchOptions& opts);

/// TSV (de)serialization of experiment results (used by the cache and handy
/// for piping results into plotting scripts).
void save_result(const std::string& path, const std::string& signature,
                 const eval::ExperimentResult& result);
bool load_result(const std::string& path, const std::string& signature,
                 eval::ExperimentResult& out);

}  // namespace bellamy::bench
