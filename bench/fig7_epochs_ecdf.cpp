// Figure 7 — empirical CDF of fine-tuning epoch counts per algorithm and
// Bellamy variant.  Paper claim: pre-trained variants converge (and hence
// terminate early-stopping) in far fewer epochs than the local variant,
// which frequently runs into the epoch cap; non-trivial algorithms need
// more epochs across the board.

#include <cstdio>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "util/stats.hpp"

using namespace bellamy;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Figure 7: eCDF of fine-tuning epochs per algorithm/variant");

  const auto result = bench::cached_cross_context(opts);
  const auto by_pair = eval::epochs_by_algorithm_model(result.fits);
  const auto algorithms = eval::distinct_algorithms(result.evals);

  const std::vector<std::string> variants{"Bellamy (local)", "Bellamy (filtered)",
                                          "Bellamy (full)"};

  // eCDF sampled at fixed epoch thresholds (columns), one row per
  // (algorithm, variant).
  std::vector<double> thresholds;
  const std::size_t cap =
      opts.paper_scale ? 2500 : bench::cross_context_config(opts).finetune.max_epochs;
  for (std::size_t t = 0; t <= cap; t += std::max<std::size_t>(1, cap / 10)) {
    thresholds.push_back(static_cast<double>(t));
  }

  std::printf("\nalgorithm\tvariant");
  for (double t : thresholds) std::printf("\tP(ep<=%.0f)", t);
  std::printf("\n");

  std::map<std::string, double> mean_epochs;
  for (const auto& algo : algorithms) {
    for (const auto& variant : variants) {
      const auto it = by_pair.find({algo, variant});
      if (it == by_pair.end()) continue;
      const auto probs = util::ecdf(it->second, thresholds);
      std::printf("%s\t%-20s", algo.c_str(), variant.c_str());
      for (double p : probs) std::printf("\t%.2f", p);
      std::printf("\n");
      mean_epochs[variant] += util::mean(it->second);
    }
  }
  for (auto& [variant, total] : mean_epochs) {
    total /= static_cast<double>(algorithms.size());
  }

  std::printf("\n# mean fine-tuning epochs per variant (all algorithms)\n");
  for (const auto& variant : variants) {
    if (mean_epochs.count(variant)) {
      std::printf("%-20s\t%.0f\n", variant.c_str(), mean_epochs[variant]);
    }
  }

  const bool pretrained_faster =
      mean_epochs.count("Bellamy (local)") && mean_epochs.count("Bellamy (full)") &&
      mean_epochs["Bellamy (full)"] < mean_epochs["Bellamy (local)"] &&
      mean_epochs["Bellamy (filtered)"] < mean_epochs["Bellamy (local)"];
  std::printf("\n[claim] pre-trained variants converge in fewer epochs than local: %s\n",
              pretrained_faster ? "CONFIRMED" : "NOT CONFIRMED");
  return 0;
}
