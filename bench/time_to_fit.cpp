// §IV-C.1 "Training time" — mean wall-clock time to fit each model across
// all cross-context experiments.  Paper reference numbers (their hardware):
// NNLS/Bell a few milliseconds; Bellamy 7.37 s (local), 0.99 s (filtered),
// 0.55 s (full).  The absolute values differ on other machines; the ordering
// time(full) < time(filtered) << time(local) is the reproduced shape.

#include <cstdio>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace bellamy;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Training time: mean time to fit per model (cross-context)");

  const auto result = bench::cached_cross_context(opts);
  const auto means = eval::mean_fit_seconds(result.fits);

  std::printf("\nmodel\tmean_fit_seconds\tpaper_reference_s\n");
  const std::vector<std::pair<std::string, const char*>> rows{
      {"NNLS", "~0.001"},
      {"Bell", "~0.005"},
      {"Bellamy (local)", "7.37"},
      {"Bellamy (filtered)", "0.99"},
      {"Bellamy (full)", "0.55"},
  };
  for (const auto& [model, ref] : rows) {
    const auto it = means.find(model);
    if (it == means.end()) continue;
    std::printf("%-20s\t%10.4f\t%s\n", model.c_str(), it->second, ref);
  }

  const bool baselines_fast = means.count("NNLS") && means.count("Bellamy (local)") &&
                              means.at("NNLS") < means.at("Bellamy (local)");
  const bool pretrained_faster_than_local =
      means.count("Bellamy (full)") && means.count("Bellamy (filtered)") &&
      means.count("Bellamy (local)") &&
      means.at("Bellamy (full)") < means.at("Bellamy (local)") &&
      means.at("Bellamy (filtered)") < means.at("Bellamy (local)");

  std::printf("\n[claim] NNLS/Bell fit orders of magnitude faster than Bellamy: %s\n",
              baselines_fast ? "CONFIRMED" : "NOT CONFIRMED");
  std::printf("[claim] pre-trained variants fit faster than the local variant: %s\n",
              pretrained_faster_than_local ? "CONFIRMED" : "NOT CONFIRMED");
  return 0;
}
