// The exchange layer's acceptance bench: what does a NEW node pay to start
// serving a job — pretraining from scratch, or warm-starting off a peer that
// already has it?
//
//   ./build/bench/bench_exchange [--epochs=N] [--json=PATH|-]
//
// Node A (a full in-process serving stack: registry + service + ServeServer
// + ExchangeRegistry on an ephemeral loopback port) pretrains and publishes
// the model.  Node B joins with a TcpTransport peer and resolves:
//
//   * the EXACT key        -> pull over TCP, install (exchange_pull_ms)
//   * a same-job NEW context -> pull the base + derive (exchange_warm_start_ms)
//
// against the cost node A paid (exchange_pretrain_scratch_ms).  The bench
// FAILS (exit 1) if the pulled weights are not byte-identical to node A's
// checkpoint or if the warm start is not faster than the pretrain — that is
// the whole point of the subsystem.  --json emits keys for
// scripts/bench-compare.py (*_ms lower-better, *speedup* higher-better).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "exchange/exchange.hpp"
#include "net/net.hpp"
#include "serve/serve.hpp"
#include "util/timer.hpp"

using namespace bellamy;

namespace {

/// A full serving node on an ephemeral loopback port, exchange attached.
struct Node {
  Node() : ex(registry) {
    serve::ServeOptions options;
    options.workers = 2;
    service.emplace(registry, options);
    net::ServerOptions server_options;
    server_options.peer_service = &ex;
    server.emplace(registry, *service, server_options);
    std::string error;
    if (!server->start(error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      std::exit(1);
    }
  }
  ~Node() {
    ex.stop();
    server->stop();
    server.reset();
    service.reset();
  }

  serve::ModelRegistry registry;
  exchange::ExchangeRegistry ex;
  std::optional<serve::PredictionService> service;
  std::optional<net::ServeServer> server;
};

std::string text_of(serve::ModelRegistry& registry, const serve::ModelKey& key) {
  const auto handle = registry.find(key);
  if (!handle.ok()) return {};
  auto text = registry.checkpoint_text(handle.value());
  return text.ok() ? text.take() : std::string();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t epochs = 300;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = static_cast<std::size_t>(std::max(1, std::atoi(argv[i] + 9)));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--epochs=N] [--json=PATH|-]\n", argv[0]);
      return 2;
    }
  }

  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 71;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sgd", 6);
  const serve::ModelKey seed_key{"sgd", "ctx-origin"};
  const serve::ModelKey fresh_key{"sgd", "ctx-new"};

  // ---- node A: the one pretrain the mesh ever pays for ----
  Node a;
  double pretrain_ms = 0.0;
  {
    core::BellamyModel model(core::BellamyConfig{}, /*seed=*/71);
    core::PreTrainConfig pre;
    pre.epochs = epochs;
    util::Timer timer;
    core::pretrain(model, history.runs(), pre);
    pretrain_ms = timer.seconds() * 1e3;
    if (!a.ex.publish(seed_key, model).ok()) {
      std::fprintf(stderr, "publish at node A failed\n");
      return 1;
    }
  }
  std::fprintf(stderr, "node A: pretrained %zu epochs in %.1f ms, serving on port %u\n",
               epochs, pretrain_ms, a.server->port());

  // ---- node B: joins the mesh, never pretrains ----
  Node b;
  b.ex.add_peer(std::make_shared<exchange::TcpTransport>("127.0.0.1", a.server->port()));

  util::Timer pull_timer;
  const auto pulled = b.ex.open(seed_key);  // exact key: TCP pull + install
  const double pull_ms = pull_timer.seconds() * 1e3;
  if (!pulled.ok()) {
    std::fprintf(stderr, "pull-on-miss failed: %s\n", pulled.error_text().c_str());
    return 1;
  }

  util::Timer warm_timer;
  const auto warm = b.ex.open(fresh_key);  // new context: base reuse + derive
  const double warm_ms = warm_timer.seconds() * 1e3;
  if (!warm.ok()) {
    std::fprintf(stderr, "warm start failed: %s\n", warm.error_text().c_str());
    return 1;
  }

  const bool identical =
      !text_of(b.registry, seed_key).empty() &&
      text_of(b.registry, seed_key) == text_of(a.registry, seed_key) &&
      text_of(b.registry, fresh_key) == text_of(a.registry, seed_key);
  const double speedup = warm_ms > 0.0 ? pretrain_ms / warm_ms : 0.0;

  std::fprintf(stderr,
               "node B: exact-key pull %.2f ms, warm start %.2f ms vs %.1f ms pretrain "
               "(%.0fx), byte-identical: %s\n",
               pull_ms, warm_ms, pretrain_ms, speedup, identical ? "yes" : "NO");

  if (!json_path.empty()) {
    std::FILE* f = json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      std::fprintf(f,
                   "{\n"
                   "  \"epochs\": %zu,\n"
                   "  \"identical\": %s,\n"
                   "  \"exchange_pretrain_scratch_ms\": %.2f,\n"
                   "  \"exchange_pull_ms\": %.3f,\n"
                   "  \"exchange_warm_start_ms\": %.3f,\n"
                   "  \"exchange_warm_start_speedup\": %.1f\n"
                   "}\n",
                   epochs, identical ? "true" : "false", pretrain_ms, pull_ms, warm_ms,
                   speedup);
      if (f != stdout) {
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
      }
    }
  }

  // Warm start slower than pretraining would make the subsystem pointless.
  return (identical && warm_ms < pretrain_ms) ? 0 : 1;
}
