// Ablation of Bellamy's design choices (DESIGN.md §5), beyond the paper's
// own variants:
//
//   A1  joint reconstruction objective ON vs OFF during pre-training
//       (paper: "jointly minimize ... as well as the reconstruction error")
//   A2  raw-seconds target (paper) vs standardized target (library default)
//   A3  staged unfreeze (z first, f later) vs all-at-once fine-tuning
//
// Each ablation pre-trains on all-but-one context of SGD and fine-tunes on
// 3 runs of the held-out context; reported are the held-out MRE and the
// fine-tuning epochs, averaged over several held-out contexts.

#include <cstdio>

#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "util/rng.hpp"

using namespace bellamy;

namespace {

struct AblationResult {
  double mre = 0.0;
  double epochs = 0.0;
};

AblationResult run_setting(const data::Dataset& sgd, bool joint_recon, bool standardize,
                           bool staged_unfreeze, const bench::BenchOptions& opts) {
  const auto groups = sgd.contexts();
  const std::size_t held_out = opts.paper_scale ? 5 : 3;

  eval::ErrorAccumulator acc;
  double epoch_sum = 0.0;
  std::size_t fits = 0;
  util::Rng rng(opts.seed ^ 0xab1aULL);

  for (std::size_t gi = 0; gi < held_out && gi < groups.size(); ++gi) {
    const auto& target = groups[gi * groups.size() / held_out];
    data::Dataset corpus = sgd.exclude_context(target.key);
    if (!opts.paper_scale) corpus = corpus.sample(480, rng);

    core::BellamyConfig model_cfg;
    model_cfg.standardize_target = standardize;
    core::BellamyModel model(model_cfg, opts.seed + gi);

    core::PreTrainConfig pre;
    pre.epochs = opts.paper_scale ? 2500 : 300;
    pre.learning_rate = standardize ? 1e-2 : 5e-2;
    pre.reconstruction_weight = joint_recon ? 1.0 : 0.0;
    pre.seed = opts.seed + gi;
    core::pretrain(model, corpus.runs(), pre);

    core::FineTuneConfig fine;
    fine.max_epochs = opts.paper_scale ? 2500 : 500;
    fine.patience = opts.paper_scale ? 1000 : 250;
    if (!standardize) {
      fine.base_lr = 3e-3;
      fine.max_lr = 3e-2;
    }
    fine.unlock_f_immediately = !staged_unfreeze;

    std::vector<data::JobRun> few(target.runs.begin(), target.runs.begin() + 3);
    const auto result = core::finetune(model, few, fine);
    epoch_sum += static_cast<double>(result.epochs_run);
    ++fits;

    for (std::size_t i = 3; i < target.runs.size(); ++i) {
      acc.add(model.predict_one(target.runs[i]), target.runs[i].runtime_s);
    }
  }
  return {acc.stats().mre, fits ? epoch_sum / static_cast<double>(fits) : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Ablation: joint objective, target scaling, staged unfreeze (SGD)");

  const data::Dataset sgd = bench::make_c3o_dataset(opts).filter_algorithm("sgd");

  struct Setting {
    const char* name;
    bool joint_recon;
    bool standardize;
    bool staged;
  };
  const Setting settings[] = {
      {"paper (joint+raw+staged)", true, false, true},
      {"A1: no reconstruction loss", false, false, true},
      {"A2: standardized target", true, true, true},
      {"A3: unfreeze all at once", true, false, false},
  };

  std::printf("\nsetting\t\t\t\theld_out_mre\tmean_finetune_epochs\n");
  AblationResult baseline{};
  for (const auto& s : settings) {
    const auto r = run_setting(sgd, s.joint_recon, s.standardize, s.staged, opts);
    if (std::string(s.name).rfind("paper", 0) == 0) baseline = r;
    std::printf("%-32s\t%.3f\t\t%.0f\n", s.name, r.mre, r.epochs);
  }

  std::printf("\n[info] baseline (paper configuration) held-out MRE: %.3f\n", baseline.mre);
  std::printf("[info] ablations quantify each design choice's contribution; see\n");
  std::printf("       EXPERIMENTS.md for interpretation.\n");
  return 0;
}
