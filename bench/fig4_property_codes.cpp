// Figure 4 — auto-encoder codes of two SGD execution contexts.  The paper
// shows the M=4-dimensional codes of the three properties (node type, job
// parameters, dataset size) for two different SGD contexts to illustrate
// that the learned encodings separate contexts.
//
// We pre-train a Bellamy model on SGD traces, then print the code matrix for
// the two contexts from the paper ('m4.2xlarge'/25/19353 MB and
// 'r4.2xlarge'/100/14540 MB) and the pairwise code distances.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/bellamy_model.hpp"
#include "core/trainer.hpp"
#include "data/ground_truth.hpp"
#include "eval/report.hpp"
#include "util/rng.hpp"

using namespace bellamy;

namespace {

data::JobRun sgd_context(const char* node, const char* iters, std::uint64_t size_mb) {
  data::JobRun r;
  r.algorithm = "sgd";
  r.node_type = node;
  r.job_parameters = iters;
  r.dataset_size_mb = size_mb;
  r.data_characteristics = "features-100-dense";
  r.memory_mb = data::node_type_by_name(node).memory_mb;
  r.cpu_cores = data::node_type_by_name(node).cpu_cores;
  r.scale_out = 6;
  r.runtime_s = 0.0;
  return r;
}

void print_codes(const char* title, core::BellamyModel& model, const data::JobRun& run) {
  const auto batch = model.make_batch({run});
  const auto codes = model.forward(batch, /*training=*/false).stacked_codes();
  std::printf("\n%s\n", title);
  std::printf("property\tc1\tc2\tc3\tc4\n");
  const char* names[] = {"node_type", "job_parameters", "dataset_size_mb",
                         "data_characteristics"};
  for (std::size_t p = 0; p < 4; ++p) {
    std::printf("%s", names[p]);
    for (std::size_t j = 0; j < model.config().code_dim; ++j) {
      std::printf("\t%+.3f", codes(p, j));
    }
    std::printf("\n");
  }
}

double code_distance(core::BellamyModel& model, const data::JobRun& a, const data::JobRun& b) {
  const auto ca = model.forward(model.make_batch({a}), false).stacked_codes();
  const auto cb = model.forward(model.make_batch({b}), false).stacked_codes();
  double d2 = 0.0;
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t j = 0; j < model.config().code_dim; ++j) {
      const double d = ca(p, j) - cb(p, j);
      d2 += d * d;
    }
  }
  return std::sqrt(d2);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Figure 4: property encodings of two SGD contexts");

  const data::Dataset sgd = bench::make_c3o_dataset(opts).filter_algorithm("sgd");

  core::BellamyModel model(core::BellamyConfig{}, opts.seed);
  core::PreTrainConfig pre;
  pre.epochs = opts.paper_scale ? 2500 : 250;
  pre.seed = opts.seed;
  std::fprintf(stderr, "[bench] pre-training on %zu sgd runs (%zu epochs)...\n", sgd.size(),
               pre.epochs);
  util::Rng rng(opts.seed);
  const data::Dataset corpus = opts.paper_scale ? sgd : sgd.sample(480, rng);
  core::pretrain(model, corpus.runs(), pre);

  const data::JobRun ctx1 = sgd_context("m4.2xlarge", "25", 19353);
  const data::JobRun ctx2 = sgd_context("r4.2xlarge", "100", 14540);
  print_codes("Example SGD-Context 1 (m4.2xlarge, 25 iterations, 19353 MB)", model, ctx1);
  print_codes("Example SGD-Context 2 (r4.2xlarge, 100 iterations, 14540 MB)", model, ctx2);

  const double cross = code_distance(model, ctx1, ctx2);
  const double self = code_distance(model, ctx1, ctx1);
  std::printf("\ncode distance (ctx1 vs ctx2): %.4f\n", cross);
  std::printf("code distance (ctx1 vs ctx1): %.4f\n", self);
  std::printf("\n[claim] codes distinguish different contexts (distance > 0): %s\n",
              cross > 1e-6 && self < 1e-12 ? "CONFIRMED" : "NOT CONFIRMED");
  return 0;
}
