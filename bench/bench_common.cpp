#include "bench_common.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>

#include "data/bell_generator.hpp"
#include "data/c3o_generator.hpp"
#include "parallel/thread_pool.hpp"
#include "util/string_utils.hpp"
#include "util/timer.hpp"

namespace bellamy::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--paper-scale") {
      opts.paper_scale = true;
    } else if (arg == "--no-cache") {
      opts.no_cache = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      opts.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      opts.cache_dir = arg.substr(12);
    } else if (arg.rfind("--threads=", 0) == 0) {
      opts.eval_threads = std::stoull(arg.substr(10));
      if (opts.eval_threads == 0) opts.eval_threads = 1;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--paper-scale] [--no-cache] [--seed=N] [--cache-dir=DIR] "
          "[--threads=N]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

data::Dataset make_c3o_dataset(const BenchOptions& opts) {
  data::C3OGeneratorConfig cfg;
  cfg.seed = opts.seed;
  return data::C3OGenerator(cfg).generate();
}

data::Dataset make_bell_dataset(const BenchOptions& opts) {
  data::BellGeneratorConfig cfg;
  cfg.seed = opts.seed ^ 0xbe11ULL;
  return data::BellGenerator(cfg).generate();
}

eval::CrossContextConfig cross_context_config(const BenchOptions& opts) {
  eval::CrossContextConfig cfg;
  cfg.seed = opts.seed;
  cfg.eval_threads = opts.eval_threads;
  // Paper-faithful: the network predicts raw seconds (no target scaling).
  cfg.model_config.standardize_target = false;
  if (opts.paper_scale) {
    cfg.contexts_per_algorithm = 7;
    cfg.max_splits = 200;
    cfg.pretrain.epochs = 2500;
    cfg.finetune.max_epochs = 2500;
    cfg.finetune.patience = 1000;
    cfg.pretrain_sample_cap = 0;
  } else {
    // Quick mode trades epochs for learning rate so the reduced budget still
    // reaches the raw-seconds output scale.
    cfg.contexts_per_algorithm = 2;
    cfg.max_splits = 5;
    cfg.pretrain.epochs = 350;
    cfg.pretrain.learning_rate = 5e-2;
    cfg.pretrain_sample_cap = 600;
    cfg.finetune.max_epochs = 500;
    cfg.finetune.patience = 250;
    cfg.finetune.base_lr = 3e-3;
    cfg.finetune.max_lr = 3e-2;
  }
  return cfg;
}

eval::CrossEnvironmentConfig cross_environment_config(const BenchOptions& opts) {
  eval::CrossEnvironmentConfig cfg;
  cfg.seed = opts.seed ^ 0xc105edULL;
  cfg.eval_threads = opts.eval_threads;
  cfg.model_config.standardize_target = false;
  if (opts.paper_scale) {
    cfg.max_splits = 500;
    cfg.pretrain.epochs = 2500;
    cfg.finetune.max_epochs = 2500;
    cfg.finetune.patience = 1000;
  } else {
    cfg.max_splits = 5;
    cfg.pretrain.epochs = 300;
    cfg.pretrain.learning_rate = 5e-2;
    cfg.pretrain_sample_cap = 600;
    cfg.finetune.max_epochs = 500;
    cfg.finetune.patience = 250;
    cfg.finetune.base_lr = 3e-3;
    cfg.finetune.max_lr = 3e-2;
  }
  return cfg;
}

namespace {

std::string signature_of(const BenchOptions& opts, const char* kind) {
  return util::format("%s|paper=%d|seed=%llu|v4", kind, opts.paper_scale ? 1 : 0,
                      static_cast<unsigned long long>(opts.seed));
}

}  // namespace

void save_result(const std::string& path, const std::string& signature,
                 const eval::ExperimentResult& result) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream out(path);
  if (!out) return;  // cache failures are non-fatal
  out << "# " << signature << "\n";
  out << "evals\t" << result.evals.size() << "\n";
  for (const auto& r : result.evals) {
    out << r.algorithm << '\t' << r.model << '\t' << r.task << '\t' << r.context_key << '\t'
        << r.num_points << '\t' << util::format("%.17g", r.predicted) << '\t'
        << util::format("%.17g", r.actual) << '\n';
  }
  out << "fits\t" << result.fits.size() << "\n";
  for (const auto& f : result.fits) {
    out << f.algorithm << '\t' << f.model << '\t' << f.num_points << '\t'
        << util::format("%.17g", f.fit_seconds) << '\t' << f.epochs << '\n';
  }
}

bool load_result(const std::string& path, const std::string& signature,
                 eval::ExperimentResult& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != "# " + signature) return false;

  auto split_tabs = [](const std::string& s) { return util::split(s, '\t'); };
  try {
    if (!std::getline(in, line)) return false;
    auto head = split_tabs(line);
    if (head.size() != 2 || head[0] != "evals") return false;
    const std::size_t n_evals = std::stoul(head[1]);
    out.evals.clear();
    out.evals.reserve(n_evals);
    for (std::size_t i = 0; i < n_evals; ++i) {
      if (!std::getline(in, line)) return false;
      const auto f = split_tabs(line);
      if (f.size() != 7) return false;
      eval::EvalRecord r;
      r.algorithm = f[0];
      r.model = f[1];
      r.task = f[2];
      r.context_key = f[3];
      r.num_points = std::stoul(f[4]);
      r.predicted = util::parse_double(f[5]);
      r.actual = util::parse_double(f[6]);
      r.abs_error = std::abs(r.predicted - r.actual);
      r.rel_error = r.actual != 0.0 ? r.abs_error / std::abs(r.actual) : 0.0;
      out.evals.push_back(std::move(r));
    }
    if (!std::getline(in, line)) return false;
    head = split_tabs(line);
    if (head.size() != 2 || head[0] != "fits") return false;
    const std::size_t n_fits = std::stoul(head[1]);
    out.fits.clear();
    out.fits.reserve(n_fits);
    for (std::size_t i = 0; i < n_fits; ++i) {
      if (!std::getline(in, line)) return false;
      const auto f = split_tabs(line);
      if (f.size() != 5) return false;
      eval::FitRecord rec;
      rec.algorithm = f[0];
      rec.model = f[1];
      rec.num_points = std::stoul(f[2]);
      rec.fit_seconds = util::parse_double(f[3]);
      rec.epochs = std::stoul(f[4]);
      out.fits.push_back(std::move(rec));
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

eval::ExperimentResult cached_cross_context(const BenchOptions& opts) {
  const std::string sig = signature_of(opts, "cross-context");
  const std::string path = opts.cache_dir + "/cross_context.tsv";
  eval::ExperimentResult result;
  if (!opts.no_cache && load_result(path, sig, result)) {
    std::fprintf(stderr, "[bench] using cached cross-context run (%s)\n", path.c_str());
    return result;
  }
  std::fprintf(stderr, "[bench] running cross-context experiment (%s)...\n",
               opts.paper_scale ? "paper scale" : "quick scale");
  result = eval::run_cross_context(make_c3o_dataset(opts), cross_context_config(opts));
  save_result(path, sig, result);
  return result;
}

eval::ExperimentResult cached_cross_environment(const BenchOptions& opts) {
  const std::string sig = signature_of(opts, "cross-environment");
  const std::string path = opts.cache_dir + "/cross_environment.tsv";
  eval::ExperimentResult result;
  if (!opts.no_cache && load_result(path, sig, result)) {
    std::fprintf(stderr, "[bench] using cached cross-environment run (%s)\n", path.c_str());
    return result;
  }
  std::fprintf(stderr, "[bench] running cross-environment experiment (%s)...\n",
               opts.paper_scale ? "paper scale" : "quick scale");
  result = eval::run_cross_environment(make_c3o_dataset(opts), make_bell_dataset(opts),
                                       cross_environment_config(opts));
  save_result(path, sig, result);
  return result;
}

// ---------------------------------------------------------------------------
// Queue-contention microbench
// ---------------------------------------------------------------------------

namespace {

// Faithful copy of the pre-stealing ThreadPool (one shared std::queue, one
// mutex, one condition_variable, notify on every submit).  It exists ONLY as
// the comparison baseline for the contention grid: the work-stealing
// scheduler's win must be measured against the thing it replaced, not
// inferred.  Kept bench-local so the library carries exactly one scheduler.
class MutexQueuePool {
 public:
  explicit MutexQueuePool(std::size_t num_threads) {
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~MutexQueuePool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

// Drives one (pool, submitters) cell: every submitter fires
// tasks_per_submitter increments, the elapsed window covers first submit to
// fully drained.  Returns tasks/s; aborts on a lost/duplicated task.
template <typename Pool>
double contention_tasks_per_s(Pool& pool, std::size_t submitters,
                              std::size_t tasks_per_submitter) {
  std::atomic<std::uint64_t> executed{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(submitters);
  for (std::size_t s = 0; s < submitters; ++s) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < tasks_per_submitter; ++i) {
        pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  util::Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  pool.wait_idle();
  const double seconds = timer.seconds();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(submitters) * tasks_per_submitter;
  if (executed.load() != expected) {
    std::fprintf(stderr,
                 "pool_contention: exactly-once violated (%llu of %llu tasks ran)\n",
                 static_cast<unsigned long long>(executed.load()),
                 static_cast<unsigned long long>(expected));
    std::abort();
  }
  return static_cast<double>(expected) / std::max(seconds, 1e-12);
}

}  // namespace

std::vector<PoolContentionCell> pool_contention_grid(
    std::size_t workers, const std::vector<std::size_t>& submitter_counts,
    std::size_t tasks_per_submitter) {
  std::vector<PoolContentionCell> grid;
  grid.reserve(submitter_counts.size());
  for (const std::size_t submitters : submitter_counts) {
    PoolContentionCell cell;
    cell.submitters = submitters;
    cell.workers = workers;
    cell.tasks = submitters * tasks_per_submitter;
    {
      parallel::ThreadPool pool(workers);
      // Warm-up outside the timed window (spawns + first-touch).
      contention_tasks_per_s(pool, submitters, tasks_per_submitter / 10 + 1);
      cell.ws_tasks_per_s = contention_tasks_per_s(pool, submitters, tasks_per_submitter);
    }
    {
      MutexQueuePool pool(workers);
      contention_tasks_per_s(pool, submitters, tasks_per_submitter / 10 + 1);
      cell.mutex_tasks_per_s = contention_tasks_per_s(pool, submitters, tasks_per_submitter);
    }
    grid.push_back(cell);
  }
  return grid;
}

void write_pool_contention_json(std::FILE* f, const std::vector<PoolContentionCell>& grid) {
  std::fprintf(f, "\"pool_contention\": {");
  if (!grid.empty()) std::fprintf(f, "\"workers\": %zu,\n", grid.front().workers);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const PoolContentionCell& c = grid[i];
    std::fprintf(f,
                 "    \"submitters_%zu\": {\"ws_tasks_per_s\": %.0f, "
                 "\"mutex_tasks_per_s\": %.0f, \"contention_speedup\": %.2f}%s\n",
                 c.submitters, c.ws_tasks_per_s, c.mutex_tasks_per_s, c.speedup(),
                 i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(f, "  }");
}

}  // namespace bellamy::bench
