// Figure 6 — interpolation MAE per algorithm, aggregated across splits,
// contexts and numbers of training points, as a bar chart (rendered in
// ASCII).  Paper claim: all Bellamy variants are on par with or better than
// NNLS/Bell, pre-trained variants are the most stable, and the differences
// are largest for algorithms with non-trivial scale-out behaviour.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "data/ground_truth.hpp"
#include "eval/report.hpp"

using namespace bellamy;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Figure 6: interpolation MAE per algorithm");

  const auto result = bench::cached_cross_context(opts);
  const auto overall = eval::aggregate_overall(result.evals, "interpolation");
  const auto algorithms = eval::distinct_algorithms(result.evals);
  const auto models = eval::distinct_models(result.evals);

  double max_mae = 0.0;
  for (const auto& [key, stats] : overall) max_mae = std::max(max_mae, stats.mae);

  std::printf("\nalgorithm\tmodel\tmae_s\tn\tbar\n");
  for (const auto& algo : algorithms) {
    for (const auto& model : models) {
      const auto it = overall.find({algo, model});
      if (it == overall.end()) continue;
      std::printf("%s\t%-20s\t%7.1f\t%zu\t%s\n", algo.c_str(), model.c_str(), it->second.mae,
                  it->second.count, eval::ascii_bar(it->second.mae, max_mae, 30).c_str());
    }
    std::printf("\n");
  }

  // Claim: the gap between the best pre-trained Bellamy and the best
  // baseline is larger for non-trivial algorithms than for trivial ones.
  auto mae_of = [&](const std::string& algo, const std::string& model) {
    const auto it = overall.find({algo, model});
    return it == overall.end() ? -1.0 : it->second.mae;
  };
  int bellamy_competitive = 0;
  int total = 0;
  for (const auto& algo : algorithms) {
    const double nnls = mae_of(algo, "NNLS");
    const double full = mae_of(algo, "Bellamy (full)");
    const double filtered = mae_of(algo, "Bellamy (filtered)");
    if (nnls < 0.0 || (full < 0.0 && filtered < 0.0)) continue;
    ++total;
    const double best_pre =
        full < 0.0 ? filtered : (filtered < 0.0 ? full : std::min(full, filtered));
    // "On par": within 25 % or within 3 s absolute — differences below that
    // are inside the repetition-noise floor of the synthetic traces.
    if (best_pre <= nnls * 1.25 + 3.0) ++bellamy_competitive;
  }
  std::printf("[claim] pre-trained Bellamy on par with or better than NNLS: %d/%d algorithms\n",
              bellamy_competitive, total);
  return 0;
}
