// Figure 8 + §IV-C.2 timing — Ad Hoc Cross-Environment Learning: pre-train
// on the C3O-like public-cloud traces, reuse on the Bell-like private
// cluster, comparing NNLS, Bell, Bellamy (local) and the four reuse
// strategies (partial-/full-unfreeze, partial-/full-reset).
//
// Expected shape (paper): for the easy algorithms all models are comparable;
// for the hardest one the local and full-reset variants are the most stable,
// weight-reusing variants can struggle — but every pre-trained variant fits
// noticeably faster than training locally from scratch.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace bellamy;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Figure 8: cross-environment interpolation MAE (C3O -> Bell)");

  const auto result = bench::cached_cross_environment(opts);
  const auto overall = eval::aggregate_overall(result.evals, "interpolation");
  const auto algorithms = eval::distinct_algorithms(result.evals);
  const auto models = eval::distinct_models(result.evals);

  double max_mae = 0.0;
  for (const auto& [key, stats] : overall) max_mae = std::max(max_mae, stats.mae);

  std::printf("\nalgorithm\tmodel\tmae_s\tmre\tn\tbar\n");
  for (const auto& algo : algorithms) {
    for (const auto& model : models) {
      const auto it = overall.find({algo, model});
      if (it == overall.end()) continue;
      std::printf("%s\t%-26s\t%7.1f\t%.3f\t%zu\t%s\n", algo.c_str(), model.c_str(),
                  it->second.mae, it->second.mre, it->second.count,
                  eval::ascii_bar(it->second.mae, max_mae, 25).c_str());
    }
    std::printf("\n");
  }

  // §IV-C.2 training time table: local vs pre-trained reuse variants.
  const auto means = eval::mean_fit_seconds(result.fits);
  std::printf("# mean time to fit (paper reference: local 9.4 s, reuse variants 2.8-3.8 s)\n");
  std::printf("model\tmean_fit_seconds\n");
  for (const auto& model : models) {
    const auto it = means.find(model);
    if (it != means.end() && model.rfind("Bellamy", 0) == 0) {
      std::printf("%-26s\t%.4f\n", model.c_str(), it->second);
    }
  }

  double reuse_time = 0.0;
  int reuse_n = 0;
  for (const auto& name :
       {"Bellamy (partial-unfreeze)", "Bellamy (full-unfreeze)", "Bellamy (partial-reset)",
        "Bellamy (full-reset)"}) {
    const auto it = means.find(name);
    if (it != means.end()) {
      reuse_time += it->second;
      ++reuse_n;
    }
  }
  const bool timing_ok = reuse_n > 0 && means.count("Bellamy (local)") &&
                         reuse_time / reuse_n < means.at("Bellamy (local)");
  std::printf("\n[claim] reuse variants fit faster than local on the new environment: %s\n",
              timing_ok ? "CONFIRMED" : "NOT CONFIRMED");

  // Stability claim: local and full-reset should be among the best Bellamy
  // variants on the hardest algorithm (largest spread across variants).
  std::string hardest;
  double best_spread = -1.0;
  for (const auto& algo : algorithms) {
    double lo = 1e300;
    double hi = -1.0;
    for (const auto& model : models) {
      if (model.rfind("Bellamy", 0) != 0) continue;
      const auto it = overall.find({algo, model});
      if (it == overall.end()) continue;
      lo = std::min(lo, it->second.mae);
      hi = std::max(hi, it->second.mae);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      hardest = algo;
    }
  }
  if (!hardest.empty()) {
    std::printf("[info] hardest algorithm by Bellamy-variant spread: %s (spread %.1f s)\n",
                hardest.c_str(), best_spread);
  }
  return 0;
}
