// Substrate micro-benchmarks (google-benchmark): the hot inner kernels the
// experiments are built from — gemm, layer forward/backward, property
// encoding, NNLS, and a full Bellamy train step.

#include <benchmark/benchmark.h>

#include "baselines/ernest.hpp"
#include "core/bellamy_model.hpp"
#include "encoding/property_encoder.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "opt/nnls.hpp"
#include "util/rng.hpp"

namespace {

using namespace bellamy;

void BM_MatmulSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const nn::Matrix a = nn::Matrix::randn(n, n, rng);
  const nn::Matrix b = nn::Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Matrix::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_MatmulSquare)->Arg(16)->Arg(64)->Arg(128);

void BM_MatmulBellamyShapes(benchmark::State& state) {
  // The dominant gemm of a pre-training step: (batch*(m+n) x 40) x (40 x 8).
  util::Rng rng(2);
  const nn::Matrix props = nn::Matrix::randn(64 * 7, 40, rng);
  const nn::Matrix weights = nn::Matrix::randn(8, 40, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Matrix::matmul_nt(props, weights));
  }
}
BENCHMARK(BM_MatmulBellamyShapes);

void BM_LinearForwardBackward(benchmark::State& state) {
  util::Rng rng(3);
  nn::Linear layer(40, 8, false, nn::Init::kHeNormal, rng);
  const nn::Matrix x = nn::Matrix::randn(static_cast<std::size_t>(state.range(0)), 40, rng);
  for (auto _ : state) {
    const nn::Matrix y = layer.forward(x);
    benchmark::DoNotOptimize(layer.backward(y));
    layer.zero_grad();
  }
}
BENCHMARK(BM_LinearForwardBackward)->Arg(8)->Arg(64)->Arg(448);

void BM_SeluForward(benchmark::State& state) {
  util::Rng rng(4);
  nn::Selu act;
  const nn::Matrix x = nn::Matrix::randn(64, 40, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(act.forward(x));
  }
}
BENCHMARK(BM_SeluForward);

void BM_HuberLoss(benchmark::State& state) {
  util::Rng rng(5);
  const nn::Matrix pred = nn::Matrix::randn(64, 1, rng);
  const nn::Matrix target = nn::Matrix::randn(64, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::huber_loss(pred, target, 1.0));
  }
}
BENCHMARK(BM_HuberLoss);

void BM_PropertyEncodeText(benchmark::State& state) {
  encoding::PropertyEncoder enc;
  const encoding::PropertyValue value{std::string("features-1000-sparse on m4.2xlarge")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(value));
  }
}
BENCHMARK(BM_PropertyEncodeText);

void BM_PropertyEncodeNumeric(benchmark::State& state) {
  encoding::PropertyEncoder enc;
  const encoding::PropertyValue value{std::uint64_t{19353}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(value));
  }
}
BENCHMARK(BM_PropertyEncodeNumeric);

void BM_NnlsErnestFit(benchmark::State& state) {
  // The baseline's whole fit: 6 points, 4 features.
  std::vector<data::JobRun> runs;
  for (int x = 2; x <= 12; x += 2) {
    data::JobRun r;
    r.scale_out = x;
    r.runtime_s = 20.0 + 500.0 / x + 3.0 * x;
    runs.push_back(r);
  }
  for (auto _ : state) {
    baselines::ErnestModel model;
    model.fit(runs);
    benchmark::DoNotOptimize(model.theta());
  }
}
BENCHMARK(BM_NnlsErnestFit);

void BM_BellamyMakeBatch(benchmark::State& state) {
  core::BellamyModel model(core::BellamyConfig{}, 6);
  std::vector<data::JobRun> runs;
  for (int x = 2; x <= 12; x += 2) {
    data::JobRun r;
    r.algorithm = "sgd";
    r.node_type = "m4.2xlarge";
    r.job_parameters = "25";
    r.dataset_size_mb = 19353;
    r.data_characteristics = "features-100-dense";
    r.memory_mb = 32768;
    r.cpu_cores = 8;
    r.scale_out = x;
    r.runtime_s = 100.0;
    runs.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.make_batch(runs));
  }
}
BENCHMARK(BM_BellamyMakeBatch);

void BM_BellamyTrainStep(benchmark::State& state) {
  core::BellamyModel model(core::BellamyConfig{}, 7);
  std::vector<data::JobRun> runs;
  const auto batch_size = static_cast<int>(state.range(0));
  for (int i = 0; i < batch_size; ++i) {
    data::JobRun r;
    r.algorithm = "sgd";
    r.node_type = "m4.2xlarge";
    r.job_parameters = "25";
    r.dataset_size_mb = 19353;
    r.data_characteristics = "features-100-dense";
    r.memory_mb = 32768;
    r.cpu_cores = 8;
    r.scale_out = 2 + (i % 6) * 2;
    r.runtime_s = 100.0 + i;
    runs.push_back(r);
  }
  model.fit_normalization(runs);
  const auto batch = model.make_batch(runs);
  for (auto _ : state) {
    for (nn::Parameter* p : model.parameters()) p->zero_grad();
    benchmark::DoNotOptimize(model.train_step(batch, 1.0));
  }
}
BENCHMARK(BM_BellamyTrainStep)->Arg(6)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
