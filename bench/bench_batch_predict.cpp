// Throughput of the prediction engine: per-sample loop vs one batched
// forward pass vs batched + threaded (per-thread model replicas), at
// B in {1, 16, 256, 4096}.  The workload is a resource-selection-style
// sweep: every query shares the context template and varies the scale-out,
// which is exactly the many-query pattern the paper's reuse setting produces.
//
//   ./build/bench/bench_batch_predict [--threads=N] [--json=PATH]
//
// Prints predictions/sec per mode and the batched-over-loop speedup, and
// verifies that all three modes produce identical predictions.  --json
// writes the per-B rates as a small JSON document (CI artifact).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/bellamy_model.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

using namespace bellamy;

namespace {

std::vector<data::JobRun> make_queries(const data::JobRun& context_template, std::size_t b) {
  std::vector<data::JobRun> queries;
  queries.reserve(b);
  for (std::size_t i = 0; i < b; ++i) {
    data::JobRun q = context_template;
    q.scale_out = static_cast<int>(1 + i % 60);  // sweep scale-outs 1..60
    queries.push_back(std::move(q));
  }
  return queries;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = static_cast<std::size_t>(std::atoi(argv[i] + 10));
      if (num_threads == 0) num_threads = 1;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--threads=N] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  // A quick pre-trained model; prediction cost does not depend on how long
  // it trained, so a short budget keeps bench start-up snappy.
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 71;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sgd", 6);
  core::BellamyModel model(core::BellamyConfig{}, /*seed=*/71);
  core::PreTrainConfig pre;
  pre.epochs = 60;
  core::pretrain(model, history.runs(), pre);
  model.set_predict_chunk_threshold(0);  // modes 1/2 must stay single-pass
  parallel::ThreadPool pool(num_threads);

  const data::JobRun context_template = history.runs().front();
  std::printf("bench_batch_predict: %zu thread(s)\n", num_threads);
  std::printf("%8s %16s %16s %16s %12s\n", "B", "loop pred/s", "batch pred/s",
              "batch+thr pred/s", "batch/loop");

  bool all_identical = true;
  double speedup_256 = 0.0;
  struct Row {
    std::size_t b;
    double loop_rate, batch_rate, threaded_rate, speedup;
  };
  std::vector<Row> rows;
  for (const std::size_t b : {std::size_t{1}, std::size_t{16}, std::size_t{256},
                              std::size_t{4096}}) {
    const auto queries = make_queries(context_template, b);
    // Aim for a comparable number of total predictions per mode so small
    // batches still get stable timings.
    const std::size_t reps = std::max<std::size_t>(1, 4096 / b);

    // Mode 1: per-sample loop (the pre-batching engine).
    std::vector<double> loop_preds(b);
    util::Timer loop_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < b; ++i) loop_preds[i] = model.predict_one(queries[i]);
    }
    const double loop_s = loop_timer.seconds();

    // Mode 2: one stacked forward pass.
    std::vector<double> batch_preds;
    util::Timer batch_timer;
    for (std::size_t r = 0; r < reps; ++r) batch_preds = model.predict_batch(queries);
    const double batch_s = batch_timer.seconds();

    // Mode 3: batched + chunked across the pool (per-chunk model replicas
    // rebuilt from the checkpoint inside predict_batch_chunked — a model
    // instance must never be shared across threads).
    std::vector<double> threaded_preds;
    util::Timer threaded_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      threaded_preds = model.predict_batch_chunked(queries, &pool, num_threads);
    }
    const double threaded_s = threaded_timer.seconds();

    const double total = static_cast<double>(b * reps);
    const double loop_rate = total / std::max(loop_s, 1e-12);
    const double batch_rate = total / std::max(batch_s, 1e-12);
    const double threaded_rate = total / std::max(threaded_s, 1e-12);
    const double speedup = batch_rate / std::max(loop_rate, 1e-12);
    if (b == 256) speedup_256 = speedup;

    const double diff_batch = max_abs_diff(loop_preds, batch_preds);
    const double diff_threaded = max_abs_diff(loop_preds, threaded_preds);
    if (diff_batch > 1e-9 || diff_threaded > 1e-9) {
      all_identical = false;
      std::fprintf(stderr, "B=%zu: PREDICTION MISMATCH (batch %.3e, threaded %.3e)\n", b,
                   diff_batch, diff_threaded);
    }
    std::printf("%8zu %16.0f %16.0f %16.0f %11.2fx\n", b, loop_rate, batch_rate,
                threaded_rate, speedup);
    rows.push_back({b, loop_rate, batch_rate, threaded_rate, speedup});
  }

  std::printf("predictions identical across modes: %s\n", all_identical ? "yes" : "NO");
  std::printf("batched speedup at B=256: %.2fx (acceptance floor: 5x)\n", speedup_256);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"threads\": %zu,\n  \"identical\": %s,\n  \"batches\": [\n",
                   num_threads, all_identical ? "true" : "false");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::fprintf(f,
                     "    {\"b\": %zu, \"loop_per_s\": %.0f, \"batch_per_s\": %.0f, "
                     "\"chunked_per_s\": %.0f, \"speedup\": %.2f}%s\n",
                     r.b, r.loop_rate, r.batch_rate, r.threaded_rate, r.speedup,
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  if (!all_identical) return 1;
  return 0;
}
