// Throughput of the prediction engine: per-sample loop vs one batched
// forward pass vs batched + threaded (replica-pool chunking), at
// B in {1, 16, 256, 4096}.  The workload is a resource-selection-style
// sweep: every query shares the context template and varies the scale-out,
// which is exactly the many-query pattern the paper's reuse setting produces.
//
//   ./build/bench/bench_batch_predict [--threads=N] [--json=PATH|-]
//
// Reports predictions/sec per mode, the batched-over-loop speedup, and the
// replica-pool steady state (chunked predictions with cached replicas vs
// rebuilding them per call), and verifies that every mode produces identical
// predictions.  ALL human-readable progress goes to stderr; --json writes
// the measurements as a JSON document to the given path ("-" = stdout), so
// the artifact is machine-parseable even when both streams land in one log.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/bellamy_model.hpp"
#include "core/replica_pool.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

using namespace bellamy;

namespace {

std::vector<data::JobRun> make_queries(const data::JobRun& context_template, std::size_t b) {
  std::vector<data::JobRun> queries;
  queries.reserve(b);
  for (std::size_t i = 0; i < b; ++i) {
    data::JobRun q = context_template;
    q.scale_out = static_cast<int>(1 + i % 60);  // sweep scale-outs 1..60
    queries.push_back(std::move(q));
  }
  return queries;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = static_cast<std::size_t>(std::atoi(argv[i] + 10));
      if (num_threads == 0) num_threads = 1;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--threads=N] [--json=PATH|-]\n", argv[0]);
      return 2;
    }
  }

  // A quick pre-trained model; prediction cost does not depend on how long
  // it trained, so a short budget keeps bench start-up snappy.
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 71;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sgd", 6);
  core::BellamyModel model(core::BellamyConfig{}, /*seed=*/71);
  core::PreTrainConfig pre;
  pre.epochs = 60;
  core::pretrain(model, history.runs(), pre);
  model.set_predict_chunk_threshold(0);  // modes 1/2 must stay single-pass
  parallel::ThreadPool pool(num_threads);

  const data::JobRun context_template = history.runs().front();
  std::fprintf(stderr, "bench_batch_predict: %zu thread(s)\n", num_threads);
  std::fprintf(stderr, "%8s %16s %16s %16s %16s %12s\n", "B", "loop pred/s",
               "batch pred/s", "chunk cold p/s", "chunk warm p/s", "batch/loop");

  bool all_identical = true;
  double speedup_256 = 0.0;
  struct Row {
    std::size_t b;
    double loop_rate, batch_rate, cold_rate, warm_rate, speedup;
    std::uint64_t hits, misses, invalidations;  ///< pool counter deltas for this B
  };
  std::vector<Row> rows;
  for (const std::size_t b : {std::size_t{1}, std::size_t{16}, std::size_t{256},
                              std::size_t{4096}}) {
    const auto queries = make_queries(context_template, b);
    // Aim for a comparable number of total predictions per mode so small
    // batches still get stable timings.
    const std::size_t reps = std::max<std::size_t>(1, 4096 / b);

    // Mode 1: per-sample loop (the pre-batching engine).
    std::vector<double> loop_preds(b);
    util::Timer loop_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < b; ++i) loop_preds[i] = model.predict_one(queries[i]);
    }
    const double loop_s = loop_timer.seconds();

    // Mode 2: one stacked forward pass.
    std::vector<double> batch_preds;
    util::Timer batch_timer;
    for (std::size_t r = 0; r < reps; ++r) batch_preds = model.predict_batch(queries);
    const double batch_s = batch_timer.seconds();

    // Counter snapshot so each row reports THIS batch size's pool activity.
    const core::ReplicaPool& pool_stats = model.replica_pool();
    const std::uint64_t hits0 = pool_stats.hits();
    const std::uint64_t misses0 = pool_stats.misses();
    const std::uint64_t inval0 = pool_stats.invalidations();

    // Mode 3 cold: chunked across the pool with the replica pool invalidated
    // before every call — each call re-deserializes its replicas, which is
    // exactly the pre-pool behaviour.
    std::vector<double> cold_preds;
    util::Timer cold_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      model.replica_pool().invalidate();
      cold_preds = model.predict_batch_chunked(queries, &pool, num_threads);
    }
    const double cold_s = cold_timer.seconds();

    // Mode 4 warm: steady-state serving — one priming call builds the
    // replicas, the timed calls check them out of the pool.
    std::vector<double> warm_preds = model.predict_batch_chunked(queries, &pool, num_threads);
    util::Timer warm_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      warm_preds = model.predict_batch_chunked(queries, &pool, num_threads);
    }
    const double warm_s = warm_timer.seconds();

    const double total = static_cast<double>(b * reps);
    const double loop_rate = total / std::max(loop_s, 1e-12);
    const double batch_rate = total / std::max(batch_s, 1e-12);
    const double cold_rate = total / std::max(cold_s, 1e-12);
    const double warm_rate = total / std::max(warm_s, 1e-12);
    const double speedup = batch_rate / std::max(loop_rate, 1e-12);
    if (b == 256) speedup_256 = speedup;

    const double diff_batch = max_abs_diff(loop_preds, batch_preds);
    const double diff_cold = max_abs_diff(loop_preds, cold_preds);
    const double diff_warm = max_abs_diff(loop_preds, warm_preds);
    if (diff_batch > 1e-9 || diff_cold > 1e-9 || diff_warm > 1e-9) {
      all_identical = false;
      std::fprintf(stderr,
                   "B=%zu: PREDICTION MISMATCH (batch %.3e, cold %.3e, warm %.3e)\n", b,
                   diff_batch, diff_cold, diff_warm);
    }
    std::fprintf(stderr, "%8zu %16.0f %16.0f %16.0f %16.0f %11.2fx\n", b, loop_rate,
                 batch_rate, cold_rate, warm_rate, speedup);
    rows.push_back({b, loop_rate, batch_rate, cold_rate, warm_rate, speedup,
                    pool_stats.hits() - hits0, pool_stats.misses() - misses0,
                    pool_stats.invalidations() - inval0});
  }

  std::fprintf(stderr, "predictions identical across modes: %s\n",
               all_identical ? "yes" : "NO");
  std::fprintf(stderr, "batched speedup at B=256: %.2fx (acceptance floor: 5x)\n",
               speedup_256);
  const Row& last = rows.back();
  const double pool_speedup = last.warm_rate / std::max(last.cold_rate, 1e-12);
  std::fprintf(stderr,
               "replica pool at B=%zu: warm/cold %.2fx (hits %llu, misses %llu, "
               "invalidations %llu)\n",
               last.b, pool_speedup, static_cast<unsigned long long>(last.hits),
               static_cast<unsigned long long>(last.misses),
               static_cast<unsigned long long>(last.invalidations));

  if (!json_path.empty()) {
    std::FILE* f = json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"threads\": %zu,\n  \"identical\": %s,\n  \"batches\": [\n",
                   num_threads, all_identical ? "true" : "false");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::fprintf(f,
                     "    {\"b\": %zu, \"loop_per_s\": %.0f, \"batch_per_s\": %.0f, "
                     "\"chunked_cold_per_s\": %.0f, \"chunked_per_s\": %.0f, "
                     "\"speedup\": %.2f}%s\n",
                     r.b, r.loop_rate, r.batch_rate, r.cold_rate, r.warm_rate, r.speedup,
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"replica_pool_warm_over_cold\": %.2f\n}\n", pool_speedup);
      if (f != stdout) {
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
      }
    }
  }
  if (!all_identical) return 1;
  return 0;
}
