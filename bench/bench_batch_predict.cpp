// Throughput of the prediction engine: per-sample loop vs one batched
// forward pass vs batched + threaded (per-thread model replicas), at
// B in {1, 16, 256, 4096}.  The workload is a resource-selection-style
// sweep: every query shares the context template and varies the scale-out,
// which is exactly the many-query pattern the paper's reuse setting produces.
//
//   ./build/bench/bench_batch_predict [--threads=N]
//
// Prints predictions/sec per mode and the batched-over-loop speedup, and
// verifies that all three modes produce identical predictions.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/bellamy_model.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "nn/serialize.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

using namespace bellamy;

namespace {

std::vector<data::JobRun> make_queries(const data::JobRun& context_template, std::size_t b) {
  std::vector<data::JobRun> queries;
  queries.reserve(b);
  for (std::size_t i = 0; i < b; ++i) {
    data::JobRun q = context_template;
    q.scale_out = static_cast<int>(1 + i % 60);  // sweep scale-outs 1..60
    queries.push_back(std::move(q));
  }
  return queries;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = static_cast<std::size_t>(std::atoi(argv[i] + 10));
      if (num_threads == 0) num_threads = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--threads=N]\n", argv[0]);
      return 2;
    }
  }

  // A quick pre-trained model; prediction cost does not depend on how long
  // it trained, so a short budget keeps bench start-up snappy.
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 71;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sgd", 6);
  core::BellamyModel model(core::BellamyConfig{}, /*seed=*/71);
  core::PreTrainConfig pre;
  pre.epochs = 60;
  core::pretrain(model, history.runs(), pre);
  const nn::Checkpoint ckpt = model.to_checkpoint();

  // Per-thread replicas: one forward pass caches activations inside the
  // network modules, so a model instance must never be shared across
  // threads — replicate from the checkpoint instead.
  std::vector<core::BellamyModel> replicas;
  replicas.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    replicas.push_back(core::BellamyModel::from_checkpoint(ckpt));
  }
  parallel::ThreadPool pool(num_threads);

  const data::JobRun context_template = history.runs().front();
  std::printf("bench_batch_predict: %zu thread(s)\n", num_threads);
  std::printf("%8s %16s %16s %16s %12s\n", "B", "loop pred/s", "batch pred/s",
              "batch+thr pred/s", "batch/loop");

  bool all_identical = true;
  double speedup_256 = 0.0;
  for (const std::size_t b : {std::size_t{1}, std::size_t{16}, std::size_t{256},
                              std::size_t{4096}}) {
    const auto queries = make_queries(context_template, b);
    // Aim for a comparable number of total predictions per mode so small
    // batches still get stable timings.
    const std::size_t reps = std::max<std::size_t>(1, 4096 / b);

    // Mode 1: per-sample loop (the pre-batching engine).
    std::vector<double> loop_preds(b);
    util::Timer loop_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < b; ++i) loop_preds[i] = model.predict_one(queries[i]);
    }
    const double loop_s = loop_timer.seconds();

    // Mode 2: one stacked forward pass.
    std::vector<double> batch_preds;
    util::Timer batch_timer;
    for (std::size_t r = 0; r < reps; ++r) batch_preds = model.predict_batch(queries);
    const double batch_s = batch_timer.seconds();

    // Mode 3: batched + threaded over contiguous chunks, replica per thread.
    std::vector<double> threaded_preds(b);
    const std::size_t chunk = (b + num_threads - 1) / num_threads;
    util::Timer threaded_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      parallel::parallel_for(
          num_threads,
          [&](std::size_t t) {
            const std::size_t begin = t * chunk;
            if (begin >= b) return;
            const std::size_t end = std::min(b, begin + chunk);
            const std::vector<data::JobRun> slice(queries.begin() + begin,
                                                  queries.begin() + end);
            const auto preds = replicas[t].predict_batch(slice);
            for (std::size_t i = 0; i < preds.size(); ++i) threaded_preds[begin + i] = preds[i];
          },
          &pool);
    }
    const double threaded_s = threaded_timer.seconds();

    const double total = static_cast<double>(b * reps);
    const double loop_rate = total / std::max(loop_s, 1e-12);
    const double batch_rate = total / std::max(batch_s, 1e-12);
    const double threaded_rate = total / std::max(threaded_s, 1e-12);
    const double speedup = batch_rate / std::max(loop_rate, 1e-12);
    if (b == 256) speedup_256 = speedup;

    const double diff_batch = max_abs_diff(loop_preds, batch_preds);
    const double diff_threaded = max_abs_diff(loop_preds, threaded_preds);
    if (diff_batch > 1e-9 || diff_threaded > 1e-9) {
      all_identical = false;
      std::fprintf(stderr, "B=%zu: PREDICTION MISMATCH (batch %.3e, threaded %.3e)\n", b,
                   diff_batch, diff_threaded);
    }
    std::printf("%8zu %16.0f %16.0f %16.0f %11.2fx\n", b, loop_rate, batch_rate,
                threaded_rate, speedup);
  }

  std::printf("predictions identical across modes: %s\n", all_identical ? "yes" : "NO");
  std::printf("batched speedup at B=256: %.2fx (acceptance floor: 5x)\n", speedup_256);
  if (!all_identical) return 1;
  return 0;
}
