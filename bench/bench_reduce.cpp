// Refit economics of the training-data reduction policies (ISSUE PR 9).
//
//   ./build/bench/bench_reduce [--contexts=N] [--repetitions=N] [--epochs=N]
//                              [--budgets=a,b,c] [--seed=N] [--json=PATH]
//
// Runs eval::run_reduction_sweep over synthetic C3O-like contexts: every
// (policy, budget) cell refits the same pre-trained base model on a reduced
// history and is scored on a held-out slice, against a full-history
// reference refit.  The headline is the cheapest cell whose held-out MAE
// stays within 5 % of the full refit.
//
// Acceptance floor (exit 1 when missed): some cell reaches >= 3x refit-time
// reduction while keeping MAE within 5 % of the full-history refit.
//
// --json writes the grid for CI (scripts/bench-compare.py gates the *_ms and
// *speedup* keys against bench/baselines/BENCH_reduce.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/c3o_generator.hpp"
#include "eval/reduction_sweep.hpp"

using namespace bellamy;

namespace {

struct Options {
  std::size_t contexts = 4;       ///< evaluation contexts in the sweep
  std::size_t extra_contexts = 2; ///< additional contexts only pre-trained on
  std::size_t repetitions = 20;   ///< C3O repetitions per scale-out (history depth)
  std::size_t epochs = 150;       ///< fine-tune epochs, identical for every cell
  std::vector<std::size_t> budgets = {9, 18, 30};
  std::uint64_t seed = 2021;
  std::string json_path;
};

std::vector<std::size_t> parse_budgets(const char* text) {
  std::vector<std::size_t> budgets;
  for (const char* p = text; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v <= 0) return {};
    budgets.push_back(static_cast<std::size_t>(v));
    if (*end == ',') {
      p = end + 1;
    } else if (*end == '\0') {
      p = end;
    } else {
      return {};
    }
  }
  return budgets;
}

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--contexts=", 11) == 0) {
      opts.contexts = static_cast<std::size_t>(std::max(1, std::atoi(argv[i] + 11)));
    } else if (std::strncmp(argv[i], "--repetitions=", 14) == 0) {
      opts.repetitions = static_cast<std::size_t>(std::max(1, std::atoi(argv[i] + 14)));
    } else if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      opts.epochs = static_cast<std::size_t>(std::max(1, std::atoi(argv[i] + 9)));
    } else if (std::strncmp(argv[i], "--budgets=", 10) == 0) {
      opts.budgets = parse_budgets(argv[i] + 10);
      if (opts.budgets.empty()) {
        std::fprintf(stderr, "bad --budgets list: %s\n", argv[i] + 10);
        std::exit(2);
      }
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opts.seed = static_cast<std::uint64_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      opts.json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--contexts=N] [--repetitions=N] [--epochs=N] "
                   "[--budgets=a,b,c] [--seed=N] [--json=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opts;
}

/// "coverage_b18"-style JSON/table key for one grid cell.
std::string cell_key(const eval::ReductionPoint& p) {
  std::string key = p.policy;
  std::replace(key.begin(), key.end(), '-', '_');
  key += "_b" + std::to_string(p.budget);
  return key;
}

void write_json(const std::string& path, const Options& opts,
                const eval::ReductionSweepResult& sweep,
                const eval::ReductionPoint* headline) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"contexts\": %zu, \"repetitions\": %zu, "
               "\"finetune_epochs\": %zu, \"seed\": %llu},\n",
               opts.contexts, opts.repetitions, opts.epochs,
               static_cast<unsigned long long>(opts.seed));
  std::fprintf(f,
               "  \"full\": {\"history_runs\": %zu, \"refit_ms\": %.2f, "
               "\"mae_seconds\": %.4f},\n",
               sweep.full.input_runs, sweep.full.refit_seconds * 1e3,
               sweep.full.mae_seconds);
  std::fprintf(f, "  \"grid\": {\n");
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const eval::ReductionPoint& p = sweep.points[i];
    std::fprintf(f,
                 "    \"%s\": {\"kept_runs\": %zu, \"refit_ms\": %.2f, "
                 "\"refit_speedup\": %.2f, \"mae_seconds\": %.4f, "
                 "\"mae_ratio\": %.4f, \"scaleout_coverage\": %.2f}%s\n",
                 cell_key(p).c_str(), p.kept_runs, p.refit_seconds * 1e3, p.refit_speedup,
                 p.mae_seconds, p.mae_ratio, p.scaleout_coverage,
                 i + 1 < sweep.points.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  if (headline != nullptr) {
    std::fprintf(f,
                 "  \"headline\": {\"policy\": \"%s\", \"budget\": %zu, "
                 "\"refit_speedup\": %.2f, \"mae_ratio\": %.4f}\n",
                 headline->policy.c_str(), headline->budget, headline->refit_speedup,
                 headline->mae_ratio);
  } else {
    std::fprintf(f, "  \"headline\": null\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);

  // History: contexts + extra_contexts C3O-like contexts; the extras only
  // feed pre-training so every evaluated context has a real foreign corpus.
  data::C3OGeneratorConfig gen;
  gen.seed = opts.seed;
  gen.repetitions = opts.repetitions;
  const data::Dataset c3o = data::C3OGenerator(gen).generate_algorithm(
      "sgd", opts.contexts + opts.extra_contexts);
  std::fprintf(stderr, "dataset: %zu runs across %zu contexts (%zu evaluated)\n",
               c3o.runs().size(), c3o.num_contexts(), opts.contexts);

  eval::ReductionSweepConfig cfg;
  cfg.contexts = opts.contexts;
  cfg.budgets = opts.budgets;
  cfg.seed = opts.seed;
  cfg.pretrain.epochs = 60;
  cfg.finetune.max_epochs = opts.epochs;
  cfg.finetune.mae_target_seconds = 0.0;  // same epoch count in every cell
  cfg.finetune.patience = opts.epochs;

  std::fprintf(stderr, "sweep: %zu policies x %zu budgets, %zu fine-tune epochs...\n",
               cfg.policies.size(), cfg.budgets.size(), opts.epochs);
  const eval::ReductionSweepResult sweep = eval::run_reduction_sweep(c3o, cfg);

  std::printf("full-history reference: %zu runs, refit %.1f ms, holdout MAE %.3f s\n\n",
              sweep.full.input_runs, sweep.full.refit_seconds * 1e3, sweep.full.mae_seconds);
  std::printf("%-16s %8s %8s %10s %9s %10s %9s %9s\n", "policy", "budget", "kept",
              "refit ms", "speedup", "MAE s", "MAE rat", "coverage");
  for (const eval::ReductionPoint& p : sweep.points) {
    std::printf("%-16s %8zu %8zu %10.1f %8.2fx %10.3f %9.3f %9.2f\n", p.policy.c_str(),
                p.budget, p.kept_runs, p.refit_seconds * 1e3, p.refit_speedup, p.mae_seconds,
                p.mae_ratio, p.scaleout_coverage);
  }

  // Headline: the fastest cell still within 5 % of the full refit's MAE.
  const eval::ReductionPoint* headline = nullptr;
  for (const eval::ReductionPoint& p : sweep.points) {
    if (p.mae_ratio > 1.05) continue;
    if (headline == nullptr || p.refit_speedup > headline->refit_speedup) headline = &p;
  }

  bool accepted = false;
  if (headline != nullptr) {
    accepted = headline->refit_speedup >= 3.0;
    std::printf("\nheadline: %s @ budget %zu -> %.2fx cheaper refit, MAE ratio %.3f\n",
                headline->policy.c_str(), headline->budget, headline->refit_speedup,
                headline->mae_ratio);
  } else {
    std::printf("\nheadline: NO cell stayed within 5 %% of the full-refit MAE\n");
  }
  std::printf("acceptance (>= 3x speedup at <= 5 %% MAE cost): %s\n",
              accepted ? "PASS" : "FAIL");

  if (!opts.json_path.empty()) write_json(opts.json_path, opts, sweep, headline);
  return accepted ? 0 : 1;
}
