// Table I — model configuration and training: reproduces the pre-training
// hyper-parameter search.  Samples 12 configurations from the paper's grid
// (dropout x learning rate x weight decay), pre-trains one model per
// configuration on the SGD corpus, and reports each trial's held-out
// validation MAE plus the selected configuration.

#include <cstdio>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "opt/hyperparam.hpp"
#include "util/rng.hpp"

using namespace bellamy;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  eval::print_banner("Table I: hyper-parameter search over the pre-training grid");

  const data::Dataset sgd = bench::make_c3o_dataset(opts).filter_algorithm("sgd");
  util::Rng rng(opts.seed);

  // Hold out two whole contexts for validation, train on the rest.
  const auto groups = sgd.contexts();
  data::Dataset train;
  data::Dataset valid;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    data::Dataset& dst = (i % 15 == 0) ? valid : train;
    for (const auto& r : groups[i].runs) dst.add(r);
  }
  const data::Dataset train_small =
      opts.paper_scale ? train : train.sample(360, rng);
  const std::size_t epochs = opts.paper_scale ? 2500 : 120;

  std::fprintf(stderr, "[bench] %zu train runs, %zu validation runs, %zu epochs/trial\n",
               train_small.size(), valid.size(), epochs);

  const opt::SearchSpace space;  // Table I grid: 3 x 3 x 3
  const auto objective = [&](const opt::TrialConfig& trial) {
    core::BellamyConfig model_cfg;
    model_cfg.standardize_target = false;  // paper-faithful raw-seconds mode
    core::BellamyModel model(model_cfg, opts.seed ^ 0x791a1ULL);
    core::PreTrainConfig pre;
    pre.epochs = epochs;
    pre.learning_rate = trial.learning_rate;
    pre.weight_decay = trial.weight_decay;
    pre.dropout = trial.dropout;
    pre.seed = opts.seed;
    core::pretrain(model, train_small.runs(), pre);
    eval::ErrorAccumulator acc;
    for (const auto& r : valid.runs()) acc.add(model.predict_one(r), r.runtime_s);
    return acc.stats().mae;
  };

  const auto outcome = opt::random_search(space, objective, 12, opts.seed);

  std::printf("\ntrial\tdropout\tlearning_rate\tweight_decay\tvalidation_mae_s\n");
  for (std::size_t i = 0; i < outcome.trials.size(); ++i) {
    const auto& t = outcome.trials[i];
    std::printf("%zu\t%.2f\t%.0e\t%.0e\t%.1f\n", i + 1, t.config.dropout,
                t.config.learning_rate, t.config.weight_decay, t.score);
  }
  std::printf("\nselected configuration: %s (validation MAE %.1f s)\n",
              outcome.best.config.to_string().c_str(), outcome.best.score);
  std::printf("paper search space: dropout {5%%,10%%,20%%}, lr {1e-1,1e-2,1e-3}, "
              "wd {1e-2,1e-3,1e-4}, 12 sampled configurations\n");

  const bool grid_respected = outcome.trials.size() == 12;
  std::printf("\n[claim] 12 distinct configurations sampled from the Table I grid: %s\n",
              grid_respected ? "CONFIRMED" : "NOT CONFIRMED");
  return 0;
}
