#pragma once
// Character n-gram extraction.  The paper extracts unigrams, bigrams and
// trigrams from the cleaned character sequence of each textual property
// (§IV-A).

#include <string>
#include <string_view>
#include <vector>

namespace bellamy::encoding {

/// All contiguous substrings of length n (empty result if text shorter than n).
std::vector<std::string> extract_ngrams(std::string_view text, std::size_t n);

/// Union of n-grams for every n in [min_n, max_n], in scan order.
std::vector<std::string> extract_ngram_range(std::string_view text, std::size_t min_n,
                                             std::size_t max_n);

}  // namespace bellamy::encoding
