#include "encoding/ngram.hpp"

#include <stdexcept>

namespace bellamy::encoding {

std::vector<std::string> extract_ngrams(std::string_view text, std::size_t n) {
  if (n == 0) throw std::invalid_argument("extract_ngrams: n must be >= 1");
  std::vector<std::string> grams;
  if (text.size() < n) return grams;
  grams.reserve(text.size() - n + 1);
  for (std::size_t i = 0; i + n <= text.size(); ++i) {
    grams.emplace_back(text.substr(i, n));
  }
  return grams;
}

std::vector<std::string> extract_ngram_range(std::string_view text, std::size_t min_n,
                                             std::size_t max_n) {
  if (min_n == 0 || min_n > max_n) {
    throw std::invalid_argument("extract_ngram_range: require 1 <= min_n <= max_n");
  }
  std::vector<std::string> grams;
  for (std::size_t n = min_n; n <= max_n; ++n) {
    auto g = extract_ngrams(text, n);
    grams.insert(grams.end(), std::make_move_iterator(g.begin()),
                 std::make_move_iterator(g.end()));
  }
  return grams;
}

}  // namespace bellamy::encoding
