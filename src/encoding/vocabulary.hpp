#pragma once
// Character vocabulary for textual properties (§IV-A): "a simple case
// insensitive character-vocabulary with alphanumeric characters and a handful
// of special symbols. Characters not present in the vocabulary are stripped
// away."

#include <array>
#include <string>
#include <string_view>

namespace bellamy::encoding {

class Vocabulary {
 public:
  /// Default vocabulary: [a-z0-9] plus '.', '-', '_', '/', ':', ' '.
  Vocabulary();
  /// Custom symbol set (alphanumerics are always included).
  explicit Vocabulary(std::string_view extra_symbols);

  bool contains(char c) const;

  /// Lower-case the input and drop characters outside the vocabulary.
  std::string clean(std::string_view text) const;

  /// Number of admissible characters.
  std::size_t size() const;

 private:
  std::array<bool, 256> allowed_{};
};

}  // namespace bellamy::encoding
