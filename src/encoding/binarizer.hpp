#pragma once
// Binary encoding of natural-number properties (§III-C, Eq. 4 "binarizer"
// branch): a value p ∈ N0 is written as its L-bit binary representation,
// which "saves the trouble of feature-wise scaling" while uniquely encoding
// any number p <= 2^L - 1.

#include <cstdint>
#include <vector>

namespace bellamy::encoding {

class Binarizer {
 public:
  explicit Binarizer(std::size_t num_bits = 39);

  /// Bits of `value`, most significant first. Throws std::out_of_range if the
  /// value does not fit into num_bits.
  std::vector<double> transform(std::uint64_t value) const;

  /// Inverse of transform (for tests / debugging).
  std::uint64_t inverse(const std::vector<double>& bits) const;

  /// Largest encodable value (2^num_bits - 1).
  std::uint64_t max_value() const;

  std::size_t num_bits() const { return num_bits_; }

 private:
  std::size_t num_bits_;
};

}  // namespace bellamy::encoding
