#pragma once
// Property vectorization (§III-C, Eq. 3):
//
//   p^(i)  ->  [lambda, q_1, ..., q_L]  in  R^N,   L = N - 1
//
// where q comes from the Binarizer when the property is a natural number and
// from the HashingVectorizer otherwise, and lambda is a binary prefix
// indicating the utilized method (1 = binarizer, 0 = hasher).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "encoding/binarizer.hpp"
#include "encoding/hashing_vectorizer.hpp"
#include "nn/matrix.hpp"

namespace bellamy::encoding {

/// A descriptive property of a job execution context.  Natural numbers are a
/// separate alternative because they take the binarizer path.
using PropertyValue = std::variant<std::uint64_t, std::string>;

/// True if the string is all digits (such strings take the binarizer path,
/// e.g. "25" max iterations, "19353" MB — see Fig. 4's examples).
bool looks_numeric(const std::string& s);

/// Memoization table for PropertyEncoder::encode_cached.  Batched prediction
/// stacks the property vectors of every query; queries frequently share a
/// context (resource-selection sweeps vary only the scale-out), so the same
/// property values recur row after row.  The cache is plain per-call-site
/// state — not thread-safe, share one per batch, not across threads.
class PropertyEncodeCache {
 public:
  std::size_t size() const { return by_key_.size(); }
  std::size_t hits() const { return hits_; }
  void clear() {
    by_key_.clear();
    hits_ = 0;
  }

 private:
  friend class PropertyEncoder;
  std::unordered_map<std::string, std::vector<double>> by_key_;
  std::size_t hits_ = 0;
};

class PropertyEncoder {
 public:
  struct Config {
    std::size_t vector_size = 40;  ///< N; the paper uses 40 (§IV-A)
    HashingVectorizer::Config hasher;  ///< num_features is overridden to N-1
  };

  PropertyEncoder() : PropertyEncoder(Config{}) {}
  explicit PropertyEncoder(Config config);

  /// Encode one property into a length-N vector.
  std::vector<double> encode(const PropertyValue& value) const;

  /// encode() with memoization; returns a reference owned by `cache` (valid
  /// until the cache is mutated or destroyed).
  const std::vector<double>& encode_cached(const PropertyValue& value,
                                           PropertyEncodeCache& cache) const;

  /// Encode a whole property list into a (#props x N) matrix, one row each.
  nn::Matrix encode_all(const std::vector<PropertyValue>& values) const;

  std::size_t vector_size() const { return config_.vector_size; }

  /// lambda prefix written for each path.
  static constexpr double kLambdaBinarizer = 1.0;
  static constexpr double kLambdaHasher = 0.0;

 private:
  Config config_;
  Binarizer binarizer_;
  HashingVectorizer hasher_;
};

}  // namespace bellamy::encoding
