#include "encoding/binarizer.hpp"

#include <stdexcept>
#include <string>

namespace bellamy::encoding {

Binarizer::Binarizer(std::size_t num_bits) : num_bits_(num_bits) {
  if (num_bits == 0 || num_bits > 63) {
    throw std::invalid_argument("Binarizer: num_bits must be in [1, 63]");
  }
}

std::uint64_t Binarizer::max_value() const { return (1ULL << num_bits_) - 1; }

std::vector<double> Binarizer::transform(std::uint64_t value) const {
  if (value > max_value()) {
    throw std::out_of_range("Binarizer: value " + std::to_string(value) +
                            " exceeds max encodable " + std::to_string(max_value()));
  }
  std::vector<double> bits(num_bits_, 0.0);
  for (std::size_t i = 0; i < num_bits_; ++i) {
    // Most significant bit first.
    const std::size_t shift = num_bits_ - 1 - i;
    bits[i] = static_cast<double>((value >> shift) & 1ULL);
  }
  return bits;
}

std::uint64_t Binarizer::inverse(const std::vector<double>& bits) const {
  if (bits.size() != num_bits_) {
    throw std::invalid_argument("Binarizer::inverse: expected " + std::to_string(num_bits_) +
                                " bits, got " + std::to_string(bits.size()));
  }
  std::uint64_t value = 0;
  for (double b : bits) {
    if (b != 0.0 && b != 1.0) {
      throw std::invalid_argument("Binarizer::inverse: non-binary entry");
    }
    value = (value << 1) | (b == 1.0 ? 1ULL : 0ULL);
  }
  return value;
}

}  // namespace bellamy::encoding
