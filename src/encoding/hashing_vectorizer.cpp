#include "encoding/hashing_vectorizer.hpp"

#include <cmath>
#include <stdexcept>

#include "encoding/ngram.hpp"

namespace bellamy::encoding {

HashingVectorizer::HashingVectorizer(Config config, Vocabulary vocab)
    : config_(config), vocab_(std::move(vocab)) {
  if (config_.num_features == 0) {
    throw std::invalid_argument("HashingVectorizer: num_features must be > 0");
  }
  if (config_.min_ngram == 0 || config_.min_ngram > config_.max_ngram) {
    throw std::invalid_argument("HashingVectorizer: bad ngram range");
  }
}

std::vector<double> HashingVectorizer::transform(std::string_view text) const {
  std::vector<double> out(config_.num_features, 0.0);
  const std::string cleaned = vocab_.clean(text);
  const auto grams = extract_ngram_range(cleaned, config_.min_ngram, config_.max_ngram);
  for (const auto& term : grams) {
    const std::uint64_t h = fnv1a64(term);
    const std::size_t idx = static_cast<std::size_t>(h % config_.num_features);
    if (config_.alternate_sign) {
      // Use an independent bit of the hash for the sign so that index and
      // sign are (near-)uncorrelated, as in sklearn's implementation.
      const double sign = ((h >> 63) & 1ULL) ? -1.0 : 1.0;
      out[idx] += sign;
    } else {
      out[idx] += 1.0;
    }
  }
  if (config_.l2_normalize) {
    double sq = 0.0;
    for (double v : out) sq += v * v;
    if (sq > 0.0) {
      const double inv = 1.0 / std::sqrt(sq);
      for (double& v : out) v *= inv;
    }
  }
  return out;
}

}  // namespace bellamy::encoding
