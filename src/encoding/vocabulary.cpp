#include "encoding/vocabulary.hpp"

#include <cctype>

namespace bellamy::encoding {

namespace {
constexpr std::string_view kDefaultSymbols = ".-_/: ";
}

Vocabulary::Vocabulary() : Vocabulary(kDefaultSymbols) {}

Vocabulary::Vocabulary(std::string_view extra_symbols) {
  for (char c = 'a'; c <= 'z'; ++c) allowed_[static_cast<unsigned char>(c)] = true;
  for (char c = '0'; c <= '9'; ++c) allowed_[static_cast<unsigned char>(c)] = true;
  for (char c : extra_symbols) allowed_[static_cast<unsigned char>(c)] = true;
}

bool Vocabulary::contains(char c) const {
  return allowed_[static_cast<unsigned char>(
      std::tolower(static_cast<unsigned char>(c)))];
}

std::string Vocabulary::clean(std::string_view text) const {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (allowed_[static_cast<unsigned char>(lower)]) out += lower;
  }
  return out;
}

std::size_t Vocabulary::size() const {
  std::size_t n = 0;
  for (bool b : allowed_) n += b ? 1 : 0;
  return n;
}

}  // namespace bellamy::encoding
