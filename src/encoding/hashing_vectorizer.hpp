#pragma once
// Feature hashing for textual properties (§III-C, Eq. 4 "hasher" branch).
//
// Mirrors sklearn's HashingVectorizer(analyzer='char', ngram_range=(1,3)) as
// used by the reference implementation: clean the text against the
// vocabulary, extract 1/2/3-grams, hash each term to a fixed-size bucket,
// accumulate counts, then project onto the euclidean unit sphere.
//
// Two hashing modes are provided: unsigned counts (q_j = |t_s|, the paper's
// Eq. text) and sklearn's default alternate-sign mode which cancels hash
// collisions in expectation.

#include <cstdint>
#include <string_view>
#include <vector>

#include "encoding/vocabulary.hpp"
#include "util/hash.hpp"

namespace bellamy::encoding {

/// The stable term->bucket hash (64-bit FNV-1a from util).
using util::fnv1a64;

class HashingVectorizer {
 public:
  struct Config {
    std::size_t num_features = 39;  ///< output dimensionality L
    std::size_t min_ngram = 1;
    std::size_t max_ngram = 3;
    bool alternate_sign = false;    ///< sklearn default is true; paper text implies counts
    bool l2_normalize = true;       ///< project onto the unit sphere (Eq. text)
  };

  HashingVectorizer() : HashingVectorizer(Config{}) {}
  explicit HashingVectorizer(Config config, Vocabulary vocab = Vocabulary());

  /// Encode one textual property into an L-dimensional vector.
  std::vector<double> transform(std::string_view text) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  Vocabulary vocab_;
};

}  // namespace bellamy::encoding
