#include "encoding/property_encoder.hpp"

#include <cctype>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace bellamy::encoding {

bool looks_numeric(const std::string& s) { return util::is_unsigned_integer(s); }

namespace {
HashingVectorizer::Config with_features(HashingVectorizer::Config cfg, std::size_t n) {
  cfg.num_features = n;
  return cfg;
}
}  // namespace

PropertyEncoder::PropertyEncoder(Config config)
    : config_(config),
      binarizer_(config.vector_size - 1),
      hasher_(with_features(config.hasher, config.vector_size - 1)) {
  if (config.vector_size < 2) {
    throw std::invalid_argument("PropertyEncoder: vector_size must be >= 2");
  }
}

std::vector<double> PropertyEncoder::encode(const PropertyValue& value) const {
  std::vector<double> out;
  out.reserve(config_.vector_size);
  if (std::holds_alternative<std::uint64_t>(value)) {
    out.push_back(kLambdaBinarizer);
    const auto bits = binarizer_.transform(std::get<std::uint64_t>(value));
    out.insert(out.end(), bits.begin(), bits.end());
    return out;
  }
  const std::string& text = std::get<std::string>(value);
  if (looks_numeric(text)) {
    // Numeric-looking strings are parsed and binarized, so "25" and 25 encode
    // identically regardless of how the trace recorded them.
    std::uint64_t parsed = 0;
    try {
      parsed = static_cast<std::uint64_t>(util::parse_int(text));
      if (parsed <= binarizer_.max_value()) {
        out.push_back(kLambdaBinarizer);
        const auto bits = binarizer_.transform(parsed);
        out.insert(out.end(), bits.begin(), bits.end());
        return out;
      }
    } catch (const std::exception&) {
      // fall through to hashing
    }
  }
  out.push_back(kLambdaHasher);
  const auto hashed = hasher_.transform(text);
  out.insert(out.end(), hashed.begin(), hashed.end());
  return out;
}

const std::vector<double>& PropertyEncoder::encode_cached(const PropertyValue& value,
                                                          PropertyEncodeCache& cache) const {
  // The '#'/'$' prefix keeps the two variant alternatives from colliding
  // ("25" as text vs 25 as number — they happen to encode identically, but
  // the cache should not rely on that).
  std::string key;
  if (std::holds_alternative<std::uint64_t>(value)) {
    key = '#' + std::to_string(std::get<std::uint64_t>(value));
  } else {
    key = '$' + std::get<std::string>(value);
  }
  auto it = cache.by_key_.find(key);
  if (it != cache.by_key_.end()) {
    ++cache.hits_;
    return it->second;
  }
  return cache.by_key_.emplace(std::move(key), encode(value)).first->second;
}

nn::Matrix PropertyEncoder::encode_all(const std::vector<PropertyValue>& values) const {
  nn::Matrix m(values.size(), config_.vector_size);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto v = encode(values[i]);
    for (std::size_t j = 0; j < v.size(); ++j) m(i, j) = v[j];
  }
  return m;
}

}  // namespace bellamy::encoding
