#pragma once
// Dense linear least squares via Householder QR: minimize ||A x - b||_2.
// Used by the NNLS solver's passive-set subproblems and directly by tests.

#include <vector>

#include "nn/matrix.hpp"

namespace bellamy::opt {

struct LeastSquaresResult {
  std::vector<double> x;
  double residual_norm = 0.0;  ///< ||A x - b||_2
};

/// A is (m x n) with m >= n and full column rank (rank deficiency raises
/// std::runtime_error); b has m entries.
LeastSquaresResult solve_least_squares(const nn::Matrix& a, std::vector<double> b);

}  // namespace bellamy::opt
