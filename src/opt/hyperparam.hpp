#pragma once
// Hyper-parameter search over the Table I grid.
//
// The paper samples 12 configurations from
//   dropout      in {0.05, 0.10, 0.20}
//   learning rate in {1e-1, 1e-2, 1e-3}
//   weight decay in {1e-2, 1e-3, 1e-4}
// using Ray Tune + Optuna; here the trials are drawn without replacement
// from the grid and evaluated (optionally in parallel on the thread pool),
// keeping the configuration with the smallest validation score.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace bellamy::parallel {
class ThreadPool;
}

namespace bellamy::opt {

struct TrialConfig {
  double dropout = 0.1;
  double learning_rate = 1e-2;
  double weight_decay = 1e-3;

  std::string to_string() const;
};

struct SearchSpace {
  std::vector<double> dropout = {0.05, 0.10, 0.20};
  std::vector<double> learning_rate = {1e-1, 1e-2, 1e-3};
  std::vector<double> weight_decay = {1e-2, 1e-3, 1e-4};

  std::size_t grid_size() const;
  /// Enumerate the full grid in row-major (dropout, lr, wd) order.
  TrialConfig at(std::size_t index) const;
};

struct TrialResult {
  TrialConfig config;
  double score = 0.0;  ///< lower is better (validation error)
};

struct SearchOutcome {
  TrialResult best;
  std::vector<TrialResult> trials;  ///< all evaluated trials, by trial order
};

/// Objective: evaluate one configuration, return validation score.
/// Must be thread-safe when a pool is supplied.
using Objective = std::function<double(const TrialConfig&)>;

/// Sample `num_trials` distinct grid points (all of them if num_trials >=
/// grid size) and evaluate the objective for each.
SearchOutcome random_search(const SearchSpace& space, const Objective& objective,
                            std::size_t num_trials, std::uint64_t seed,
                            parallel::ThreadPool* pool = nullptr);

}  // namespace bellamy::opt
