#pragma once
// Non-negative least squares: minimize ||A x - b||_2 subject to x >= 0.
//
// Lawson-Hanson active-set algorithm (the same algorithm behind
// scipy.optimize.nnls, which Ernest and the paper's NNLS baseline use to fit
// theta in r(x) = θ1 + θ2/x + θ3 log x + θ4 x with non-negative weights).

#include <vector>

#include "nn/matrix.hpp"

namespace bellamy::opt {

struct NnlsResult {
  std::vector<double> x;       ///< solution, all entries >= 0
  double residual_norm = 0.0;  ///< ||A x - b||_2
  std::size_t iterations = 0;  ///< outer-loop iterations used
  bool converged = true;       ///< false only if max_iterations was exhausted
};

/// A is (m x n); b has m entries. max_iterations 0 means 3 * n (the
/// customary Lawson-Hanson default).
NnlsResult solve_nnls(const nn::Matrix& a, const std::vector<double>& b,
                      std::size_t max_iterations = 0);

}  // namespace bellamy::opt
