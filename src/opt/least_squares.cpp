#include "opt/least_squares.hpp"

#include <cmath>
#include <stdexcept>

namespace bellamy::opt {

LeastSquaresResult solve_least_squares(const nn::Matrix& a, std::vector<double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("solve_least_squares: size mismatch");
  if (m < n) throw std::invalid_argument("solve_least_squares: underdetermined system");

  // Householder QR on a working copy; b is transformed in place.
  nn::Matrix r = a;
  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-300) throw std::runtime_error("solve_least_squares: rank-deficient matrix");
    const double alpha = r(k, k) > 0.0 ? -norm : norm;
    std::vector<double> v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vnorm2 = 0.0;
    for (double vi : v) vnorm2 += vi * vi;
    if (vnorm2 < 1e-300) continue;  // already triangular in this column

    // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing block of R.
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, j);
      const double scale = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= scale * v[i - k];
    }
    // And to b.
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * b[i];
    const double scale = 2.0 * dot / vnorm2;
    for (std::size_t i = k; i < m; ++i) b[i] -= scale * v[i - k];
  }

  // Back substitution on the upper-triangular n x n block.
  LeastSquaresResult result;
  result.x.assign(n, 0.0);
  for (std::size_t ki = n; ki-- > 0;) {
    double sum = b[ki];
    for (std::size_t j = ki + 1; j < n; ++j) sum -= r(ki, j) * result.x[j];
    const double diag = r(ki, ki);
    if (std::abs(diag) < 1e-12) {
      throw std::runtime_error("solve_least_squares: near-singular triangular factor");
    }
    result.x[ki] = sum / diag;
  }

  // Residual norm = norm of the bottom part of the transformed b.
  double res2 = 0.0;
  for (std::size_t i = n; i < m; ++i) res2 += b[i] * b[i];
  result.residual_norm = std::sqrt(res2);
  return result;
}

}  // namespace bellamy::opt
