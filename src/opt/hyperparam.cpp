#include "opt/hyperparam.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "parallel/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace bellamy::opt {

std::string TrialConfig::to_string() const {
  return util::format("dropout=%.2f lr=%.0e wd=%.0e", dropout, learning_rate, weight_decay);
}

std::size_t SearchSpace::grid_size() const {
  return dropout.size() * learning_rate.size() * weight_decay.size();
}

TrialConfig SearchSpace::at(std::size_t index) const {
  if (index >= grid_size()) throw std::out_of_range("SearchSpace::at");
  const std::size_t wd_n = weight_decay.size();
  const std::size_t lr_n = learning_rate.size();
  TrialConfig cfg;
  cfg.weight_decay = weight_decay[index % wd_n];
  cfg.learning_rate = learning_rate[(index / wd_n) % lr_n];
  cfg.dropout = dropout[index / (wd_n * lr_n)];
  return cfg;
}

SearchOutcome random_search(const SearchSpace& space, const Objective& objective,
                            std::size_t num_trials, std::uint64_t seed,
                            parallel::ThreadPool* pool) {
  if (!objective) throw std::invalid_argument("random_search: null objective");
  const std::size_t grid = space.grid_size();
  if (grid == 0) throw std::invalid_argument("random_search: empty search space");
  num_trials = std::min(num_trials, grid);
  if (num_trials == 0) throw std::invalid_argument("random_search: num_trials must be > 0");

  util::Rng rng(seed);
  const auto picks = rng.sample_without_replacement(grid, num_trials);

  SearchOutcome outcome;
  outcome.trials.resize(num_trials);
  parallel::parallel_for(
      num_trials,
      [&](std::size_t i) {
        TrialResult tr;
        tr.config = space.at(picks[i]);
        tr.score = objective(tr.config);
        outcome.trials[i] = std::move(tr);
      },
      pool);

  outcome.best.score = std::numeric_limits<double>::infinity();
  for (const auto& tr : outcome.trials) {
    if (tr.score < outcome.best.score) outcome.best = tr;
  }
  return outcome;
}

}  // namespace bellamy::opt
