#include "opt/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "opt/least_squares.hpp"

namespace bellamy::opt {

namespace {

/// Unconstrained LS restricted to the passive columns; returns a full-size
/// vector with zeros in the active (clamped) positions.
std::vector<double> solve_passive(const nn::Matrix& a, const std::vector<double>& b,
                                  const std::vector<bool>& passive) {
  std::vector<std::size_t> cols;
  for (std::size_t j = 0; j < passive.size(); ++j) {
    if (passive[j]) cols.push_back(j);
  }
  std::vector<double> full(passive.size(), 0.0);
  if (cols.empty()) return full;

  nn::Matrix sub(a.rows(), cols.size());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < cols.size(); ++j) sub(i, j) = a(i, cols[j]);
  }
  const auto ls = solve_least_squares(sub, b);
  for (std::size_t j = 0; j < cols.size(); ++j) full[cols[j]] = ls.x[j];
  return full;
}

double residual_norm(const nn::Matrix& a, const std::vector<double>& x,
                     const std::vector<double>& b) {
  double res2 = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double pred = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) pred += a(i, j) * x[j];
    const double e = pred - b[i];
    res2 += e * e;
  }
  return std::sqrt(res2);
}

}  // namespace

NnlsResult solve_nnls(const nn::Matrix& a, const std::vector<double>& b,
                      std::size_t max_iterations) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("solve_nnls: size mismatch");
  if (m == 0 || n == 0) throw std::invalid_argument("solve_nnls: empty problem");
  if (max_iterations == 0) max_iterations = 3 * n + 10;

  const double tol = 10.0 * std::numeric_limits<double>::epsilon() *
                     static_cast<double>(std::max(m, n));

  NnlsResult result;
  result.x.assign(n, 0.0);
  std::vector<bool> passive(n, false);

  // Gradient of 0.5||Ax-b||^2 is Aᵀ(Ax - b); w = -gradient = Aᵀ(b - Ax).
  auto compute_w = [&](const std::vector<double>& x) {
    std::vector<double> resid(m);
    for (std::size_t i = 0; i < m; ++i) {
      double pred = 0.0;
      for (std::size_t j = 0; j < n; ++j) pred += a(i, j) * x[j];
      resid[i] = b[i] - pred;
    }
    std::vector<double> w(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < m; ++i) w[j] += a(i, j) * resid[i];
    }
    return w;
  };

  for (result.iterations = 0; result.iterations < max_iterations; ++result.iterations) {
    const auto w = compute_w(result.x);

    // Pick the most promising active variable (largest positive w).
    std::ptrdiff_t best = -1;
    double best_w = tol;
    for (std::size_t j = 0; j < n; ++j) {
      if (!passive[j] && w[j] > best_w) {
        best_w = w[j];
        best = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (best < 0) break;  // KKT satisfied
    passive[static_cast<std::size_t>(best)] = true;

    // Inner loop: restore feasibility of the passive-set LS solution.
    for (;;) {
      std::vector<double> z;
      try {
        z = solve_passive(a, b, passive);
      } catch (const std::exception&) {
        // Rank-deficient or underdetermined passive set:
        // Singular passive set: drop the variable we just added and stop
        // considering it in this round.
        passive[static_cast<std::size_t>(best)] = false;
        z = result.x;
        break;
      }
      bool feasible = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= tol) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        result.x = std::move(z);
        break;
      }
      // Step from x toward z as far as feasibility allows, then move the
      // blocking variables to the active set.
      double alpha = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= tol) {
          const double denom = result.x[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, result.x[j] / denom);
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j]) result.x[j] += alpha * (z[j] - result.x[j]);
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j] && result.x[j] <= tol) {
          result.x[j] = 0.0;
          passive[j] = false;
        }
      }
    }
  }

  result.converged = result.iterations < max_iterations;
  for (double& v : result.x) {
    if (v < 0.0) v = 0.0;  // numeric safety
  }
  result.residual_norm = residual_norm(a, result.x, b);
  return result;
}

}  // namespace bellamy::opt
