#pragma once
// FaultInjector: the deterministic chaos seam of the net layer.
//
// A seeded schedule of network misbehavior, injectable at the two
// boundaries where bytes change hands:
//
//   * net::Socket::set_fault_injector — every read/write first asks the
//     injector what happens to it: nothing, an added delay, a truncated
//     write (half the bytes leave, then the stream breaks), garbled bytes,
//     a silently dropped write (the peer's deadline finds out), or a hard
//     disconnect.
//   * exchange::ChaosTransport — the PeerTransport decorator applies the
//     same schedule at whole-call granularity for socketless mesh tests.
//
// Determinism is the contract: one seed = one exact fault sequence, every
// run, every platform — a chaos soak that fails in CI replays locally from
// its seed alone.  Draws are serialized under a mutex, so a multi-threaded
// soak is deterministic in DISTRIBUTION (same faults, possibly different
// interleaving), and a single-connection test is deterministic absolutely.
//
// Probabilities are evaluated in the order delay, drop, truncate, garble,
// disconnect off a single uniform draw, so they partition one unit
// interval: their sum must be <= 1, the remainder is "no fault".

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace bellamy::net {

enum class FaultOp : std::uint8_t { kRead, kWrite, kCall };

enum class FaultKind : std::uint8_t {
  kNone,
  kDelay,       ///< sleep, then proceed normally
  kDrop,        ///< pretend the write happened; send nothing (writes/calls only)
  kTruncate,    ///< emit a prefix of the bytes, then break the stream
  kGarble,      ///< flip bytes in flight (the receiver sees protocol garbage)
  kDisconnect,  ///< break the stream immediately
};

struct Fault {
  FaultKind kind = FaultKind::kNone;
  std::chrono::milliseconds delay{0};
};

struct FaultPlan {
  std::uint64_t seed = 1;
  double delay_prob = 0.0;
  double drop_prob = 0.0;
  double truncate_prob = 0.0;
  double garble_prob = 0.0;
  double disconnect_prob = 0.0;
  /// Injected delays are uniform in [1, max_delay] ms.
  std::chrono::milliseconds max_delay{20};
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Draw the fate of one operation.  Read ops never see kDrop/kTruncate
  /// (a TCP read cannot un-receive bytes); those draws degrade to kDelay /
  /// kDisconnect respectively so the schedule length stays seed-stable.
  Fault next(FaultOp op);

  /// Garble helper: flip deterministic bits of `buf` (at least one byte).
  void garble(std::uint8_t* buf, std::size_t size);

  /// Master switch: disabled, next() always returns kNone without drawing,
  /// so "heal the network" does not perturb the schedule for re-enable.
  void set_enabled(bool enabled);
  bool enabled() const;

  struct Counts {
    std::uint64_t delays = 0;
    std::uint64_t drops = 0;
    std::uint64_t truncates = 0;
    std::uint64_t garbles = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t total() const {
      return delays + drops + truncates + garbles + disconnects;
    }
  };
  Counts counts() const;

 private:
  std::uint64_t draw_locked();

  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::uint64_t rng_state_;
  bool enabled_ = true;
  Counts counts_;
};

}  // namespace bellamy::net
