#pragma once
// bellamy::net — the serving stack's network front-end.
//
//   wire.hpp    versioned, typed, length-prefixed binary protocol
//   socket.hpp  RAII POSIX TCP (listen / connect / exact I/O)
//   server.hpp  ServeServer: multi-client TCP listener over
//               ModelRegistry + PredictionService
//   client.hpp  NetClient: pipelined typed client (sync + async)
//
// Typical wiring (what apps/bellamy_serverd.cpp does):
//
//   serve::ModelRegistry registry(store);
//   serve::PredictionService service(registry, options);
//   net::ServeServer server(registry, service, {.port = 7113});
//   std::string err;
//   if (!server.start(err)) die(err);
//   server.wait_drained();         // until a wire DrainRequest (or console)
//
// and the client side (what apps/bellamy_loadgen.cpp does):
//
//   net::NetClient client;
//   client.connect("127.0.0.1", 7113, err);
//   client.publish({"sgd", "prod"}, model).expect();
//   double seconds = client.predict({"sgd", "prod"}, query).unwrap();
//
// The server must be stopped/destroyed before the service, the service
// before the registry (same ordering rule as the in-process stack).

#include "net/client.hpp"          // IWYU pragma: export
#include "net/fault_injector.hpp"  // IWYU pragma: export
#include "net/server.hpp"          // IWYU pragma: export
#include "net/socket.hpp"          // IWYU pragma: export
#include "net/wire.hpp"            // IWYU pragma: export
