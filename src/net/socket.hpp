#pragma once
// Thin RAII layer over POSIX TCP sockets: everything the server, client, and
// tests need (listen on an ephemeral port, connect, exact-length reads and
// writes with EINTR retries) and nothing more.  No frameworks, no event
// loops — the serving threads block on plain sockets, which keeps the
// backpressure story honest: a slow peer blocks exactly the thread attached
// to it.
//
// Error contract matches the rest of the net layer: expected network
// conditions (peer closed, connect refused) are return values, never
// exceptions.

#include <cstddef>
#include <cstdint>
#include <string>

namespace bellamy::net {

/// Owning socket fd.  Move-only; the destructor closes.  An invalid Socket
/// holds fd -1.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }
  int fd() const { return fd_; }

  /// Read exactly `size` bytes.  Returns false on EOF or error (a clean peer
  /// close mid-frame and a reset look the same to a frame reader: the
  /// connection is over).  Retries EINTR.
  bool read_exact(void* buf, std::size_t size) const;

  /// Write all `size` bytes.  Returns false on error (incl. peer gone);
  /// SIGPIPE is suppressed (MSG_NOSIGNAL).  Retries EINTR and short writes.
  bool write_all(const void* buf, std::size_t size) const;

  /// shutdown(SHUT_RDWR): unblocks any thread parked in read/write on this
  /// socket from ANOTHER thread — the clean way to interrupt a blocking
  /// reader at stop time.  Safe on an invalid socket.
  void shutdown_both() const;

  void close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1:`port` (port 0 = kernel-assigned
/// ephemeral port; `bound_port` receives the actual one).  SO_REUSEADDR is
/// set so restarts do not trip over TIME_WAIT.  Invalid Socket on failure,
/// with the reason in `error`.
Socket tcp_listen(std::uint16_t port, std::uint16_t& bound_port, std::string& error);

/// Accept one connection; blocks.  Invalid Socket when the listener was shut
/// down or accept failed.  TCP_NODELAY is set on the accepted socket (frames
/// are latency-sensitive and self-contained; Nagle only adds delay).
Socket tcp_accept(const Socket& listener);

/// Connect to host:port; blocks.  `host` may be a hostname or a numeric
/// address — names resolve via getaddrinfo, IPv4 results are tried first
/// (the listener side binds IPv4 loopback), and every resolved address is
/// attempted before giving up.  Invalid Socket on failure, with the failing
/// host named in `error`.  TCP_NODELAY is set.
Socket tcp_connect(const std::string& host, std::uint16_t port, std::string& error);

}  // namespace bellamy::net
