#pragma once
// Thin RAII layer over POSIX TCP sockets: everything the server, client, and
// tests need (listen on an ephemeral port, connect, exact-length reads and
// writes with EINTR retries) and nothing more.  No frameworks, no event
// loops — the serving threads block on plain sockets, which keeps the
// backpressure story honest: a slow peer blocks exactly the thread attached
// to it.
//
// DEADLINES: every blocking primitive is bounded when asked.  A Socket
// carries read/write STALL budgets (DeadlineOptions): an op times out when
// the peer makes no progress for that long, and returns the typed
// IoStatus::kTimeout instead of blocking forever.  The budget resets on
// progress, so a big frame trickling in steadily never times out, while a
// peer that goes silent mid-frame does.  All waits are poll-based and
// EINTR-safe.  A zero budget means "wait forever" — the pre-deadline
// behavior, still the default.
//
// FAULTS: set_fault_injector() arms the chaos seam — reads and writes
// consult the injector and can be delayed, truncated, garbled, dropped, or
// turned into a disconnect, deterministically from the injector's seed.
// Never armed in production paths; the chaos tests own it.
//
// Error contract matches the rest of the net layer: expected network
// conditions (peer closed, connect refused, deadline elapsed) are return
// values, never exceptions.  SIGPIPE cannot kill the process: sends use
// MSG_NOSIGNAL and the first listen/connect installs SIG_IGN as well.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace bellamy::net {

class FaultInjector;

/// Outcome of a bounded socket op.
enum class IoStatus : std::uint8_t {
  kOk,       ///< op completed in full
  kClosed,   ///< EOF, reset, or local shutdown — the stream is over
  kTimeout,  ///< the configured deadline elapsed with the op incomplete
};

const char* to_string(IoStatus status);

/// Time budgets for the blocking ops, plumbed from ServerOptions /
/// ClientOptions / TransportOptions down to the sockets.  0 = unbounded.
struct DeadlineOptions {
  /// Budget for tcp_connect (dial + TCP handshake), per resolved address.
  std::chrono::milliseconds connect{0};
  /// Stall budget per read: timeout when NO bytes arrive for this long.
  std::chrono::milliseconds read{0};
  /// Stall budget per write: timeout when the send buffer stays full.
  std::chrono::milliseconds write{0};
  /// Client-side end-to-end budget per request (send -> response matched).
  /// Consumed by NetClient, not by the socket itself.
  std::chrono::milliseconds request{0};
};

/// Owning socket fd.  Move-only; the destructor closes.  An invalid Socket
/// holds fd -1.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }
  int fd() const { return fd_; }

  /// Install the read/write stall budgets (DeadlineOptions::read / write).
  void set_deadlines(const DeadlineOptions& deadlines);

  /// Arm the chaos seam: subsequent reads/writes consult `faults`.
  void set_fault_injector(std::shared_ptr<FaultInjector> faults);

  /// Read exactly `size` bytes.  kClosed on EOF or error (a clean peer
  /// close mid-frame and a reset look the same to a frame reader: the
  /// connection is over); kTimeout when the read stall budget elapses with
  /// no progress.  Retries EINTR.
  IoStatus read_exact(void* buf, std::size_t size) const;

  /// Write all `size` bytes.  kClosed on error (incl. peer gone; SIGPIPE is
  /// suppressed via MSG_NOSIGNAL); kTimeout when the send buffer stays full
  /// past the write stall budget.  Retries EINTR and short writes.
  IoStatus write_all(const void* buf, std::size_t size) const;

  /// Block until the socket is readable (data, EOF, or error all count —
  /// the following read reports which).  `timeout` < 0 waits forever;
  /// kTimeout when nothing happened in time.  The idle-tolerant wait the
  /// frame readers use BEFORE applying the stall budget to a frame.
  IoStatus wait_readable(std::chrono::milliseconds timeout) const;

  /// shutdown(SHUT_RDWR): unblocks any thread parked in read/write on this
  /// socket from ANOTHER thread — the clean way to interrupt a blocking
  /// reader at stop time.  Safe on an invalid socket.
  void shutdown_both() const;

  void close();

 private:
  int fd_ = -1;
  std::chrono::milliseconds read_timeout_{0};
  std::chrono::milliseconds write_timeout_{0};
  std::shared_ptr<FaultInjector> faults_;
};

/// Wait-forever sentinel for wait_readable.
inline constexpr std::chrono::milliseconds kWaitForever{-1};

/// Idempotently set SIGPIPE to SIG_IGN for the process.  Called by
/// tcp_listen/tcp_connect: MSG_NOSIGNAL already guards every send() in this
/// layer, this guards any OTHER write to a dead socket (third-party code,
/// future fds) from killing a serving daemon.
void ignore_sigpipe();

/// Listening socket bound to 127.0.0.1:`port` (port 0 = kernel-assigned
/// ephemeral port; `bound_port` receives the actual one).  SO_REUSEADDR is
/// set so restarts do not trip over TIME_WAIT.  Invalid Socket on failure,
/// with the reason in `error`.
Socket tcp_listen(std::uint16_t port, std::uint16_t& bound_port, std::string& error);

/// How an accept failed, for the accept loop's retry decision.
enum class AcceptStatus : std::uint8_t {
  kOk,
  kTransient,  ///< EMFILE/ENFILE/ECONNABORTED/ENOBUFS/...: count, sleep, retry
  kFatal,      ///< listener shut down or unusable: stop accepting
};

/// Accept one connection; blocks.  Invalid Socket when the listener was
/// shut down or accept failed — `status` (optional) distinguishes transient
/// resource errors, which an accept loop should retry after a short sleep,
/// from a dead listener.  Retries EINTR internally.  TCP_NODELAY is set on
/// the accepted socket (frames are latency-sensitive and self-contained;
/// Nagle only adds delay).
Socket tcp_accept(const Socket& listener, AcceptStatus* status = nullptr,
                  std::string* error = nullptr);

/// Connect to host:port; blocks, bounded by `connect_timeout` per resolved
/// address (0 = unbounded).  `host` may be a hostname or a numeric address —
/// names resolve via getaddrinfo, IPv4 results are tried first (the
/// listener side binds IPv4 loopback), and every resolved address is
/// attempted before giving up.  Invalid Socket on failure, with the failing
/// host named in `error`.  TCP_NODELAY is set.
Socket tcp_connect(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds connect_timeout, std::string& error);
Socket tcp_connect(const std::string& host, std::uint16_t port, std::string& error);

}  // namespace bellamy::net
