#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <vector>

namespace bellamy::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::read_exact(void* buf, std::size_t size) const {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // 0 = orderly EOF, < 0 = error; either way the frame is gone
  }
  return true;
}

bool Socket::write_all(const void* buf, std::size_t size) const {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

void Socket::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(std::uint16_t port, std::uint16_t& bound_port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_text("socket");
    return Socket();
  }
  Socket sock(fd);

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = errno_text("bind");
    return Socket();
  }
  if (::listen(fd, 64) != 0) {
    error = errno_text("listen");
    return Socket();
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    error = errno_text("getsockname");
    return Socket();
  }
  bound_port = ntohs(bound.sin_port);
  error.clear();
  return sock;
}

Socket tcp_accept(const Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port, std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  // Numeric addresses keep working without a resolver round-trip.
  hints.ai_flags = AI_ADDRCONFIG | AI_NUMERICSERV;

  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  if (rc == EAI_ADDRFAMILY || rc == EAI_NONAME) {
    // AI_ADDRCONFIG hides loopback-only families on hosts with no external
    // interface of that family; retry without it before giving up.
    hints.ai_flags = AI_NUMERICSERV;
    rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  }
  if (rc != 0) {
    error = "cannot resolve '" + host + "': " +
            (rc == EAI_SYSTEM ? errno_text("getaddrinfo") : std::string(::gai_strerror(rc)));
    return Socket();
  }

  // The listener side is IPv4 (tcp_listen binds 127.0.0.1), so prefer IPv4
  // results; hostnames like `localhost` often resolve to ::1 first.
  std::vector<const addrinfo*> ordered;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family == AF_INET) ordered.push_back(ai);
  }
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family != AF_INET) ordered.push_back(ai);
  }

  std::string last_error = "no usable address";
  for (const addrinfo* ai : ordered) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_text("socket");
      continue;
    }
    Socket sock(fd);
    int connected;
    while ((connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen)) != 0 && errno == EINTR) {
    }
    if (connected == 0) {
      ::freeaddrinfo(results);
      set_nodelay(fd);
      error.clear();
      return sock;
    }
    last_error = errno_text("connect");
  }
  ::freeaddrinfo(results);
  error = "cannot connect to '" + host + "': " + last_error;
  return Socket();
}

}  // namespace bellamy::net
