#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include "net/fault_injector.hpp"

namespace bellamy::net {

namespace {

using Clock = std::chrono::steady_clock;

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// poll() for `events`, EINTR-safe, negative timeout = forever.  kOk also
/// covers POLLHUP/POLLERR: the next recv/send reports the exact condition.
IoStatus wait_for(int fd, short events, std::chrono::milliseconds timeout) {
  if (fd < 0) return IoStatus::kClosed;
  const bool bounded = timeout.count() >= 0;
  const Clock::time_point deadline = Clock::now() + timeout;
  while (true) {
    int wait_ms = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(0, left.count()));
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, wait_ms);
    if (rc > 0) return IoStatus::kOk;
    if (rc == 0) return IoStatus::kTimeout;
    if (errno == EINTR) continue;  // recompute the remaining budget and re-poll
    return IoStatus::kClosed;
  }
}

}  // namespace

const char* to_string(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kClosed: return "closed";
    case IoStatus::kTimeout: return "timeout";
  }
  return "unknown";
}

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_),
      read_timeout_(other.read_timeout_),
      write_timeout_(other.write_timeout_),
      faults_(std::move(other.faults_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    read_timeout_ = other.read_timeout_;
    write_timeout_ = other.write_timeout_;
    faults_ = std::move(other.faults_);
    other.fd_ = -1;
  }
  return *this;
}

void Socket::set_deadlines(const DeadlineOptions& deadlines) {
  read_timeout_ = deadlines.read;
  write_timeout_ = deadlines.write;
}

void Socket::set_fault_injector(std::shared_ptr<FaultInjector> faults) {
  faults_ = std::move(faults);
}

IoStatus Socket::read_exact(void* buf, std::size_t size) const {
  Fault fault;
  if (faults_) fault = faults_->next(FaultOp::kRead);
  if (fault.kind == FaultKind::kDelay) std::this_thread::sleep_for(fault.delay);
  if (fault.kind == FaultKind::kDisconnect) {
    shutdown_both();
    return IoStatus::kClosed;
  }

  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < size) {
    if (read_timeout_.count() > 0) {
      // Stall budget: each wait allows read_timeout_ of silence; progress
      // below restarts it on the next lap.
      const IoStatus waited = wait_for(fd_, POLLIN, read_timeout_);
      if (waited != IoStatus::kOk) return waited;
    }
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return IoStatus::kClosed;  // 0 = orderly EOF, < 0 = error; the frame is gone
  }
  if (fault.kind == FaultKind::kGarble) faults_->garble(p, size);
  return IoStatus::kOk;
}

IoStatus Socket::write_all(const void* buf, std::size_t size) const {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::vector<std::uint8_t> garbled;

  Fault fault;
  if (faults_) fault = faults_->next(FaultOp::kWrite);
  switch (fault.kind) {
    case FaultKind::kDelay:
      std::this_thread::sleep_for(fault.delay);
      break;
    case FaultKind::kDrop:
      // The bytes vanish: the local caller believes the write landed, the
      // peer's deadline discovers it never did.
      return IoStatus::kOk;
    case FaultKind::kTruncate:
      // Half a frame leaves, then the stream breaks — the peer sees a runt
      // frame followed by EOF.
      size = size / 2;
      break;
    case FaultKind::kGarble:
      garbled.assign(p, p + size);
      faults_->garble(garbled.data(), garbled.size());
      p = garbled.data();
      break;
    case FaultKind::kDisconnect:
      shutdown_both();
      return IoStatus::kClosed;
    case FaultKind::kNone:
      break;
  }

  // Nonblocking sends with a poll on EAGAIN: a blocking send() of a large
  // buffer parks until EVERY byte is queued, which would let a peer that
  // stops reading hang us past any budget.  This way the stall budget is a
  // true progress bound — it resets on every accepted chunk and fires only
  // when the kernel accepts nothing for `write` straight.
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const IoStatus waited = wait_for(
          fd_, POLLOUT,
          write_timeout_.count() > 0 ? write_timeout_ : std::chrono::milliseconds(-1));
      if (waited != IoStatus::kOk) return waited;
      continue;
    }
    return IoStatus::kClosed;
  }
  if (fault.kind == FaultKind::kTruncate) {
    shutdown_both();
    return IoStatus::kClosed;
  }
  return IoStatus::kOk;
}

IoStatus Socket::wait_readable(std::chrono::milliseconds timeout) const {
  return wait_for(fd_, POLLIN, timeout);
}

void Socket::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(std::uint16_t port, std::uint16_t& bound_port, std::string& error) {
  ignore_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_text("socket");
    return Socket();
  }
  Socket sock(fd);

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = errno_text("bind");
    return Socket();
  }
  if (::listen(fd, 64) != 0) {
    error = errno_text("listen");
    return Socket();
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    error = errno_text("getsockname");
    return Socket();
  }
  bound_port = ntohs(bound.sin_port);
  error.clear();
  return sock;
}

Socket tcp_accept(const Socket& listener, AcceptStatus* status, std::string* error) {
  const auto fail = [&](AcceptStatus what) {
    if (status != nullptr) *status = what;
    if (error != nullptr) *error = errno_text("accept");
    return Socket();
  };
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      if (status != nullptr) *status = AcceptStatus::kOk;
      return Socket(fd);
    }
    switch (errno) {
      case EINTR:
        continue;
      // Resource pressure or a connection that died in the backlog: the
      // listener is fine, later accepts can succeed.  An accept loop that
      // exits on these silently stops serving under load — the worst
      // possible failure mode — so they are reported as retryable.
      case ECONNABORTED:
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
      case EPROTO:
      case EAGAIN:
        return fail(AcceptStatus::kTransient);
      default:
        // EBADF / EINVAL: the listener was closed or shut down (drain/stop).
        return fail(AcceptStatus::kFatal);
    }
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port, std::string& error) {
  return tcp_connect(host, port, std::chrono::milliseconds{0}, error);
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds connect_timeout, std::string& error) {
  ignore_sigpipe();
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  // Numeric addresses keep working without a resolver round-trip.
  hints.ai_flags = AI_ADDRCONFIG | AI_NUMERICSERV;

  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  if (rc == EAI_ADDRFAMILY || rc == EAI_NONAME) {
    // AI_ADDRCONFIG hides loopback-only families on hosts with no external
    // interface of that family; retry without it before giving up.
    hints.ai_flags = AI_NUMERICSERV;
    rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  }
  if (rc != 0) {
    error = "cannot resolve '" + host + "': " +
            (rc == EAI_SYSTEM ? errno_text("getaddrinfo") : std::string(::gai_strerror(rc)));
    return Socket();
  }

  // The listener side is IPv4 (tcp_listen binds 127.0.0.1), so prefer IPv4
  // results; hostnames like `localhost` often resolve to ::1 first.
  std::vector<const addrinfo*> ordered;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family == AF_INET) ordered.push_back(ai);
  }
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family != AF_INET) ordered.push_back(ai);
  }

  const bool bounded = connect_timeout.count() > 0;
  std::string last_error = "no usable address";
  for (const addrinfo* ai : ordered) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_text("socket");
      continue;
    }
    Socket sock(fd);

    if (!bounded) {
      int connected;
      while ((connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen)) != 0 &&
             errno == EINTR) {
      }
      if (connected == 0) {
        ::freeaddrinfo(results);
        set_nodelay(fd);
        error.clear();
        return sock;
      }
      last_error = errno_text("connect");
      continue;
    }

    // Bounded dial: non-blocking connect, poll for writability within the
    // budget, then read the outcome from SO_ERROR.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int connected;
    while ((connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen)) != 0 &&
           errno == EINTR) {
    }
    bool ok = connected == 0;
    if (!ok && errno == EINPROGRESS) {
      const IoStatus waited = wait_for(fd, POLLOUT, connect_timeout);
      if (waited == IoStatus::kTimeout) {
        last_error = "connect: timed out after " +
                     std::to_string(connect_timeout.count()) + " ms";
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof so_error;
      ok = waited == IoStatus::kOk &&
           ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 && so_error == 0;
      if (!ok) {
        errno = so_error != 0 ? so_error : errno;
        last_error = errno_text("connect");
        continue;
      }
    } else if (!ok) {
      last_error = errno_text("connect");
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking for the frame I/O
    ::freeaddrinfo(results);
    set_nodelay(fd);
    error.clear();
    return sock;
  }
  ::freeaddrinfo(results);
  error = "cannot connect to '" + host + "': " + last_error;
  return Socket();
}

}  // namespace bellamy::net
