#pragma once
// ServeServer: the TCP front door over ModelRegistry + PredictionService.
//
// Threading model — deliberately boring, so the backpressure story is
// auditable:
//
//   * ONE accept thread hands each connection to
//   * ONE reader thread per connection: reads frames, decodes requests,
//     dispatches.  Predict traffic calls PredictionService::predict_async,
//     which BLOCKS when the handle's bounded lane is full — service-level
//     backpressure propagates to exactly the connections producing it.
//   * ONE writer thread per connection: pops a bounded outbound queue in
//     FIFO order.  Predict entries carry futures; the writer harvests them
//     (waiting for the micro-batch) and encodes responses.  A SLOW CLIENT
//     fills its own outbound queue and blocks only its own reader — other
//     connections never notice.
//
// Responses to request-driven traffic leave in request order.  Two message
// classes are event-style instead:
//
//   * RefitResponse is pushed when the background refit completes (the
//     registry's on_complete callback, bounced off a weak_ptr so a closed
//     connection drops the event instead of resurrecting itself);
//   * DrainResponse is written only after every response queued before it
//     has been flushed.
//
// Graceful drain (wire DrainRequest or begin_drain()): stop accepting,
// PredictionService::stop() — which by contract resolves EVERY accepted
// request — then flush-and-close every connection.  Nothing accepted is
// lost, nothing is answered twice.
//
// Protocol errors (malformed frame, version mismatch, unknown type) close
// the offending connection: a peer speaking the wrong protocol cannot be
// answered in the right one.  parse errors are counted in ServerStats.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "serve/drift_monitor.hpp"
#include "serve/model_registry.hpp"
#include "serve/prediction_service.hpp"

namespace bellamy::net {

/// Server-side hook for the exchange layer (src/exchange/): answers the
/// node-to-node wire messages (digest / pull / advertise), supplies the
/// pull-on-miss path for serving traffic, and hears about local mutations so
/// the catalog can stamp them.  Implemented by exchange::ExchangeRegistry;
/// the server stays ignorant of sync policy.  All methods must be
/// thread-safe — they are called from per-connection reader threads and
/// from refit strands.  on_advertise() must not block on peer I/O (schedule
/// the follow-up pulls instead); open_on_miss() MAY block on peer I/O,
/// which stalls only the requesting connection's reader.
class PeerService {
 public:
  virtual ~PeerService() = default;
  /// This node's catalog, served to a DigestRequest.
  virtual std::vector<DigestEntry> digest_entries() = 0;
  /// Serve a PullRequest: catalog stamp + checkpoint text for `key`.
  virtual serve::ServeResult<PulledCheckpoint> pull_model(const serve::ModelKey& key) = 0;
  /// A peer pushed its catalog at us (fire-and-forget gossip).
  virtual void on_advertise(const std::vector<DigestEntry>& entries) = 0;
  /// A request referenced a key unknown to the local registry: try to
  /// materialize it off a peer (pull-on-miss warm start).
  virtual serve::ServeResult<serve::ModelHandle> open_on_miss(const serve::ModelKey& key) = 0;
  /// Local mutations that arrived over the wire (publish / refit swap):
  /// stamp them so peers learn there is something newer to pull.
  virtual void note_published(const serve::ModelKey& key) = 0;
  virtual void note_refit(const serve::ModelKey& key) = 0;
};

struct ServerOptions {
  /// Port to listen on (loopback only); 0 = kernel-assigned ephemeral port,
  /// readable via port() after start().
  std::uint16_t port = 0;
  /// Outbound queue bound per connection (responses not yet written).  A
  /// client that stops reading blocks its own reader once this many
  /// responses are parked — per-connection flow control.
  std::size_t max_pipeline = 256;
  /// Optional exchange-layer hook.  Null = this node answers digest/pull/
  /// advertise with kInvalidArgument and misses stay misses.  Must outlive
  /// the server AND any refit still in flight at teardown (the refit
  /// completion callback notifies it).
  PeerService* peer_service = nullptr;
  /// Optional drift monitor answering ReportRunRequest (observed-runtime
  /// feedback -> error EWMA -> auto-queued reduced refits).  Null = the
  /// report_run path answers kInvalidArgument.  Must outlive the server.
  serve::DriftMonitor* drift_monitor = nullptr;
  /// Socket stall budgets applied to every accepted connection (read/write;
  /// connect/request are client-side and ignored here).  An idle client is
  /// fine — the reader waits for the FIRST byte of a frame without budget —
  /// but a peer that goes silent mid-frame is cut off after `read`.
  DeadlineOptions deadlines;
  /// Chaos seam installed on every accepted socket (tests only).
  std::shared_ptr<FaultInjector> fault_injector;
};

/// Monotonic counters; draining flips once and stays.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t accept_retries = 0;  ///< transient accept failures survived
  std::uint64_t io_timeouts = 0;     ///< connections cut for stalling mid-frame
  bool draining = false;
};

class ServeServer {
 public:
  /// Registry and service must outlive the server.
  ServeServer(serve::ModelRegistry& registry, serve::PredictionService& service,
              ServerOptions options = {});
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Bind + listen + start accepting.  False (with the reason in `error`)
  /// when the port is taken.
  bool start(std::string& error);

  /// Actual listening port (after start()).
  std::uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, drain the service (every accepted
  /// request resolves), then flush-and-close every connection.  Returns
  /// after the service drain; connections finish asynchronously —
  /// wait_drained() blocks for them.  Idempotent; also triggered by a wire
  /// DrainRequest.
  void begin_drain();

  /// Block until begin_drain() has happened AND every connection closed.
  void wait_drained();

  /// begin_drain() + force-close all sockets + join every thread.
  /// Idempotent; the destructor calls it.
  void stop();

  ServerStats stats() const;

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  /// Decode + dispatch one frame body; false = protocol error, close.
  bool dispatch(const std::shared_ptr<Connection>& conn, const FrameView& frame);
  /// registry_.find, falling back to PeerService::open_on_miss for serving
  /// traffic when an exchange layer is attached (pull-on-miss).
  serve::ServeResult<serve::ModelHandle> resolve_key(const serve::ModelKey& key);
  /// Count a protocol violation; returns false for `return protocol_error();`.
  bool protocol_error();
  /// Join and drop connections that finished (accept thread + stop only).
  void reap_connections(bool join_all);
  void note_connection_closed();

  serve::ModelRegistry& registry_;
  serve::PredictionService& service_;
  ServerOptions options_;

  Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mutex_;  ///< guards connections_ and drain bookkeeping
  std::condition_variable drained_cv_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::atomic<bool> draining_{false};
  std::once_flag drain_once_;
  std::once_flag stop_once_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> accept_retries_{0};
  std::atomic<std::uint64_t> io_timeouts_{0};
};

}  // namespace bellamy::net
