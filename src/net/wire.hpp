#pragma once
// The Bellamy wire protocol: a versioned, typed, length-prefixed binary
// format shared VERBATIM by client and server (one encode/decode pair per
// message, no separate client/server schemas to drift apart).
//
// Frame layout, little-endian throughout:
//
//   [u32 len | u16 version | u16 type | payload ... | u64 checksum]
//
// `len` counts everything after itself (version + type + payload +
// checksum), so a stream reader needs exactly one fixed-size read to know
// how much to pull.  The trailing checksum is FNV-1a 64 over version + type
// + payload: without it a garbled-but-parseable frame could decode as a
// VALID different message (the chaos-soak scenario); with it a flipped bit
// anywhere in the body is a typed kChecksumMismatch.  Version is checked
// BEFORE the checksum so an old-version peer still gets the honest
// kVersionMismatch.  Frames above kMaxFrameBytes are rejected before any
// allocation sized by attacker-controlled input; decode failures are TYPED
// (WireStatus), never exceptions — a malformed frame from the network is an
// expected input, not a programming error.
//
// One small POD-ish struct per message, each with
//
//   void encode(WireWriter&) const;
//   static constexpr MsgType kType;
//   WireStatus decode(WireReader&);          // payload only
//
// plus the frame-level helpers encode_frame<Msg>() / decode_frame<Msg>().
// Every request carries a client-chosen request_id echoed by its response,
// so responses may complete out of order (the PredictionService resolves
// micro-batches whenever their lane flushes) and still correlate.
//
// Request/response catalog (docs/ARCHITECTURE.md has the reference table):
//
//   PredictRequest      -> PredictResponse       one query, one value
//   PredictManyRequest  -> PredictManyResponse   batch of queries
//   PublishRequest      -> PublishResponse       install a model (checkpoint text)
//   RefitAsyncRequest   -> RefitResponse         queue a background fine-tune;
//                                                the response is PUSHED when the
//                                                swap lands (refit-done event)
//   MetricsRequest      -> MetricsResponse       ServeMetrics incl. percentiles
//   SetQosRequest       -> SetQosResponse        class / weight / max_lag
//   EraseRequest        -> EraseResponse         retire a key
//   DrainRequest        -> DrainResponse         graceful drain; sent AFTER every
//                                                in-flight response of the
//                                                connection has been written
//   AdvertiseRequest    -> AdvertiseResponse     peer gossip: "here is my catalog"
//   DigestRequest       -> DigestResponse        ask a peer for its catalog
//   PullRequest         -> PullResponse          fetch one checkpoint by key
//   ReportRunRequest    -> ReportRunResponse     feed an OBSERVED runtime back
//                                                (drift monitoring / refit data)
//
// The last three are the exchange-layer messages (src/exchange/): node-to-node
// checkpoint gossip.  They reuse the checkpoint-as-text encoding publish uses,
// so a model pulled from a peer is bit-identical to the peer's own.
//
// Models are addressed by ModelKey (job + context strings): handles are
// process-local and never cross the wire.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/record.hpp"
#include "serve/model_registry.hpp"
#include "serve/prediction_service.hpp"
#include "serve/serve_result.hpp"
#include "util/hash.hpp"

namespace bellamy::net {

/// Bumped on any incompatible layout change; decode rejects mismatches with
/// WireStatus::kVersionMismatch (never guesses).  v2: trailing FNV-1a frame
/// checksum + report_run path + reduction/drift metrics fields.
inline constexpr std::uint16_t kWireVersion = 2;

/// Hard ceiling on `len` (version + type + payload).  Checkpoints are the
/// largest payloads (publish); 64 MB is orders of magnitude above any real
/// one while still bounding what a hostile length prefix can allocate.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Bytes of the fixed prefix before the payload: u32 len + u16 ver + u16 type.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Bytes of the trailing FNV-1a 64 checksum every frame body carries.
inline constexpr std::size_t kFrameChecksumBytes = 8;

enum class MsgType : std::uint16_t {
  kPredictRequest = 1,
  kPredictManyRequest = 2,
  kPublishRequest = 3,
  kRefitAsyncRequest = 4,
  kMetricsRequest = 5,
  kSetQosRequest = 6,
  kEraseRequest = 7,
  kDrainRequest = 8,
  kAdvertiseRequest = 9,
  kDigestRequest = 10,
  kPullRequest = 11,
  kReportRunRequest = 12,

  kPredictResponse = 129,
  kPredictManyResponse = 130,
  kPublishResponse = 131,
  kRefitResponse = 132,
  kMetricsResponse = 133,
  kSetQosResponse = 134,
  kEraseResponse = 135,
  kDrainResponse = 136,
  kAdvertiseResponse = 137,
  kDigestResponse = 138,
  kPullResponse = 139,
  kReportRunResponse = 140,
};

/// True for any type value the catalog knows (request or response).
bool is_known_type(std::uint16_t type);

/// Typed decode outcome.  kOk is 0 so `if (status != WireStatus::kOk)` reads
/// naturally; everything else names WHY the bytes were rejected.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kTruncated,        ///< ran out of bytes mid-field (or len > available)
  kVersionMismatch,  ///< frame version != kWireVersion
  kUnknownType,      ///< type value outside the catalog
  kWrongType,        ///< well-formed frame, but not the message asked for
  kOversizedFrame,   ///< len exceeds kMaxFrameBytes (or < header remainder)
  kTrailingBytes,    ///< payload decoded but bytes remain (layout drift)
  kMalformed,        ///< field-level validation failed (bad enum value, ...)
  kChecksumMismatch, ///< frame bits corrupted in flight (FNV-1a trailer)
};

const char* to_string(WireStatus status);

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte buffer.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i32(std::int32_t v) { append(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// u32 byte count + raw bytes (doubles as the blob encoder).
  void str(const std::string& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed buffer.  The first
/// short read latches failed(); subsequent reads are no-ops returning zeroed
/// values, so decoders can read a whole struct and check ok() once.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) { return fixed(&v, sizeof v); }
  bool u16(std::uint16_t& v) { return fixed(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return fixed(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return fixed(&v, sizeof v); }
  bool i32(std::int32_t& v) { return fixed(&v, sizeof v); }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }
  bool str(std::string& v) {
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    if (n > remaining()) return fail();
    v.assign(reinterpret_cast<const char*>(data_ + off_), n);
    off_ += n;
    return true;
  }

  std::size_t remaining() const { return size_ - off_; }
  bool ok() const { return !failed_; }

 private:
  bool fixed(void* out, std::size_t n) {
    if (failed_ || n > remaining()) {
      std::memset(out, 0, n);
      return fail();
    }
    std::memcpy(out, data_ + off_, n);
    off_ += n;
    return true;
  }
  bool fail() {
    failed_ = true;
    return false;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  bool failed_ = false;
};

// ---------------------------------------------------------------------------
// Shared field codecs
// ---------------------------------------------------------------------------

void encode_key(WireWriter& w, const serve::ModelKey& key);
WireStatus decode_key(WireReader& r, serve::ModelKey& key);

void encode_job_run(WireWriter& w, const data::JobRun& run);
WireStatus decode_job_run(WireReader& r, data::JobRun& run);

void encode_job_runs(WireWriter& w, const std::vector<data::JobRun>& runs);
WireStatus decode_job_runs(WireReader& r, std::vector<data::JobRun>& runs);

void encode_finetune_config(WireWriter& w, const core::FineTuneConfig& cfg);
WireStatus decode_finetune_config(WireReader& r, core::FineTuneConfig& cfg);

void encode_metrics(WireWriter& w, const serve::ServeMetrics& m);
WireStatus decode_metrics(WireReader& r, serve::ServeMetrics& m);

// ---------------------------------------------------------------------------
// Exchange-layer value types
// ---------------------------------------------------------------------------

/// One row of a node's checkpoint catalog: which model it has and how fresh.
/// Stamps are Lamport-style: every local publish/refit bumps the node's clock
/// past every stamp it has seen, so "highest stamp wins" totally orders
/// competing versions.  Stamp 0 is reserved for "absent" and is rejected on
/// decode (kMalformed).
struct DigestEntry {
  serve::ModelKey key;
  std::uint64_t stamp = 0;
};

/// A checkpoint pulled off a peer: the catalog stamp it was advertised under
/// plus the exact nn::Checkpoint text (hex-float, the ModelStore on-disk
/// format) — installing it reproduces the peer's model bit for bit.
struct PulledCheckpoint {
  std::uint64_t stamp = 0;
  std::string checkpoint_text;
};

void encode_digest_entries(WireWriter& w, const std::vector<DigestEntry>& entries);
WireStatus decode_digest_entries(WireReader& r, std::vector<DigestEntry>& entries);

// ---------------------------------------------------------------------------
// Messages — requests
// ---------------------------------------------------------------------------

struct PredictRequest {
  static constexpr MsgType kType = MsgType::kPredictRequest;
  std::uint64_t request_id = 0;
  serve::ModelKey key;
  data::JobRun query;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct PredictManyRequest {
  static constexpr MsgType kType = MsgType::kPredictManyRequest;
  std::uint64_t request_id = 0;
  serve::ModelKey key;
  std::vector<data::JobRun> queries;  ///< zero-length batches are legal

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct PublishRequest {
  static constexpr MsgType kType = MsgType::kPublishRequest;
  std::uint64_t request_id = 0;
  serve::ModelKey key;
  /// nn::Checkpoint text (the ModelStore on-disk format, hex-float exact) —
  /// the same bytes a store would hold, so publish-over-wire and
  /// open-from-store install bit-identical models.
  std::string checkpoint_text;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct RefitAsyncRequest {
  static constexpr MsgType kType = MsgType::kRefitAsyncRequest;
  std::uint64_t request_id = 0;
  serve::ModelKey key;
  std::vector<data::JobRun> runs;  ///< empty = direct reuse (reset to base)
  core::FineTuneConfig config;
  std::uint8_t strategy = 0;  ///< core::ReuseStrategy, validated on decode

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct MetricsRequest {
  static constexpr MsgType kType = MsgType::kMetricsRequest;
  std::uint64_t request_id = 0;
  serve::ModelKey key;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct SetQosRequest {
  static constexpr MsgType kType = MsgType::kSetQosRequest;
  std::uint64_t request_id = 0;
  serve::ModelKey key;
  std::uint8_t qos_class = 0;  ///< serve::QosClass, validated on decode
  double weight = 1.0;
  std::uint64_t max_lag_us = 0;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct EraseRequest {
  static constexpr MsgType kType = MsgType::kEraseRequest;
  std::uint64_t request_id = 0;
  serve::ModelKey key;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct DrainRequest {
  static constexpr MsgType kType = MsgType::kDrainRequest;
  std::uint64_t request_id = 0;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

/// Peer gossip, fire-and-forget semantics: "my catalog currently looks like
/// this".  The receiver compares stamps and schedules pulls for anything
/// newer; the response is a bare acknowledgement.
struct AdvertiseRequest {
  static constexpr MsgType kType = MsgType::kAdvertiseRequest;
  std::uint64_t request_id = 0;
  std::vector<DigestEntry> entries;  ///< empty catalogs are legal

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

/// Ask a peer for its full catalog (the poll half of anti-entropy).
struct DigestRequest {
  static constexpr MsgType kType = MsgType::kDigestRequest;
  std::uint64_t request_id = 0;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

/// Fetch one checkpoint by key.
struct PullRequest {
  static constexpr MsgType kType = MsgType::kPullRequest;
  std::uint64_t request_id = 0;
  serve::ModelKey key;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

/// Report an OBSERVED run (query + measured runtime) back to the server:
/// the drift monitor compares it against the model's own prediction, feeds
/// the error EWMA in ServeMetrics, and may auto-queue a reduced refit.
struct ReportRunRequest {
  static constexpr MsgType kType = MsgType::kReportRunRequest;
  std::uint64_t request_id = 0;
  serve::ModelKey key;
  data::JobRun run;  ///< run.runtime_s is the ground-truth observation

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

// ---------------------------------------------------------------------------
// Messages — responses.  Every response leads with (request_id, status,
// message); payload fields are meaningful only when status == kOk.
// ---------------------------------------------------------------------------

/// The (request_id, ServeStatus, message) triple every response leads with.
struct ResponseHead {
  std::uint64_t request_id = 0;
  serve::ServeStatus status = serve::ServeStatus::kOk;
  std::string message;

  bool ok() const { return status == serve::ServeStatus::kOk; }
  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct PredictResponse {
  static constexpr MsgType kType = MsgType::kPredictResponse;
  ResponseHead head;
  double value = 0.0;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct PredictManyResponse {
  static constexpr MsgType kType = MsgType::kPredictManyResponse;
  ResponseHead head;
  std::vector<double> values;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct PublishResponse {
  static constexpr MsgType kType = MsgType::kPublishResponse;
  ResponseHead head;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct RefitResponse {
  static constexpr MsgType kType = MsgType::kRefitResponse;
  ResponseHead head;
  std::uint64_t epochs_run = 0;
  double best_mae_seconds = 0.0;
  std::uint8_t reached_target = 0;
  double fit_seconds = 0.0;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct MetricsResponse {
  static constexpr MsgType kType = MsgType::kMetricsResponse;
  ResponseHead head;
  serve::ServeMetrics metrics;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct SetQosResponse {
  static constexpr MsgType kType = MsgType::kSetQosResponse;
  ResponseHead head;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct EraseResponse {
  static constexpr MsgType kType = MsgType::kEraseResponse;
  ResponseHead head;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct DrainResponse {
  static constexpr MsgType kType = MsgType::kDrainResponse;
  ResponseHead head;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct AdvertiseResponse {
  static constexpr MsgType kType = MsgType::kAdvertiseResponse;
  ResponseHead head;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct DigestResponse {
  static constexpr MsgType kType = MsgType::kDigestResponse;
  ResponseHead head;
  std::vector<DigestEntry> entries;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

struct PullResponse {
  static constexpr MsgType kType = MsgType::kPullResponse;
  ResponseHead head;
  /// Stamp + checkpoint text; meaningful only when head.ok().  On a
  /// successful pull the stamp must be non-zero (kMalformed otherwise).
  std::uint64_t stamp = 0;
  std::string checkpoint_text;

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

/// What the drift monitor knew right after folding the reported run in.
struct ReportRunResponse {
  static constexpr MsgType kType = MsgType::kReportRunResponse;
  ResponseHead head;
  double error_ewma = 0.0;          ///< relative-error EWMA after this report
  std::uint64_t reports = 0;        ///< runs reported for this handle so far
  std::uint8_t refit_triggered = 0; ///< this report crossed the drift threshold

  void encode(WireWriter& w) const;
  WireStatus decode(WireReader& r);
};

// ---------------------------------------------------------------------------
// Frame assembly / parsing
// ---------------------------------------------------------------------------

/// A parsed frame: version/type plus a BORROWED view of the payload bytes.
struct FrameView {
  std::uint16_t version = 0;
  std::uint16_t type = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
};

/// Wrap an encoded message into one wire frame (length prefix + trailing
/// FNV-1a checksum over version + type + payload).
template <typename Msg>
std::vector<std::uint8_t> encode_frame(const Msg& msg) {
  WireWriter payload;
  msg.encode(payload);
  WireWriter out;
  out.u32(static_cast<std::uint32_t>(payload.size() + 4 +  // + version + type
                                     kFrameChecksumBytes));
  out.u16(kWireVersion);
  out.u16(static_cast<std::uint16_t>(Msg::kType));
  std::vector<std::uint8_t> frame = out.take();
  const std::vector<std::uint8_t>& body = payload.bytes();
  frame.insert(frame.end(), body.begin(), body.end());
  const std::uint64_t sum = util::fnv1a64_bytes(frame.data() + 4, frame.size() - 4);
  const std::size_t at = frame.size();
  frame.resize(at + kFrameChecksumBytes);
  std::memcpy(frame.data() + at, &sum, sizeof sum);  // same layout as WireWriter::u64
  return frame;
}

/// Parse a frame BODY (the `len` bytes after the length prefix: version +
/// type + payload + checksum).  Rejects version, then the checksum, then
/// the type, before touching the payload; `out.payload` excludes the
/// verified trailer.
WireStatus parse_body(const std::uint8_t* data, std::size_t size, FrameView& out);

/// Parse one complete frame (length prefix included), e.g. a captured
/// buffer in tests.  Checks the length prefix against the actual size.
WireStatus parse_frame(const std::uint8_t* data, std::size_t size, FrameView& out);

/// Decode a specific message from a parsed frame: wrong-type and
/// trailing-byte detection included.
template <typename Msg>
WireStatus decode_message(const FrameView& frame, Msg& out) {
  if (frame.type != static_cast<std::uint16_t>(Msg::kType)) return WireStatus::kWrongType;
  WireReader r(frame.payload, frame.payload_size);
  const WireStatus status = out.decode(r);
  if (status != WireStatus::kOk) return status;
  if (!r.ok()) return WireStatus::kTruncated;
  if (r.remaining() != 0) return WireStatus::kTrailingBytes;
  return WireStatus::kOk;
}

/// One-shot: parse a full frame and decode the expected message.
template <typename Msg>
WireStatus decode_frame(const std::uint8_t* data, std::size_t size, Msg& out) {
  FrameView frame;
  const WireStatus status = parse_frame(data, size, frame);
  if (status != WireStatus::kOk) return status;
  return decode_message(frame, out);
}

}  // namespace bellamy::net
