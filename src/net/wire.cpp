#include "net/wire.hpp"

#include <algorithm>

namespace bellamy::net {

namespace {

/// Highest valid ServeStatus value; decode rejects anything above it so a
/// corrupted byte cannot smuggle an out-of-range enum into a switch.
constexpr std::uint8_t kMaxServeStatus = static_cast<std::uint8_t>(serve::ServeStatus::kTimeout);
constexpr std::uint8_t kMaxReuseStrategy = static_cast<std::uint8_t>(core::ReuseStrategy::kFullReset);
constexpr std::uint8_t kMaxQosClass = static_cast<std::uint8_t>(serve::QosClass::kBulk);

/// Cap on up-front vector reserves sized by a wire-supplied count.  Counts
/// above this still decode fine (the vector grows normally); the cap only
/// bounds what a HOSTILE count can allocate before element decoding fails.
constexpr std::uint32_t kMaxEagerReserve = 4096;

WireStatus reader_status(const WireReader& r) {
  return r.ok() ? WireStatus::kOk : WireStatus::kTruncated;
}

}  // namespace

bool is_known_type(std::uint16_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPredictRequest:
    case MsgType::kPredictManyRequest:
    case MsgType::kPublishRequest:
    case MsgType::kRefitAsyncRequest:
    case MsgType::kMetricsRequest:
    case MsgType::kSetQosRequest:
    case MsgType::kEraseRequest:
    case MsgType::kDrainRequest:
    case MsgType::kAdvertiseRequest:
    case MsgType::kDigestRequest:
    case MsgType::kPullRequest:
    case MsgType::kReportRunRequest:
    case MsgType::kPredictResponse:
    case MsgType::kPredictManyResponse:
    case MsgType::kPublishResponse:
    case MsgType::kRefitResponse:
    case MsgType::kMetricsResponse:
    case MsgType::kSetQosResponse:
    case MsgType::kEraseResponse:
    case MsgType::kDrainResponse:
    case MsgType::kAdvertiseResponse:
    case MsgType::kDigestResponse:
    case MsgType::kPullResponse:
    case MsgType::kReportRunResponse:
      return true;
  }
  return false;
}

const char* to_string(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kTruncated: return "truncated frame";
    case WireStatus::kVersionMismatch: return "wire version mismatch";
    case WireStatus::kUnknownType: return "unknown message type";
    case WireStatus::kWrongType: return "unexpected message type";
    case WireStatus::kOversizedFrame: return "oversized frame";
    case WireStatus::kTrailingBytes: return "trailing bytes after payload";
    case WireStatus::kMalformed: return "malformed field";
    case WireStatus::kChecksumMismatch: return "frame checksum mismatch";
  }
  return "unknown wire status";
}

// ---------------------------------------------------------------------------
// Shared field codecs
// ---------------------------------------------------------------------------

void encode_key(WireWriter& w, const serve::ModelKey& key) {
  w.str(key.job);
  w.str(key.context);
}

WireStatus decode_key(WireReader& r, serve::ModelKey& key) {
  r.str(key.job);
  r.str(key.context);
  return reader_status(r);
}

void encode_job_run(WireWriter& w, const data::JobRun& run) {
  w.str(run.algorithm);
  w.str(run.environment);
  w.str(run.node_type);
  w.str(run.job_parameters);
  w.u64(run.dataset_size_mb);
  w.str(run.data_characteristics);
  w.u64(run.memory_mb);
  w.u64(run.cpu_cores);
  w.i32(run.scale_out);
  w.f64(run.runtime_s);
}

WireStatus decode_job_run(WireReader& r, data::JobRun& run) {
  r.str(run.algorithm);
  r.str(run.environment);
  r.str(run.node_type);
  r.str(run.job_parameters);
  r.u64(run.dataset_size_mb);
  r.str(run.data_characteristics);
  r.u64(run.memory_mb);
  r.u64(run.cpu_cores);
  r.i32(run.scale_out);
  r.f64(run.runtime_s);
  return reader_status(r);
}

void encode_job_runs(WireWriter& w, const std::vector<data::JobRun>& runs) {
  w.u32(static_cast<std::uint32_t>(runs.size()));
  for (const data::JobRun& run : runs) encode_job_run(w, run);
}

WireStatus decode_job_runs(WireReader& r, std::vector<data::JobRun>& runs) {
  std::uint32_t count = 0;
  if (!r.u32(count)) return WireStatus::kTruncated;
  runs.clear();
  runs.reserve(std::min(count, kMaxEagerReserve));
  for (std::uint32_t i = 0; i < count; ++i) {
    data::JobRun run;
    const WireStatus status = decode_job_run(r, run);
    if (status != WireStatus::kOk) return status;
    runs.push_back(std::move(run));
  }
  return WireStatus::kOk;
}

void encode_finetune_config(WireWriter& w, const core::FineTuneConfig& cfg) {
  w.u64(static_cast<std::uint64_t>(cfg.max_epochs));
  w.f64(cfg.base_lr);
  w.f64(cfg.max_lr);
  w.u64(static_cast<std::uint64_t>(cfg.lr_cycle));
  w.f64(cfg.weight_decay);
  w.f64(cfg.mae_target_seconds);
  w.u64(static_cast<std::uint64_t>(cfg.patience));
  w.u64(cfg.seed);
  w.u64(static_cast<std::uint64_t>(cfg.unlock_f_after));
  w.u8(cfg.unlock_f_immediately ? 1 : 0);
  w.u8(cfg.train_autoencoder ? 1 : 0);
  w.u64(static_cast<std::uint64_t>(cfg.batch_size));
}

WireStatus decode_finetune_config(WireReader& r, core::FineTuneConfig& cfg) {
  std::uint64_t max_epochs = 0, lr_cycle = 0, patience = 0, unlock_f_after = 0;
  std::uint64_t batch_size = 0;
  std::uint8_t unlock_immediately = 0, train_ae = 0;
  r.u64(max_epochs);
  r.f64(cfg.base_lr);
  r.f64(cfg.max_lr);
  r.u64(lr_cycle);
  r.f64(cfg.weight_decay);
  r.f64(cfg.mae_target_seconds);
  r.u64(patience);
  r.u64(cfg.seed);
  r.u64(unlock_f_after);
  r.u8(unlock_immediately);
  r.u8(train_ae);
  r.u64(batch_size);
  if (!r.ok()) return WireStatus::kTruncated;
  if (unlock_immediately > 1 || train_ae > 1) return WireStatus::kMalformed;
  cfg.max_epochs = static_cast<std::size_t>(max_epochs);
  cfg.lr_cycle = static_cast<std::size_t>(lr_cycle);
  cfg.patience = static_cast<std::size_t>(patience);
  cfg.unlock_f_after = static_cast<std::size_t>(unlock_f_after);
  cfg.unlock_f_immediately = unlock_immediately != 0;
  cfg.train_autoencoder = train_ae != 0;
  cfg.batch_size = static_cast<std::size_t>(batch_size);
  return WireStatus::kOk;
}

void encode_metrics(WireWriter& w, const serve::ServeMetrics& m) {
  w.u64(m.requests);
  w.u64(m.responses);
  w.u64(m.batches);
  w.u64(m.coalesced);
  w.u64(m.deadline_flushes);
  w.u64(m.drain_flushes);
  w.u64(m.coalesced_requests);
  w.u64(m.max_queue_depth);
  w.u64(m.queue_depth);
  w.u64(m.replica_hits);
  w.u64(m.replica_misses);
  w.u64(m.replica_invalidations);
  w.u64(m.effective_flush_deadline_us);
  w.f64(m.interarrival_ewma_us);
  w.u64(m.max_dispatch_lag_us);
  w.u64(m.starved_flushes);
  w.u64(m.latency_count);
  w.u64(m.latency_p50_us);
  w.u64(m.latency_p95_us);
  w.u64(m.latency_p99_us);
  w.f64(m.drift_error_ewma);
  w.u64(m.drift_reports);
  w.u64(m.drift_refits);
  w.u64(m.reductions);
  w.u64(m.reduction_runs_dropped);
  w.u64(m.reduction_last_kept);
}

WireStatus decode_metrics(WireReader& r, serve::ServeMetrics& m) {
  r.u64(m.requests);
  r.u64(m.responses);
  r.u64(m.batches);
  r.u64(m.coalesced);
  r.u64(m.deadline_flushes);
  r.u64(m.drain_flushes);
  r.u64(m.coalesced_requests);
  r.u64(m.max_queue_depth);
  r.u64(m.queue_depth);
  r.u64(m.replica_hits);
  r.u64(m.replica_misses);
  r.u64(m.replica_invalidations);
  r.u64(m.effective_flush_deadline_us);
  r.f64(m.interarrival_ewma_us);
  r.u64(m.max_dispatch_lag_us);
  r.u64(m.starved_flushes);
  r.u64(m.latency_count);
  r.u64(m.latency_p50_us);
  r.u64(m.latency_p95_us);
  r.u64(m.latency_p99_us);
  r.f64(m.drift_error_ewma);
  r.u64(m.drift_reports);
  r.u64(m.drift_refits);
  r.u64(m.reductions);
  r.u64(m.reduction_runs_dropped);
  r.u64(m.reduction_last_kept);
  return reader_status(r);
}

void encode_digest_entries(WireWriter& w, const std::vector<DigestEntry>& entries) {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const DigestEntry& entry : entries) {
    encode_key(w, entry.key);
    w.u64(entry.stamp);
  }
}

WireStatus decode_digest_entries(WireReader& r, std::vector<DigestEntry>& entries) {
  std::uint32_t count = 0;
  if (!r.u32(count)) return WireStatus::kTruncated;
  entries.clear();
  entries.reserve(std::min(count, kMaxEagerReserve));
  for (std::uint32_t i = 0; i < count; ++i) {
    DigestEntry entry;
    const WireStatus status = decode_key(r, entry.key);
    if (status != WireStatus::kOk) return status;
    if (!r.u64(entry.stamp)) return WireStatus::kTruncated;
    if (entry.stamp == 0) return WireStatus::kMalformed;  // 0 = "absent", never catalogued
    entries.push_back(std::move(entry));
  }
  return WireStatus::kOk;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

void PredictRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_key(w, key);
  encode_job_run(w, query);
}

WireStatus PredictRequest::decode(WireReader& r) {
  r.u64(request_id);
  WireStatus status = decode_key(r, key);
  if (status != WireStatus::kOk) return status;
  return decode_job_run(r, query);
}

void PredictManyRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_key(w, key);
  encode_job_runs(w, queries);
}

WireStatus PredictManyRequest::decode(WireReader& r) {
  r.u64(request_id);
  WireStatus status = decode_key(r, key);
  if (status != WireStatus::kOk) return status;
  return decode_job_runs(r, queries);
}

void PublishRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_key(w, key);
  w.str(checkpoint_text);
}

WireStatus PublishRequest::decode(WireReader& r) {
  r.u64(request_id);
  const WireStatus status = decode_key(r, key);
  if (status != WireStatus::kOk) return status;
  r.str(checkpoint_text);
  return reader_status(r);
}

void RefitAsyncRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_key(w, key);
  encode_job_runs(w, runs);
  encode_finetune_config(w, config);
  w.u8(strategy);
}

WireStatus RefitAsyncRequest::decode(WireReader& r) {
  r.u64(request_id);
  WireStatus status = decode_key(r, key);
  if (status != WireStatus::kOk) return status;
  status = decode_job_runs(r, runs);
  if (status != WireStatus::kOk) return status;
  status = decode_finetune_config(r, config);
  if (status != WireStatus::kOk) return status;
  if (!r.u8(strategy)) return WireStatus::kTruncated;
  if (strategy > kMaxReuseStrategy) return WireStatus::kMalformed;
  return WireStatus::kOk;
}

void MetricsRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_key(w, key);
}

WireStatus MetricsRequest::decode(WireReader& r) {
  r.u64(request_id);
  return decode_key(r, key);
}

void SetQosRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_key(w, key);
  w.u8(qos_class);
  w.f64(weight);
  w.u64(max_lag_us);
}

WireStatus SetQosRequest::decode(WireReader& r) {
  r.u64(request_id);
  const WireStatus status = decode_key(r, key);
  if (status != WireStatus::kOk) return status;
  r.u8(qos_class);
  r.f64(weight);
  r.u64(max_lag_us);
  if (!r.ok()) return WireStatus::kTruncated;
  if (qos_class > kMaxQosClass) return WireStatus::kMalformed;
  return WireStatus::kOk;
}

void EraseRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_key(w, key);
}

WireStatus EraseRequest::decode(WireReader& r) {
  r.u64(request_id);
  return decode_key(r, key);
}

void DrainRequest::encode(WireWriter& w) const { w.u64(request_id); }

WireStatus DrainRequest::decode(WireReader& r) {
  r.u64(request_id);
  return reader_status(r);
}

void AdvertiseRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_digest_entries(w, entries);
}

WireStatus AdvertiseRequest::decode(WireReader& r) {
  r.u64(request_id);
  return decode_digest_entries(r, entries);
}

void DigestRequest::encode(WireWriter& w) const { w.u64(request_id); }

WireStatus DigestRequest::decode(WireReader& r) {
  r.u64(request_id);
  return reader_status(r);
}

void PullRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_key(w, key);
}

WireStatus PullRequest::decode(WireReader& r) {
  r.u64(request_id);
  return decode_key(r, key);
}

void ReportRunRequest::encode(WireWriter& w) const {
  w.u64(request_id);
  encode_key(w, key);
  encode_job_run(w, run);
}

WireStatus ReportRunRequest::decode(WireReader& r) {
  r.u64(request_id);
  const WireStatus status = decode_key(r, key);
  if (status != WireStatus::kOk) return status;
  return decode_job_run(r, run);
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

void ResponseHead::encode(WireWriter& w) const {
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(status));
  w.str(message);
}

WireStatus ResponseHead::decode(WireReader& r) {
  std::uint8_t raw_status = 0;
  r.u64(request_id);
  r.u8(raw_status);
  r.str(message);
  if (!r.ok()) return WireStatus::kTruncated;
  if (raw_status > kMaxServeStatus) return WireStatus::kMalformed;
  status = static_cast<serve::ServeStatus>(raw_status);
  return WireStatus::kOk;
}

void PredictResponse::encode(WireWriter& w) const {
  head.encode(w);
  w.f64(value);
}

WireStatus PredictResponse::decode(WireReader& r) {
  const WireStatus status = head.decode(r);
  if (status != WireStatus::kOk) return status;
  r.f64(value);
  return reader_status(r);
}

void PredictManyResponse::encode(WireWriter& w) const {
  head.encode(w);
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (double v : values) w.f64(v);
}

WireStatus PredictManyResponse::decode(WireReader& r) {
  const WireStatus status = head.decode(r);
  if (status != WireStatus::kOk) return status;
  std::uint32_t count = 0;
  if (!r.u32(count)) return WireStatus::kTruncated;
  values.clear();
  values.reserve(std::min(count, kMaxEagerReserve));
  for (std::uint32_t i = 0; i < count; ++i) {
    double v = 0.0;
    if (!r.f64(v)) return WireStatus::kTruncated;
    values.push_back(v);
  }
  return WireStatus::kOk;
}

void PublishResponse::encode(WireWriter& w) const { head.encode(w); }

WireStatus PublishResponse::decode(WireReader& r) { return head.decode(r); }

void RefitResponse::encode(WireWriter& w) const {
  head.encode(w);
  w.u64(epochs_run);
  w.f64(best_mae_seconds);
  w.u8(reached_target);
  w.f64(fit_seconds);
}

WireStatus RefitResponse::decode(WireReader& r) {
  const WireStatus status = head.decode(r);
  if (status != WireStatus::kOk) return status;
  r.u64(epochs_run);
  r.f64(best_mae_seconds);
  r.u8(reached_target);
  r.f64(fit_seconds);
  if (!r.ok()) return WireStatus::kTruncated;
  if (reached_target > 1) return WireStatus::kMalformed;
  return WireStatus::kOk;
}

void MetricsResponse::encode(WireWriter& w) const {
  head.encode(w);
  encode_metrics(w, metrics);
}

WireStatus MetricsResponse::decode(WireReader& r) {
  const WireStatus status = head.decode(r);
  if (status != WireStatus::kOk) return status;
  return decode_metrics(r, metrics);
}

void SetQosResponse::encode(WireWriter& w) const { head.encode(w); }

WireStatus SetQosResponse::decode(WireReader& r) { return head.decode(r); }

void EraseResponse::encode(WireWriter& w) const { head.encode(w); }

WireStatus EraseResponse::decode(WireReader& r) { return head.decode(r); }

void DrainResponse::encode(WireWriter& w) const { head.encode(w); }

WireStatus DrainResponse::decode(WireReader& r) { return head.decode(r); }

void AdvertiseResponse::encode(WireWriter& w) const { head.encode(w); }

WireStatus AdvertiseResponse::decode(WireReader& r) { return head.decode(r); }

void DigestResponse::encode(WireWriter& w) const {
  head.encode(w);
  encode_digest_entries(w, entries);
}

WireStatus DigestResponse::decode(WireReader& r) {
  const WireStatus status = head.decode(r);
  if (status != WireStatus::kOk) return status;
  return decode_digest_entries(r, entries);
}

void PullResponse::encode(WireWriter& w) const {
  head.encode(w);
  w.u64(stamp);
  w.str(checkpoint_text);
}

WireStatus PullResponse::decode(WireReader& r) {
  const WireStatus status = head.decode(r);
  if (status != WireStatus::kOk) return status;
  r.u64(stamp);
  r.str(checkpoint_text);
  if (!r.ok()) return WireStatus::kTruncated;
  // A successful pull must carry a real catalog stamp; error responses leave
  // the payload fields zeroed.
  if (head.ok() && stamp == 0) return WireStatus::kMalformed;
  return WireStatus::kOk;
}

void ReportRunResponse::encode(WireWriter& w) const {
  head.encode(w);
  w.f64(error_ewma);
  w.u64(reports);
  w.u8(refit_triggered);
}

WireStatus ReportRunResponse::decode(WireReader& r) {
  const WireStatus status = head.decode(r);
  if (status != WireStatus::kOk) return status;
  r.f64(error_ewma);
  r.u64(reports);
  r.u8(refit_triggered);
  if (!r.ok()) return WireStatus::kTruncated;
  if (refit_triggered > 1) return WireStatus::kMalformed;
  return WireStatus::kOk;
}

// ---------------------------------------------------------------------------
// Frame parsing
// ---------------------------------------------------------------------------

WireStatus parse_body(const std::uint8_t* data, std::size_t size, FrameView& out) {
  WireReader r(data, size);
  if (!r.u16(out.version) || !r.u16(out.type)) return WireStatus::kTruncated;
  // Version first: an old-version peer must hear the honest kVersionMismatch,
  // not a checksum complaint about a trailer it never wrote.
  if (out.version != kWireVersion) return WireStatus::kVersionMismatch;
  if (size < 4 + kFrameChecksumBytes) return WireStatus::kTruncated;
  // Checksum before the type: a corrupted type byte is CORRUPTION, not an
  // unknown message — only checksum-clean bytes reach any further decoding.
  const std::size_t body_size = size - kFrameChecksumBytes;
  std::uint64_t stored = 0;
  std::memcpy(&stored, data + body_size, sizeof stored);
  if (util::fnv1a64_bytes(data, body_size) != stored) return WireStatus::kChecksumMismatch;
  if (!is_known_type(out.type)) return WireStatus::kUnknownType;
  out.payload = data + 4;
  out.payload_size = body_size - 4;
  return WireStatus::kOk;
}

WireStatus parse_frame(const std::uint8_t* data, std::size_t size, FrameView& out) {
  WireReader r(data, size);
  std::uint32_t len = 0;
  if (!r.u32(len)) return WireStatus::kTruncated;
  if (len > kMaxFrameBytes) return WireStatus::kOversizedFrame;
  // Cannot even hold version + type + checksum.
  if (len < 4 + kFrameChecksumBytes) return WireStatus::kOversizedFrame;
  if (size - 4 < len) return WireStatus::kTruncated;
  if (size - 4 > len) return WireStatus::kTrailingBytes;
  return parse_body(data + 4, len, out);
}

}  // namespace bellamy::net
