#include "net/server.hpp"

#include <chrono>
#include <deque>
#include <future>
#include <sstream>
#include <utility>

#include "core/bellamy_model.hpp"
#include "nn/serialize.hpp"

namespace bellamy::net {

namespace {

/// Encoded-frame helper for the common "head-only or head+payload computed
/// on the reader thread" responses.
template <typename Msg>
std::vector<std::uint8_t> frame_of(const Msg& msg) {
  return encode_frame(msg);
}

ResponseHead head_of(std::uint64_t request_id, serve::ServeStatus status,
                     std::string message = {}) {
  ResponseHead head;
  head.request_id = request_id;
  head.status = status;
  head.message = std::move(message);
  return head;
}

}  // namespace

/// One client connection.  The outbound queue is the only shared state
/// between reader and writer; `closing` latches once and both threads wind
/// down.  Owned by shared_ptr so the refit completion callback can hold a
/// weak_ptr: a refit finishing after the client left must drop its event,
/// not write to a dead socket.
struct ServeServer::Connection : std::enable_shared_from_this<Connection> {
  /// One queued response, FIFO.  kBytes is fully encoded; kPredict /
  /// kPredictMany carry unresolved futures the WRITER harvests (so the
  /// reader never blocks on a micro-batch); kDrain closes the connection
  /// after a DrainResponse; kClose closes it silently.
  struct Outbound {
    enum class Kind : std::uint8_t { kBytes, kPredict, kPredictMany, kDrain, kClose };
    Kind kind = Kind::kBytes;
    std::vector<std::uint8_t> bytes;
    std::uint64_t request_id = 0;
    std::future<serve::ServeResult<double>> future;
    std::vector<std::future<serve::ServeResult<double>>> futures;
  };

  explicit Connection(Socket s) : sock(std::move(s)) {}

  /// Reader-side push: blocks while the queue is at the pipeline bound
  /// (slow-client backpressure).  Returns false when the connection is
  /// already closing.
  bool push(Outbound item, std::size_t max_pipeline) {
    std::unique_lock<std::mutex> lock(mutex);
    space_cv.wait(lock, [&] { return closing || outbound.size() < max_pipeline; });
    if (closing) return false;
    outbound.push_back(std::move(item));
    items_cv.notify_one();
    return true;
  }

  /// Event-side push (refit completions): never blocks — the refit strand
  /// must not stall on a slow client — so these bypass the pipeline bound.
  /// Events are rare and small; the bound exists to stop request floods.
  bool push_event(std::vector<std::uint8_t> bytes) {
    std::lock_guard<std::mutex> lock(mutex);
    if (closing) return false;
    Outbound item;
    item.kind = Outbound::Kind::kBytes;
    item.bytes = std::move(bytes);
    outbound.push_back(std::move(item));
    items_cv.notify_one();
    return true;
  }

  /// Latch closing and wake both threads; the socket shutdown unblocks a
  /// reader parked in read_exact.
  void begin_close() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (closing) return;
      closing = true;
    }
    items_cv.notify_all();
    space_cv.notify_all();
    sock.shutdown_both();
  }

  Socket sock;
  std::thread reader;
  std::thread writer;

  std::mutex mutex;
  std::condition_variable items_cv;  ///< writer waits: queue has items / closing
  std::condition_variable space_cv;  ///< reader waits: queue has room / closing
  std::deque<Outbound> outbound;
  bool closing = false;
  std::atomic<int> threads_done{0};  ///< 2 = fully finished, safe to reap
};

ServeServer::ServeServer(serve::ModelRegistry& registry, serve::PredictionService& service,
                         ServerOptions options)
    : registry_(registry), service_(service), options_(options) {}

ServeServer::~ServeServer() { stop(); }

bool ServeServer::start(std::string& error) {
  listener_ = tcp_listen(options_.port, port_, error);
  if (!listener_) return false;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void ServeServer::accept_loop() {
  while (true) {
    AcceptStatus status = AcceptStatus::kOk;
    Socket client = tcp_accept(listener_, &status);
    if (!client) {
      if (status == AcceptStatus::kTransient && !draining_.load()) {
        // Resource pressure (EMFILE, ECONNABORTED, ...): the listener is
        // fine, the daemon must not die.  Count it, back off, try again.
        accept_retries_.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listener shut down (drain/stop) or unusable
    }
    if (draining_.load()) continue;  // socket closes immediately: not accepting
    client.set_deadlines(options_.deadlines);
    if (options_.fault_injector) client.set_fault_injector(options_.fault_injector);
    auto conn = std::make_shared<Connection>(std::move(client));
    accepted_.fetch_add(1);
    open_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      connections_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
    reap_connections(false);
  }
}

void ServeServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint8_t> body;
  while (true) {
    // An idle connection is legal for any length of time; the stall budget
    // starts once a frame does.
    if (conn->sock.wait_readable(kWaitForever) != IoStatus::kOk) break;
    std::uint8_t prefix[4];
    IoStatus io = conn->sock.read_exact(prefix, sizeof prefix);
    if (io != IoStatus::kOk) {  // EOF / closed / stalled
      if (io == IoStatus::kTimeout) io_timeouts_.fetch_add(1);
      break;
    }
    std::uint32_t len = 0;
    {
      WireReader r(prefix, sizeof prefix);
      r.u32(len);
    }
    if (len < 4 || len > kMaxFrameBytes) {
      protocol_errors_.fetch_add(1);
      break;
    }
    body.resize(len);
    io = conn->sock.read_exact(body.data(), len);
    if (io != IoStatus::kOk) {
      if (io == IoStatus::kTimeout) io_timeouts_.fetch_add(1);
      break;
    }

    FrameView frame;
    const WireStatus status = parse_body(body.data(), body.size(), frame);
    if (status != WireStatus::kOk) {
      protocol_errors_.fetch_add(1);
      break;
    }
    frames_in_.fetch_add(1);
    if (!dispatch(conn, frame)) break;
  }
  // Reader is done (clean drain, peer gone, or protocol error): flush what
  // is queued, then close.
  Connection::Outbound close_marker;
  close_marker.kind = Connection::Outbound::Kind::kClose;
  conn->push(std::move(close_marker), options_.max_pipeline + 1);
  if (conn->threads_done.fetch_add(1) + 1 == 2) note_connection_closed();
}

serve::ServeResult<serve::ModelHandle> ServeServer::resolve_key(const serve::ModelKey& key) {
  auto handle = registry_.find(key);
  if (handle.ok() || options_.peer_service == nullptr) return handle;
  // Pull-on-miss: a key this node has never seen may live on a peer.  May
  // block on peer I/O — stalling exactly the connection that asked, which
  // matches the rest of the backpressure story.
  return options_.peer_service->open_on_miss(key);
}

bool ServeServer::dispatch(const std::shared_ptr<Connection>& conn, const FrameView& frame) {
  const auto type = static_cast<MsgType>(frame.type);
  switch (type) {
    case MsgType::kPredictRequest: {
      PredictRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      Connection::Outbound item;
      item.request_id = req.request_id;
      const auto handle = resolve_key(req.key);
      if (!handle.ok()) {
        PredictResponse resp;
        resp.head = head_of(req.request_id, handle.status(), handle.message());
        item.kind = Connection::Outbound::Kind::kBytes;
        item.bytes = frame_of(resp);
      } else {
        item.kind = Connection::Outbound::Kind::kPredict;
        // May block on the handle's bounded lane: service backpressure
        // lands on this connection's reader, which is the point.
        item.future = service_.predict_async(handle.value(), req.query);
      }
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kPredictManyRequest: {
      PredictManyRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      Connection::Outbound item;
      item.request_id = req.request_id;
      const auto handle = resolve_key(req.key);
      if (!handle.ok()) {
        PredictManyResponse resp;
        resp.head = head_of(req.request_id, handle.status(), handle.message());
        item.kind = Connection::Outbound::Kind::kBytes;
        item.bytes = frame_of(resp);
      } else {
        item.kind = Connection::Outbound::Kind::kPredictMany;
        item.futures.reserve(req.queries.size());
        for (const data::JobRun& query : req.queries) {
          item.futures.push_back(service_.predict_async(handle.value(), query));
        }
      }
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kPublishRequest: {
      PublishRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      PublishResponse resp;
      try {
        std::istringstream in(req.checkpoint_text);
        const nn::Checkpoint ckpt = nn::Checkpoint::load(in);
        const core::BellamyModel model = core::BellamyModel::from_checkpoint(ckpt);
        const auto published = registry_.publish(req.key, model);
        resp.head = head_of(req.request_id, published.status(), published.message());
        if (published.ok() && options_.peer_service != nullptr) {
          options_.peer_service->note_published(req.key);
        }
      } catch (const std::exception& e) {
        resp.head = head_of(req.request_id, serve::ServeStatus::kInvalidArgument,
                            std::string("bad checkpoint: ") + e.what());
      }
      Connection::Outbound item;
      item.bytes = frame_of(resp);
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kRefitAsyncRequest: {
      RefitAsyncRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      const auto handle = resolve_key(req.key);
      if (!handle.ok()) {
        RefitResponse resp;
        resp.head = head_of(req.request_id, handle.status(), handle.message());
        Connection::Outbound item;
        item.bytes = frame_of(resp);
        return conn->push(std::move(item), options_.max_pipeline);
      }
      // The response is DEFERRED: pushed when the background refit lands.
      // weak_ptr: a connection that closed meanwhile drops the event.  The
      // peer hook is notified first so the new weights get a fresh catalog
      // stamp (kStoreError still means the swap landed — auto-persist
      // failures never roll it back).
      std::weak_ptr<Connection> weak = conn;
      const std::uint64_t request_id = req.request_id;
      PeerService* peer = options_.peer_service;
      const serve::ModelKey key = req.key;
      registry_.refit_async(
          handle.value(), std::move(req.runs), req.config,
          static_cast<core::ReuseStrategy>(req.strategy),
          [weak, request_id, peer, key](const serve::ServeResult<core::FineTuneResult>& result) {
            if (peer != nullptr &&
                (result.ok() || result.status() == serve::ServeStatus::kStoreError)) {
              peer->note_refit(key);
            }
            const std::shared_ptr<Connection> conn = weak.lock();
            if (!conn) return;
            RefitResponse resp;
            resp.head = head_of(request_id, result.status(), result.message());
            if (result.ok()) {
              const core::FineTuneResult& fit = result.value();
              resp.epochs_run = static_cast<std::uint64_t>(fit.epochs_run);
              resp.best_mae_seconds = fit.best_mae_seconds;
              resp.reached_target = fit.reached_target ? 1 : 0;
              resp.fit_seconds = fit.fit_seconds;
            }
            conn->push_event(encode_frame(resp));
          });
      return true;
    }

    case MsgType::kMetricsRequest: {
      MetricsRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      MetricsResponse resp;
      const auto handle = resolve_key(req.key);
      if (!handle.ok()) {
        resp.head = head_of(req.request_id, handle.status(), handle.message());
      } else {
        const auto metrics = service_.metrics(handle.value());
        resp.head = head_of(req.request_id, metrics.status(), metrics.message());
        if (metrics.ok()) {
          resp.metrics = metrics.value();
          // Refit-economics counters ride the same snapshot: drift from the
          // monitor (when one is wired), reduction from the registry entry.
          if (options_.drift_monitor != nullptr) {
            options_.drift_monitor->annotate(handle.value(), resp.metrics);
          }
          const auto [reductions, dropped] = registry_.reduction_counters(handle.value());
          resp.metrics.reductions = reductions;
          resp.metrics.reduction_runs_dropped = dropped;
          resp.metrics.reduction_last_kept =
              registry_.last_reduction(handle.value()).kept_runs;
        }
      }
      Connection::Outbound item;
      item.bytes = frame_of(resp);
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kSetQosRequest: {
      SetQosRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      SetQosResponse resp;
      const auto handle = resolve_key(req.key);
      if (!handle.ok()) {
        resp.head = head_of(req.request_id, handle.status(), handle.message());
      } else {
        serve::HandleQos qos;
        qos.qos = static_cast<serve::QosClass>(req.qos_class);
        qos.weight = req.weight;
        qos.max_lag = std::chrono::microseconds(req.max_lag_us);
        const auto set = service_.set_qos(handle.value(), qos);
        resp.head = head_of(req.request_id, set.status(), set.message());
      }
      Connection::Outbound item;
      item.bytes = frame_of(resp);
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kEraseRequest: {
      EraseRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      EraseResponse resp;
      const auto handle = registry_.find(req.key);
      if (!handle.ok()) {
        resp.head = head_of(req.request_id, handle.status(), handle.message());
      } else {
        const auto erased = registry_.erase(handle.value());
        resp.head = head_of(req.request_id, erased.status(), erased.message());
      }
      Connection::Outbound item;
      item.bytes = frame_of(resp);
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kAdvertiseRequest: {
      AdvertiseRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      AdvertiseResponse resp;
      if (options_.peer_service == nullptr) {
        resp.head = head_of(req.request_id, serve::ServeStatus::kInvalidArgument,
                            "advertise: this node has no exchange layer configured");
      } else {
        // Fire-and-forget gossip: the hook only schedules pulls, so the
        // reader is never parked on peer I/O here.
        options_.peer_service->on_advertise(req.entries);
        resp.head = head_of(req.request_id, serve::ServeStatus::kOk);
      }
      Connection::Outbound item;
      item.bytes = frame_of(resp);
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kDigestRequest: {
      DigestRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      DigestResponse resp;
      if (options_.peer_service == nullptr) {
        resp.head = head_of(req.request_id, serve::ServeStatus::kInvalidArgument,
                            "digest: this node has no exchange layer configured");
      } else {
        resp.head = head_of(req.request_id, serve::ServeStatus::kOk);
        resp.entries = options_.peer_service->digest_entries();
      }
      Connection::Outbound item;
      item.bytes = frame_of(resp);
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kPullRequest: {
      PullRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      PullResponse resp;
      if (options_.peer_service == nullptr) {
        resp.head = head_of(req.request_id, serve::ServeStatus::kInvalidArgument,
                            "pull: this node has no exchange layer configured");
      } else {
        auto pulled = options_.peer_service->pull_model(req.key);
        resp.head = head_of(req.request_id, pulled.status(), pulled.message());
        if (pulled.ok()) {
          resp.stamp = pulled.value().stamp;
          resp.checkpoint_text = std::move(pulled.value().checkpoint_text);
        }
      }
      Connection::Outbound item;
      item.bytes = frame_of(resp);
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kReportRunRequest: {
      ReportRunRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      ReportRunResponse resp;
      if (options_.drift_monitor == nullptr) {
        resp.head = head_of(req.request_id, serve::ServeStatus::kInvalidArgument,
                            "report_run: this node has no drift monitor configured");
      } else {
        const auto handle = resolve_key(req.key);
        if (!handle.ok()) {
          resp.head = head_of(req.request_id, handle.status(), handle.message());
        } else {
          // May queue a refit on the entry's strand; the report itself is one
          // replica-lease prediction, cheap enough for the reader thread.
          const auto observed = options_.drift_monitor->report(handle.value(), req.run);
          resp.head = head_of(req.request_id, observed.status(), observed.message());
          if (observed.ok()) {
            resp.error_ewma = observed.value().error_ewma;
            resp.reports = observed.value().reports;
            resp.refit_triggered = observed.value().refit_triggered ? 1 : 0;
          }
        }
      }
      Connection::Outbound item;
      item.bytes = frame_of(resp);
      return conn->push(std::move(item), options_.max_pipeline);
    }

    case MsgType::kDrainRequest: {
      DrainRequest req;
      if (decode_message(frame, req) != WireStatus::kOk) return protocol_error();
      // Queue the DrainResponse FIRST (it flushes after everything already
      // queued), then drain the service: by the time the writer reaches the
      // marker, every queued future has resolved.
      Connection::Outbound item;
      item.kind = Connection::Outbound::Kind::kDrain;
      item.request_id = req.request_id;
      conn->push(std::move(item), options_.max_pipeline + 1);
      begin_drain();
      return false;  // reader done; writer closes after the DrainResponse
    }

    default:
      return protocol_error();
  }
}

bool ServeServer::protocol_error() {
  protocol_errors_.fetch_add(1);
  return false;
}

void ServeServer::writer_loop(const std::shared_ptr<Connection>& conn) {
  bool alive = true;
  while (true) {
    Connection::Outbound item;
    {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->items_cv.wait(lock, [&] { return !conn->outbound.empty() || conn->closing; });
      if (conn->outbound.empty()) break;  // closing with nothing left
      item = std::move(conn->outbound.front());
      conn->outbound.pop_front();
      conn->space_cv.notify_one();
    }

    using Kind = Connection::Outbound::Kind;
    if (item.kind == Kind::kClose) break;

    std::vector<std::uint8_t> bytes;
    switch (item.kind) {
      case Kind::kBytes:
        bytes = std::move(item.bytes);
        break;
      case Kind::kPredict: {
        const serve::ServeResult<double> result = item.future.get();
        PredictResponse resp;
        resp.head = head_of(item.request_id, result.status(), result.message());
        if (result.ok()) resp.value = result.value();
        bytes = frame_of(resp);
        break;
      }
      case Kind::kPredictMany: {
        PredictManyResponse resp;
        resp.head = head_of(item.request_id, serve::ServeStatus::kOk);
        resp.values.reserve(item.futures.size());
        for (std::future<serve::ServeResult<double>>& f : item.futures) {
          serve::ServeResult<double> result = f.get();
          if (result.ok()) {
            resp.values.push_back(result.value());
          } else if (resp.head.ok()) {
            // First failure wins, matching predict_many(); later futures
            // are still harvested so nothing is left dangling.
            resp.head = head_of(item.request_id, result.status(), result.message());
            resp.values.clear();
          }
        }
        if (!resp.head.ok()) resp.values.clear();
        bytes = frame_of(resp);
        break;
      }
      case Kind::kDrain: {
        DrainResponse resp;
        resp.head = head_of(item.request_id, serve::ServeStatus::kOk);
        bytes = frame_of(resp);
        break;
      }
      case Kind::kClose:
        break;  // handled above
    }

    if (alive && !bytes.empty()) {
      const IoStatus io = conn->sock.write_all(bytes.data(), bytes.size());
      if (io == IoStatus::kOk) {
        frames_out_.fetch_add(1);
      } else {
        // A client that stopped reading past the write budget is as gone as
        // one that closed.  Keep harvesting futures, stop writing.
        if (io == IoStatus::kTimeout) io_timeouts_.fetch_add(1);
        alive = false;
      }
    }
    if (item.kind == Kind::kDrain) break;  // DrainResponse is the last frame
  }
  conn->begin_close();
  if (conn->threads_done.fetch_add(1) + 1 == 2) note_connection_closed();
}

void ServeServer::begin_drain() {
  std::call_once(drain_once_, [this] {
    draining_.store(true);
    listener_.shutdown_both();  // accept loop wakes and exits
    // Every accepted request resolves here (PredictionService::stop drains
    // all lanes before joining the workers) — the writers' queued futures
    // all become ready.
    service_.stop();
    // Flush-and-close every connection that is not already winding down.
    std::vector<std::shared_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      conns = connections_;
    }
    for (const auto& conn : conns) {
      Connection::Outbound item;
      item.kind = Connection::Outbound::Kind::kClose;
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (!conn->closing) {
        conn->outbound.push_back(std::move(item));
        conn->items_cv.notify_all();
      }
    }
  });
}

void ServeServer::wait_drained() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return draining_.load() && open_.load() == 0; });
}

void ServeServer::note_connection_closed() {
  open_.fetch_sub(1);
  std::lock_guard<std::mutex> lock(mutex_);
  drained_cv_.notify_all();
}

void ServeServer::reap_connections(bool join_all) {
  std::vector<std::shared_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (join_all || (*it)->threads_done.load() == 2) {
        done.push_back(*it);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : done) {
    if (join_all) conn->begin_close();
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
}

void ServeServer::stop() {
  std::call_once(stop_once_, [this] {
    begin_drain();
    if (accept_thread_.joinable()) accept_thread_.join();
    reap_connections(true);
    listener_.close();
  });
}

ServerStats ServeServer::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load();
  s.connections_open = open_.load();
  s.frames_in = frames_in_.load();
  s.frames_out = frames_out_.load();
  s.protocol_errors = protocol_errors_.load();
  s.accept_retries = accept_retries_.load();
  s.io_timeouts = io_timeouts_.load();
  s.draining = draining_.load();
  return s;
}

}  // namespace bellamy::net
