#pragma once
// NetClient: the typed client of the Bellamy wire protocol.
//
// One TCP connection, full-duplex: a send mutex serializes frame writes, a
// background reader thread correlates every inbound response to its pending
// request by request_id.  That makes the client PIPELINED by construction —
// predict_async() keeps any number of requests in flight (the loadgen's
// closed-loop windows), while the sync calls are just async + wait.
//
// Error contract mirrors the serve layer: every operation returns a
// ServeResult.  Server-side failures arrive as the response's ServeStatus;
// transport failures (connection lost, protocol garbage) surface as
// kShutdown / kInternalError with the transport reason in the message, and
// a lost connection fails ALL pending requests — nothing hangs.
//
// DEADLINES (ClientOptions::deadlines): `connect` bounds the dial, `read`/
// `write` bound socket stalls, and `request` is the end-to-end budget per
// request — a request whose response has not been matched within it fails
// with the typed kTimeout (the eventual late response, if any, is dropped
// by id).  Expiry is checked at `request` granularity, so a timed-out
// request resolves within 2x the configured budget in the worst case.
// When `request` is set but `read`/`write` are not, the socket stall
// budgets default to the request budget — otherwise a mid-frame stall
// (e.g. a corrupted length prefix) would park the reader, and with it
// every pending deadline, past any bound.  `dial_retry` retries connect()
// with seeded exponential backoff.
//
// refit() is synchronous from the caller's view but non-blocking on the
// server: the RefitResponse is pushed when the background fine-tune lands,
// and may arrive long after (and out of order with) later predict traffic.

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/bellamy_model.hpp"
#include "core/trainer.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "serve/drift_monitor.hpp"
#include "serve/model_registry.hpp"
#include "serve/prediction_service.hpp"
#include "serve/serve_result.hpp"
#include "util/retry.hpp"

namespace bellamy::net {

struct ClientOptions {
  /// Socket + per-request budgets; all 0 (unbounded) by default.
  DeadlineOptions deadlines;
  /// Dial retry policy for connect().  max_attempts = 1 (the default here)
  /// keeps connect() single-shot.
  util::RetryPolicy dial_retry{.max_attempts = 1};
  /// Chaos seam: installed on the connected socket (tests only).
  std::shared_ptr<FaultInjector> fault_injector;
};

class NetClient {
 public:
  NetClient() = default;
  explicit NetClient(ClientOptions options) : options_(std::move(options)) {}
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connect to host:port (hostname or numeric address; resolved via
  /// getaddrinfo, IPv4 preferred), bounded by the connect deadline and
  /// retried per dial_retry.  False with the reason in `error`.  A
  /// NetClient connects once; make a new one to reconnect.
  bool connect(const std::string& host, std::uint16_t port, std::string& error);
  bool connected() const;

  /// Dial retries burned by connect() (0 when the first attempt landed).
  std::uint64_t dial_retries() const { return dial_retries_; }

  /// Close the connection; every pending request fails with kShutdown.
  /// Idempotent; the destructor calls it.
  void close();

  // -- serving calls (any thread; sync calls block until the response) --

  serve::ServeResult<double> predict(const serve::ModelKey& key, const data::JobRun& query);
  std::future<serve::ServeResult<double>> predict_async(const serve::ModelKey& key,
                                                        const data::JobRun& query);
  serve::ServeResult<std::vector<double>> predict_many(
      const serve::ModelKey& key, const std::vector<data::JobRun>& queries);
  std::future<serve::ServeResult<std::vector<double>>> predict_many_async(
      const serve::ModelKey& key, const std::vector<data::JobRun>& queries);

  /// Serialize the model's checkpoint and install it under `key` on the
  /// server (same text format as the ModelStore: the server-side model is
  /// bit-identical to `model`).
  serve::ServeResult<serve::Unit> publish(const serve::ModelKey& key,
                                          const core::BellamyModel& model);

  /// Queue a background refit on the server and WAIT for its completion
  /// event.  Other traffic on this connection proceeds meanwhile.
  serve::ServeResult<core::FineTuneResult> refit(
      const serve::ModelKey& key, const std::vector<data::JobRun>& runs,
      const core::FineTuneConfig& config,
      core::ReuseStrategy strategy = core::ReuseStrategy::kPartialUnfreeze);

  serve::ServeResult<serve::ServeMetrics> metrics(const serve::ModelKey& key);

  /// Report an OBSERVED runtime for `key` (run.runtime_s = ground truth):
  /// feeds the server's drift monitor, which may auto-queue a reduced refit.
  /// kInvalidArgument when the server has no drift monitor configured.
  serve::ServeResult<serve::DriftObservation> report_run(const serve::ModelKey& key,
                                                         const data::JobRun& run);
  serve::ServeResult<serve::Unit> set_qos(const serve::ModelKey& key,
                                          const serve::HandleQos& qos);
  serve::ServeResult<serve::Unit> erase(const serve::ModelKey& key);

  /// Ask the server to drain: resolves once the DrainResponse arrives,
  /// i.e. after every response this connection was owed has been received.
  serve::ServeResult<serve::Unit> drain();

  // -- exchange calls (node-to-node checkpoint gossip; the server answers
  //    kInvalidArgument when it has no exchange layer attached) --

  /// The peer's catalog: every (key, stamp) it can serve a pull for.
  serve::ServeResult<std::vector<DigestEntry>> digest();

  /// Fetch the peer's current checkpoint for `key` (stamp + exact text).
  serve::ServeResult<PulledCheckpoint> pull_model(const serve::ModelKey& key);

  /// Push this node's catalog at the peer (anti-entropy gossip).
  serve::ServeResult<serve::Unit> advertise(const std::vector<DigestEntry>& entries);

 private:
  /// Delivery hook of one pending request: called with the response frame,
  /// or with nullptr and the typed failure (kShutdown: connection died;
  /// kTimeout: the request budget elapsed) when no response will come.
  using Deliver = std::function<void(const FrameView*, serve::ServeStatus)>;

  struct Pending {
    Deliver deliver;
    std::chrono::steady_clock::time_point deadline;  ///< max() = no budget
  };

  std::uint64_t next_id();
  /// Register `deliver` under a fresh id, send the frame.  On send failure
  /// the hook fires immediately with nullptr.
  template <typename Req>
  void send_request(Req& req, Deliver deliver);
  void reader_loop();
  /// How long the reader may sleep before the nearest pending deadline.
  std::chrono::milliseconds reader_wait() const;
  /// Fail pending requests whose deadline passed with kTimeout.
  void expire_overdue();
  /// Fail every pending request (connection lost / read stalled out).
  void fail_all_pending(serve::ServeStatus status);

  ClientOptions options_;
  Socket sock_;
  std::thread reader_;
  mutable std::mutex send_mutex_;   ///< serializes frame writes
  mutable std::mutex state_mutex_;  ///< guards pending_ / open_
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dial_retries_ = 0;
  bool open_ = false;
};

}  // namespace bellamy::net
