#include "net/fault_injector.hpp"

#include <algorithm>

namespace bellamy::net {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unit(std::uint64_t raw) {
  return static_cast<double>(raw >> 11) / 9007199254740992.0;  // [0,1)
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan), rng_state_(plan.seed) {}

std::uint64_t FaultInjector::draw_locked() { return splitmix64(rng_state_); }

Fault FaultInjector::next(FaultOp op) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return Fault{};

  const double u = unit(draw_locked());
  double edge = plan_.delay_prob;
  FaultKind kind = FaultKind::kNone;
  if (u < edge) {
    kind = FaultKind::kDelay;
  } else if (u < (edge += plan_.drop_prob)) {
    kind = FaultKind::kDrop;
  } else if (u < (edge += plan_.truncate_prob)) {
    kind = FaultKind::kTruncate;
  } else if (u < (edge += plan_.garble_prob)) {
    kind = FaultKind::kGarble;
  } else if (u < (edge += plan_.disconnect_prob)) {
    kind = FaultKind::kDisconnect;
  }

  // Reads cannot drop or truncate what the peer already sent; degrade so
  // the draw count (and thus the rest of the schedule) stays seed-stable.
  if (op == FaultOp::kRead) {
    if (kind == FaultKind::kDrop) kind = FaultKind::kDelay;
    if (kind == FaultKind::kTruncate) kind = FaultKind::kDisconnect;
  }

  Fault fault;
  fault.kind = kind;
  switch (kind) {
    case FaultKind::kDelay: {
      const auto max_ms = std::max<std::int64_t>(1, plan_.max_delay.count());
      fault.delay = std::chrono::milliseconds(
          1 + static_cast<std::int64_t>(draw_locked() % static_cast<std::uint64_t>(max_ms)));
      counts_.delays += 1;
      break;
    }
    case FaultKind::kDrop: counts_.drops += 1; break;
    case FaultKind::kTruncate: counts_.truncates += 1; break;
    case FaultKind::kGarble: counts_.garbles += 1; break;
    case FaultKind::kDisconnect: counts_.disconnects += 1; break;
    case FaultKind::kNone: break;
  }
  return fault;
}

void FaultInjector::garble(std::uint8_t* buf, std::size_t size) {
  if (size == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // Flip one byte per 64 (at least one): enough to break any frame field
  // without turning the whole buffer to noise.
  const std::size_t flips = std::max<std::size_t>(1, size / 64);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::uint64_t raw = draw_locked();
    buf[raw % size] ^= static_cast<std::uint8_t>(0x01 | (raw >> 32));
  }
}

void FaultInjector::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool FaultInjector::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

FaultInjector::Counts FaultInjector::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

}  // namespace bellamy::net
