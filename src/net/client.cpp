#include "net/client.hpp"

#include <sstream>
#include <utility>

#include "nn/serialize.hpp"

namespace bellamy::net {

namespace {

template <typename T>
serve::ServeResult<T> transport_lost() {
  return serve::ServeResult<T>::failure(serve::ServeStatus::kShutdown,
                                        "connection closed before the response arrived");
}

/// Map a response's head onto a ServeResult, or a decode failure onto
/// kInternalError (the server spoke, but not the protocol we expect).
template <typename T, typename Resp>
serve::ServeResult<T> from_head(const Resp& resp, T value) {
  if (!resp.head.ok()) {
    return serve::ServeResult<T>::failure(resp.head.status, resp.head.message);
  }
  return serve::ServeResult<T>(std::move(value));
}

template <typename T>
serve::ServeResult<T> decode_failure(WireStatus status) {
  return serve::ServeResult<T>::failure(
      serve::ServeStatus::kInternalError,
      std::string("undecodable response: ") + to_string(status));
}

}  // namespace

NetClient::~NetClient() { close(); }

bool NetClient::connect(const std::string& host, std::uint16_t port, std::string& error) {
  if (connected()) {
    error = "already connected";
    return false;
  }
  sock_ = tcp_connect(host, port, error);
  if (!sock_) return false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    open_ = true;
  }
  reader_ = std::thread([this] { reader_loop(); });
  return true;
}

bool NetClient::connected() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return open_;
}

void NetClient::close() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!open_ && !sock_.valid()) {
      if (reader_.joinable()) reader_.join();
      return;
    }
    open_ = false;
  }
  sock_.shutdown_both();  // unblocks the reader
  if (reader_.joinable()) reader_.join();
  fail_all_pending();
  sock_.close();
}

std::uint64_t NetClient::next_id() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return next_id_++;
}

template <typename Req>
void NetClient::send_request(Req& req, Deliver deliver) {
  req.request_id = next_id();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!open_) {
      deliver(nullptr);
      return;
    }
    pending_.emplace(req.request_id, deliver);
  }
  const std::vector<std::uint8_t> frame = encode_frame(req);
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    sent = sock_.write_all(frame.data(), frame.size());
  }
  if (!sent) {
    Deliver orphan;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto it = pending_.find(req.request_id);
      if (it != pending_.end()) {
        orphan = std::move(it->second);
        pending_.erase(it);
      }
    }
    if (orphan) orphan(nullptr);
  }
}

void NetClient::reader_loop() {
  std::vector<std::uint8_t> body;
  while (true) {
    std::uint8_t prefix[4];
    if (!sock_.read_exact(prefix, sizeof prefix)) break;
    std::uint32_t len = 0;
    {
      WireReader r(prefix, sizeof prefix);
      r.u32(len);
    }
    if (len < 4 || len > kMaxFrameBytes) break;
    body.resize(len);
    if (!sock_.read_exact(body.data(), len)) break;

    FrameView frame;
    if (parse_body(body.data(), body.size(), frame) != WireStatus::kOk) break;

    // Every response leads with a u64 request_id; peek it to correlate.
    std::uint64_t request_id = 0;
    {
      WireReader r(frame.payload, frame.payload_size);
      if (!r.u64(request_id)) continue;  // runt payload: drop the frame
    }
    Deliver deliver;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto it = pending_.find(request_id);
      if (it != pending_.end()) {
        deliver = std::move(it->second);
        pending_.erase(it);
      }
    }
    if (deliver) deliver(&frame);  // unknown ids are dropped silently
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    open_ = false;
  }
  fail_all_pending();
}

void NetClient::fail_all_pending() {
  std::map<std::uint64_t, Deliver> orphans;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    orphans.swap(pending_);
  }
  for (auto& [id, deliver] : orphans) deliver(nullptr);
}

// ---------------------------------------------------------------------------
// Serving calls
// ---------------------------------------------------------------------------

std::future<serve::ServeResult<double>> NetClient::predict_async(const serve::ModelKey& key,
                                                                 const data::JobRun& query) {
  auto promise = std::make_shared<std::promise<serve::ServeResult<double>>>();
  std::future<serve::ServeResult<double>> future = promise->get_future();
  PredictRequest req;
  req.key = key;
  req.query = query;
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<double>());
      return;
    }
    PredictResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<double>(status));
      return;
    }
    promise->set_value(from_head(resp, resp.value));
  });
  return future;
}

serve::ServeResult<double> NetClient::predict(const serve::ModelKey& key,
                                              const data::JobRun& query) {
  return predict_async(key, query).get();
}

std::future<serve::ServeResult<std::vector<double>>> NetClient::predict_many_async(
    const serve::ModelKey& key, const std::vector<data::JobRun>& queries) {
  auto promise = std::make_shared<std::promise<serve::ServeResult<std::vector<double>>>>();
  auto future = promise->get_future();
  PredictManyRequest req;
  req.key = key;
  req.queries = queries;
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<std::vector<double>>());
      return;
    }
    PredictManyResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<std::vector<double>>(status));
      return;
    }
    promise->set_value(from_head(resp, std::move(resp.values)));
  });
  return future;
}

serve::ServeResult<std::vector<double>> NetClient::predict_many(
    const serve::ModelKey& key, const std::vector<data::JobRun>& queries) {
  return predict_many_async(key, queries).get();
}

serve::ServeResult<serve::Unit> NetClient::publish(const serve::ModelKey& key,
                                                   const core::BellamyModel& model) {
  PublishRequest req;
  req.key = key;
  std::ostringstream out;
  model.to_checkpoint().save(out);
  req.checkpoint_text = out.str();

  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>());
      return;
    }
    PublishResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

serve::ServeResult<core::FineTuneResult> NetClient::refit(
    const serve::ModelKey& key, const std::vector<data::JobRun>& runs,
    const core::FineTuneConfig& config, core::ReuseStrategy strategy) {
  RefitAsyncRequest req;
  req.key = key;
  req.runs = runs;
  req.config = config;
  req.strategy = static_cast<std::uint8_t>(strategy);

  auto promise = std::make_shared<std::promise<serve::ServeResult<core::FineTuneResult>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<core::FineTuneResult>());
      return;
    }
    RefitResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<core::FineTuneResult>(status));
      return;
    }
    core::FineTuneResult fit;
    fit.epochs_run = static_cast<std::size_t>(resp.epochs_run);
    fit.best_mae_seconds = resp.best_mae_seconds;
    fit.reached_target = resp.reached_target != 0;
    fit.fit_seconds = resp.fit_seconds;
    promise->set_value(from_head(resp, std::move(fit)));
  });
  return future.get();
}

serve::ServeResult<serve::ServeMetrics> NetClient::metrics(const serve::ModelKey& key) {
  MetricsRequest req;
  req.key = key;
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::ServeMetrics>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::ServeMetrics>());
      return;
    }
    MetricsResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::ServeMetrics>(status));
      return;
    }
    promise->set_value(from_head(resp, resp.metrics));
  });
  return future.get();
}

serve::ServeResult<serve::Unit> NetClient::set_qos(const serve::ModelKey& key,
                                                   const serve::HandleQos& qos) {
  SetQosRequest req;
  req.key = key;
  req.qos_class = static_cast<std::uint8_t>(qos.qos);
  req.weight = qos.weight;
  req.max_lag_us = static_cast<std::uint64_t>(qos.max_lag.count());
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>());
      return;
    }
    SetQosResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

serve::ServeResult<serve::Unit> NetClient::erase(const serve::ModelKey& key) {
  EraseRequest req;
  req.key = key;
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>());
      return;
    }
    EraseResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

serve::ServeResult<std::vector<DigestEntry>> NetClient::digest() {
  DigestRequest req;
  auto promise =
      std::make_shared<std::promise<serve::ServeResult<std::vector<DigestEntry>>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<std::vector<DigestEntry>>());
      return;
    }
    DigestResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<std::vector<DigestEntry>>(status));
      return;
    }
    promise->set_value(from_head(resp, std::move(resp.entries)));
  });
  return future.get();
}

serve::ServeResult<PulledCheckpoint> NetClient::pull_model(const serve::ModelKey& key) {
  PullRequest req;
  req.key = key;
  auto promise = std::make_shared<std::promise<serve::ServeResult<PulledCheckpoint>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<PulledCheckpoint>());
      return;
    }
    PullResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<PulledCheckpoint>(status));
      return;
    }
    PulledCheckpoint pulled;
    pulled.stamp = resp.stamp;
    pulled.checkpoint_text = std::move(resp.checkpoint_text);
    promise->set_value(from_head(resp, std::move(pulled)));
  });
  return future.get();
}

serve::ServeResult<serve::Unit> NetClient::advertise(const std::vector<DigestEntry>& entries) {
  AdvertiseRequest req;
  req.entries = entries;
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>());
      return;
    }
    AdvertiseResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

serve::ServeResult<serve::Unit> NetClient::drain() {
  DrainRequest req;
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>());
      return;
    }
    DrainResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

}  // namespace bellamy::net
