#include "net/client.hpp"

#include <algorithm>
#include <sstream>
#include <thread>
#include <utility>

#include "nn/serialize.hpp"

namespace bellamy::net {

namespace {

using Clock = std::chrono::steady_clock;

template <typename T>
serve::ServeResult<T> transport_lost(serve::ServeStatus status) {
  return serve::ServeResult<T>::failure(
      status, status == serve::ServeStatus::kTimeout
                  ? "request deadline elapsed before the response arrived"
                  : "connection closed before the response arrived");
}

/// Map a response's head onto a ServeResult, or a decode failure onto
/// kInternalError (the server spoke, but not the protocol we expect).
template <typename T, typename Resp>
serve::ServeResult<T> from_head(const Resp& resp, T value) {
  if (!resp.head.ok()) {
    return serve::ServeResult<T>::failure(resp.head.status, resp.head.message);
  }
  return serve::ServeResult<T>(std::move(value));
}

template <typename T>
serve::ServeResult<T> decode_failure(WireStatus status) {
  return serve::ServeResult<T>::failure(
      serve::ServeStatus::kInternalError,
      std::string("undecodable response: ") + to_string(status));
}

}  // namespace

NetClient::~NetClient() { close(); }

bool NetClient::connect(const std::string& host, std::uint16_t port, std::string& error) {
  if (connected()) {
    error = "already connected";
    return false;
  }
  util::RetrySchedule schedule(options_.dial_retry);
  while (true) {
    sock_ = tcp_connect(host, port, options_.deadlines.connect, error);
    if (sock_) break;
    std::chrono::milliseconds delay{0};
    if (!schedule.next_delay(delay)) return false;
    dial_retries_ += 1;
    std::this_thread::sleep_for(delay);
  }
  // A mid-frame stall must not outlive the request guarantee: the reader
  // thread is the one that expires pending deadlines, so if it parks inside
  // read_exact (e.g. a garbled length prefix promising bytes that never
  // arrive — the u32 prefix is outside the frame checksum) with no socket
  // budget, every pending request hangs with it.  With a request budget but
  // no explicit read/write budget, bound socket stalls by the request budget.
  DeadlineOptions socket_deadlines = options_.deadlines;
  if (options_.deadlines.request.count() > 0) {
    if (socket_deadlines.read.count() <= 0)
      socket_deadlines.read = options_.deadlines.request;
    if (socket_deadlines.write.count() <= 0)
      socket_deadlines.write = options_.deadlines.request;
  }
  sock_.set_deadlines(socket_deadlines);
  if (options_.fault_injector) sock_.set_fault_injector(options_.fault_injector);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    open_ = true;
  }
  reader_ = std::thread([this] { reader_loop(); });
  return true;
}

bool NetClient::connected() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return open_;
}

void NetClient::close() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!open_ && !sock_.valid()) {
      if (reader_.joinable()) reader_.join();
      return;
    }
    open_ = false;
  }
  sock_.shutdown_both();  // unblocks the reader
  if (reader_.joinable()) reader_.join();
  fail_all_pending(serve::ServeStatus::kShutdown);
  sock_.close();
}

std::uint64_t NetClient::next_id() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return next_id_++;
}

template <typename Req>
void NetClient::send_request(Req& req, Deliver deliver) {
  req.request_id = next_id();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!open_) {
      deliver(nullptr, serve::ServeStatus::kShutdown);
      return;
    }
    Pending entry;
    entry.deliver = deliver;
    entry.deadline = options_.deadlines.request.count() > 0
                         ? Clock::now() + options_.deadlines.request
                         : Clock::time_point::max();
    pending_.emplace(req.request_id, std::move(entry));
  }
  const std::vector<std::uint8_t> frame = encode_frame(req);
  IoStatus sent = IoStatus::kClosed;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    sent = sock_.write_all(frame.data(), frame.size());
  }
  if (sent != IoStatus::kOk) {
    Deliver orphan;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto it = pending_.find(req.request_id);
      if (it != pending_.end()) {
        orphan = std::move(it->second.deliver);
        pending_.erase(it);
      }
    }
    if (orphan) {
      orphan(nullptr, sent == IoStatus::kTimeout ? serve::ServeStatus::kTimeout
                                                 : serve::ServeStatus::kShutdown);
    }
  }
}

std::chrono::milliseconds NetClient::reader_wait() const {
  // No request budget configured: the reader may park forever — a response
  // or close() will wake it.  With a budget, never sleep past the nearest
  // pending deadline; with no pending, tick at the budget so a request sent
  // DURING the sleep still expires within 2x its deadline.
  if (options_.deadlines.request.count() <= 0) return kWaitForever;
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto nearest = Clock::time_point::max();
  for (const auto& [id, entry] : pending_) nearest = std::min(nearest, entry.deadline);
  if (nearest == Clock::time_point::max()) return options_.deadlines.request;
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(nearest - Clock::now());
  return std::max(std::chrono::milliseconds{1},
                  std::min(left, options_.deadlines.request));
}

void NetClient::expire_overdue() {
  std::vector<Deliver> overdue;
  const auto now = Clock::now();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.deadline <= now) {
        overdue.push_back(std::move(it->second.deliver));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // A late response to an expired id is dropped by the correlation map —
  // exactly one resolution per request, timeout or response, never both.
  for (Deliver& deliver : overdue) deliver(nullptr, serve::ServeStatus::kTimeout);
}

void NetClient::reader_loop() {
  std::vector<std::uint8_t> body;
  serve::ServeStatus epitaph = serve::ServeStatus::kShutdown;
  while (true) {
    const IoStatus ready = sock_.wait_readable(reader_wait());
    if (ready == IoStatus::kTimeout) {
      expire_overdue();
      continue;
    }
    if (ready != IoStatus::kOk) break;

    std::uint8_t prefix[4];
    IoStatus status = sock_.read_exact(prefix, sizeof prefix);
    if (status != IoStatus::kOk) {
      if (status == IoStatus::kTimeout) epitaph = serve::ServeStatus::kTimeout;
      break;
    }
    std::uint32_t len = 0;
    {
      WireReader r(prefix, sizeof prefix);
      r.u32(len);
    }
    if (len < 4 || len > kMaxFrameBytes) break;
    body.resize(len);
    status = sock_.read_exact(body.data(), len);
    if (status != IoStatus::kOk) {
      // A frame that stalls mid-body leaves the stream position untrusted:
      // the connection is over, and the pendings fail with the reason.
      if (status == IoStatus::kTimeout) epitaph = serve::ServeStatus::kTimeout;
      break;
    }

    FrameView frame;
    if (parse_body(body.data(), body.size(), frame) != WireStatus::kOk) break;

    // Every response leads with a u64 request_id; peek it to correlate.
    std::uint64_t request_id = 0;
    {
      WireReader r(frame.payload, frame.payload_size);
      if (!r.u64(request_id)) continue;  // runt payload: drop the frame
    }
    Deliver deliver;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto it = pending_.find(request_id);
      if (it != pending_.end()) {
        deliver = std::move(it->second.deliver);
        pending_.erase(it);
      }
    }
    if (deliver) deliver(&frame, serve::ServeStatus::kOk);  // unknown ids dropped
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    open_ = false;
  }
  fail_all_pending(epitaph);
}

void NetClient::fail_all_pending(serve::ServeStatus status) {
  std::map<std::uint64_t, Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    orphans.swap(pending_);
  }
  for (auto& [id, entry] : orphans) entry.deliver(nullptr, status);
}

// ---------------------------------------------------------------------------
// Serving calls
// ---------------------------------------------------------------------------

std::future<serve::ServeResult<double>> NetClient::predict_async(const serve::ModelKey& key,
                                                                 const data::JobRun& query) {
  auto promise = std::make_shared<std::promise<serve::ServeResult<double>>>();
  std::future<serve::ServeResult<double>> future = promise->get_future();
  PredictRequest req;
  req.key = key;
  req.query = query;
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<double>(fail));
      return;
    }
    PredictResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<double>(status));
      return;
    }
    promise->set_value(from_head(resp, resp.value));
  });
  return future;
}

serve::ServeResult<double> NetClient::predict(const serve::ModelKey& key,
                                              const data::JobRun& query) {
  return predict_async(key, query).get();
}

std::future<serve::ServeResult<std::vector<double>>> NetClient::predict_many_async(
    const serve::ModelKey& key, const std::vector<data::JobRun>& queries) {
  auto promise = std::make_shared<std::promise<serve::ServeResult<std::vector<double>>>>();
  auto future = promise->get_future();
  PredictManyRequest req;
  req.key = key;
  req.queries = queries;
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<std::vector<double>>(fail));
      return;
    }
    PredictManyResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<std::vector<double>>(status));
      return;
    }
    promise->set_value(from_head(resp, std::move(resp.values)));
  });
  return future;
}

serve::ServeResult<std::vector<double>> NetClient::predict_many(
    const serve::ModelKey& key, const std::vector<data::JobRun>& queries) {
  return predict_many_async(key, queries).get();
}

serve::ServeResult<serve::Unit> NetClient::publish(const serve::ModelKey& key,
                                                   const core::BellamyModel& model) {
  PublishRequest req;
  req.key = key;
  std::ostringstream out;
  model.to_checkpoint().save(out);
  req.checkpoint_text = out.str();

  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>(fail));
      return;
    }
    PublishResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

serve::ServeResult<core::FineTuneResult> NetClient::refit(
    const serve::ModelKey& key, const std::vector<data::JobRun>& runs,
    const core::FineTuneConfig& config, core::ReuseStrategy strategy) {
  RefitAsyncRequest req;
  req.key = key;
  req.runs = runs;
  req.config = config;
  req.strategy = static_cast<std::uint8_t>(strategy);

  auto promise = std::make_shared<std::promise<serve::ServeResult<core::FineTuneResult>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<core::FineTuneResult>(fail));
      return;
    }
    RefitResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<core::FineTuneResult>(status));
      return;
    }
    core::FineTuneResult fit;
    fit.epochs_run = static_cast<std::size_t>(resp.epochs_run);
    fit.best_mae_seconds = resp.best_mae_seconds;
    fit.reached_target = resp.reached_target != 0;
    fit.fit_seconds = resp.fit_seconds;
    promise->set_value(from_head(resp, std::move(fit)));
  });
  return future.get();
}

serve::ServeResult<serve::ServeMetrics> NetClient::metrics(const serve::ModelKey& key) {
  MetricsRequest req;
  req.key = key;
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::ServeMetrics>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::ServeMetrics>(fail));
      return;
    }
    MetricsResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::ServeMetrics>(status));
      return;
    }
    promise->set_value(from_head(resp, resp.metrics));
  });
  return future.get();
}

serve::ServeResult<serve::DriftObservation> NetClient::report_run(const serve::ModelKey& key,
                                                                  const data::JobRun& run) {
  ReportRunRequest req;
  req.key = key;
  req.run = run;
  auto promise =
      std::make_shared<std::promise<serve::ServeResult<serve::DriftObservation>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::DriftObservation>(fail));
      return;
    }
    ReportRunResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::DriftObservation>(status));
      return;
    }
    serve::DriftObservation observation;
    observation.error_ewma = resp.error_ewma;
    observation.reports = resp.reports;
    observation.refit_triggered = resp.refit_triggered != 0;
    promise->set_value(from_head(resp, observation));
  });
  return future.get();
}

serve::ServeResult<serve::Unit> NetClient::set_qos(const serve::ModelKey& key,
                                                   const serve::HandleQos& qos) {
  SetQosRequest req;
  req.key = key;
  req.qos_class = static_cast<std::uint8_t>(qos.qos);
  req.weight = qos.weight;
  req.max_lag_us = static_cast<std::uint64_t>(qos.max_lag.count());
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>(fail));
      return;
    }
    SetQosResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

serve::ServeResult<serve::Unit> NetClient::erase(const serve::ModelKey& key) {
  EraseRequest req;
  req.key = key;
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>(fail));
      return;
    }
    EraseResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

serve::ServeResult<std::vector<DigestEntry>> NetClient::digest() {
  DigestRequest req;
  auto promise =
      std::make_shared<std::promise<serve::ServeResult<std::vector<DigestEntry>>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<std::vector<DigestEntry>>(fail));
      return;
    }
    DigestResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<std::vector<DigestEntry>>(status));
      return;
    }
    promise->set_value(from_head(resp, std::move(resp.entries)));
  });
  return future.get();
}

serve::ServeResult<PulledCheckpoint> NetClient::pull_model(const serve::ModelKey& key) {
  PullRequest req;
  req.key = key;
  auto promise = std::make_shared<std::promise<serve::ServeResult<PulledCheckpoint>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<PulledCheckpoint>(fail));
      return;
    }
    PullResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<PulledCheckpoint>(status));
      return;
    }
    PulledCheckpoint pulled;
    pulled.stamp = resp.stamp;
    pulled.checkpoint_text = std::move(resp.checkpoint_text);
    promise->set_value(from_head(resp, std::move(pulled)));
  });
  return future.get();
}

serve::ServeResult<serve::Unit> NetClient::advertise(const std::vector<DigestEntry>& entries) {
  AdvertiseRequest req;
  req.entries = entries;
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>(fail));
      return;
    }
    AdvertiseResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

serve::ServeResult<serve::Unit> NetClient::drain() {
  DrainRequest req;
  auto promise = std::make_shared<std::promise<serve::ServeResult<serve::Unit>>>();
  auto future = promise->get_future();
  send_request(req, [promise](const FrameView* frame, serve::ServeStatus fail) {
    if (frame == nullptr) {
      promise->set_value(transport_lost<serve::Unit>(fail));
      return;
    }
    DrainResponse resp;
    const WireStatus status = decode_message(*frame, resp);
    if (status != WireStatus::kOk) {
      promise->set_value(decode_failure<serve::Unit>(status));
      return;
    }
    promise->set_value(from_head(resp, serve::Unit{}));
  });
  return future.get();
}

}  // namespace bellamy::net
