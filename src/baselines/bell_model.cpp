#include "baselines/bell_model.hpp"

#include <cmath>
#include <stdexcept>

namespace bellamy::baselines {

void InterpolationModel::fit(const std::vector<data::JobRun>& runs) {
  std::map<int, std::pair<double, std::size_t>> acc;
  for (const auto& r : runs) {
    auto& [sum, n] = acc[r.scale_out];
    sum += r.runtime_s;
    ++n;
  }
  if (acc.size() < 2) {
    throw std::invalid_argument(
        "InterpolationModel::fit: need >= 2 distinct scale-outs, got " +
        std::to_string(acc.size()));
  }
  mean_by_scaleout_.clear();
  for (const auto& [x, sn] : acc) {
    mean_by_scaleout_[x] = sn.first / static_cast<double>(sn.second);
  }
}

double InterpolationModel::predict_scaleout(double scale_out) const {
  if (mean_by_scaleout_.size() < 2) {
    throw std::runtime_error("InterpolationModel::predict_scaleout: model is not fitted "
                             "(needs >= 2 distinct scale-outs) — call fit() first");
  }
  // Locate the segment; clamp to the boundary segments for extrapolation.
  auto hi = mean_by_scaleout_.lower_bound(static_cast<int>(std::ceil(scale_out)));
  if (hi == mean_by_scaleout_.begin()) ++hi;
  if (hi == mean_by_scaleout_.end()) --hi;
  auto lo = std::prev(hi);
  const double x0 = static_cast<double>(lo->first);
  const double y0 = lo->second;
  const double x1 = static_cast<double>(hi->first);
  const double y1 = hi->second;
  const double slope = (y1 - y0) / (x1 - x0);
  return y0 + slope * (scale_out - x0);
}

double InterpolationModel::predict(const data::JobRun& query) {
  return predict_scaleout(static_cast<double>(query.scale_out));
}

std::vector<double> InterpolationModel::predict_batch(const std::vector<data::JobRun>& queries) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const data::JobRun& q : queries) {
    out.push_back(predict_scaleout(static_cast<double>(q.scale_out)));
  }
  return out;
}

void BellModel::fit(const std::vector<data::JobRun>& runs) {
  if (runs.size() < min_training_points()) {
    throw std::invalid_argument("BellModel::fit: need >= 3 training points, got " +
                                std::to_string(runs.size()));
  }
  // Leave-one-out CV of both candidate models.
  double err_param = 0.0;
  double err_nonparam = 0.0;
  std::size_t valid_param = 0;
  std::size_t valid_nonparam = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::vector<data::JobRun> train;
    train.reserve(runs.size() - 1);
    for (std::size_t j = 0; j < runs.size(); ++j) {
      if (j != i) train.push_back(runs[j]);
    }
    try {
      ErnestModel p;
      p.fit(train);
      err_param += std::abs(p.predict_scaleout(runs[i].scale_out) - runs[i].runtime_s);
      ++valid_param;
    } catch (const std::exception&) {
      // fold unusable for the parametric model; skip
    }
    try {
      InterpolationModel np;
      np.fit(train);
      err_nonparam += std::abs(np.predict_scaleout(runs[i].scale_out) - runs[i].runtime_s);
      ++valid_nonparam;
    } catch (const std::exception&) {
      // interpolation needs >= 2 distinct scale-outs in the fold; skip
    }
  }
  const double mean_param =
      valid_param ? err_param / static_cast<double>(valid_param) : 1e300;
  const double mean_nonparam =
      valid_nonparam ? err_nonparam / static_cast<double>(valid_nonparam) : 1e300;
  use_parametric_ = mean_param <= mean_nonparam;
  selected_ = use_parametric_ ? "parametric" : "non-parametric";

  // Refit the chosen model (and keep the other usable as fallback).
  parametric_.fit(runs);
  try {
    non_parametric_.fit(runs);
  } catch (const std::exception&) {
    use_parametric_ = true;
    selected_ = "parametric";
  }
}

double BellModel::predict(const data::JobRun& query) {
  return use_parametric_ ? parametric_.predict(query) : non_parametric_.predict(query);
}

std::vector<double> BellModel::predict_batch(const std::vector<data::JobRun>& queries) {
  return use_parametric_ ? parametric_.predict_batch(queries)
                         : non_parametric_.predict_batch(queries);
}

}  // namespace bellamy::baselines
