#pragma once
// The Bell baseline (Thamsen et al., IPCCC'16): maintain two models of a
// job's scale-out behaviour —
//   * a parametric model (Ernest's NNLS fit), robust with very little data,
//   * a non-parametric interpolation model, accurate once the sampled
//     scale-outs are dense —
// and automatically select between them with leave-one-out cross-validation
// on the training points.  The CV needs at least three points, which is why
// the paper notes "Bell requires at least three data points".

#include <map>

#include "baselines/ernest.hpp"
#include "data/runtime_model.hpp"

namespace bellamy::baselines {

/// Piecewise-linear interpolation over mean runtime per observed scale-out,
/// with linear extension of the boundary segments for extrapolation.
class InterpolationModel : public data::RuntimeModel {
 public:
  void fit(const std::vector<data::JobRun>& runs) override;
  double predict(const data::JobRun& query) override;
  std::vector<double> predict_batch(const std::vector<data::JobRun>& queries) override;
  std::size_t min_training_points() const override { return 2; }
  std::string name() const override { return "interp"; }

  double predict_scaleout(double scale_out) const;

 private:
  std::map<int, double> mean_by_scaleout_;  ///< needs >= 2 distinct scale-outs
};

class BellModel : public data::RuntimeModel {
 public:
  void fit(const std::vector<data::JobRun>& runs) override;
  double predict(const data::JobRun& query) override;
  /// Delegates the whole batch to the CV-selected sub-model in one call.
  std::vector<double> predict_batch(const std::vector<data::JobRun>& queries) override;
  std::size_t min_training_points() const override { return 3; }
  std::string name() const override { return "Bell"; }

  /// Which sub-model the cross-validation selected ("parametric" or
  /// "non-parametric"); meaningful after fit().
  const std::string& selected() const { return selected_; }

 private:
  ErnestModel parametric_;
  InterpolationModel non_parametric_;
  std::string selected_;
  bool use_parametric_ = true;
};

}  // namespace bellamy::baselines
