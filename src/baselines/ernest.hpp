#pragma once
// The Ernest parametric baseline (Venkataraman et al., NSDI'16), the "NNLS"
// curve in the paper's figures: fit
//
//     r(x) = theta1 + theta2 * (1/x) + theta3 * log(x) + theta4 * x
//
// with non-negative theta via NNLS on the (scale-out, runtime) pairs of a
// single context.  Context properties are ignored — this is exactly the
// limitation Bellamy addresses.

#include <array>

#include "data/runtime_model.hpp"

namespace bellamy::baselines {

/// The Ernest feature map [1, 1/x, log x, x].
std::array<double, 4> ernest_features(double scale_out);

class ErnestModel : public data::RuntimeModel {
 public:
  void fit(const std::vector<data::JobRun>& runs) override;
  double predict(const data::JobRun& query) override;
  /// Evaluates the fitted closed form over all queries.
  std::vector<double> predict_batch(const std::vector<data::JobRun>& queries) override;
  std::size_t min_training_points() const override { return 1; }
  std::string name() const override { return "NNLS"; }

  /// Predict from a raw scale-out (no JobRun needed).
  double predict_scaleout(double scale_out) const;

  const std::array<double, 4>& theta() const { return theta_; }
  bool fitted() const { return fitted_; }

 private:
  std::array<double, 4> theta_{};
  bool fitted_ = false;
};

}  // namespace bellamy::baselines
