#include "baselines/ernest.hpp"

#include <cmath>
#include <stdexcept>

#include "opt/nnls.hpp"

namespace bellamy::baselines {

std::array<double, 4> ernest_features(double scale_out) {
  if (scale_out < 1.0) throw std::invalid_argument("ernest_features: scale-out must be >= 1");
  return {1.0, 1.0 / scale_out, std::log(scale_out), scale_out};
}

void ErnestModel::fit(const std::vector<data::JobRun>& runs) {
  if (runs.empty()) throw std::invalid_argument("ErnestModel::fit: no training points");
  nn::Matrix a(runs.size(), 4);
  std::vector<double> b(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto f = ernest_features(static_cast<double>(runs[i].scale_out));
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = f[j];
    b[i] = runs[i].runtime_s;
  }
  const auto result = opt::solve_nnls(a, b);
  for (std::size_t j = 0; j < 4; ++j) theta_[j] = result.x[j];
  fitted_ = true;
}

double ErnestModel::predict_scaleout(double scale_out) const {
  if (!fitted_) {
    throw std::runtime_error("ErnestModel::predict_scaleout: model is not fitted — "
                             "call fit() first");
  }
  const auto f = ernest_features(scale_out);
  double r = 0.0;
  for (std::size_t j = 0; j < 4; ++j) r += theta_[j] * f[j];
  return r;
}

double ErnestModel::predict(const data::JobRun& query) {
  return predict_scaleout(static_cast<double>(query.scale_out));
}

std::vector<double> ErnestModel::predict_batch(const std::vector<data::JobRun>& queries) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const data::JobRun& q : queries) {
    out.push_back(predict_scaleout(static_cast<double>(q.scale_out)));
  }
  return out;
}

}  // namespace bellamy::baselines
