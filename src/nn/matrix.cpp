#include "nn/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "nn/simd.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols) {
    throw std::invalid_argument("Matrix: data size " + std::to_string(data_.size()) +
                                " does not match shape " + std::to_string(rows) + "x" +
                                std::to_string(cols));
  }
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 0.0); }
Matrix Matrix::ones(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 1.0); }

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::row_vector(std::span<const double> values) {
  return Matrix(1, values.size(), std::vector<double>(values.begin(), values.end()));
}

Matrix Matrix::col_vector(std::span<const double> values) {
  return Matrix(values.size(), 1, std::vector<double>(values.begin(), values.end()));
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, util::Rng& rng, double mean,
                     double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.normal(mean, stddev);
  return m;
}

Matrix Matrix::rand_uniform(std::size_t rows, std::size_t cols, util::Rng& rng, double lo,
                            double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.uniform(lo, hi);
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
double Matrix::operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at(" + std::to_string(r) + "," + std::to_string(c) +
                            ") on " + shape_str());
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  return const_cast<Matrix*>(this)->at(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row " + std::to_string(r));
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row " + std::to_string(r));
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::reshaped(std::size_t rows, std::size_t cols) const {
  if (rows * cols != data_.size()) {
    throw std::invalid_argument("Matrix::reshaped: size mismatch " + shape_str() + " -> " +
                                std::to_string(rows) + "x" + std::to_string(cols));
  }
  return Matrix(rows, cols, data_);
}

Matrix Matrix::slice_rows(std::size_t begin, std::size_t end) const {
  if (begin > end || end > rows_) throw std::out_of_range("Matrix::slice_rows");
  Matrix out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_), out.data_.begin());
  return out;
}

Matrix Matrix::slice_cols(std::size_t begin, std::size_t end) const {
  if (begin > end || end > cols_) throw std::out_of_range("Matrix::slice_cols");
  Matrix out(rows_, end - begin);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = begin; c < end; ++c) out(r, c - begin) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) throw std::out_of_range("Matrix::gather_rows");
    std::copy_n(data_.data() + indices[i] * cols_, cols_, out.data_.data() + i * cols_);
  }
  return out;
}

Matrix Matrix::hcat(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_) {
    throw std::invalid_argument("Matrix::hcat: row mismatch " + a.shape_str() + " vs " +
                                b.shape_str());
  }
  Matrix out(a.rows_, a.cols_ + b.cols_);
  for (std::size_t r = 0; r < a.rows_; ++r) {
    std::copy_n(a.data_.data() + r * a.cols_, a.cols_, out.data_.data() + r * out.cols_);
    std::copy_n(b.data_.data() + r * b.cols_, b.cols_,
                out.data_.data() + r * out.cols_ + a.cols_);
  }
  return out;
}

Matrix Matrix::vcat(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.cols_ && !a.empty() && !b.empty()) {
    throw std::invalid_argument("Matrix::vcat: col mismatch " + a.shape_str() + " vs " +
                                b.shape_str());
  }
  if (a.empty()) return b;
  if (b.empty()) return a;
  Matrix out(a.rows_ + b.rows_, a.cols_);
  std::copy(a.data_.begin(), a.data_.end(), out.data_.begin());
  std::copy(b.data_.begin(), b.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(a.data_.size()));
  return out;
}

void Matrix::set_cols(std::size_t col_begin, const Matrix& src) {
  if (src.rows_ != rows_ || col_begin + src.cols_ > cols_) {
    throw std::invalid_argument("Matrix::set_cols: " + src.shape_str() + " into " +
                                shape_str() + " at col " + std::to_string(col_begin));
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(src.data_.data() + r * src.cols_, src.cols_,
                data_.data() + r * cols_ + col_begin);
  }
}

void Matrix::check_same_shape(const Matrix& other, const char* op) const {
  if (!same_shape(other)) {
    throw std::invalid_argument(std::string("Matrix::") + op + ": shape mismatch " +
                                shape_str() + " vs " + other.shape_str());
  }
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  check_same_shape(rhs, "operator+=");
  simd::add(data_.data(), rhs.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  check_same_shape(rhs, "operator-=");
  simd::sub(data_.data(), rhs.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  simd::scale(data_.data(), data_.size(), s);
  return *this;
}

Matrix Matrix::hadamard(const Matrix& rhs) const {
  check_same_shape(rhs, "hadamard");
  Matrix out = *this;
  simd::mul(out.data_.data(), rhs.data_.data(), out.data_.size());
  return out;
}

void Matrix::add_scaled(const Matrix& rhs, double alpha) {
  check_same_shape(rhs, "add_scaled");
  simd::axpy(data_.data(), rhs.data_.data(), data_.size(), alpha);
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

namespace {

// Tile sizes for the blocked GEMM: a 64x64 double tile is 32 KB, so one
// packed B tile plus the four active C rows stay resident in L1 while the
// k loop runs.
constexpr std::size_t kTileI = 64;
constexpr std::size_t kTileJ = 64;
constexpr std::size_t kTileK = 64;

// Copies columns [j0, j0 + w) of op(B) into a contiguous (k x w) row-major
// panel.  op(B) is B itself (k x n, row-major) or, with b_trans, Bᵀ where B
// is stored (n x k) — packing absorbs the transpose so the micro-kernel
// always streams the panel contiguously.
void pack_b_panel(const double* b, std::size_t ldb, bool b_trans, std::size_t k,
                  std::size_t j0, std::size_t w, double* dst) {
  if (!b_trans) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      std::copy_n(b + kk * ldb + j0, w, dst + kk * w);
    }
  } else {
    for (std::size_t j = 0; j < w; ++j) {
      const double* bcol = b + (j0 + j) * ldb;
      for (std::size_t kk = 0; kk < k; ++kk) dst[kk * w + j] = bcol[kk];
    }
  }
}

// ---- portable micro-kernels ------------------------------------------------
//
// 4x8 register micro-kernel: acc[] covers a 4-row x 8-column patch of C and
// accumulates the whole k-tile in registers before C is touched once.  Each
// C element still receives its k contributions in ascending order (grouped
// per k-tile), so a row's result is independent of how many rows the call
// processes — chunked and unchunked batches match bit for bit.
void micro_4x8(const double* a, std::size_t lda, const double* panel, std::size_t w,
               std::size_t kk, double* c, std::size_t ldc) {
  double acc[4][8] = {};
  for (std::size_t k = 0; k < kk; ++k) {
    const double* br = panel + k * w;
    const double v0 = a[0 * lda + k];
    const double v1 = a[1 * lda + k];
    const double v2 = a[2 * lda + k];
    const double v3 = a[3 * lda + k];
    for (std::size_t j = 0; j < 8; ++j) {
      const double bj = br[j];
      acc[0][j] += v0 * bj;
      acc[1][j] += v1 * bj;
      acc[2][j] += v2 * bj;
      acc[3][j] += v3 * bj;
    }
  }
  for (std::size_t r = 0; r < 4; ++r) {
    double* cr = c + r * ldc;
    for (std::size_t j = 0; j < 8; ++j) cr[j] += acc[r][j];
  }
}

// Scalar edge kernel for the ragged i/j remainders of a tile.
void micro_edge(const double* a, std::size_t lda, const double* panel, std::size_t w,
                std::size_t mi, std::size_t j0, std::size_t wj, std::size_t kk, double* c,
                std::size_t ldc) {
  for (std::size_t i = 0; i < mi; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    double acc[8] = {};
    for (std::size_t k = 0; k < kk; ++k) {
      const double v = ai[k];
      const double* br = panel + k * w + j0;
      for (std::size_t j = 0; j < wj; ++j) acc[j] += v * br[j];
    }
    for (std::size_t j = 0; j < wj; ++j) ci[j0 + j] += acc[j];
  }
}

// C[i0 .. i0+mi) x [panel columns] += A-tile * B-panel-tile via the 4x8
// register micro-kernel, i/k/j order.
void gemm_tile_portable(const double* a, std::size_t lda, const double* panel,
                        std::size_t w, std::size_t mi, std::size_t kk, double* c,
                        std::size_t ldc) {
  const std::size_t mi4 = mi - mi % 4;
  const std::size_t w8 = w - w % 8;
  for (std::size_t i = 0; i < mi4; i += 4) {
    for (std::size_t j = 0; j < w8; j += 8) {
      micro_4x8(a + i * lda, lda, panel + j, w, kk, c + i * ldc + j, ldc);
    }
    if (w8 < w) micro_edge(a + i * lda, lda, panel, w, 4, w8, w - w8, kk, c + i * ldc, ldc);
  }
  if (mi4 < mi) {
    for (std::size_t j = 0; j < w; j += 8) {
      micro_edge(a + mi4 * lda, lda, panel, w, mi - mi4, j, std::min<std::size_t>(8, w - j),
                 kk, c + mi4 * ldc, ldc);
    }
  }
}

// ---- AVX2 + FMA micro-kernels (runtime-dispatched) -------------------------
//
// Same tiling, but the 4x8 patch is held in eight ymm accumulators and
// updated with vfmadd.  The edge kernel uses scalar fused multiply-adds so
// that on an AVX2 machine EVERY C element is computed with the exact same
// (fused) arithmetic regardless of which kernel its position lands in; the
// dispatch decision is per-process, so all results within a run stay
// self-consistent across batch sizes and chunkings.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BELLAMY_GEMM_X86_DISPATCH 1

__attribute__((target("avx2,fma"))) void micro_4x8_avx2(const double* a, std::size_t lda,
                                                        const double* panel, std::size_t w,
                                                        std::size_t kk, double* c,
                                                        std::size_t ldc) {
  __m256d a00 = _mm256_setzero_pd(), a01 = a00, a10 = a00, a11 = a00, a20 = a00, a21 = a00,
          a30 = a00, a31 = a00;
  for (std::size_t k = 0; k < kk; ++k) {
    const double* br = panel + k * w;
    const __m256d b0 = _mm256_loadu_pd(br);
    const __m256d b1 = _mm256_loadu_pd(br + 4);
    __m256d v = _mm256_broadcast_sd(a + 0 * lda + k);
    a00 = _mm256_fmadd_pd(v, b0, a00);
    a01 = _mm256_fmadd_pd(v, b1, a01);
    v = _mm256_broadcast_sd(a + 1 * lda + k);
    a10 = _mm256_fmadd_pd(v, b0, a10);
    a11 = _mm256_fmadd_pd(v, b1, a11);
    v = _mm256_broadcast_sd(a + 2 * lda + k);
    a20 = _mm256_fmadd_pd(v, b0, a20);
    a21 = _mm256_fmadd_pd(v, b1, a21);
    v = _mm256_broadcast_sd(a + 3 * lda + k);
    a30 = _mm256_fmadd_pd(v, b0, a30);
    a31 = _mm256_fmadd_pd(v, b1, a31);
  }
  double* c0 = c + 0 * ldc;
  double* c1 = c + 1 * ldc;
  double* c2 = c + 2 * ldc;
  double* c3 = c + 3 * ldc;
  _mm256_storeu_pd(c0, _mm256_add_pd(_mm256_loadu_pd(c0), a00));
  _mm256_storeu_pd(c0 + 4, _mm256_add_pd(_mm256_loadu_pd(c0 + 4), a01));
  _mm256_storeu_pd(c1, _mm256_add_pd(_mm256_loadu_pd(c1), a10));
  _mm256_storeu_pd(c1 + 4, _mm256_add_pd(_mm256_loadu_pd(c1 + 4), a11));
  _mm256_storeu_pd(c2, _mm256_add_pd(_mm256_loadu_pd(c2), a20));
  _mm256_storeu_pd(c2 + 4, _mm256_add_pd(_mm256_loadu_pd(c2 + 4), a21));
  _mm256_storeu_pd(c3, _mm256_add_pd(_mm256_loadu_pd(c3), a30));
  _mm256_storeu_pd(c3 + 4, _mm256_add_pd(_mm256_loadu_pd(c3 + 4), a31));
}

__attribute__((target("avx2,fma"))) void micro_edge_fma(const double* a, std::size_t lda,
                                                        const double* panel, std::size_t w,
                                                        std::size_t mi, std::size_t j0,
                                                        std::size_t wj, std::size_t kk,
                                                        double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < mi; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    double acc[8] = {};
    for (std::size_t k = 0; k < kk; ++k) {
      const double v = ai[k];
      const double* br = panel + k * w + j0;
      for (std::size_t j = 0; j < wj; ++j) acc[j] = __builtin_fma(v, br[j], acc[j]);
    }
    for (std::size_t j = 0; j < wj; ++j) ci[j0 + j] += acc[j];
  }
}

__attribute__((target("avx2,fma"))) void gemm_tile_avx2(const double* a, std::size_t lda,
                                                        const double* panel, std::size_t w,
                                                        std::size_t mi, std::size_t kk,
                                                        double* c, std::size_t ldc) {
  const std::size_t mi4 = mi - mi % 4;
  const std::size_t w8 = w - w % 8;
  for (std::size_t i = 0; i < mi4; i += 4) {
    for (std::size_t j = 0; j < w8; j += 8) {
      micro_4x8_avx2(a + i * lda, lda, panel + j, w, kk, c + i * ldc + j, ldc);
    }
    if (w8 < w) {
      micro_edge_fma(a + i * lda, lda, panel, w, 4, w8, w - w8, kk, c + i * ldc, ldc);
    }
  }
  if (mi4 < mi) {
    for (std::size_t j = 0; j < w; j += 8) {
      micro_edge_fma(a + mi4 * lda, lda, panel, w, mi - mi4, j,
                     std::min<std::size_t>(8, w - j), kk, c + mi4 * ldc, ldc);
    }
  }
}
#endif  // x86 dispatch

using GemmTileFn = void (*)(const double*, std::size_t, const double*, std::size_t,
                            std::size_t, std::size_t, double*, std::size_t);

GemmTileFn pick_gemm_tile() {
#ifdef BELLAMY_GEMM_X86_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return gemm_tile_avx2;
  }
#endif
  return gemm_tile_portable;
}

// Shared blocked kernel over the output range [i_begin, i_end) x
// [j_begin, j_end): C (m x n, zero-initialized) = A (m x k, row-major) *
// op(B).  Range bounds must lie on tile boundaries (or the matrix edge) so a
// sub-range computes exactly the tiles — and the accumulation order — that
// the full-range call would.  All three public matmul variants route here
// via gemm_dispatch; matmul_tn first materializes Aᵀ (O(mk) — negligible
// against the O(mkn) product).
void gemm_blocked(std::size_t k, const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, bool b_trans, double* c, std::size_t ldc,
                  std::size_t i_begin, std::size_t i_end, std::size_t j_begin,
                  std::size_t j_end) {
  if (i_begin >= i_end || j_begin >= j_end || k == 0) return;
  static const GemmTileFn tile = pick_gemm_tile();
  // Per-thread scratch so small products don't pay a malloc per call.
  thread_local std::vector<double> panel;
  for (std::size_t j0 = j_begin; j0 < j_end; j0 += kTileJ) {
    const std::size_t w = std::min(kTileJ, j_end - j0);
    if (panel.size() < k * w) panel.resize(k * w);
    pack_b_panel(b, ldb, b_trans, k, j0, w, panel.data());
    for (std::size_t i0 = i_begin; i0 < i_end; i0 += kTileI) {
      const std::size_t mi = std::min(kTileI, i_end - i0);
      for (std::size_t k0 = 0; k0 < k; k0 += kTileK) {
        const std::size_t kk = std::min(kTileK, k - k0);
        tile(a + i0 * lda + k0, lda, panel.data() + k0 * w, w, mi, kk, c + i0 * ldc + j0,
             ldc);
      }
    }
  }
}

// ---- threading --------------------------------------------------------------
//
// The blocked kernel is split by whole output tiles across a ThreadPool:
// column-panel groups when op(B) is wide enough (each task reuses its packed
// panels), row groups for tall-skinny shapes.  Group boundaries always land
// on tile boundaries and every C tile is written by exactly one task with
// the k-accumulation order unchanged, so the threaded product is
// bit-identical to the serial one.  This relies ONLY on the pool's
// exactly-once contract, never on execution order — the work-stealing
// scheduler may run panel tasks in any interleaving (LIFO on the
// submitter's deque, stolen FIFO elsewhere) and the product cannot tell.
// Small products (under the flop threshold) stay serial — the fork/join
// overhead would dominate.

std::atomic<std::size_t> g_gemm_min_flops{std::size_t{1} << 23};  // 8M flops
std::atomic<parallel::ThreadPool*> g_gemm_pool{nullptr};

void gemm_dispatch(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   std::size_t lda, const double* b, std::size_t ldb, bool b_trans,
                   double* c, std::size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  parallel::ThreadPool* pool = g_gemm_pool.load(std::memory_order_relaxed);
  if (!pool) pool = &parallel::ThreadPool::global();
  const std::size_t workers = pool->size();
  const std::size_t min_flops = g_gemm_min_flops.load(std::memory_order_relaxed);
  // 2*m*n*k with saturation so absurd shapes can't wrap around the compare.
  const auto sat_mul = [](std::size_t x, std::size_t y) {
    return (y != 0 && x > std::numeric_limits<std::size_t>::max() / y)
               ? std::numeric_limits<std::size_t>::max()
               : x * y;
  };
  const std::size_t flops = sat_mul(2, sat_mul(m, sat_mul(n, k)));
  if (workers <= 1 || flops < min_flops) {
    gemm_blocked(k, a, lda, b, ldb, b_trans, c, ldc, 0, m, 0, n);
    return;
  }
  const std::size_t jpanels = (n + kTileJ - 1) / kTileJ;
  const std::size_t ipanels = (m + kTileI - 1) / kTileI;
  // Prefer the column split (each task packs only its own panels); fall back
  // to rows for tall-skinny products where there are too few column panels.
  if (jpanels >= ipanels || jpanels >= workers) {
    const std::size_t groups = std::min(workers, jpanels);
    const std::size_t per = jpanels / groups;
    const std::size_t rem = jpanels % groups;
    parallel::parallel_for(
        groups,
        [&](std::size_t g) {
          const std::size_t p0 = g * per + std::min(g, rem);
          const std::size_t p1 = p0 + per + (g < rem ? 1 : 0);
          gemm_blocked(k, a, lda, b, ldb, b_trans, c, ldc, 0, m, p0 * kTileJ,
                       std::min(n, p1 * kTileJ));
        },
        pool);
  } else {
    const std::size_t groups = std::min(workers, ipanels);
    const std::size_t per = ipanels / groups;
    const std::size_t rem = ipanels % groups;
    parallel::parallel_for(
        groups,
        [&](std::size_t g) {
          const std::size_t p0 = g * per + std::min(g, rem);
          const std::size_t p1 = p0 + per + (g < rem ? 1 : 0);
          gemm_blocked(k, a, lda, b, ldb, b_trans, c, ldc, p0 * kTileI,
                       std::min(m, p1 * kTileI), 0, n);
        },
        pool);
  }
}

}  // namespace

void Matrix::set_gemm_min_flops(std::size_t flops) {
  g_gemm_min_flops.store(flops, std::memory_order_relaxed);
}

std::size_t Matrix::gemm_min_flops() {
  return g_gemm_min_flops.load(std::memory_order_relaxed);
}

void Matrix::set_gemm_pool(parallel::ThreadPool* pool) {
  g_gemm_pool.store(pool, std::memory_order_relaxed);
}

Matrix Matrix::matmul(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.rows_) {
    throw std::invalid_argument("Matrix::matmul: inner dim mismatch " + a.shape_str() +
                                " * " + b.shape_str());
  }
  Matrix out(a.rows_, b.cols_, 0.0);
  gemm_dispatch(a.rows_, b.cols_, a.cols_, a.data_.data(), a.cols_, b.data_.data(), b.cols_,
                /*b_trans=*/false, out.data_.data(), out.cols_);
  return out;
}

Matrix Matrix::matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_) {
    throw std::invalid_argument("Matrix::matmul_tn: dim mismatch " + a.shape_str() +
                                "ᵀ * " + b.shape_str());
  }
  const Matrix at = a.transposed();
  Matrix out(a.cols_, b.cols_, 0.0);
  gemm_dispatch(at.rows_, b.cols_, at.cols_, at.data_.data(), at.cols_, b.data_.data(),
                b.cols_, /*b_trans=*/false, out.data_.data(), out.cols_);
  return out;
}

Matrix Matrix::matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.cols_) {
    throw std::invalid_argument("Matrix::matmul_nt: dim mismatch " + a.shape_str() + " * " +
                                b.shape_str() + "ᵀ");
  }
  Matrix out(a.rows_, b.rows_, 0.0);
  gemm_dispatch(a.rows_, b.rows_, a.cols_, a.data_.data(), a.cols_, b.data_.data(), b.cols_,
                /*b_trans=*/true, out.data_.data(), out.cols_);
  return out;
}

Matrix Matrix::matmul_ref(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.rows_) {
    throw std::invalid_argument("Matrix::matmul_ref: inner dim mismatch " + a.shape_str() +
                                " * " + b.shape_str());
  }
  Matrix out(a.rows_, b.cols_, 0.0);
  // ikj loop order: streams through b and out rows contiguously.
  for (std::size_t i = 0; i < a.rows_; ++i) {
    const double* arow = a.data_.data() + i * a.cols_;
    double* orow = out.data_.data() + i * out.cols_;
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = arow[k];
      const double* brow = b.data_.data() + k * b.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_tn_ref(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_) {
    throw std::invalid_argument("Matrix::matmul_tn_ref: dim mismatch " + a.shape_str() +
                                "ᵀ * " + b.shape_str());
  }
  Matrix out(a.cols_, b.cols_, 0.0);
  for (std::size_t k = 0; k < a.rows_; ++k) {
    const double* arow = a.data_.data() + k * a.cols_;
    const double* brow = b.data_.data() + k * b.cols_;
    for (std::size_t i = 0; i < a.cols_; ++i) {
      const double aki = arow[i];
      double* orow = out.data_.data() + i * out.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_nt_ref(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.cols_) {
    throw std::invalid_argument("Matrix::matmul_nt_ref: dim mismatch " + a.shape_str() +
                                " * " + b.shape_str() + "ᵀ");
  }
  Matrix out(a.rows_, b.rows_, 0.0);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    const double* arow = a.data_.data() + i * a.cols_;
    double* orow = out.data_.data() + i * out.cols_;
    for (std::size_t j = 0; j < b.rows_; ++j) {
      const double* brow = b.data_.data() + j * b.cols_;
      double dot = 0.0;
      for (std::size_t k = 0; k < a.cols_; ++k) dot += arow[k] * brow[k];
      orow[j] = dot;
    }
  }
  return out;
}

Matrix Matrix::add_row_broadcast(const Matrix& row_vec) const {
  if (row_vec.rows_ != 1 || row_vec.cols_ != cols_) {
    throw std::invalid_argument("Matrix::add_row_broadcast: " + row_vec.shape_str() +
                                " onto " + shape_str());
  }
  Matrix out = *this;
  for (std::size_t r = 0; r < rows_; ++r) {
    double* orow = out.data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) orow[c] += row_vec.data_[c];
  }
  return out;
}

Matrix Matrix::colwise_sum() const {
  Matrix out(1, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* irow = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out.data_[c] += irow[c];
  }
  return out;
}

Matrix Matrix::colwise_mean() const {
  Matrix out = colwise_sum();
  if (rows_ > 0) out *= 1.0 / static_cast<double>(rows_);
  return out;
}

Matrix Matrix::mean_of(std::span<const Matrix> ms) {
  if (ms.empty()) throw std::invalid_argument("Matrix::mean_of: empty span");
  Matrix out = ms[0];
  for (std::size_t i = 1; i < ms.size(); ++i) out += ms[i];
  out *= 1.0 / static_cast<double>(ms.size());
  return out;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::mean() const { return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size()); }

double Matrix::min() const {
  if (data_.empty()) throw std::runtime_error("Matrix::min on empty matrix");
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::max() const {
  if (data_.empty()) throw std::runtime_error("Matrix::max on empty matrix");
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::squared_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::norm() const { return std::sqrt(squared_norm()); }

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  a.check_same_shape(b, "max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

bool Matrix::operator==(const Matrix& other) const {
  return same_shape(other) && data_ == other.data_;
}

std::string Matrix::shape_str() const {
  return "(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

std::string Matrix::to_string(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "[";
  const auto rlim = std::min<std::size_t>(rows_, static_cast<std::size_t>(max_rows));
  const auto clim = std::min<std::size_t>(cols_, static_cast<std::size_t>(max_cols));
  for (std::size_t r = 0; r < rlim; ++r) {
    os << (r ? ", [" : "[");
    for (std::size_t c = 0; c < clim; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    if (clim < cols_) os << ", ...";
    os << "]";
  }
  if (rlim < rows_) os << ", ...";
  os << "]";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) { return os << m.to_string(); }

}  // namespace bellamy::nn
