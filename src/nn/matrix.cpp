#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace bellamy::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols) {
    throw std::invalid_argument("Matrix: data size " + std::to_string(data_.size()) +
                                " does not match shape " + std::to_string(rows) + "x" +
                                std::to_string(cols));
  }
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 0.0); }
Matrix Matrix::ones(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 1.0); }

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::row_vector(std::span<const double> values) {
  return Matrix(1, values.size(), std::vector<double>(values.begin(), values.end()));
}

Matrix Matrix::col_vector(std::span<const double> values) {
  return Matrix(values.size(), 1, std::vector<double>(values.begin(), values.end()));
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, util::Rng& rng, double mean,
                     double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.normal(mean, stddev);
  return m;
}

Matrix Matrix::rand_uniform(std::size_t rows, std::size_t cols, util::Rng& rng, double lo,
                            double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.uniform(lo, hi);
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
double Matrix::operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at(" + std::to_string(r) + "," + std::to_string(c) +
                            ") on " + shape_str());
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  return const_cast<Matrix*>(this)->at(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row " + std::to_string(r));
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row " + std::to_string(r));
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::reshaped(std::size_t rows, std::size_t cols) const {
  if (rows * cols != data_.size()) {
    throw std::invalid_argument("Matrix::reshaped: size mismatch " + shape_str() + " -> " +
                                std::to_string(rows) + "x" + std::to_string(cols));
  }
  return Matrix(rows, cols, data_);
}

Matrix Matrix::slice_rows(std::size_t begin, std::size_t end) const {
  if (begin > end || end > rows_) throw std::out_of_range("Matrix::slice_rows");
  Matrix out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_), out.data_.begin());
  return out;
}

Matrix Matrix::slice_cols(std::size_t begin, std::size_t end) const {
  if (begin > end || end > cols_) throw std::out_of_range("Matrix::slice_cols");
  Matrix out(rows_, end - begin);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = begin; c < end; ++c) out(r, c - begin) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) throw std::out_of_range("Matrix::gather_rows");
    std::copy_n(data_.data() + indices[i] * cols_, cols_, out.data_.data() + i * cols_);
  }
  return out;
}

Matrix Matrix::hcat(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_) {
    throw std::invalid_argument("Matrix::hcat: row mismatch " + a.shape_str() + " vs " +
                                b.shape_str());
  }
  Matrix out(a.rows_, a.cols_ + b.cols_);
  for (std::size_t r = 0; r < a.rows_; ++r) {
    std::copy_n(a.data_.data() + r * a.cols_, a.cols_, out.data_.data() + r * out.cols_);
    std::copy_n(b.data_.data() + r * b.cols_, b.cols_,
                out.data_.data() + r * out.cols_ + a.cols_);
  }
  return out;
}

Matrix Matrix::vcat(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.cols_ && !a.empty() && !b.empty()) {
    throw std::invalid_argument("Matrix::vcat: col mismatch " + a.shape_str() + " vs " +
                                b.shape_str());
  }
  if (a.empty()) return b;
  if (b.empty()) return a;
  Matrix out(a.rows_ + b.rows_, a.cols_);
  std::copy(a.data_.begin(), a.data_.end(), out.data_.begin());
  std::copy(b.data_.begin(), b.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(a.data_.size()));
  return out;
}

void Matrix::set_cols(std::size_t col_begin, const Matrix& src) {
  if (src.rows_ != rows_ || col_begin + src.cols_ > cols_) {
    throw std::invalid_argument("Matrix::set_cols: " + src.shape_str() + " into " +
                                shape_str() + " at col " + std::to_string(col_begin));
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(src.data_.data() + r * src.cols_, src.cols_,
                data_.data() + r * cols_ + col_begin);
  }
}

void Matrix::check_same_shape(const Matrix& other, const char* op) const {
  if (!same_shape(other)) {
    throw std::invalid_argument(std::string("Matrix::") + op + ": shape mismatch " +
                                shape_str() + " vs " + other.shape_str());
  }
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  check_same_shape(rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  check_same_shape(rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::hadamard(const Matrix& rhs) const {
  check_same_shape(rhs, "hadamard");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= rhs.data_[i];
  return out;
}

Matrix Matrix::apply(const std::function<double(double)>& fn) const {
  Matrix out = *this;
  out.apply_inplace(fn);
  return out;
}

void Matrix::apply_inplace(const std::function<double(double)>& fn) {
  for (double& v : data_) v = fn(v);
}

void Matrix::add_scaled(const Matrix& rhs, double alpha) {
  check_same_shape(rhs, "add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * rhs.data_[i];
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

Matrix Matrix::matmul(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.rows_) {
    throw std::invalid_argument("Matrix::matmul: inner dim mismatch " + a.shape_str() +
                                " * " + b.shape_str());
  }
  Matrix out(a.rows_, b.cols_, 0.0);
  // ikj loop order: streams through b and out rows contiguously.
  for (std::size_t i = 0; i < a.rows_; ++i) {
    const double* arow = a.data_.data() + i * a.cols_;
    double* orow = out.data_.data() + i * out.cols_;
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.data_.data() + k * b.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_) {
    throw std::invalid_argument("Matrix::matmul_tn: dim mismatch " + a.shape_str() +
                                "ᵀ * " + b.shape_str());
  }
  Matrix out(a.cols_, b.cols_, 0.0);
  for (std::size_t k = 0; k < a.rows_; ++k) {
    const double* arow = a.data_.data() + k * a.cols_;
    const double* brow = b.data_.data() + k * b.cols_;
    for (std::size_t i = 0; i < a.cols_; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* orow = out.data_.data() + i * out.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.cols_) {
    throw std::invalid_argument("Matrix::matmul_nt: dim mismatch " + a.shape_str() + " * " +
                                b.shape_str() + "ᵀ");
  }
  Matrix out(a.rows_, b.rows_, 0.0);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    const double* arow = a.data_.data() + i * a.cols_;
    double* orow = out.data_.data() + i * out.cols_;
    for (std::size_t j = 0; j < b.rows_; ++j) {
      const double* brow = b.data_.data() + j * b.cols_;
      double dot = 0.0;
      for (std::size_t k = 0; k < a.cols_; ++k) dot += arow[k] * brow[k];
      orow[j] = dot;
    }
  }
  return out;
}

Matrix Matrix::add_row_broadcast(const Matrix& row_vec) const {
  if (row_vec.rows_ != 1 || row_vec.cols_ != cols_) {
    throw std::invalid_argument("Matrix::add_row_broadcast: " + row_vec.shape_str() +
                                " onto " + shape_str());
  }
  Matrix out = *this;
  for (std::size_t r = 0; r < rows_; ++r) {
    double* orow = out.data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) orow[c] += row_vec.data_[c];
  }
  return out;
}

Matrix Matrix::colwise_sum() const {
  Matrix out(1, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* irow = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out.data_[c] += irow[c];
  }
  return out;
}

Matrix Matrix::colwise_mean() const {
  Matrix out = colwise_sum();
  if (rows_ > 0) out *= 1.0 / static_cast<double>(rows_);
  return out;
}

Matrix Matrix::mean_of(std::span<const Matrix> ms) {
  if (ms.empty()) throw std::invalid_argument("Matrix::mean_of: empty span");
  Matrix out = ms[0];
  for (std::size_t i = 1; i < ms.size(); ++i) out += ms[i];
  out *= 1.0 / static_cast<double>(ms.size());
  return out;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::mean() const { return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size()); }

double Matrix::min() const {
  if (data_.empty()) throw std::runtime_error("Matrix::min on empty matrix");
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::max() const {
  if (data_.empty()) throw std::runtime_error("Matrix::max on empty matrix");
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::squared_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::norm() const { return std::sqrt(squared_norm()); }

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  a.check_same_shape(b, "max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

bool Matrix::operator==(const Matrix& other) const {
  return same_shape(other) && data_ == other.data_;
}

std::string Matrix::shape_str() const {
  return "(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

std::string Matrix::to_string(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "[";
  const auto rlim = std::min<std::size_t>(rows_, static_cast<std::size_t>(max_rows));
  const auto clim = std::min<std::size_t>(cols_, static_cast<std::size_t>(max_cols));
  for (std::size_t r = 0; r < rlim; ++r) {
    os << (r ? ", [" : "[");
    for (std::size_t c = 0; c < clim; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    if (clim < cols_) os << ", ...";
    os << "]";
  }
  if (rlim < rows_) os << ", ...";
  os << "]";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) { return os << m.to_string(); }

}  // namespace bellamy::nn
