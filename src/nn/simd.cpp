#include "nn/simd.hpp"

#include <cmath>
#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define BELLAMY_SIMD_X86_DISPATCH 1
#endif

#include "nn/activations.hpp"

namespace bellamy::nn::simd {

// ---- portable reference implementations ------------------------------------
//
// Fused multiply-adds are written explicitly (__builtin_fma) wherever the
// AVX2 path fuses, so the two paths round identically per element and the
// parity tests can demand exact equality for the arithmetic kernels.

namespace ref {

void scale(double* x, std::size_t n, double a) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void axpy(double* y, const double* x, std::size_t n, double a) {
  for (std::size_t i = 0; i < n; ++i) y[i] = __builtin_fma(a, x[i], y[i]);
}

void add(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void sub(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void mul(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void relu_forward(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void relu_backward(double* g, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] <= 0.0) g[i] = 0.0;
  }
}

void tanh_backward(double* g, const double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) g[i] *= __builtin_fma(-y[i], y[i], 1.0);
}

void sigmoid_backward(double* g, const double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) g[i] *= y[i] * (1.0 - y[i]);
}

void selu_forward(double* x, std::size_t n) {
  const double sa = kSeluScale * kSeluAlpha;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = x[i] > 0.0 ? kSeluScale * x[i] : sa * (std::exp(x[i]) - 1.0);
  }
}

void selu_backward(double* g, const double* x, std::size_t n) {
  const double sa = kSeluScale * kSeluAlpha;
  for (std::size_t i = 0; i < n; ++i) {
    g[i] *= x[i] > 0.0 ? kSeluScale : sa * std::exp(x[i]);
  }
}

void adam_update(double* w, const double* grad, double* m, double* v, std::size_t n,
                 const AdamStep& s) {
  const double c1 = 1.0 - s.beta1;
  const double c2 = 1.0 - s.beta2;
  for (std::size_t i = 0; i < n; ++i) {
    const double geff = __builtin_fma(s.weight_decay, w[i], grad[i]);
    m[i] = __builtin_fma(s.beta1, m[i], c1 * geff);
    v[i] = __builtin_fma(s.beta2, v[i], (c2 * geff) * geff);
    const double mh = m[i] / s.bias1;
    const double vh = v[i] / s.bias2;
    w[i] = w[i] - (s.lr * mh) / (std::sqrt(vh) + s.eps);
  }
}

double mse_loss_grad(const double* pred, const double* target, double* grad,
                     std::size_t n, double inv_n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = pred[i] - target[i];
    acc += e * e;
    grad[i] = (2.0 * e) * inv_n;
  }
  return acc;
}

double huber_loss_grad(const double* pred, const double* target, double* grad,
                       std::size_t n, double delta, double inv_n) {
  double acc = 0.0;
  const double dn = delta * inv_n;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = pred[i] - target[i];
    const double ae = std::fabs(e);
    if (ae <= delta) {
      acc += (0.5 * e) * e;
      grad[i] = e * inv_n;
    } else {
      acc += delta * (ae - 0.5 * delta);
      grad[i] = e > 0.0 ? dn : -dn;
    }
  }
  return acc;
}

double mae_loss_grad(const double* pred, const double* target, double* grad,
                     std::size_t n, double inv_n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = pred[i] - target[i];
    acc += std::fabs(e);
    grad[i] = e > 0.0 ? inv_n : (e < 0.0 ? -inv_n : 0.0);
  }
  return acc;
}

}  // namespace ref

// ---- AVX2 + FMA implementations --------------------------------------------

#ifdef BELLAMY_SIMD_X86_DISPATCH

namespace avx2 {

// Lane-enable masks for the ragged tail (r = n % 4 live lanes).  Tail
// elements are maskloaded into the SAME vector arithmetic as full blocks, so
// a value's result never depends on its position in the array.
alignas(32) static const std::int64_t kTailMask[4][4] = {
    {0, 0, 0, 0}, {-1, 0, 0, 0}, {-1, -1, 0, 0}, {-1, -1, -1, 0}};

__attribute__((target("avx2"))) static inline __m256i tail_mask(std::size_t r) {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(kTailMask[r]));
}

// Cephes-style vectorized exp: |error| ~1 ulp over the clamped domain
// [-708, 709].  Inputs outside the domain are clamped (selu only consumes
// exp(x) for x <= 0, where the clamp is far past saturation); NaN inputs are
// not part of the kernel contract.
__attribute__((target("avx2,fma"))) static inline __m256d exp_pd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  x = _mm256_min_pd(x, _mm256_set1_pd(709.0));
  x = _mm256_max_pd(x, _mm256_set1_pd(-708.0));

  // n = floor(x * log2(e) + 0.5); r = x - n*ln2 with ln2 split hi/lo.
  const __m256d px = _mm256_floor_pd(
      _mm256_fmadd_pd(x, _mm256_set1_pd(1.4426950408889634073599), _mm256_set1_pd(0.5)));
  __m256d r = _mm256_fnmadd_pd(px, _mm256_set1_pd(6.93145751953125e-1), x);
  r = _mm256_fnmadd_pd(px, _mm256_set1_pd(1.42860682030941723212e-6), r);
  const __m256d r2 = _mm256_mul_pd(r, r);

  // exp(r) = 1 + 2r*P(r^2) / (Q(r^2) - r*P(r^2))   (Cephes expml rational)
  __m256d p = _mm256_set1_pd(1.26177193074810590878e-4);
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(3.02994407707441961300e-2));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(9.99999999999999999910e-1));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_set1_pd(3.00198505138664455042e-6);
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.52448340349684104192e-3));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.27265548208155028766e-1));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.00000000000000000005e0));
  __m256d e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
  e = _mm256_fmadd_pd(_mm256_set1_pd(2.0), e, one);

  // e *= 2^n via direct exponent construction (|n| <= 1021 after clamping).
  const __m256i n64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(px));
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(pow2));
}

// One macro-free loop skeleton per arity keeps every kernel's tail handling
// identical: process full 4-lane blocks, then maskload/maskstore the tail
// through the same lane arithmetic.

__attribute__((target("avx2,fma"))) void scale(double* x, std::size_t n, double a) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    const __m256d v = _mm256_maskload_pd(x + i, m);
    _mm256_maskstore_pd(x + i, m, _mm256_mul_pd(v, va));
  }
}

__attribute__((target("avx2,fma"))) void axpy(double* y, const double* x, std::size_t n,
                                              double a) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i,
                     _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    const __m256d vx = _mm256_maskload_pd(x + i, m);
    const __m256d vy = _mm256_maskload_pd(y + i, m);
    _mm256_maskstore_pd(y + i, m, _mm256_fmadd_pd(va, vx, vy));
  }
}

__attribute__((target("avx2,fma"))) void add(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    _mm256_maskstore_pd(
        y + i, m, _mm256_add_pd(_mm256_maskload_pd(y + i, m), _mm256_maskload_pd(x + i, m)));
  }
}

__attribute__((target("avx2,fma"))) void sub(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    _mm256_maskstore_pd(
        y + i, m, _mm256_sub_pd(_mm256_maskload_pd(y + i, m), _mm256_maskload_pd(x + i, m)));
  }
}

__attribute__((target("avx2,fma"))) void mul(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    _mm256_maskstore_pd(
        y + i, m, _mm256_mul_pd(_mm256_maskload_pd(y + i, m), _mm256_maskload_pd(x + i, m)));
  }
}

__attribute__((target("avx2,fma"))) void relu_forward(double* x, std::size_t n) {
  // max(v, +0.0) matches the scalar "v > 0 ? v : 0" branch bit for bit
  // (vmaxpd returns the second operand on equality and NaN).
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_max_pd(_mm256_loadu_pd(x + i), zero));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    _mm256_maskstore_pd(x + i, m, _mm256_max_pd(_mm256_maskload_pd(x + i, m), zero));
  }
}

__attribute__((target("avx2,fma"))) void relu_backward(double* g, const double* x,
                                                       std::size_t n) {
  // Zero g where x <= 0; the ordered LE compare leaves NaN inputs untouched,
  // matching the scalar "if (x <= 0) g = 0".
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d le = _mm256_cmp_pd(_mm256_loadu_pd(x + i), zero, _CMP_LE_OQ);
    _mm256_storeu_pd(g + i, _mm256_andnot_pd(le, _mm256_loadu_pd(g + i)));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    const __m256d le = _mm256_cmp_pd(_mm256_maskload_pd(x + i, m), zero, _CMP_LE_OQ);
    _mm256_maskstore_pd(g + i, m, _mm256_andnot_pd(le, _mm256_maskload_pd(g + i, m)));
  }
}

__attribute__((target("avx2,fma"))) void tanh_backward(double* g, const double* y,
                                                       std::size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256d d = _mm256_fnmadd_pd(vy, vy, one);
    _mm256_storeu_pd(g + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), d));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    const __m256d vy = _mm256_maskload_pd(y + i, m);
    const __m256d d = _mm256_fnmadd_pd(vy, vy, one);
    _mm256_maskstore_pd(g + i, m, _mm256_mul_pd(_mm256_maskload_pd(g + i, m), d));
  }
}

__attribute__((target("avx2,fma"))) void sigmoid_backward(double* g, const double* y,
                                                          std::size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256d d = _mm256_mul_pd(vy, _mm256_sub_pd(one, vy));
    _mm256_storeu_pd(g + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), d));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    const __m256d vy = _mm256_maskload_pd(y + i, m);
    const __m256d d = _mm256_mul_pd(vy, _mm256_sub_pd(one, vy));
    _mm256_maskstore_pd(g + i, m, _mm256_mul_pd(_mm256_maskload_pd(g + i, m), d));
  }
}

__attribute__((target("avx2,fma"))) static inline __m256d selu_fwd_lane(__m256d v) {
  const __m256d scale = _mm256_set1_pd(kSeluScale);
  const __m256d sa = _mm256_set1_pd(kSeluScale * kSeluAlpha);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d pos = _mm256_mul_pd(scale, v);
  const __m256d neg = _mm256_mul_pd(sa, _mm256_sub_pd(exp_pd(v), one));
  const __m256d gt = _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_GT_OQ);
  return _mm256_blendv_pd(neg, pos, gt);
}

__attribute__((target("avx2,fma"))) void selu_forward(double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, selu_fwd_lane(_mm256_loadu_pd(x + i)));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    _mm256_maskstore_pd(x + i, m, selu_fwd_lane(_mm256_maskload_pd(x + i, m)));
  }
}

__attribute__((target("avx2,fma"))) static inline __m256d selu_bwd_lane(__m256d v) {
  const __m256d scale = _mm256_set1_pd(kSeluScale);
  const __m256d sa = _mm256_set1_pd(kSeluScale * kSeluAlpha);
  const __m256d neg = _mm256_mul_pd(sa, exp_pd(v));
  const __m256d gt = _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_GT_OQ);
  return _mm256_blendv_pd(neg, scale, gt);
}

__attribute__((target("avx2,fma"))) void selu_backward(double* g, const double* x,
                                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = selu_bwd_lane(_mm256_loadu_pd(x + i));
    _mm256_storeu_pd(g + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), d));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    const __m256d d = selu_bwd_lane(_mm256_maskload_pd(x + i, m));
    _mm256_maskstore_pd(g + i, m, _mm256_mul_pd(_mm256_maskload_pd(g + i, m), d));
  }
}

// Per-lane Adam step: pre-broadcast constants arrive via this POD so the
// helper stays a plain (target-attributed) function — lambdas inside a
// target("avx2") function do not inherit the target and fail to inline.
struct AdamLanes {
  __m256d b1, b2, c1, c2, bias1, bias2, lr, eps, wd;
};

__attribute__((target("avx2,fma"))) static inline __m256d adam_lane(
    const AdamLanes& s, __m256d vw, __m256d vg, __m256d vm, __m256d vv, __m256d* om,
    __m256d* ov) {
  const __m256d geff = _mm256_fmadd_pd(s.wd, vw, vg);
  vm = _mm256_fmadd_pd(s.b1, vm, _mm256_mul_pd(s.c1, geff));
  vv = _mm256_fmadd_pd(s.b2, vv, _mm256_mul_pd(_mm256_mul_pd(s.c2, geff), geff));
  *om = vm;
  *ov = vv;
  const __m256d mh = _mm256_div_pd(vm, s.bias1);
  const __m256d vh = _mm256_div_pd(vv, s.bias2);
  const __m256d den = _mm256_add_pd(_mm256_sqrt_pd(vh), s.eps);
  return _mm256_sub_pd(vw, _mm256_div_pd(_mm256_mul_pd(s.lr, mh), den));
}

__attribute__((target("avx2,fma"))) void adam_update(double* w, const double* grad,
                                                     double* m, double* v, std::size_t n,
                                                     const AdamStep& s) {
  const AdamLanes lanes{_mm256_set1_pd(s.beta1),       _mm256_set1_pd(s.beta2),
                        _mm256_set1_pd(1.0 - s.beta1), _mm256_set1_pd(1.0 - s.beta2),
                        _mm256_set1_pd(s.bias1),       _mm256_set1_pd(s.bias2),
                        _mm256_set1_pd(s.lr),          _mm256_set1_pd(s.eps),
                        _mm256_set1_pd(s.weight_decay)};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d om, ov;
    const __m256d nw =
        adam_lane(lanes, _mm256_loadu_pd(w + i), _mm256_loadu_pd(grad + i),
                  _mm256_loadu_pd(m + i), _mm256_loadu_pd(v + i), &om, &ov);
    _mm256_storeu_pd(m + i, om);
    _mm256_storeu_pd(v + i, ov);
    _mm256_storeu_pd(w + i, nw);
  }
  if (const std::size_t r = n - i) {
    const __m256i msk = tail_mask(r);
    __m256d om, ov;
    const __m256d nw =
        adam_lane(lanes, _mm256_maskload_pd(w + i, msk), _mm256_maskload_pd(grad + i, msk),
                  _mm256_maskload_pd(m + i, msk), _mm256_maskload_pd(v + i, msk), &om, &ov);
    _mm256_maskstore_pd(m + i, msk, om);
    _mm256_maskstore_pd(v + i, msk, ov);
    _mm256_maskstore_pd(w + i, msk, nw);
  }
}

__attribute__((target("avx2,fma"))) static inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

__attribute__((target("avx2,fma"))) double mse_loss_grad(const double* pred,
                                                         const double* target,
                                                         double* grad, std::size_t n,
                                                         double inv_n) {
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d vin = _mm256_set1_pd(inv_n);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d e = _mm256_sub_pd(_mm256_loadu_pd(pred + i), _mm256_loadu_pd(target + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(e, e));
    _mm256_storeu_pd(grad + i, _mm256_mul_pd(_mm256_mul_pd(two, e), vin));
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    const __m256d e =
        _mm256_sub_pd(_mm256_maskload_pd(pred + i, m), _mm256_maskload_pd(target + i, m));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(e, e));
    _mm256_maskstore_pd(grad + i, m, _mm256_mul_pd(_mm256_mul_pd(two, e), vin));
  }
  return hsum(acc);
}

struct HuberLanes {
  __m256d delta, half, vin, dn, halfdelta, sign_mask;
};

__attribute__((target("avx2,fma"))) static inline __m256d huber_lane(
    const HuberLanes& s, __m256d p, __m256d t, __m256d* out_grad) {
  const __m256d e = _mm256_sub_pd(p, t);
  const __m256d ae = _mm256_andnot_pd(s.sign_mask, e);
  const __m256d quad_term = _mm256_mul_pd(_mm256_mul_pd(s.half, e), e);
  const __m256d lin_term = _mm256_mul_pd(s.delta, _mm256_sub_pd(ae, s.halfdelta));
  const __m256d quad_grad = _mm256_mul_pd(e, s.vin);
  // +-delta/n with e's sign bit (e == 0 always takes the quadratic branch).
  const __m256d lin_grad = _mm256_or_pd(s.dn, _mm256_and_pd(s.sign_mask, e));
  const __m256d is_quad = _mm256_cmp_pd(ae, s.delta, _CMP_LE_OQ);
  *out_grad = _mm256_blendv_pd(lin_grad, quad_grad, is_quad);
  return _mm256_blendv_pd(lin_term, quad_term, is_quad);
}

__attribute__((target("avx2,fma"))) double huber_loss_grad(const double* pred,
                                                           const double* target,
                                                           double* grad, std::size_t n,
                                                           double delta, double inv_n) {
  const HuberLanes lanes{_mm256_set1_pd(delta),          _mm256_set1_pd(0.5),
                         _mm256_set1_pd(inv_n),          _mm256_set1_pd(delta * inv_n),
                         _mm256_set1_pd(0.5 * delta),    _mm256_set1_pd(-0.0)};
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d g;
    acc = _mm256_add_pd(
        acc, huber_lane(lanes, _mm256_loadu_pd(pred + i), _mm256_loadu_pd(target + i), &g));
    _mm256_storeu_pd(grad + i, g);
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    __m256d g;
    acc = _mm256_add_pd(acc, huber_lane(lanes, _mm256_maskload_pd(pred + i, m),
                                        _mm256_maskload_pd(target + i, m), &g));
    _mm256_maskstore_pd(grad + i, m, g);
  }
  return hsum(acc);
}

struct MaeLanes {
  __m256d vin, nvin, zero, sign_mask;
};

__attribute__((target("avx2,fma"))) static inline __m256d mae_lane(const MaeLanes& s,
                                                                   __m256d p, __m256d t,
                                                                   __m256d* out_grad) {
  const __m256d e = _mm256_sub_pd(p, t);
  const __m256d pos = _mm256_and_pd(_mm256_cmp_pd(e, s.zero, _CMP_GT_OQ), s.vin);
  const __m256d neg = _mm256_and_pd(_mm256_cmp_pd(e, s.zero, _CMP_LT_OQ), s.nvin);
  *out_grad = _mm256_or_pd(pos, neg);
  return _mm256_andnot_pd(s.sign_mask, e);
}

__attribute__((target("avx2,fma"))) double mae_loss_grad(const double* pred,
                                                         const double* target,
                                                         double* grad, std::size_t n,
                                                         double inv_n) {
  const MaeLanes lanes{_mm256_set1_pd(inv_n), _mm256_set1_pd(-inv_n),
                       _mm256_setzero_pd(), _mm256_set1_pd(-0.0)};
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d g;
    acc = _mm256_add_pd(
        acc, mae_lane(lanes, _mm256_loadu_pd(pred + i), _mm256_loadu_pd(target + i), &g));
    _mm256_storeu_pd(grad + i, g);
  }
  if (const std::size_t r = n - i) {
    const __m256i m = tail_mask(r);
    __m256d g;
    acc = _mm256_add_pd(acc, mae_lane(lanes, _mm256_maskload_pd(pred + i, m),
                                      _mm256_maskload_pd(target + i, m), &g));
    _mm256_maskstore_pd(grad + i, m, g);
  }
  return hsum(acc);
}

}  // namespace avx2

#endif  // BELLAMY_SIMD_X86_DISPATCH

// ---- dispatch ---------------------------------------------------------------

namespace {

struct Kernels {
  void (*scale)(double*, std::size_t, double);
  void (*axpy)(double*, const double*, std::size_t, double);
  void (*add)(double*, const double*, std::size_t);
  void (*sub)(double*, const double*, std::size_t);
  void (*mul)(double*, const double*, std::size_t);
  void (*relu_forward)(double*, std::size_t);
  void (*relu_backward)(double*, const double*, std::size_t);
  void (*tanh_backward)(double*, const double*, std::size_t);
  void (*sigmoid_backward)(double*, const double*, std::size_t);
  void (*selu_forward)(double*, std::size_t);
  void (*selu_backward)(double*, const double*, std::size_t);
  void (*adam_update)(double*, const double*, double*, double*, std::size_t,
                      const AdamStep&);
  double (*mse_loss_grad)(const double*, const double*, double*, std::size_t, double);
  double (*huber_loss_grad)(const double*, const double*, double*, std::size_t, double,
                            double);
  double (*mae_loss_grad)(const double*, const double*, double*, std::size_t, double);
  bool is_avx2;
};

Kernels pick_kernels() {
#ifdef BELLAMY_SIMD_X86_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Kernels{avx2::scale,         avx2::axpy,
                   avx2::add,           avx2::sub,
                   avx2::mul,           avx2::relu_forward,
                   avx2::relu_backward, avx2::tanh_backward,
                   avx2::sigmoid_backward, avx2::selu_forward,
                   avx2::selu_backward, avx2::adam_update,
                   avx2::mse_loss_grad, avx2::huber_loss_grad,
                   avx2::mae_loss_grad, true};
  }
#endif
  return Kernels{ref::scale,         ref::axpy,
                 ref::add,           ref::sub,
                 ref::mul,           ref::relu_forward,
                 ref::relu_backward, ref::tanh_backward,
                 ref::sigmoid_backward, ref::selu_forward,
                 ref::selu_backward, ref::adam_update,
                 ref::mse_loss_grad, ref::huber_loss_grad,
                 ref::mae_loss_grad, false};
}

const Kernels& active() {
  static const Kernels k = pick_kernels();
  return k;
}

}  // namespace

void scale(double* x, std::size_t n, double a) { active().scale(x, n, a); }
void axpy(double* y, const double* x, std::size_t n, double a) {
  active().axpy(y, x, n, a);
}
void add(double* y, const double* x, std::size_t n) { active().add(y, x, n); }
void sub(double* y, const double* x, std::size_t n) { active().sub(y, x, n); }
void mul(double* y, const double* x, std::size_t n) { active().mul(y, x, n); }
void relu_forward(double* x, std::size_t n) { active().relu_forward(x, n); }
void relu_backward(double* g, const double* x, std::size_t n) {
  active().relu_backward(g, x, n);
}
void tanh_backward(double* g, const double* y, std::size_t n) {
  active().tanh_backward(g, y, n);
}
void sigmoid_backward(double* g, const double* y, std::size_t n) {
  active().sigmoid_backward(g, y, n);
}
void selu_forward(double* x, std::size_t n) { active().selu_forward(x, n); }
void selu_backward(double* g, const double* x, std::size_t n) {
  active().selu_backward(g, x, n);
}
void adam_update(double* w, const double* grad, double* m, double* v, std::size_t n,
                 const AdamStep& s) {
  active().adam_update(w, grad, m, v, n, s);
}
double mse_loss_grad(const double* pred, const double* target, double* grad,
                     std::size_t n, double inv_n) {
  return active().mse_loss_grad(pred, target, grad, n, inv_n);
}
double huber_loss_grad(const double* pred, const double* target, double* grad,
                       std::size_t n, double delta, double inv_n) {
  return active().huber_loss_grad(pred, target, grad, n, delta, inv_n);
}
double mae_loss_grad(const double* pred, const double* target, double* grad,
                     std::size_t n, double inv_n) {
  return active().mae_loss_grad(pred, target, grad, n, inv_n);
}
bool avx2_active() { return active().is_avx2; }

}  // namespace bellamy::nn::simd
