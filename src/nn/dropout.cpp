#include "nn/dropout.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "util/string_utils.hpp"

namespace bellamy::nn {

namespace {
// SELU negative saturation value: lim_{x->-inf} selu(x) = -scale * alpha.
constexpr double kAlphaPrime = -kSeluScale * kSeluAlpha;
}  // namespace

AlphaDropout::AlphaDropout(double rate, util::Rng rng) : rate_(rate), rng_(rng) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("AlphaDropout: rate must be in [0, 1)");
  }
  recompute_affine();
}

void AlphaDropout::set_rate(double rate) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("AlphaDropout::set_rate: rate must be in [0, 1)");
  }
  rate_ = rate;
  recompute_affine();
}

void AlphaDropout::recompute_affine() {
  const double p = rate_;
  const double q = 1.0 - p;
  if (p == 0.0) {
    a_ = 1.0;
    b_ = 0.0;
    return;
  }
  // Keep mean/variance of a unit-Gaussian input: y = a * (x*m + alpha'*(1-m)) + b
  // with a = (q + alpha'^2 * q * p)^(-1/2), b = -a * p * alpha'.
  a_ = 1.0 / std::sqrt(q + kAlphaPrime * kAlphaPrime * q * p);
  b_ = -a_ * p * kAlphaPrime;
}

Matrix AlphaDropout::forward(const Matrix& input) {
  if (!training_ || rate_ == 0.0) {
    mask_ = Matrix();  // signal "identity" to backward
    return input;
  }
  mask_ = Matrix(input.rows(), input.cols());
  Matrix out(input.rows(), input.cols());
  for (std::size_t r = 0; r < input.rows(); ++r) {
    for (std::size_t c = 0; c < input.cols(); ++c) {
      const bool keep = !rng_.bernoulli(rate_);
      mask_(r, c) = keep ? 1.0 : 0.0;
      const double v = keep ? input(r, c) : kAlphaPrime;
      out(r, c) = a_ * v + b_;
    }
  }
  return out;
}

Matrix AlphaDropout::backward(const Matrix& grad_output) {
  if (mask_.empty()) return grad_output;  // forward was identity
  if (!grad_output.same_shape(mask_)) {
    throw std::invalid_argument("AlphaDropout::backward: grad shape " +
                                grad_output.shape_str() + " != mask " + mask_.shape_str());
  }
  // dy/dx = a where kept, 0 where dropped.
  Matrix grad = grad_output.hadamard(mask_);
  grad *= a_;
  return grad;
}

std::string AlphaDropout::describe() const {
  return util::format("AlphaDropout(rate=%.3f)", rate_);
}

}  // namespace bellamy::nn
