#include "nn/init.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace bellamy::nn {

Matrix make_weights(Init scheme, std::size_t fan_out, std::size_t fan_in, util::Rng& rng) {
  if (fan_in == 0) throw std::invalid_argument("make_weights: fan_in must be > 0");
  switch (scheme) {
    case Init::kHeNormal:
      return Matrix::randn(fan_out, fan_in, rng, 0.0,
                           std::sqrt(2.0 / static_cast<double>(fan_in)));
    case Init::kLeCunNormal:
      return Matrix::randn(fan_out, fan_in, rng, 0.0,
                           std::sqrt(1.0 / static_cast<double>(fan_in)));
    case Init::kXavierNormal:
      return Matrix::randn(fan_out, fan_in, rng, 0.0,
                           std::sqrt(2.0 / static_cast<double>(fan_in + fan_out)));
    case Init::kZeros:
      return Matrix::zeros(fan_out, fan_in);
  }
  throw std::invalid_argument("make_weights: unknown scheme");
}

const char* init_name(Init scheme) {
  switch (scheme) {
    case Init::kHeNormal: return "he_normal";
    case Init::kLeCunNormal: return "lecun_normal";
    case Init::kXavierNormal: return "xavier_normal";
    case Init::kZeros: return "zeros";
  }
  return "?";
}

}  // namespace bellamy::nn
