#pragma once
// Fully-connected layer: Y = X Wᵀ (+ b).
//
// Note the paper's encoder/decoder networks "waive additional additive
// biases" (§IV-A), so bias is optional here.

#include <string>

#include "nn/init.hpp"
#include "nn/module.hpp"

namespace bellamy::util {
class Rng;
}

namespace bellamy::nn {

class Linear : public Module {
 public:
  /// W is (out x in); bias (1 x out) if with_bias.
  Linear(std::size_t in_features, std::size_t out_features, bool with_bias,
         Init init, util::Rng& rng, std::string name = "linear");

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void clear_forward_cache() override { cached_input_ = Matrix(); }
  std::string describe() const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  bool has_bias() const { return with_bias_; }

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter& bias();

  /// Re-draw weights (and zero bias) — used by the *-reset reuse variants.
  void reinitialize(Init init, util::Rng& rng);

 private:
  std::size_t in_;
  std::size_t out_;
  bool with_bias_;
  Parameter weight_;
  Parameter bias_;
  Matrix cached_input_;
};

}  // namespace bellamy::nn
