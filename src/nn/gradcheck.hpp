#pragma once
// Finite-difference gradient verification, used heavily by the test suite to
// certify every layer's backward() against central differences.

#include <functional>

#include "nn/module.hpp"

namespace bellamy::nn {

struct GradCheckResult {
  double max_input_grad_error = 0.0;  ///< max |analytic - numeric| over inputs
  double max_param_grad_error = 0.0;  ///< max over all parameters
  bool ok(double tol = 1e-6) const {
    return max_input_grad_error <= tol && max_param_grad_error <= tol;
  }
};

/// Checks d(scalar loss)/d(input) and d(loss)/d(params) for `module` where the
/// scalar loss is loss_fn(module.forward(input)).  loss_fn must be a pure
/// function of the output (the default is 0.5 * ||y||^2, whose gradient is y).
///
/// The module is evaluated in its current training mode; stochastic modules
/// (dropout) must be put in eval mode by the caller first.
GradCheckResult grad_check(
    Module& module, const Matrix& input,
    const std::function<std::pair<double, Matrix>(const Matrix&)>& loss_fn = {},
    double epsilon = 1e-6);

}  // namespace bellamy::nn
