#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/simd.hpp"

namespace bellamy::nn {

namespace {
void check_shapes(const Matrix& pred, const Matrix& target, const char* name) {
  if (!pred.same_shape(target)) {
    throw std::invalid_argument(std::string(name) + ": shape mismatch " + pred.shape_str() +
                                " vs " + target.shape_str());
  }
  if (pred.empty()) throw std::invalid_argument(std::string(name) + ": empty input");
}
}  // namespace

// The per-element loss terms and gradients run as SIMD kernels
// (nn/simd.hpp).  Gradients are bit-identical between the AVX2 and portable
// paths; the summed loss VALUE accumulates in vector lanes, so it may differ
// from a strictly sequential sum in the last ulps (well inside the 1e-9
// equivalence budget of the batched-vs-per-sample tests).

LossResult mse_loss(const Matrix& pred, const Matrix& target) {
  check_shapes(pred, target, "mse_loss");
  const double n = static_cast<double>(pred.size());
  LossResult res;
  res.grad = Matrix(pred.rows(), pred.cols());
  const double total = simd::mse_loss_grad(pred.data(), target.data(), res.grad.data(),
                                           pred.size(), 1.0 / n);
  res.value = total / n;
  return res;
}

LossResult huber_loss(const Matrix& pred, const Matrix& target, double delta) {
  check_shapes(pred, target, "huber_loss");
  if (delta <= 0.0) throw std::invalid_argument("huber_loss: delta must be > 0");
  const double n = static_cast<double>(pred.size());
  LossResult res;
  res.grad = Matrix(pred.rows(), pred.cols());
  const double total = simd::huber_loss_grad(pred.data(), target.data(), res.grad.data(),
                                             pred.size(), delta, 1.0 / n);
  res.value = total / n;
  return res;
}

LossResult mae_loss(const Matrix& pred, const Matrix& target) {
  check_shapes(pred, target, "mae_loss");
  const double n = static_cast<double>(pred.size());
  LossResult res;
  res.grad = Matrix(pred.rows(), pred.cols());
  const double total = simd::mae_loss_grad(pred.data(), target.data(), res.grad.data(),
                                           pred.size(), 1.0 / n);
  res.value = total / n;
  return res;
}

}  // namespace bellamy::nn
