#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace bellamy::nn {

namespace {
void check_shapes(const Matrix& pred, const Matrix& target, const char* name) {
  if (!pred.same_shape(target)) {
    throw std::invalid_argument(std::string(name) + ": shape mismatch " + pred.shape_str() +
                                " vs " + target.shape_str());
  }
  if (pred.empty()) throw std::invalid_argument(std::string(name) + ": empty input");
}
}  // namespace

LossResult mse_loss(const Matrix& pred, const Matrix& target) {
  check_shapes(pred, target, "mse_loss");
  const double n = static_cast<double>(pred.size());
  LossResult res;
  res.grad = Matrix(pred.rows(), pred.cols());
  double total = 0.0;
  for (std::size_t r = 0; r < pred.rows(); ++r) {
    for (std::size_t c = 0; c < pred.cols(); ++c) {
      const double e = pred(r, c) - target(r, c);
      total += e * e;
      res.grad(r, c) = 2.0 * e / n;
    }
  }
  res.value = total / n;
  return res;
}

LossResult huber_loss(const Matrix& pred, const Matrix& target, double delta) {
  check_shapes(pred, target, "huber_loss");
  if (delta <= 0.0) throw std::invalid_argument("huber_loss: delta must be > 0");
  const double n = static_cast<double>(pred.size());
  LossResult res;
  res.grad = Matrix(pred.rows(), pred.cols());
  double total = 0.0;
  for (std::size_t r = 0; r < pred.rows(); ++r) {
    for (std::size_t c = 0; c < pred.cols(); ++c) {
      const double e = pred(r, c) - target(r, c);
      const double abs_e = std::abs(e);
      if (abs_e <= delta) {
        total += 0.5 * e * e;
        res.grad(r, c) = e / n;
      } else {
        total += delta * (abs_e - 0.5 * delta);
        res.grad(r, c) = (e > 0.0 ? delta : -delta) / n;
      }
    }
  }
  res.value = total / n;
  return res;
}

LossResult mae_loss(const Matrix& pred, const Matrix& target) {
  check_shapes(pred, target, "mae_loss");
  const double n = static_cast<double>(pred.size());
  LossResult res;
  res.grad = Matrix(pred.rows(), pred.cols());
  double total = 0.0;
  for (std::size_t r = 0; r < pred.rows(); ++r) {
    for (std::size_t c = 0; c < pred.cols(); ++c) {
      const double e = pred(r, c) - target(r, c);
      total += std::abs(e);
      res.grad(r, c) = (e > 0.0 ? 1.0 : (e < 0.0 ? -1.0 : 0.0)) / n;
    }
  }
  res.value = total / n;
  return res;
}

}  // namespace bellamy::nn
