#pragma once
// Dense row-major matrix of doubles — the tensor substrate for the NN stack.
//
// Convention used throughout the library: a batch of B samples with D
// features is a (B x D) matrix, one sample per row.  All shapes are checked;
// shape errors throw std::invalid_argument with both operand shapes in the
// message.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace bellamy::util {
class Rng;
}

namespace bellamy::parallel {
class ThreadPool;
}

namespace bellamy::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);
  /// Nested-list construction for tests: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix zeros(std::size_t rows, std::size_t cols);
  static Matrix ones(std::size_t rows, std::size_t cols);
  static Matrix identity(std::size_t n);
  /// Single-row matrix from a span (copies).
  static Matrix row_vector(std::span<const double> values);
  /// Single-column matrix from a span (copies).
  static Matrix col_vector(std::span<const double> values);
  /// i.i.d. N(mean, stddev) entries.
  static Matrix randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                      double mean = 0.0, double stddev = 1.0);
  /// i.i.d. U[lo, hi) entries.
  static Matrix rand_uniform(std::size_t rows, std::size_t cols, util::Rng& rng,
                             double lo = 0.0, double hi = 1.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;
  double& at(std::size_t r, std::size_t c);             ///< bounds-checked
  double at(std::size_t r, std::size_t c) const;        ///< bounds-checked

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;
  std::span<const double> flat() const { return data_; }

  // ---- shape ops -----------------------------------------------------------
  Matrix transposed() const;
  /// Reinterpret with new shape; total size must match.
  Matrix reshaped(std::size_t rows, std::size_t cols) const;
  /// Rows [begin, end) as a copy.
  Matrix slice_rows(std::size_t begin, std::size_t end) const;
  /// Columns [begin, end) as a copy.
  Matrix slice_cols(std::size_t begin, std::size_t end) const;
  /// Copy of the rows at the given indices, in order.
  Matrix gather_rows(std::span<const std::size_t> indices) const;
  /// Horizontal concatenation (same row counts).
  static Matrix hcat(const Matrix& a, const Matrix& b);
  /// Vertical concatenation (same col counts).
  static Matrix vcat(const Matrix& a, const Matrix& b);
  /// Write `src` into columns [col_begin, col_begin + src.cols()).
  void set_cols(std::size_t col_begin, const Matrix& src);

  // ---- arithmetic ----------------------------------------------------------
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  /// Element-wise (Hadamard) product.
  Matrix hadamard(const Matrix& rhs) const;
  /// Element-wise transform.  Templated so callables are statically dispatched
  /// (inlined) in hot loops — no std::function indirection per element.
  template <typename Fn>
  Matrix apply(Fn&& fn) const {
    Matrix out = *this;
    out.apply_inplace(std::forward<Fn>(fn));
    return out;
  }
  template <typename Fn>
  void apply_inplace(Fn&& fn) {
    for (double& v : data_) v = fn(v);
  }
  /// this += alpha * rhs (axpy).
  void add_scaled(const Matrix& rhs, double alpha);
  void fill(double value);
  void setZero() { fill(0.0); }

  /// Matrix product: (m x k) * (k x n) -> (m x n).  Register-blocked,
  /// cache-tiled kernel (packed B panel, i/k/j loop order, 64x64 tiles);
  /// every output row is accumulated in ascending-k order, so results are
  /// independent of how rows are batched or chunked.  Products above the
  /// gemm_min_flops threshold are split by whole output tiles across a
  /// ThreadPool — bit-identical to the serial kernel at any thread count.
  static Matrix matmul(const Matrix& a, const Matrix& b);
  /// aᵀ * b: (k x m)ᵀ (k x n) -> (m x n).  Materializes aᵀ (O(km), negligible
  /// against the O(mkn) product) so the blocked kernel streams rows.
  static Matrix matmul_tn(const Matrix& a, const Matrix& b);
  /// a * bᵀ without materializing the transpose: (m x k)(n x k)ᵀ -> (m x n)
  /// (the packed B panel absorbs the transpose).
  static Matrix matmul_nt(const Matrix& a, const Matrix& b);

  /// Naive triple-loop reference kernels (the pre-blocking implementations),
  /// kept as the ground truth for the blocked kernels' property tests.
  static Matrix matmul_ref(const Matrix& a, const Matrix& b);
  static Matrix matmul_tn_ref(const Matrix& a, const Matrix& b);
  static Matrix matmul_nt_ref(const Matrix& a, const Matrix& b);

  // ---- GEMM threading knobs (process-wide) ---------------------------------
  // Products with at least `min_flops` multiply-adds (2*m*n*k) are split by
  // output tile across a ThreadPool; every output tile is written by exactly
  // one task with unchanged accumulation order, so the threaded result is
  // bit-identical to the serial kernel.  Small products stay serial.
  /// Flop threshold for threading (default 8M; SIZE_MAX forces serial,
  /// 0 threads everything the pool allows).
  static void set_gemm_min_flops(std::size_t flops);
  static std::size_t gemm_min_flops();
  /// Pool used by the threaded GEMM (nullptr = the global pool).  The caller
  /// keeps ownership; used by benches/tests to sweep thread counts.
  static void set_gemm_pool(parallel::ThreadPool* pool);

  /// Broadcast-add a row vector (1 x cols) to every row.
  Matrix add_row_broadcast(const Matrix& row_vec) const;
  /// Column-wise sum -> (1 x cols).
  Matrix colwise_sum() const;
  /// Column-wise mean -> (1 x cols).
  Matrix colwise_mean() const;
  /// Row-wise mean over a set of matrices with identical shape.
  static Matrix mean_of(std::span<const Matrix> ms);

  // ---- reductions ----------------------------------------------------------
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double squared_norm() const;
  double norm() const;
  /// max |a - b| over all entries; shapes must match.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }
  bool operator==(const Matrix& other) const;

  std::string shape_str() const;
  /// Debug printing ("[[1, 2], [3, 4]]", truncated for large matrices).
  std::string to_string(int max_rows = 8, int max_cols = 8) const;

 private:
  void check_same_shape(const Matrix& other, const char* op) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace bellamy::nn
