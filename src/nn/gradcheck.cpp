#include "nn/gradcheck.hpp"

#include <cmath>

namespace bellamy::nn {

namespace {
std::pair<double, Matrix> default_loss(const Matrix& y) {
  return {0.5 * y.squared_norm(), y};
}
}  // namespace

GradCheckResult grad_check(
    Module& module, const Matrix& input,
    const std::function<std::pair<double, Matrix>(const Matrix&)>& loss_fn, double epsilon) {
  const auto loss = loss_fn ? loss_fn : default_loss;

  // Analytic pass.
  module.zero_grad();
  const Matrix out = module.forward(input);
  const auto [value, grad_out] = loss(out);
  (void)value;
  const Matrix analytic_input_grad = module.backward(grad_out);

  // Capture analytic parameter grads before the numeric passes overwrite state.
  std::vector<Matrix> analytic_param_grads;
  for (Parameter* p : module.parameters()) analytic_param_grads.push_back(p->grad);

  auto eval = [&](const Matrix& x) {
    const Matrix y = module.forward(x);
    return loss(y).first;
  };

  GradCheckResult result;

  // Numeric input gradient (central differences).
  Matrix x = input;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = x.data()[i];
    x.data()[i] = orig + epsilon;
    const double f_plus = eval(x);
    x.data()[i] = orig - epsilon;
    const double f_minus = eval(x);
    x.data()[i] = orig;
    const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
    const double err = std::abs(numeric - analytic_input_grad.data()[i]);
    result.max_input_grad_error = std::max(result.max_input_grad_error, err);
  }

  // Numeric parameter gradients.
  const auto params = module.parameters();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double orig = p->value.data()[i];
      p->value.data()[i] = orig + epsilon;
      const double f_plus = eval(input);
      p->value.data()[i] = orig - epsilon;
      const double f_minus = eval(input);
      p->value.data()[i] = orig;
      const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
      const double err = std::abs(numeric - analytic_param_grads[pi].data()[i]);
      result.max_param_grad_error = std::max(result.max_param_grad_error, err);
    }
  }
  return result;
}

}  // namespace bellamy::nn
