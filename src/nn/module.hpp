#pragma once
// Module / Parameter abstractions for the manual-backprop NN stack.
//
// A Module maps a (B x in) batch to a (B x out) batch in forward() and, given
// dL/d(output), accumulates dL/d(params) and returns dL/d(input) in
// backward().  backward() must be called with the gradient matching the most
// recent forward() — modules cache whatever they need between the two calls.
//
// Freezing (the paper's fine-tuning policy keeps most components fixed) is
// expressed per-parameter via Parameter::trainable; optimizers skip frozen
// parameters and trainers may additionally skip their gradient computation.

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.hpp"

namespace bellamy::nn {

/// A learnable tensor together with its gradient accumulator.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;
  bool trainable = true;

  Parameter() = default;
  Parameter(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)), grad(value.rows(), value.cols(), 0.0) {}

  void zero_grad() { grad.setZero(); }
};

class Module {
 public:
  virtual ~Module() = default;

  /// Compute outputs for a batch; caches activations for backward().
  virtual Matrix forward(const Matrix& input) = 0;

  /// Propagate dL/d(output) -> dL/d(input), accumulating parameter grads.
  virtual Matrix backward(const Matrix& grad_output) = 0;

  /// All parameters owned by this module (possibly recursively).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Training vs evaluation mode (affects dropout).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Drop whatever forward() cached for backward().  Forward/backward remain
  /// valid afterwards (the next forward re-caches); callers use this to
  /// bound the memory of parked model replicas between requests.
  virtual void clear_forward_cache() {}

  /// Mark every owned parameter (non-)trainable.
  void set_trainable(bool trainable) {
    for (Parameter* p : parameters()) p->trainable = trainable;
  }

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  /// Number of scalar parameters.
  std::size_t num_parameters() {
    std::size_t n = 0;
    for (Parameter* p : parameters()) n += p->value.size();
    return n;
  }

  /// Human-readable one-line description ("Linear(3 -> 16, bias)").
  virtual std::string describe() const = 0;

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace bellamy::nn
