#pragma once
// Alpha-dropout (Klambauer et al. 2017): the dropout variant that preserves
// the self-normalizing property of SELU networks.  Instead of zeroing
// activations it sets them to the SELU negative saturation value alpha' =
// -scale*alpha and applies an affine correction so mean and variance are
// kept.  Used by the paper between encoder/decoder layers during
// pre-training (§IV-A); inactive in eval mode or with rate 0.

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {

class AlphaDropout : public Module {
 public:
  /// rate = probability of dropping; rng is forked for per-call masks.
  AlphaDropout(double rate, util::Rng rng);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void clear_forward_cache() override { mask_ = Matrix(); }
  std::string describe() const override;

  double rate() const { return rate_; }
  void set_rate(double rate);

 private:
  double rate_;
  double a_ = 1.0;  ///< affine scale, recomputed when rate changes
  double b_ = 0.0;  ///< affine shift
  util::Rng rng_;
  Matrix mask_;  ///< 1 = keep, 0 = drop (for the most recent forward)

  void recompute_affine();
};

}  // namespace bellamy::nn
