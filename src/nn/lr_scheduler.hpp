#pragma once
// Learning-rate schedules.  Fine-tuning uses "cyclical annealing in
// (1e-2, 1e-3)" (Table I): a triangular cycle that oscillates between the
// bounds while the ceiling decays over time, so later cycles anneal towards
// the lower bound.

#include <cstddef>

namespace bellamy::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate to use at (0-based) step `step`.
  virtual double lr_at(std::size_t step) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double lr_at(std::size_t) const override { return lr_; }

 private:
  double lr_;
};

/// Triangular cyclical schedule with exponentially decaying amplitude
/// (CLR "triangular2"-style).  lr oscillates in [base_lr, max_lr]; after
/// each full cycle the amplitude halves, annealing towards base_lr.
class CyclicalLr : public LrSchedule {
 public:
  CyclicalLr(double base_lr, double max_lr, std::size_t cycle_length);
  double lr_at(std::size_t step) const override;

  double base_lr() const { return base_lr_; }
  double max_lr() const { return max_lr_; }
  std::size_t cycle_length() const { return cycle_length_; }

 private:
  double base_lr_;
  double max_lr_;
  std::size_t cycle_length_;
};

}  // namespace bellamy::nn
