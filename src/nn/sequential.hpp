#pragma once
// Sequential container.  The paper's four functions f, g, h, z are each a
// two-layer feed-forward network built as a Sequential of Linear /
// activation / AlphaDropout modules (§III-B, §IV-A).

#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace bellamy::nn {

class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> modules) : modules_(std::move(modules)) {}

  void add(ModulePtr module) { modules_.push_back(std::move(module)); }

  /// Construct-in-place convenience: seq.emplace<Linear>(...).
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto mod = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *mod;
    modules_.push_back(std::move(mod));
    return ref;
  }

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void set_training(bool training) override;
  void clear_forward_cache() override {
    for (auto& m : modules_) m->clear_forward_cache();
  }
  std::string describe() const override;

  std::size_t num_modules() const { return modules_.size(); }
  Module& module(std::size_t i) { return *modules_.at(i); }
  const Module& module(std::size_t i) const { return *modules_.at(i); }

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace bellamy::nn
