#include "nn/linear.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace bellamy::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, bool with_bias, Init init,
               util::Rng& rng, std::string name)
    : in_(in_features),
      out_(out_features),
      with_bias_(with_bias),
      weight_(name + ".weight", make_weights(init, out_features, in_features, rng)) {
  if (with_bias_) bias_ = Parameter(name + ".bias", Matrix::zeros(1, out_features));
}

Matrix Linear::forward(const Matrix& input) {
  if (input.cols() != in_) {
    throw std::invalid_argument("Linear::forward: input " + input.shape_str() +
                                " incompatible with in_features=" + std::to_string(in_));
  }
  cached_input_ = input;
  Matrix out = Matrix::matmul_nt(input, weight_.value);  // (B x in)(out x in)ᵀ
  if (with_bias_) out = out.add_row_broadcast(bias_.value);
  return out;
}

Matrix Linear::backward(const Matrix& grad_output) {
  if (grad_output.rows() != cached_input_.rows() || grad_output.cols() != out_) {
    throw std::invalid_argument("Linear::backward: grad " + grad_output.shape_str() +
                                " does not match forward output shape");
  }
  // dL/dW = gradᵀ X  -> (out x B)(B x in) = (out x in)
  weight_.grad += Matrix::matmul_tn(grad_output, cached_input_);
  if (with_bias_) bias_.grad += grad_output.colwise_sum();
  // dL/dX = grad W -> (B x out)(out x in) = (B x in)
  return Matrix::matmul(grad_output, weight_.value);
}

std::vector<Parameter*> Linear::parameters() {
  std::vector<Parameter*> ps{&weight_};
  if (with_bias_) ps.push_back(&bias_);
  return ps;
}

Parameter& Linear::bias() {
  if (!with_bias_) throw std::logic_error("Linear::bias: layer has no bias");
  return bias_;
}

void Linear::reinitialize(Init init, util::Rng& rng) {
  weight_.value = make_weights(init, out_, in_, rng);
  weight_.zero_grad();
  if (with_bias_) {
    bias_.value.setZero();
    bias_.zero_grad();
  }
}

std::string Linear::describe() const {
  return "Linear(" + std::to_string(in_) + " -> " + std::to_string(out_) +
         (with_bias_ ? ", bias)" : ", no bias)");
}

}  // namespace bellamy::nn
