#include "nn/serialize.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bellamy::nn {

namespace {
constexpr const char* kMagic = "bellamy-checkpoint v1";

std::string double_to_hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double hex_to_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error("Checkpoint: cannot parse float '" + s + "'");
  }
  return v;
}
}  // namespace

void Checkpoint::save(std::ostream& out) const {
  out << kMagic << '\n';
  out << "meta " << meta.size() << '\n';
  for (const auto& [k, v] : meta) {
    if (k.find_first_of(" \t\n") != std::string::npos) {
      throw std::invalid_argument("Checkpoint: meta key '" + k + "' contains whitespace");
    }
    if (v.find('\n') != std::string::npos) {
      throw std::invalid_argument("Checkpoint: meta value for '" + k + "' contains newline");
    }
    out << k << '\t' << v << '\n';
  }
  out << "matrices " << matrices.size() << '\n';
  for (const auto& [name, m] : matrices) {
    if (name.find_first_of(" \t\n") != std::string::npos) {
      throw std::invalid_argument("Checkpoint: matrix name '" + name + "' contains whitespace");
    }
    out << name << ' ' << m.rows() << ' ' << m.cols() << '\n';
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        if (c) out << ' ';
        out << double_to_hex(m(r, c));
      }
      out << '\n';
    }
  }
}

void Checkpoint::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Checkpoint::save_file: cannot open '" + path + "'");
  save(out);
  if (!out) throw std::runtime_error("Checkpoint::save_file: write failed for '" + path + "'");
}

Checkpoint Checkpoint::load(std::istream& in) {
  Checkpoint ckpt;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("Checkpoint::load: bad magic line");
  }
  std::size_t n_meta = 0;
  in >> line >> n_meta;
  if (line != "meta") throw std::runtime_error("Checkpoint::load: expected 'meta'");
  in.ignore();  // rest of line
  for (std::size_t i = 0; i < n_meta; ++i) {
    if (!std::getline(in, line)) throw std::runtime_error("Checkpoint::load: truncated meta");
    const auto tab = line.find('\t');
    if (tab == std::string::npos) throw std::runtime_error("Checkpoint::load: malformed meta");
    ckpt.meta[line.substr(0, tab)] = line.substr(tab + 1);
  }
  std::size_t n_matrices = 0;
  in >> line >> n_matrices;
  if (line != "matrices") throw std::runtime_error("Checkpoint::load: expected 'matrices'");
  for (std::size_t i = 0; i < n_matrices; ++i) {
    std::string name;
    std::size_t rows = 0;
    std::size_t cols = 0;
    if (!(in >> name >> rows >> cols)) {
      throw std::runtime_error("Checkpoint::load: truncated matrix header");
    }
    Matrix m(rows, cols);
    std::string tok;
    for (std::size_t j = 0; j < rows * cols; ++j) {
      if (!(in >> tok)) throw std::runtime_error("Checkpoint::load: truncated matrix data");
      m.data()[j] = hex_to_double(tok);
    }
    ckpt.matrices.emplace(std::move(name), std::move(m));
  }
  return ckpt;
}

Checkpoint Checkpoint::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Checkpoint::load_file: cannot open '" + path + "'");
  return load(in);
}

const Matrix& Checkpoint::matrix(const std::string& name) const {
  const auto it = matrices.find(name);
  if (it == matrices.end()) {
    throw std::runtime_error("Checkpoint: missing matrix '" + name + "'");
  }
  return it->second;
}

const std::string& Checkpoint::meta_value(const std::string& key) const {
  const auto it = meta.find(key);
  if (it == meta.end()) throw std::runtime_error("Checkpoint: missing meta '" + key + "'");
  return it->second;
}

void store_parameters(Checkpoint& ckpt, Module& module) {
  for (Parameter* p : module.parameters()) {
    if (ckpt.matrices.count(p->name)) {
      throw std::runtime_error("store_parameters: duplicate parameter name '" + p->name + "'");
    }
    ckpt.matrices.emplace(p->name, p->value);
  }
}

void restore_parameters(const Checkpoint& ckpt, Module& module) {
  for (Parameter* p : module.parameters()) {
    const Matrix& stored = ckpt.matrix(p->name);
    if (!stored.same_shape(p->value)) {
      throw std::runtime_error("restore_parameters: shape mismatch for '" + p->name + "': " +
                               stored.shape_str() + " vs " + p->value.shape_str());
    }
    p->value = stored;
    p->zero_grad();
  }
}

}  // namespace bellamy::nn
