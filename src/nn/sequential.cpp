#include "nn/sequential.hpp"

namespace bellamy::nn {

Matrix Sequential::forward(const Matrix& input) {
  Matrix x = input;
  for (auto& m : modules_) x = m->forward(x);
  return x;
}

Matrix Sequential::backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> ps;
  for (auto& m : modules_) {
    auto sub = m->parameters();
    ps.insert(ps.end(), sub.begin(), sub.end());
  }
  return ps;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& m : modules_) m->set_training(training);
}

std::string Sequential::describe() const {
  std::string s = "Sequential(";
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (i) s += ", ";
    s += modules_[i]->describe();
  }
  s += ")";
  return s;
}

}  // namespace bellamy::nn
