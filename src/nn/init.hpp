#pragma once
// Weight initialization.  The paper (§IV-A) initializes all layers with He
// initialization "in accordance with the specific properties of our
// activation"; for SELU the self-normalizing-network literature prescribes
// LeCun-normal.  Both are provided; the Bellamy model defaults to He to match
// the paper text, and the choice is part of the model configuration.

#include <cstddef>

#include "nn/matrix.hpp"

namespace bellamy::util {
class Rng;
}

namespace bellamy::nn {

enum class Init {
  kHeNormal,     ///< N(0, sqrt(2 / fan_in)) — He et al. 2015
  kLeCunNormal,  ///< N(0, sqrt(1 / fan_in)) — canonical for SELU
  kXavierNormal, ///< N(0, sqrt(2 / (fan_in + fan_out)))
  kZeros,
};

/// Fill a (fan_out x fan_in) weight matrix according to the scheme.
Matrix make_weights(Init scheme, std::size_t fan_out, std::size_t fan_in, util::Rng& rng);

const char* init_name(Init scheme);

}  // namespace bellamy::nn
