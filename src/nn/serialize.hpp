#pragma once
// Checkpointing.  Pre-trained Bellamy models must be persisted and later
// fine-tuned ("preserving the model state appropriately", §III-A), so the
// checkpoint stores named matrices (parameters, normalization bounds) plus
// free-form string metadata (algorithm name, config) in a line-oriented text
// format with full double round-tripping (hex floats).

#include <map>
#include <string>

#include "nn/matrix.hpp"
#include "nn/module.hpp"

namespace bellamy::nn {

struct Checkpoint {
  std::map<std::string, std::string> meta;      ///< keys/values; value may contain spaces
  std::map<std::string, Matrix> matrices;       ///< names must not contain whitespace

  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  static Checkpoint load(std::istream& in);
  static Checkpoint load_file(const std::string& path);

  bool has_matrix(const std::string& name) const { return matrices.count(name) > 0; }
  const Matrix& matrix(const std::string& name) const;  ///< throws if missing
  const std::string& meta_value(const std::string& key) const;  ///< throws if missing
};

/// Snapshot all parameters of a module into the checkpoint (by name).
void store_parameters(Checkpoint& ckpt, Module& module);

/// Restore parameter values by name; throws std::runtime_error on any
/// missing name or shape mismatch. Gradients are zeroed.
void restore_parameters(const Checkpoint& ckpt, Module& module);

}  // namespace bellamy::nn
