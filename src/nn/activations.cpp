#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace bellamy::nn {

double selu(double x) {
  return x > 0.0 ? kSeluScale * x : kSeluScale * kSeluAlpha * (std::exp(x) - 1.0);
}

double selu_derivative(double x) {
  return x > 0.0 ? kSeluScale : kSeluScale * kSeluAlpha * std::exp(x);
}

Matrix Selu::forward(const Matrix& input) {
  cached_input_ = input;
  return input.apply([](double v) { return selu(v); });
}

Matrix Selu::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      grad(r, c) *= selu_derivative(cached_input_(r, c));
    }
  }
  return grad;
}

Matrix Tanh::forward(const Matrix& input) {
  cached_output_ = input.apply([](double v) { return std::tanh(v); });
  return cached_output_;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      const double y = cached_output_(r, c);
      grad(r, c) *= (1.0 - y * y);
    }
  }
  return grad;
}

Matrix Relu::forward(const Matrix& input) {
  cached_input_ = input;
  return input.apply([](double v) { return v > 0.0 ? v : 0.0; });
}

Matrix Relu::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      if (cached_input_(r, c) <= 0.0) grad(r, c) = 0.0;
    }
  }
  return grad;
}

Matrix Sigmoid::forward(const Matrix& input) {
  cached_output_ = input.apply([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
  return cached_output_;
}

Matrix Sigmoid::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      const double y = cached_output_(r, c);
      grad(r, c) *= y * (1.0 - y);
    }
  }
  return grad;
}

ModulePtr make_activation(Activation act) {
  switch (act) {
    case Activation::kSelu: return std::make_unique<Selu>();
    case Activation::kTanh: return std::make_unique<Tanh>();
    case Activation::kRelu: return std::make_unique<Relu>();
    case Activation::kSigmoid: return std::make_unique<Sigmoid>();
    case Activation::kIdentity: return std::make_unique<Identity>();
  }
  throw std::invalid_argument("make_activation: unknown activation");
}

const char* activation_name(Activation act) {
  switch (act) {
    case Activation::kSelu: return "selu";
    case Activation::kTanh: return "tanh";
    case Activation::kRelu: return "relu";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kIdentity: return "identity";
  }
  return "?";
}

}  // namespace bellamy::nn
