#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace bellamy::nn {

double selu(double x) {
  return x > 0.0 ? kSeluScale * x : kSeluScale * kSeluAlpha * (std::exp(x) - 1.0);
}

double selu_derivative(double x) {
  return x > 0.0 ? kSeluScale : kSeluScale * kSeluAlpha * std::exp(x);
}

// Matrix::apply is a template, so the lambdas below are statically
// dispatched (inlined) — the former per-element std::function indirection
// was a measurable cost in the stacked forward/backward hot path.  The
// backward loops read a second (cached) array per element, which apply
// cannot express, so they run over flat pointers directly.

Matrix Selu::forward(const Matrix& input) {
  cached_input_ = input;
  return input.apply([](double v) { return selu(v); });
}

Matrix Selu::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  double* g = grad.data();
  const double* x = cached_input_.data();
  for (std::size_t i = 0, n = grad.size(); i < n; ++i) g[i] *= selu_derivative(x[i]);
  return grad;
}

Matrix Tanh::forward(const Matrix& input) {
  cached_output_ = input.apply([](double v) { return std::tanh(v); });
  return cached_output_;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  double* g = grad.data();
  const double* y = cached_output_.data();
  for (std::size_t i = 0, n = grad.size(); i < n; ++i) g[i] *= 1.0 - y[i] * y[i];
  return grad;
}

Matrix Relu::forward(const Matrix& input) {
  cached_input_ = input;
  return input.apply([](double v) { return v > 0.0 ? v : 0.0; });
}

Matrix Relu::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  double* g = grad.data();
  const double* x = cached_input_.data();
  for (std::size_t i = 0, n = grad.size(); i < n; ++i) {
    if (x[i] <= 0.0) g[i] = 0.0;
  }
  return grad;
}

Matrix Sigmoid::forward(const Matrix& input) {
  cached_output_ = input.apply([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
  return cached_output_;
}

Matrix Sigmoid::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  double* g = grad.data();
  const double* y = cached_output_.data();
  for (std::size_t i = 0, n = grad.size(); i < n; ++i) g[i] *= y[i] * (1.0 - y[i]);
  return grad;
}

ModulePtr make_activation(Activation act) {
  switch (act) {
    case Activation::kSelu: return std::make_unique<Selu>();
    case Activation::kTanh: return std::make_unique<Tanh>();
    case Activation::kRelu: return std::make_unique<Relu>();
    case Activation::kSigmoid: return std::make_unique<Sigmoid>();
    case Activation::kIdentity: return std::make_unique<Identity>();
  }
  throw std::invalid_argument("make_activation: unknown activation");
}

const char* activation_name(Activation act) {
  switch (act) {
    case Activation::kSelu: return "selu";
    case Activation::kTanh: return "tanh";
    case Activation::kRelu: return "relu";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kIdentity: return "identity";
  }
  return "?";
}

}  // namespace bellamy::nn
