#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/simd.hpp"

namespace bellamy::nn {

double selu(double x) {
  return x > 0.0 ? kSeluScale * x : kSeluScale * kSeluAlpha * (std::exp(x) - 1.0);
}

double selu_derivative(double x) {
  return x > 0.0 ? kSeluScale : kSeluScale * kSeluAlpha * std::exp(x);
}

// The per-element loops live in nn/simd.hpp (AVX2+FMA with a portable
// fallback, dispatched once per process).  SELU dominates the stacked
// forward/backward (the model is SELU everywhere but the decoder output) and
// its exp is the single largest scalar cost in train_step, so the forward
// and backward kernels vectorize the exponential as well.  Tanh/sigmoid
// FORWARD stay scalar std:: calls: they only run on the decoder output (tiny)
// and vectorizing tanh bit-stably near 0 isn't worth the cost — their
// backward passes are pure arithmetic and do go through the SIMD layer.

Matrix Selu::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  simd::selu_forward(out.data(), out.size());
  return out;
}

Matrix Selu::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  simd::selu_backward(grad.data(), cached_input_.data(), grad.size());
  return grad;
}

Matrix Tanh::forward(const Matrix& input) {
  cached_output_ = input.apply([](double v) { return std::tanh(v); });
  return cached_output_;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  simd::tanh_backward(grad.data(), cached_output_.data(), grad.size());
  return grad;
}

Matrix Relu::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  simd::relu_forward(out.data(), out.size());
  return out;
}

Matrix Relu::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  simd::relu_backward(grad.data(), cached_input_.data(), grad.size());
  return grad;
}

Matrix Sigmoid::forward(const Matrix& input) {
  cached_output_ = input.apply([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
  return cached_output_;
}

Matrix Sigmoid::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  simd::sigmoid_backward(grad.data(), cached_output_.data(), grad.size());
  return grad;
}

ModulePtr make_activation(Activation act) {
  switch (act) {
    case Activation::kSelu: return std::make_unique<Selu>();
    case Activation::kTanh: return std::make_unique<Tanh>();
    case Activation::kRelu: return std::make_unique<Relu>();
    case Activation::kSigmoid: return std::make_unique<Sigmoid>();
    case Activation::kIdentity: return std::make_unique<Identity>();
  }
  throw std::invalid_argument("make_activation: unknown activation");
}

const char* activation_name(Activation act) {
  switch (act) {
    case Activation::kSelu: return "selu";
    case Activation::kTanh: return "tanh";
    case Activation::kRelu: return "relu";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kIdentity: return "identity";
  }
  return "?";
}

}  // namespace bellamy::nn
