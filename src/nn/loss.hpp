#pragma once
// Loss functions.  The paper's joint objective (§III-A, Table I) is
//   L = Huber(predicted runtime, actual runtime) + MSE(reconstruction)
// during pre-training, and Huber alone during fine-tuning.
//
// Each loss returns the scalar mean loss together with dL/d(prediction),
// already divided by the element count so that gradients are means.

#include <utility>

#include "nn/matrix.hpp"

namespace bellamy::nn {

struct LossResult {
  double value = 0.0;
  Matrix grad;  ///< same shape as prediction
};

/// Mean squared error: mean((pred - target)^2).
LossResult mse_loss(const Matrix& pred, const Matrix& target);

/// Huber loss with threshold delta (PyTorch SmoothL1/Huber semantics):
///   0.5 e^2            for |e| <= delta
///   delta(|e| - delta/2) otherwise
LossResult huber_loss(const Matrix& pred, const Matrix& target, double delta = 1.0);

/// Mean absolute error (metric only; subgradient at 0 taken as 0).
LossResult mae_loss(const Matrix& pred, const Matrix& target);

}  // namespace bellamy::nn
