#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace bellamy::nn {

Optimizer::Optimizer(std::vector<Parameter*> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  if (lr <= 0.0) throw std::invalid_argument("Optimizer: lr must be > 0");
}

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

void Optimizer::set_learning_rate(double lr) {
  if (lr <= 0.0) throw std::invalid_argument("Optimizer::set_learning_rate: lr must be > 0");
  lr_ = lr;
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum, double weight_decay)
    : Optimizer(std::move(params), lr), momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::step() {
  for (Parameter* p : params_) {
    if (!p->trainable) continue;
    Matrix g = p->grad;
    if (weight_decay_ != 0.0) g.add_scaled(p->value, weight_decay_);
    if (momentum_ != 0.0) {
      auto [it, inserted] = velocity_.try_emplace(p, Matrix::zeros(g.rows(), g.cols()));
      Matrix& v = it->second;
      v *= momentum_;
      v += g;
      p->value.add_scaled(v, -lr_);
    } else {
      p->value.add_scaled(g, -lr_);
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, Config config)
    : Optimizer(std::move(params), config.lr), config_(config) {
  if (config.beta1 < 0.0 || config.beta1 >= 1.0 || config.beta2 < 0.0 || config.beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
}

void Adam::step() {
  for (Parameter* p : params_) {
    if (!p->trainable) continue;
    auto [it, inserted] = state_.try_emplace(p);
    State& s = it->second;
    if (inserted) {
      s.m = Matrix::zeros(p->value.rows(), p->value.cols());
      s.v = Matrix::zeros(p->value.rows(), p->value.cols());
    }
    ++s.t;
    Matrix g = p->grad;
    if (config_.weight_decay != 0.0) g.add_scaled(p->value, config_.weight_decay);

    const double b1 = config_.beta1;
    const double b2 = config_.beta2;
    const double bias1 = 1.0 - std::pow(b1, static_cast<double>(s.t));
    const double bias2 = 1.0 - std::pow(b2, static_cast<double>(s.t));
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double gi = g.data()[i];
      double& m = s.m.data()[i];
      double& v = s.v.data()[i];
      m = b1 * m + (1.0 - b1) * gi;
      v = b2 * v + (1.0 - b2) * gi * gi;
      const double m_hat = m / bias1;
      const double v_hat = v / bias2;
      p->value.data()[i] -= lr_ * m_hat / (std::sqrt(v_hat) + config_.eps);
    }
  }
}

}  // namespace bellamy::nn
