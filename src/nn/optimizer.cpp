#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/simd.hpp"

namespace bellamy::nn {

Optimizer::Optimizer(std::vector<Parameter*> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  if (lr <= 0.0) throw std::invalid_argument("Optimizer: lr must be > 0");
}

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

void Optimizer::set_learning_rate(double lr) {
  if (lr <= 0.0) throw std::invalid_argument("Optimizer::set_learning_rate: lr must be > 0");
  lr_ = lr;
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum, double weight_decay)
    : Optimizer(std::move(params), lr), momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::step() {
  for (Parameter* p : params_) {
    if (!p->trainable) continue;
    Matrix g = p->grad;
    if (weight_decay_ != 0.0) g.add_scaled(p->value, weight_decay_);
    if (momentum_ != 0.0) {
      auto [it, inserted] = velocity_.try_emplace(p, Matrix::zeros(g.rows(), g.cols()));
      Matrix& v = it->second;
      v *= momentum_;
      v += g;
      p->value.add_scaled(v, -lr_);
    } else {
      p->value.add_scaled(g, -lr_);
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, Config config)
    : Optimizer(std::move(params), config.lr), config_(config) {
  if (config.beta1 < 0.0 || config.beta1 >= 1.0 || config.beta2 < 0.0 || config.beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
}

void Adam::step() {
  // The whole moment/update loop is one fused element-wise kernel
  // (nn/simd.hpp): weight decay folds into the effective gradient inside the
  // kernel, so no per-step gradient copy is materialized.
  for (Parameter* p : params_) {
    if (!p->trainable) continue;
    auto [it, inserted] = state_.try_emplace(p);
    State& s = it->second;
    if (inserted) {
      s.m = Matrix::zeros(p->value.rows(), p->value.cols());
      s.v = Matrix::zeros(p->value.rows(), p->value.cols());
    }
    ++s.t;
    simd::AdamStep step;
    step.beta1 = config_.beta1;
    step.beta2 = config_.beta2;
    step.bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(s.t));
    step.bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(s.t));
    step.lr = lr_;
    step.eps = config_.eps;
    step.weight_decay = config_.weight_decay;
    simd::adam_update(p->value.data(), p->grad.data(), s.m.data(), s.v.data(),
                      p->value.size(), step);
  }
}

}  // namespace bellamy::nn
