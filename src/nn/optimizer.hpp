#pragma once
// Optimizers over Parameter lists.  The paper trains with Adam (Table I) and
// L2 weight decay; frozen parameters (trainable == false) are skipped, which
// is how the fine-tuning freeze policy is enforced.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "nn/module.hpp"

namespace bellamy::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params, double lr);
  virtual ~Optimizer() = default;

  /// Apply one update using the accumulated gradients.
  virtual void step() = 0;

  void zero_grad();
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);

  /// Replace the tracked parameter set (per-parameter state is kept by
  /// pointer identity, so re-adding a parameter resumes its moments).
  void set_parameters(std::vector<Parameter*> params) { params_ = std::move(params); }
  const std::vector<Parameter*>& tracked_parameters() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
  double lr_;
};

/// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void step() override;

 private:
  double momentum_;
  double weight_decay_;
  std::unordered_map<Parameter*, Matrix> velocity_;
};

/// Adam (Kingma & Ba 2015) with L2 weight decay added to the gradient,
/// matching torch.optim.Adam's `weight_decay` semantics used by the paper.
class Adam : public Optimizer {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<Parameter*> params, Config config);
  void step() override;

  const Config& config() const { return config_; }

 private:
  struct State {
    Matrix m;  ///< first-moment estimate
    Matrix v;  ///< second-moment estimate
    std::size_t t = 0;
  };
  Config config_;
  std::unordered_map<Parameter*, State> state_;
};

}  // namespace bellamy::nn
