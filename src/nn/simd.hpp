#pragma once
// Runtime-dispatched SIMD kernels for the element-wise hot loops.
//
// Same pattern as the blocked GEMM micro-kernel in matrix.cpp: an AVX2+FMA
// implementation selected once per process via __builtin_cpu_supports, with a
// portable scalar fallback.  The portable implementations double as the
// ground truth for the SIMD-vs-scalar parity suite
// (tests/nn/test_simd_kernels.cpp) and are exposed under simd::ref.
//
// Determinism contract:
//  * Arithmetic kernels (scale/axpy/add/sub/mul, relu, tanh/sigmoid backward,
//    adam_update, the loss gradients) use ONLY IEEE-exact operations, with
//    fused multiply-adds written explicitly (__builtin_fma / vfmadd) in BOTH
//    paths, so the AVX2 and portable variants are bit-identical element for
//    element regardless of compiler contraction flags.
//  * Transcendental kernels (selu forward/backward) use a vectorized
//    Cephes-style exp on the AVX2 path and std::exp on the portable path;
//    they agree to ~1 ulp, and the dispatch decision is per-process, so all
//    results within a run are self-consistent.
//  * Every kernel handles the ragged tail with masked loads feeding the SAME
//    vector arithmetic as full lanes, so an element's result never depends on
//    its position in the array — chunked and unchunked batches match bit for
//    bit (the property predict_batch_chunked relies on).
//  * Loss VALUES are sum-reductions; the AVX2 path accumulates in four lanes
//    and reduces at the end, so the value may differ from the scalar sum in
//    the last ulps (gradients stay exact).

#include <cstddef>

namespace bellamy::nn::simd {

/// Adam update constants for one parameter tensor (bias corrections are
/// passed pre-computed so the kernel is pure element-wise work).
struct AdamStep {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double bias1 = 1.0;  ///< 1 - beta1^t
  double bias2 = 1.0;  ///< 1 - beta2^t
  double lr = 1e-3;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

// ---- dispatched entry points (AVX2+FMA when available) ----------------------

void scale(double* x, std::size_t n, double a);                ///< x *= a
void axpy(double* y, const double* x, std::size_t n, double a);///< y += a*x (fused)
void add(double* y, const double* x, std::size_t n);           ///< y += x
void sub(double* y, const double* x, std::size_t n);           ///< y -= x
void mul(double* y, const double* x, std::size_t n);           ///< y *= x (hadamard)

void relu_forward(double* x, std::size_t n);                       ///< x = max(x, 0)
void relu_backward(double* g, const double* x, std::size_t n);     ///< g = x>0 ? g : 0
void tanh_backward(double* g, const double* y, std::size_t n);     ///< g *= 1 - y^2
void sigmoid_backward(double* g, const double* y, std::size_t n);  ///< g *= y(1-y)
void selu_forward(double* x, std::size_t n);
void selu_backward(double* g, const double* x, std::size_t n);

/// In-place Adam moment/parameter update over one tensor:
///   geff = grad + weight_decay * w
///   m = beta1*m + (1-beta1)*geff ; v = beta2*v + (1-beta2)*geff^2
///   w -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
void adam_update(double* w, const double* grad, double* m, double* v, std::size_t n,
                 const AdamStep& s);

/// Loss kernels: write the per-element gradient and return the UN-normalized
/// sum of the per-element loss terms (caller divides by the element count).
/// `inv_n` is 1/N where N is the gradient normalizer (pred.size()).
double mse_loss_grad(const double* pred, const double* target, double* grad,
                     std::size_t n, double inv_n);
double huber_loss_grad(const double* pred, const double* target, double* grad,
                       std::size_t n, double delta, double inv_n);
double mae_loss_grad(const double* pred, const double* target, double* grad,
                     std::size_t n, double inv_n);

/// True when the AVX2+FMA kernels are active in this process.
bool avx2_active();

// ---- portable reference implementations ------------------------------------
//
// Always compiled; used as the dispatch fallback and as the ground truth for
// the parity tests.
namespace ref {
void scale(double* x, std::size_t n, double a);
void axpy(double* y, const double* x, std::size_t n, double a);
void add(double* y, const double* x, std::size_t n);
void sub(double* y, const double* x, std::size_t n);
void mul(double* y, const double* x, std::size_t n);
void relu_forward(double* x, std::size_t n);
void relu_backward(double* g, const double* x, std::size_t n);
void tanh_backward(double* g, const double* y, std::size_t n);
void sigmoid_backward(double* g, const double* y, std::size_t n);
void selu_forward(double* x, std::size_t n);
void selu_backward(double* g, const double* x, std::size_t n);
void adam_update(double* w, const double* grad, double* m, double* v, std::size_t n,
                 const AdamStep& s);
double mse_loss_grad(const double* pred, const double* target, double* grad,
                     std::size_t n, double inv_n);
double huber_loss_grad(const double* pred, const double* target, double* grad,
                       std::size_t n, double delta, double inv_n);
double mae_loss_grad(const double* pred, const double* target, double* grad,
                     std::size_t n, double inv_n);
}  // namespace ref

}  // namespace bellamy::nn::simd
