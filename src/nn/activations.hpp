#pragma once
// Element-wise activation modules.  The paper uses SELU everywhere except the
// decoder's output layer, which uses tanh to match the (-1, 1)-ish range of
// the vectorized properties (§IV-A).

#include <string>

#include "nn/module.hpp"

namespace bellamy::nn {

/// SELU constants from Klambauer et al. 2017 ("Self-Normalizing Neural Networks").
inline constexpr double kSeluAlpha = 1.6732632423543772848170429916717;
inline constexpr double kSeluScale = 1.0507009873554804934193349852946;

class Selu : public Module {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void clear_forward_cache() override { cached_input_ = Matrix(); }
  std::string describe() const override { return "SELU"; }

 private:
  Matrix cached_input_;
};

class Tanh : public Module {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void clear_forward_cache() override { cached_output_ = Matrix(); }
  std::string describe() const override { return "Tanh"; }

 private:
  Matrix cached_output_;
};

class Relu : public Module {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void clear_forward_cache() override { cached_input_ = Matrix(); }
  std::string describe() const override { return "ReLU"; }

 private:
  Matrix cached_input_;
};

class Sigmoid : public Module {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void clear_forward_cache() override { cached_output_ = Matrix(); }
  std::string describe() const override { return "Sigmoid"; }

 private:
  Matrix cached_output_;
};

class Identity : public Module {
 public:
  Matrix forward(const Matrix& input) override { return input; }
  Matrix backward(const Matrix& grad_output) override { return grad_output; }
  std::string describe() const override { return "Identity"; }
};

/// Scalar SELU helpers (used by tests and by AlphaDropout constants).
double selu(double x);
double selu_derivative(double x);

enum class Activation { kSelu, kTanh, kRelu, kSigmoid, kIdentity };

ModulePtr make_activation(Activation act);
const char* activation_name(Activation act);

}  // namespace bellamy::nn
