#include "nn/lr_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bellamy::nn {

CyclicalLr::CyclicalLr(double base_lr, double max_lr, std::size_t cycle_length)
    : base_lr_(base_lr), max_lr_(max_lr), cycle_length_(cycle_length) {
  if (base_lr <= 0.0 || max_lr < base_lr) {
    throw std::invalid_argument("CyclicalLr: require 0 < base_lr <= max_lr");
  }
  if (cycle_length < 2) throw std::invalid_argument("CyclicalLr: cycle_length must be >= 2");
}

double CyclicalLr::lr_at(std::size_t step) const {
  const std::size_t cycle = step / cycle_length_;
  const std::size_t pos = step % cycle_length_;
  const std::size_t half = cycle_length_ / 2;
  // Triangle: up for the first half, down for the second.
  double frac;
  if (pos < half) {
    frac = half == 0 ? 0.0 : static_cast<double>(pos) / static_cast<double>(half);
  } else {
    const std::size_t down = cycle_length_ - half;
    frac = 1.0 - static_cast<double>(pos - half) / static_cast<double>(down);
  }
  const double amplitude = (max_lr_ - base_lr_) * std::pow(0.5, static_cast<double>(cycle));
  // Clamp: base + amplitude * frac can exceed max_lr by one ulp.
  return std::min(max_lr_, base_lr_ + amplitude * frac);
}

}  // namespace bellamy::nn
