#include "data/bell_generator.hpp"

#include <stdexcept>

#include "data/ground_truth.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace bellamy::data {

namespace {
struct BellContext {
  const char* job_parameters;
  const char* characteristics;
  std::uint64_t dataset_size_mb;
};

// Fixed single context per algorithm (the Bell experiments ran one workload
// configuration per algorithm on the private cluster).
const BellContext& bell_context(const std::string& algorithm) {
  static const BellContext grep{"failure", "cluster-logs", 24576};
  static const BellContext sgd{"100", "features-1000-sparse", 14540};
  static const BellContext pagerank{"10", "web-graph", 8192};
  if (algorithm == "grep") return grep;
  if (algorithm == "sgd") return sgd;
  if (algorithm == "pagerank") return pagerank;
  throw std::invalid_argument("BellGenerator: unsupported algorithm '" + algorithm + "'");
}
}  // namespace

BellGenerator::BellGenerator(BellGeneratorConfig config) : config_(config) {
  if (config_.min_scaleout < 1 || config_.max_scaleout < config_.min_scaleout ||
      config_.scaleout_step < 1 || config_.repetitions < 1) {
    throw std::invalid_argument("BellGenerator: invalid scale-out/repetition config");
  }
}

const std::vector<std::string>& BellGenerator::algorithms() {
  static const std::vector<std::string> algos = {"grep", "sgd", "pagerank"};
  return algos;
}

std::vector<int> BellGenerator::scale_outs() const {
  std::vector<int> xs;
  for (int x = config_.min_scaleout; x <= config_.max_scaleout; x += config_.scaleout_step) {
    xs.push_back(x);
  }
  return xs;
}

Dataset BellGenerator::generate_algorithm(const std::string& algorithm) const {
  const BellContext& ctx = bell_context(algorithm);
  const NodeType& node = bell_node_type();
  util::Rng rng(config_.seed ^ util::fnv1a64(algorithm));

  ContextSpec spec;
  spec.algorithm = algorithm;
  spec.node_type = node.name;
  spec.job_parameters = ctx.job_parameters;
  spec.dataset_size_mb = ctx.dataset_size_mb;
  spec.data_characteristics = ctx.characteristics;
  spec.environment_overhead = config_.environment_overhead;
  spec.idiosyncrasy = rng.lognormal(0.0, 0.05);

  const CurveParams curve = derive_curve(spec);
  Dataset ds;
  for (int x : scale_outs()) {
    for (int rep = 0; rep < config_.repetitions; ++rep) {
      JobRun run;
      run.algorithm = algorithm;
      run.environment = "bell-cluster";
      run.node_type = node.name;
      run.job_parameters = ctx.job_parameters;
      run.dataset_size_mb = ctx.dataset_size_mb;
      run.data_characteristics = ctx.characteristics;
      run.memory_mb = node.memory_mb;
      run.cpu_cores = node.cpu_cores;
      run.scale_out = x;
      run.runtime_s = sample_runtime(curve, spec, x, config_.noise_sigma, rng);
      ds.add(std::move(run));
    }
  }
  return ds;
}

Dataset BellGenerator::generate() const {
  Dataset all;
  for (const auto& algo : algorithms()) {
    all.append(generate_algorithm(algo));
  }
  return all;
}

}  // namespace bellamy::data
