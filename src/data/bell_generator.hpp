#pragma once
// Synthetic Bell-like traces (private-cluster environment, §IV-B.b).
//
// Structure of the Bell datasets: three algorithms (grep, sgd, pagerank),
// a single execution context each, 15 scale-outs from 4 to 60 machines in
// steps of 4, seven repetitions per scale-out.  The environment differs from
// the C3O cloud in hardware (one commodity node type), software (older
// Hadoop/Spark -> overhead multiplier) and noise level — the "significant
// context shift" of the cross-environment experiment (Fig. 8).

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace bellamy::data {

struct BellGeneratorConfig {
  std::uint64_t seed = 1337;
  double noise_sigma = 0.035;         ///< private cluster: less interference
  double environment_overhead = 1.30; ///< older software stack
  int min_scaleout = 4;
  int max_scaleout = 60;
  int scaleout_step = 4;
  int repetitions = 7;
};

class BellGenerator {
 public:
  explicit BellGenerator(BellGeneratorConfig config = {});

  /// The three algorithms present in both datasets: grep, sgd, pagerank.
  static const std::vector<std::string>& algorithms();

  Dataset generate() const;
  Dataset generate_algorithm(const std::string& algorithm) const;

  std::vector<int> scale_outs() const;
  const BellGeneratorConfig& config() const { return config_; }

 private:
  BellGeneratorConfig config_;
};

}  // namespace bellamy::data
