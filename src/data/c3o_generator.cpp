#include "data/c3o_generator.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

#include "data/ground_truth.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace bellamy::data {

namespace {

struct PropertyPools {
  std::vector<std::string> job_parameters;
  std::vector<std::string> characteristics;
  std::vector<std::uint64_t> dataset_sizes_mb;
};

// Realistic-looking per-algorithm property pools.  Values were chosen so the
// systematic effects in derive_curve() span a wide range of runtime levels
// and shapes, matching the cross-context variance shown in the paper's Fig. 2.
const PropertyPools& pools_for(const std::string& algorithm) {
  static const PropertyPools grep{
      {"error", "exception", "warn.*timeout", "user-session", "GET /api"},
      {"text-sparse-0.01", "text-dense-0.10", "logs-mixed", "json-lines"},
      {5120, 10240, 20480, 40960, 61440}};
  static const PropertyPools sort{
      {"128", "256", "512"},
      {"uniform-keys", "zipf-1.2-keys", "presorted-0.5", "random-64b"},
      {5120, 10240, 20480, 40960, 61440}};
  static const PropertyPools pagerank{
      {"5", "10", "15", "20"},
      {"web-graph", "social-graph", "citation-graph", "road-graph"},
      {2048, 5120, 10240, 20480}};
  static const PropertyPools sgd{
      {"25", "50", "75", "100"},
      {"features-100-dense", "features-1000-sparse", "features-10-dense",
       "features-5000-sparse"},
      {2048, 5120, 10240, 14540, 19353}};
  static const PropertyPools kmeans{
      {"4:20", "8:40", "8:80", "16:40", "16:100"},
      {"clusters-tight", "clusters-overlap", "clusters-imbalanced"},
      {2048, 5120, 10240, 20480}};
  if (algorithm == "grep") return grep;
  if (algorithm == "sort") return sort;
  if (algorithm == "pagerank") return pagerank;
  if (algorithm == "sgd") return sgd;
  if (algorithm == "kmeans") return kmeans;
  throw std::invalid_argument("C3OGenerator: unknown algorithm '" + algorithm + "'");
}

}  // namespace

C3OGenerator::C3OGenerator(C3OGeneratorConfig config) : config_(config) {
  if (config_.min_scaleout < 1 || config_.max_scaleout < config_.min_scaleout ||
      config_.scaleout_step < 1 || config_.repetitions < 1) {
    throw std::invalid_argument("C3OGenerator: invalid scale-out/repetition config");
  }
}

std::vector<int> C3OGenerator::scale_outs() const {
  std::vector<int> xs;
  for (int x = config_.min_scaleout; x <= config_.max_scaleout; x += config_.scaleout_step) {
    xs.push_back(x);
  }
  return xs;
}

Dataset C3OGenerator::generate_algorithm(const std::string& algorithm,
                                         std::size_t num_contexts) const {
  const PropertyPools& pools = pools_for(algorithm);
  const auto& nodes = c3o_node_catalog();
  // Seed derived from the generator seed and the algorithm name so each
  // algorithm's traces are independent yet reproducible.
  util::Rng rng(config_.seed ^ util::fnv1a64(algorithm));

  Dataset ds;
  std::set<std::string> used_keys;
  for (std::size_t ci = 0; ci < num_contexts; ++ci) {
    // Deterministic systematic sweep: cycle node types so every type appears,
    // and draw the remaining properties pseudo-randomly from the pools.
    // Redraw on collision so each context is unique (the paper's context
    // counts are counts of *distinct* contexts).
    const NodeType& node = nodes[ci % nodes.size()];
    std::string params;
    std::string characteristics;
    std::uint64_t size_mb = 0;
    bool found = false;
    for (int attempt = 0; attempt < 1000 && !found; ++attempt) {
      params = pools.job_parameters[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(pools.job_parameters.size()) - 1))];
      characteristics = pools.characteristics[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(pools.characteristics.size()) - 1))];
      size_mb = pools.dataset_sizes_mb[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(pools.dataset_sizes_mb.size()) - 1))];
      const std::string key = node.name + "|" + params + "|" + std::to_string(size_mb) +
                              "|" + characteristics;
      found = used_keys.insert(key).second;
    }
    if (!found) {
      throw std::runtime_error("C3OGenerator: property pools too small for " +
                               std::to_string(num_contexts) + " unique contexts of '" +
                               algorithm + "'");
    }

    ContextSpec spec;
    spec.algorithm = algorithm;
    spec.node_type = node.name;
    spec.job_parameters = params;
    spec.dataset_size_mb = size_mb;
    spec.data_characteristics = characteristics;
    spec.environment_overhead = 1.0;
    spec.idiosyncrasy =
        rng.lognormal(-0.5 * config_.idiosyncrasy_sigma * config_.idiosyncrasy_sigma,
                      config_.idiosyncrasy_sigma);

    const CurveParams curve = derive_curve(spec);
    for (int x : scale_outs()) {
      for (int rep = 0; rep < config_.repetitions; ++rep) {
        JobRun run;
        run.algorithm = algorithm;
        run.environment = "c3o-cloud";
        run.node_type = node.name;
        run.job_parameters = params;
        run.dataset_size_mb = size_mb;
        run.data_characteristics = characteristics;
        run.memory_mb = node.memory_mb;
        run.cpu_cores = node.cpu_cores;
        run.scale_out = x;
        run.runtime_s = sample_runtime(curve, spec, x, config_.noise_sigma, rng);
        ds.add(std::move(run));
      }
    }
  }
  return ds;
}

Dataset C3OGenerator::generate_algorithm(const std::string& algorithm) const {
  return generate_algorithm(algorithm, c3o_context_count(algorithm));
}

Dataset C3OGenerator::generate() const {
  Dataset all;
  for (const auto& algo : c3o_algorithms()) {
    all.append(generate_algorithm(algo));
  }
  return all;
}

}  // namespace bellamy::data
