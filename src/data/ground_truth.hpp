#pragma once
// Ground-truth runtime model behind the synthetic trace generators.
//
// The public C3O / Bell datasets are not redistributable inside this
// repository, so the generators synthesize traces with the same schema and
// cardinalities (see DESIGN.md §3).  Runtimes follow the Ernest family
//
//     r(x) = theta0 + theta1 / x + theta2 * log(x) + theta3 * x
//
// — the same family the paper argues captures dataflow scale-out behaviour
// (§III-B) — where theta is derived *systematically* from the context
// properties (node speed, dataset size, iteration counts, data
// characteristics) plus a small context-specific idiosyncrasy.  The
// systematic part is what makes cross-context pre-training informative, the
// idiosyncratic part is what fine-tuning has to adapt to.
//
// Algorithms are split into the paper's two regimes:
//  * trivial scale-out:     grep, sort, pagerank  (theta1/x dominates)
//  * non-trivial scale-out: sgd, kmeans           (log/linear terms strong,
//                                                 U-shaped within range)

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bellamy::util {
class Rng;
}

namespace bellamy::data {

/// Cloud/cluster node catalog entry.
struct NodeType {
  std::string name;
  std::uint64_t cpu_cores;
  std::uint64_t memory_mb;
  double speed;  ///< relative compute speed (1.0 = m4.xlarge)
};

/// The node types emulating the C3O public-cloud environment.
const std::vector<NodeType>& c3o_node_catalog();
/// The single node type of the Bell private-cluster environment.
const NodeType& bell_node_type();
/// Catalog lookup by name across both environments; throws if unknown.
const NodeType& node_type_by_name(const std::string& name);

/// Ernest-style curve with two deliberately non-Ernest corrections:
///  * a memory-pressure spill penalty at small scale-outs, and
///  * a "parallel floor": beyond a context-dependent knee, adding machines
///    no longer shrinks the parallel term (straggler / task-wave effects).
/// The floor models what makes iterative algorithms "non-trivial" in the
/// paper — their curves leave the plain theta family, which is exactly
/// where context-aware models gain over per-context NNLS fits.
struct CurveParams {
  double theta0 = 0.0;  ///< serial / fixed overhead (s)
  double theta1 = 0.0;  ///< perfectly parallel work (s * machines)
  double theta2 = 0.0;  ///< coordination term, * log(x)
  double theta3 = 0.0;  ///< per-machine overhead, * x
  double spill_penalty = 0.0;  ///< extra seconds when the cluster memory is tight
  double spill_knee = 0.7;     ///< dataset/(x*mem) ratio beyond which spilling starts
  double knee_x = 0.0;         ///< parallel term saturates at max(theta1/x, theta1/knee_x);
                               ///< 0 disables the floor

  /// Noise-free runtime at scale-out x on nodes with memory_mb per node for a
  /// dataset of dataset_mb.
  double runtime(int x, std::uint64_t memory_mb, std::uint64_t dataset_mb) const;
};

/// Abstract context specification the curve is derived from.
struct ContextSpec {
  std::string algorithm;            ///< grep | sort | pagerank | sgd | kmeans
  std::string node_type;
  std::string job_parameters;       ///< iteration counts etc., algorithm-specific
  std::uint64_t dataset_size_mb = 0;
  std::string data_characteristics;
  double environment_overhead = 1.0;  ///< software/infra multiplier (Bell cluster: > 1)
  double idiosyncrasy = 1.0;          ///< per-context multiplicative quirk around 1
};

/// Derive noise-free curve parameters from a context.  Deterministic.
CurveParams derive_curve(const ContextSpec& spec);

/// Sample one observed runtime: curve value * lognormal(0, sigma).
double sample_runtime(const CurveParams& curve, const ContextSpec& spec, int scale_out,
                      double noise_sigma, util::Rng& rng);

/// True iff this algorithm has a non-trivial scale-out behaviour in the
/// generator (sgd, kmeans).
bool has_nontrivial_scaleout(const std::string& algorithm);

/// The five C3O algorithms in paper order: grep, pagerank, sort, sgd, kmeans.
const std::vector<std::string>& c3o_algorithms();

/// Per-algorithm context count in the C3O datasets (§IV-B):
/// sort 21, grep 27, sgd 30, kmeans 30, pagerank 47.
std::size_t c3o_context_count(const std::string& algorithm);

}  // namespace bellamy::data
