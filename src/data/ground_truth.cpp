#include "data/ground_truth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace bellamy::data {

const std::vector<NodeType>& c3o_node_catalog() {
  static const std::vector<NodeType> catalog = {
      {"c4.xlarge", 4, 7680, 1.15},   {"c4.2xlarge", 8, 15360, 1.32},
      {"m4.xlarge", 4, 16384, 1.00},  {"m4.2xlarge", 8, 32768, 1.14},
      {"r4.xlarge", 4, 31232, 0.94},  {"r4.2xlarge", 8, 62464, 1.06},
  };
  return catalog;
}

const NodeType& bell_node_type() {
  static const NodeType node = {"bell-commodity", 8, 16384, 0.78};
  return node;
}

const NodeType& node_type_by_name(const std::string& name) {
  for (const auto& n : c3o_node_catalog()) {
    if (n.name == name) return n;
  }
  if (bell_node_type().name == name) return bell_node_type();
  throw std::invalid_argument("node_type_by_name: unknown node type '" + name + "'");
}

double CurveParams::runtime(int x, std::uint64_t memory_mb, std::uint64_t dataset_mb) const {
  if (x < 1) throw std::invalid_argument("CurveParams::runtime: scale-out must be >= 1");
  const double xd = static_cast<double>(x);
  double parallel = theta1 / xd;
  if (knee_x > 0.0) parallel = std::max(parallel, theta1 / knee_x);
  double r = theta0 + parallel + theta2 * std::log(xd) + theta3 * xd;
  if (spill_penalty > 0.0 && memory_mb > 0) {
    const double pressure = static_cast<double>(dataset_mb) /
                            (xd * static_cast<double>(memory_mb));
    if (pressure > spill_knee) r += spill_penalty * (pressure - spill_knee);
  }
  return r;
}

namespace {

/// Parse an integer job parameter with a fallback (job_parameters holds e.g.
/// "25" for SGD max iterations, "8:40" for k-means k:iterations).
double param_or(const std::string& params, std::size_t field, double fallback) {
  const auto parts = util::split(params, ':');
  if (field >= parts.size()) return fallback;
  try {
    return util::parse_double(parts[field]);
  } catch (const std::exception&) {
    return fallback;
  }
}

/// Small deterministic work multiplier derived from the characteristics
/// string: characteristics like key skew or text density change the
/// effective work by up to ~±20 %.
double characteristics_factor(const std::string& characteristics) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : characteristics) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // Map hash to [0.82, 1.22).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 0.82 + 0.40 * u;
}

}  // namespace

CurveParams derive_curve(const ContextSpec& spec) {
  const NodeType& node = node_type_by_name(spec.node_type);
  const double speed = node.speed;
  const double w = static_cast<double>(spec.dataset_size_mb) / 10240.0;  // 10 GB baseline
  const double cf = characteristics_factor(spec.data_characteristics);
  const double env = spec.environment_overhead * spec.idiosyncrasy;

  CurveParams c;
  if (spec.algorithm == "grep") {
    // Embarrassingly parallel scan; parameters: selectivity only nudges work.
    const double sel = param_or(spec.job_parameters, 0, 1.0);
    const double work = 620.0 * w * cf * (0.9 + 0.02 * sel);
    c.theta0 = 14.0 * env;
    c.theta1 = work / speed * env;
    c.theta2 = 2.0 * env;
    c.theta3 = 0.35 * env;
    c.spill_penalty = 0.0;
  } else if (spec.algorithm == "sort") {
    // Scan + shuffle; mild superlinear work in the data size.
    const double work = 800.0 * std::pow(std::max(w, 1e-3), 1.05) * cf;
    c.theta0 = 22.0 * env;
    c.theta1 = work / speed * env;
    c.theta2 = 7.0 * env;
    c.theta3 = 1.1 * env;  // shuffle fan-out cost per machine
    c.spill_penalty = 180.0 * w * env;
  } else if (spec.algorithm == "pagerank") {
    // Iterative but communication-light at these scales: still 1/x-dominated.
    const double iters = param_or(spec.job_parameters, 0, 10.0);
    const double work = 62.0 * iters * w * cf;
    c.theta0 = (18.0 + 1.1 * iters) * env;
    c.theta1 = work / speed * env;
    c.theta2 = (3.0 + 0.12 * iters) * env;
    c.theta3 = (0.5 + 0.02 * iters) * env;
    c.spill_penalty = 60.0 * w * env;
  } else if (spec.algorithm == "sgd") {
    // Iterative optimization: the per-iteration barrier makes stragglers and
    // task-wave quantization dominate past a context-dependent knee — the
    // parallel term saturates instead of shrinking with 1/x.  Together with
    // the per-machine aggregation cost this yields the paper's "non-trivial"
    // U-shaped curves that a plain Ernest fit cannot express.
    const double iters = param_or(spec.job_parameters, 0, 50.0);
    const double work = 26.0 * iters * w * cf;
    const double partitions =
        std::clamp(static_cast<double>(spec.dataset_size_mb) / 160.0, 12.0, 480.0);
    c.theta0 = (20.0 + 0.8 * iters) * env;
    c.theta1 = work / speed * env;
    c.theta2 = (0.35 * iters) * env;
    c.theta3 = (0.18 * iters) * env / speed;
    c.knee_x = std::clamp(partitions / (2.0 * static_cast<double>(node.cpu_cores)), 2.5, 11.0);
    c.spill_penalty = 40.0 * w * env;
  } else if (spec.algorithm == "kmeans") {
    // Lloyd iterations with broadcast/aggregate of centroids each round;
    // same straggler saturation as SGD, knee position depends on k as well.
    const double k = param_or(spec.job_parameters, 0, 8.0);
    const double iters = param_or(spec.job_parameters, 1, 40.0);
    const double work = 6.5 * iters * (0.6 + 0.05 * k) * w * cf;
    const double partitions =
        std::clamp(static_cast<double>(spec.dataset_size_mb) / 128.0, 12.0, 480.0);
    c.theta0 = (16.0 + 0.35 * iters) * env;
    c.theta1 = work / speed * env;
    c.theta2 = (0.30 * iters) * env;
    c.theta3 = (0.10 * iters + 0.012 * iters * k / 8.0) * env / speed;
    c.knee_x =
        std::clamp(partitions / (2.2 * static_cast<double>(node.cpu_cores)) + 0.08 * k, 2.5,
                   10.0);
    c.spill_penalty = 35.0 * w * env;
  } else {
    throw std::invalid_argument("derive_curve: unknown algorithm '" + spec.algorithm + "'");
  }
  return c;
}

double sample_runtime(const CurveParams& curve, const ContextSpec& spec, int scale_out,
                      double noise_sigma, util::Rng& rng) {
  const NodeType& node = node_type_by_name(spec.node_type);
  const double base = curve.runtime(scale_out, node.memory_mb, spec.dataset_size_mb);
  // Multiplicative log-normal noise with mean ~1 (cloud performance jitter).
  const double noise = rng.lognormal(-0.5 * noise_sigma * noise_sigma, noise_sigma);
  return base * noise;
}

bool has_nontrivial_scaleout(const std::string& algorithm) {
  return algorithm == "sgd" || algorithm == "kmeans";
}

const std::vector<std::string>& c3o_algorithms() {
  static const std::vector<std::string> algos = {"grep", "pagerank", "sort", "sgd", "kmeans"};
  return algos;
}

std::size_t c3o_context_count(const std::string& algorithm) {
  if (algorithm == "sort") return 21;
  if (algorithm == "grep") return 27;
  if (algorithm == "sgd") return 30;
  if (algorithm == "kmeans") return 30;
  if (algorithm == "pagerank") return 47;
  throw std::invalid_argument("c3o_context_count: unknown algorithm '" + algorithm + "'");
}

}  // namespace bellamy::data
