#pragma once
// CSV import/export of trace datasets so the synthetic generators can be
// swapped for the real C3O / Bell CSVs without code changes.
//
// Column schema (header required):
//   algorithm,environment,node_type,job_parameters,dataset_size_mb,
//   data_characteristics,memory_mb,cpu_cores,scale_out,runtime_s

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace bellamy::data {

/// The canonical column order used by save_csv.
const std::vector<std::string>& csv_columns();

Dataset load_csv(std::istream& in);
Dataset load_csv_file(const std::string& path);

void save_csv(std::ostream& out, const Dataset& dataset);
void save_csv_file(const std::string& path, const Dataset& dataset);

}  // namespace bellamy::data
