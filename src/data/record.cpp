#include "data/record.hpp"

#include <tuple>

namespace bellamy::data {

std::string JobRun::context_key() const {
  return algorithm + "|" + node_type + "|" + job_parameters + "|" +
         std::to_string(dataset_size_mb) + "|" + data_characteristics;
}

bool operator<(const JobRun& a, const JobRun& b) {
  return std::tie(a.algorithm, a.node_type, a.job_parameters, a.dataset_size_mb,
                  a.data_characteristics, a.scale_out, a.runtime_s) <
         std::tie(b.algorithm, b.node_type, b.job_parameters, b.dataset_size_mb,
                  b.data_characteristics, b.scale_out, b.runtime_s);
}

}  // namespace bellamy::data
