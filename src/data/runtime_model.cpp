#include "data/runtime_model.hpp"

namespace bellamy::data {

std::vector<double> RuntimeModel::predict_batch(const std::vector<JobRun>& queries) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const JobRun& q : queries) out.push_back(predict(q));
  return out;
}

}  // namespace bellamy::data
