#pragma once
// Synthetic C3O-like traces (public-cloud environment, §IV-B.a).
//
// Reproduces the structure of the C3O datasets exactly: five algorithms with
// 21/27/30/30/47 contexts (sort/grep/sgd/kmeans/pagerank), six scale-outs
// from 2 to 12 machines in steps of 2, five repetitions each — 930 unique
// runtime experiments, 4650 rows.  A context is the combination of node
// type, job parameters, dataset size and dataset characteristics.  Runtimes
// come from data/ground_truth.hpp.

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace bellamy::data {

struct C3OGeneratorConfig {
  std::uint64_t seed = 42;
  double noise_sigma = 0.05;        ///< log-normal repetition noise
  double idiosyncrasy_sigma = 0.10; ///< per-context level quirk
  int min_scaleout = 2;
  int max_scaleout = 12;
  int scaleout_step = 2;
  int repetitions = 5;
};

class C3OGenerator {
 public:
  explicit C3OGenerator(C3OGeneratorConfig config = {});

  /// All five algorithms, paper cardinalities.
  Dataset generate() const;

  /// One algorithm with the paper's context count (or a custom count).
  Dataset generate_algorithm(const std::string& algorithm) const;
  Dataset generate_algorithm(const std::string& algorithm, std::size_t num_contexts) const;

  const C3OGeneratorConfig& config() const { return config_; }

  /// The scale-outs produced (2, 4, ..., 12 by default).
  std::vector<int> scale_outs() const;

 private:
  C3OGeneratorConfig config_;
};

}  // namespace bellamy::data
