#pragma once
// Dataset container with the grouping/filtering operations the evaluation
// needs: per-algorithm slices, context grouping, scale-out inventories, and
// the "filtered" pre-training selection of §IV-C.1 (keep only contexts that
// are as different as possible from a reference context).

#include <map>
#include <string>
#include <vector>

#include "data/record.hpp"

namespace bellamy::util {
class Rng;
}

namespace bellamy::data {

/// All runs belonging to one execution context.
struct ContextGroup {
  std::string key;
  std::vector<JobRun> runs;

  /// Distinct scale-outs present, ascending.
  std::vector<int> scale_outs() const;
  /// Mean runtime at one scale-out (0 if absent).
  double mean_runtime_at(int scale_out) const;
  /// All runs with the given scale-out.
  std::vector<JobRun> runs_at(int scale_out) const;
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<JobRun> runs);

  const std::vector<JobRun>& runs() const { return runs_; }
  std::size_t size() const { return runs_.size(); }
  bool empty() const { return runs_.empty(); }

  void add(JobRun run);
  void append(const Dataset& other);

  /// Distinct algorithm names, sorted.
  std::vector<std::string> algorithms() const;
  /// Runs of one algorithm.
  Dataset filter_algorithm(const std::string& algorithm) const;
  /// Generic predicate filter.
  template <typename Pred>
  Dataset filter(Pred&& pred) const {
    std::vector<JobRun> kept;
    for (const auto& r : runs_) {
      if (pred(r)) kept.push_back(r);
    }
    return Dataset(std::move(kept));
  }

  /// Group into contexts (stable order by context key).
  std::vector<ContextGroup> contexts() const;
  std::size_t num_contexts() const { return contexts().size(); }

  /// Runs from exactly one context.
  Dataset filter_context(const std::string& context_key) const;
  /// Every run except the given context.
  Dataset exclude_context(const std::string& context_key) const;

  /// The paper's "filtered" pre-training corpus: same algorithm, but only
  /// contexts where node type, data characteristics and job parameters all
  /// differ from `reference`, and the dataset size differs by >= 20 %.
  Dataset filter_dissimilar(const JobRun& reference) const;

  /// Number of unique (context, scale-out) experiment cells.
  std::size_t num_unique_experiments() const;

  /// Random subset of n runs (all runs if n >= size), in random order.
  Dataset sample(std::size_t n, util::Rng& rng) const;

  /// Mean runtime per scale-out across all runs (for Fig. 2-style summaries).
  std::map<int, double> mean_runtime_by_scaleout() const;

 private:
  std::vector<JobRun> runs_;
};

}  // namespace bellamy::data
