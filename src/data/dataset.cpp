#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace bellamy::data {

std::vector<int> ContextGroup::scale_outs() const {
  std::set<int> s;
  for (const auto& r : runs) s.insert(r.scale_out);
  return {s.begin(), s.end()};
}

double ContextGroup::mean_runtime_at(int scale_out) const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& r : runs) {
    if (r.scale_out == scale_out) {
      total += r.runtime_s;
      ++n;
    }
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

std::vector<JobRun> ContextGroup::runs_at(int scale_out) const {
  std::vector<JobRun> out;
  for (const auto& r : runs) {
    if (r.scale_out == scale_out) out.push_back(r);
  }
  return out;
}

Dataset::Dataset(std::vector<JobRun> runs) : runs_(std::move(runs)) {}

void Dataset::add(JobRun run) { runs_.push_back(std::move(run)); }

void Dataset::append(const Dataset& other) {
  runs_.insert(runs_.end(), other.runs_.begin(), other.runs_.end());
}

std::vector<std::string> Dataset::algorithms() const {
  std::set<std::string> s;
  for (const auto& r : runs_) s.insert(r.algorithm);
  return {s.begin(), s.end()};
}

Dataset Dataset::filter_algorithm(const std::string& algorithm) const {
  return filter([&](const JobRun& r) { return r.algorithm == algorithm; });
}

std::vector<ContextGroup> Dataset::contexts() const {
  std::map<std::string, ContextGroup> groups;
  for (const auto& r : runs_) {
    auto& g = groups[r.context_key()];
    g.key = r.context_key();
    g.runs.push_back(r);
  }
  std::vector<ContextGroup> out;
  out.reserve(groups.size());
  for (auto& [key, g] : groups) out.push_back(std::move(g));
  return out;
}

Dataset Dataset::filter_context(const std::string& context_key) const {
  return filter([&](const JobRun& r) { return r.context_key() == context_key; });
}

Dataset Dataset::exclude_context(const std::string& context_key) const {
  return filter([&](const JobRun& r) { return r.context_key() != context_key; });
}

Dataset Dataset::filter_dissimilar(const JobRun& reference) const {
  const double ref_size = static_cast<double>(reference.dataset_size_mb);
  return filter([&](const JobRun& r) {
    if (r.algorithm != reference.algorithm) return false;
    if (r.node_type == reference.node_type) return false;
    if (r.data_characteristics == reference.data_characteristics) return false;
    if (r.job_parameters == reference.job_parameters) return false;
    const double size = static_cast<double>(r.dataset_size_mb);
    const double rel = ref_size > 0.0 ? std::abs(size - ref_size) / ref_size : 1.0;
    return rel >= 0.20;  // "significantly larger or smaller (>= 20%)"
  });
}

std::size_t Dataset::num_unique_experiments() const {
  std::set<std::pair<std::string, int>> cells;
  for (const auto& r : runs_) cells.emplace(r.context_key(), r.scale_out);
  return cells.size();
}

Dataset Dataset::sample(std::size_t n, util::Rng& rng) const {
  if (n >= runs_.size()) return *this;
  const auto idx = rng.sample_without_replacement(runs_.size(), n);
  std::vector<JobRun> out;
  out.reserve(n);
  for (std::size_t i : idx) out.push_back(runs_[i]);
  return Dataset(std::move(out));
}

std::map<int, double> Dataset::mean_runtime_by_scaleout() const {
  std::map<int, std::pair<double, std::size_t>> acc;
  for (const auto& r : runs_) {
    auto& [sum, n] = acc[r.scale_out];
    sum += r.runtime_s;
    ++n;
  }
  std::map<int, double> out;
  for (const auto& [x, sn] : acc) out[x] = sn.first / static_cast<double>(sn.second);
  return out;
}

}  // namespace bellamy::data
