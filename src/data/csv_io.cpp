#include "data/csv_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/string_utils.hpp"

namespace bellamy::data {

const std::vector<std::string>& csv_columns() {
  static const std::vector<std::string> cols = {
      "algorithm",   "environment",          "node_type", "job_parameters",
      "dataset_size_mb", "data_characteristics", "memory_mb", "cpu_cores",
      "scale_out",   "runtime_s"};
  return cols;
}

Dataset load_csv(std::istream& in) {
  const util::CsvTable table = util::read_csv(in);
  const auto col = [&](const char* name) { return table.column(name); };
  const std::size_t c_algo = col("algorithm");
  const std::size_t c_env = col("environment");
  const std::size_t c_node = col("node_type");
  const std::size_t c_params = col("job_parameters");
  const std::size_t c_size = col("dataset_size_mb");
  const std::size_t c_chars = col("data_characteristics");
  const std::size_t c_mem = col("memory_mb");
  const std::size_t c_cores = col("cpu_cores");
  const std::size_t c_x = col("scale_out");
  const std::size_t c_rt = col("runtime_s");

  std::vector<JobRun> runs;
  runs.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    JobRun r;
    r.algorithm = row[c_algo];
    r.environment = row[c_env];
    r.node_type = row[c_node];
    r.job_parameters = row[c_params];
    r.dataset_size_mb = static_cast<std::uint64_t>(util::parse_int(row[c_size]));
    r.data_characteristics = row[c_chars];
    r.memory_mb = static_cast<std::uint64_t>(util::parse_int(row[c_mem]));
    r.cpu_cores = static_cast<std::uint64_t>(util::parse_int(row[c_cores]));
    r.scale_out = static_cast<int>(util::parse_int(row[c_x]));
    r.runtime_s = util::parse_double(row[c_rt]);
    if (r.scale_out < 1) throw std::runtime_error("load_csv: scale_out < 1");
    if (r.runtime_s < 0.0) throw std::runtime_error("load_csv: negative runtime");
    runs.push_back(std::move(r));
  }
  return Dataset(std::move(runs));
}

Dataset load_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_csv_file: cannot open '" + path + "'");
  return load_csv(in);
}

void save_csv(std::ostream& out, const Dataset& dataset) {
  util::CsvTable table;
  table.header = csv_columns();
  for (const auto& r : dataset.runs()) {
    table.rows.push_back({r.algorithm, r.environment, r.node_type, r.job_parameters,
                          std::to_string(r.dataset_size_mb), r.data_characteristics,
                          std::to_string(r.memory_mb), std::to_string(r.cpu_cores),
                          std::to_string(r.scale_out), util::format("%.6f", r.runtime_s)});
  }
  util::write_csv(out, table);
}

void save_csv_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_csv_file: cannot open '" + path + "'");
  save_csv(out, dataset);
}

}  // namespace bellamy::data
