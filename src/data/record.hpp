#pragma once
// Trace schema.  One JobRun is one execution of a dataflow job: the context
// properties recorded by the C3O/Bell datasets, the horizontal scale-out, and
// the measured runtime.
//
// Essential properties (paper §IV-B): dataset size, dataset characteristics,
// job parameters, node type.  Optional properties: memory (MB), CPU cores,
// job/algorithm name.

#include <cstdint>
#include <string>
#include <vector>

namespace bellamy::data {

struct JobRun {
  std::string algorithm;             ///< e.g. "sgd", "kmeans" (also an optional property)
  std::string environment;           ///< bookkeeping: "c3o-cloud" or "bell-cluster"

  // -- essential context properties --
  std::string node_type;             ///< e.g. "m4.2xlarge"
  std::string job_parameters;        ///< e.g. "25" (max iterations)
  std::uint64_t dataset_size_mb = 0; ///< target dataset size
  std::string data_characteristics;  ///< e.g. "uniform-0.01"

  // -- optional context properties --
  std::uint64_t memory_mb = 0;       ///< per-node memory
  std::uint64_t cpu_cores = 0;       ///< per-node vcores

  // -- observation --
  int scale_out = 0;                 ///< number of machines x
  double runtime_s = 0.0;            ///< measured runtime in seconds

  /// Context identity (paper: node type + job params + dataset size +
  /// dataset characteristics uniquely define a C3O execution context).
  std::string context_key() const;

  bool same_context(const JobRun& other) const {
    return context_key() == other.context_key();
  }
};

/// Stable ordering for deterministic grouping: by algorithm, then context
/// key, then scale-out, then runtime.
bool operator<(const JobRun& a, const JobRun& b);

}  // namespace bellamy::data
