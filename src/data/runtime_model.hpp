#pragma once
// Common interface for every runtime predictor evaluated in the paper:
// the NNLS/Ernest parametric baseline, the Bell model-selection baseline and
// the Bellamy variants.  A model is fit on observed JobRuns (typically from
// one concrete context) and queried with a JobRun whose runtime_s is ignored.

#include <memory>
#include <string>
#include <vector>

#include "data/record.hpp"

namespace bellamy::data {

class RuntimeModel {
 public:
  virtual ~RuntimeModel() = default;

  /// Fit on the given runs.  Throws std::invalid_argument if there are
  /// fewer than min_training_points() samples.
  virtual void fit(const std::vector<JobRun>& runs) = 0;

  /// Predict the runtime (seconds) for the query's context and scale-out.
  virtual double predict(const JobRun& query) = 0;

  /// Predict runtimes for a whole batch of queries at once.  The base
  /// implementation loops over predict(); models with a vectorized forward
  /// (Bellamy, the closed-form baselines) override it to answer all queries
  /// in one pass.  Returns one value per query, in order; an empty batch
  /// yields an empty vector.  Must behave identically to the per-query loop.
  virtual std::vector<double> predict_batch(const std::vector<JobRun>& queries);

  /// Smallest number of samples fit() accepts. 0 means the model can be
  /// used without any context data (a pre-trained Bellamy model).
  virtual std::size_t min_training_points() const = 0;

  virtual std::string name() const = 0;
};

using RuntimeModelPtr = std::unique_ptr<RuntimeModel>;

}  // namespace bellamy::data
