#pragma once
// PeerTransport: how one exchange node talks to another.
//
// The ExchangeRegistry never sees sockets — it speaks to peers through this
// three-call interface (digest / pull / advertise), which is exactly the
// exchange subset of the wire protocol.  Two implementations:
//
//   * LocalTransport (here)  — calls another node's PeerService directly,
//     in-process.  Deterministic, no sockets, no threads of its own: the
//     transport tests and the 3-node convergence tests run on it.
//   * TcpTransport (tcp_transport.hpp) — rides a NetClient to a real
//     bellamy_serverd, redialing a peer that restarted.
//
// Error contract matches the serve layer: peer-unreachable and peer-side
// failures are typed ServeResults, never exceptions.

#include <string>
#include <vector>

#include "net/server.hpp"
#include "serve/serve_result.hpp"

namespace bellamy::exchange {

// The exchange layer's value types ARE the wire types: what a transport
// moves is what the protocol encodes, so Local and Tcp cannot drift apart.
using net::DigestEntry;
using net::PulledCheckpoint;

class PeerTransport {
 public:
  virtual ~PeerTransport() = default;

  /// The peer's catalog: every (key, stamp) it can serve a pull for.
  virtual serve::ServeResult<std::vector<DigestEntry>> digest() = 0;

  /// Fetch the peer's current checkpoint for `key`.
  virtual serve::ServeResult<PulledCheckpoint> pull(const serve::ModelKey& key) = 0;

  /// Push this node's catalog at the peer (fire-and-forget gossip; the peer
  /// schedules pulls for anything newer).
  virtual serve::ServeResult<serve::Unit> advertise(
      const std::vector<DigestEntry>& entries) = 0;

  /// Peer name for log and error messages ("local:b", "host:7113").
  virtual std::string name() const = 0;
};

/// In-process peer: forwards straight to the target node's PeerService (the
/// same interface its ServeServer would call on an inbound frame).  The
/// target must outlive this transport.
class LocalTransport final : public PeerTransport {
 public:
  explicit LocalTransport(net::PeerService& target, std::string name = "local");

  serve::ServeResult<std::vector<DigestEntry>> digest() override;
  serve::ServeResult<PulledCheckpoint> pull(const serve::ModelKey& key) override;
  serve::ServeResult<serve::Unit> advertise(const std::vector<DigestEntry>& entries) override;
  std::string name() const override;

 private:
  net::PeerService& target_;
  std::string name_;
};

}  // namespace bellamy::exchange
