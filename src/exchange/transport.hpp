#pragma once
// PeerTransport: how one exchange node talks to another.
//
// The ExchangeRegistry never sees sockets — it speaks to peers through this
// three-call interface (digest / pull / advertise), which is exactly the
// exchange subset of the wire protocol.  Two implementations:
//
//   * LocalTransport (here)  — calls another node's PeerService directly,
//     in-process.  Deterministic, no sockets, no threads of its own: the
//     transport tests and the 3-node convergence tests run on it.
//   * TcpTransport (tcp_transport.hpp) — rides a NetClient to a real
//     bellamy_serverd, redialing a peer that restarted.
//
// Error contract matches the serve layer: peer-unreachable and peer-side
// failures are typed ServeResults, never exceptions.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/server.hpp"
#include "serve/serve_result.hpp"

namespace bellamy::exchange {

// The exchange layer's value types ARE the wire types: what a transport
// moves is what the protocol encodes, so Local and Tcp cannot drift apart.
using net::DigestEntry;
using net::PulledCheckpoint;

/// True when `status` means the CONNECTION / peer is unusable, not the
/// request: kShutdown (peer gone), kInternalError (protocol garbage — the
/// stream position is untrusted), kTimeout (a deadline elapsed).  A typed
/// peer-side answer (kUnknownModel, kInvalidArgument, ...) is proof the
/// peer is alive and speaking the protocol — retrying it is pointless and
/// the circuit breaker counts it as a success.
bool is_transport_failure(serve::ServeStatus status);

class PeerTransport {
 public:
  virtual ~PeerTransport() = default;

  /// The peer's catalog: every (key, stamp) it can serve a pull for.
  virtual serve::ServeResult<std::vector<DigestEntry>> digest() = 0;

  /// Fetch the peer's current checkpoint for `key`.
  virtual serve::ServeResult<PulledCheckpoint> pull(const serve::ModelKey& key) = 0;

  /// Push this node's catalog at the peer (fire-and-forget gossip; the peer
  /// schedules pulls for anything newer).
  virtual serve::ServeResult<serve::Unit> advertise(
      const std::vector<DigestEntry>& entries) = 0;

  /// Peer name for log and error messages ("local:b", "host:7113").
  virtual std::string name() const = 0;

  /// Transport-level retries burned so far (TcpTransport's redial loop; 0
  /// for transports that never retry).
  virtual std::uint64_t retries() const { return 0; }
};

/// In-process peer: forwards straight to the target node's PeerService (the
/// same interface its ServeServer would call on an inbound frame).  The
/// target must outlive this transport.
class LocalTransport final : public PeerTransport {
 public:
  explicit LocalTransport(net::PeerService& target, std::string name = "local");

  serve::ServeResult<std::vector<DigestEntry>> digest() override;
  serve::ServeResult<PulledCheckpoint> pull(const serve::ModelKey& key) override;
  serve::ServeResult<serve::Unit> advertise(const std::vector<DigestEntry>& entries) override;
  std::string name() const override;

 private:
  net::PeerService& target_;
  std::string name_;
};

/// Chaos decorator over any PeerTransport: every forwarded call first
/// consults a hard outage switch (set_down — a killed peer, not a flaky
/// one) and then a FaultInjector, whose faults map onto the typed failures
/// a real socket would produce (drop/truncate/disconnect -> kShutdown,
/// garble -> kInternalError, delay -> sleep then forward).  Deterministic
/// from the injector's seed; the in-process chaos tests own it.
class ChaosTransport final : public PeerTransport {
 public:
  ChaosTransport(std::shared_ptr<PeerTransport> inner,
                 std::shared_ptr<net::FaultInjector> faults);

  serve::ServeResult<std::vector<DigestEntry>> digest() override;
  serve::ServeResult<PulledCheckpoint> pull(const serve::ModelKey& key) override;
  serve::ServeResult<serve::Unit> advertise(const std::vector<DigestEntry>& entries) override;
  std::string name() const override;

  /// While down, every call fails kShutdown without reaching the inner
  /// transport.
  void set_down(bool down) { down_.store(down); }
  bool down() const { return down_.load(); }

 private:
  struct Veto {
    bool vetoed = false;
    serve::ServeStatus status = serve::ServeStatus::kShutdown;
    std::string message;
  };
  /// Outage switch + one injector draw; sleeps through kDelay faults.
  Veto consult();

  std::shared_ptr<PeerTransport> inner_;
  std::shared_ptr<net::FaultInjector> faults_;
  std::atomic<bool> down_{false};
};

}  // namespace bellamy::exchange
