#pragma once
// Umbrella header for the exchange layer: collaborative checkpoint exchange
// across Bellamy registry nodes.  A model published (or refit) at one node
// warm-starts every other node in the mesh — pull-on-miss for the fast path,
// background anti-entropy for convergence.

#include "exchange/exchange_registry.hpp"  // IWYU pragma: export
#include "exchange/tcp_transport.hpp"      // IWYU pragma: export
#include "exchange/transport.hpp"          // IWYU pragma: export
