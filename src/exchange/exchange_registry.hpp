#pragma once
// ExchangeRegistry: collaborative checkpoint exchange across registry nodes.
//
// The paper's claim is that performance models are reusable across contexts;
// this layer pushes that reuse across PROCESSES.  Each node wraps its local
// serve::ModelRegistry with a stamped catalog and a set of PeerTransports;
// a (job, context) first seen at node A then warm-starts at node B instead
// of pretraining from scratch:
//
//   open(key)
//     1. local registry hit (fitted)            -> serve it
//     2. backing ModelStore hit                 -> open it
//     3. a peer advertises the EXACT key        -> pull + install, bit-
//        identical to the peer's model (checkpoint-as-text transport)
//     4. a peer has the SAME JOB, other context -> pull that base, install
//        it under its own key, then registry.derive(key): the classic
//        Bellamy warm start, sharing the pulled base checkpoint
//     5. nothing anywhere                       -> kUnknownModel; callers
//        wanting the pretrain fallback use open_or_pretrain()
//
// FRESHNESS: every catalog row carries a Lamport-style stamp.  The node
// clock advances past every stamp it has seen (locally minted or observed
// on a peer), so "higher stamp" totally orders competing versions of a key
// and a refit always outranks the weights it replaced.
//
// ANTI-ENTROPY: start_sync() runs a periodic digest-compare-pull round
// against every peer on a dedicated parallel::Strand — a timer thread only
// POSTS rounds, the strand runs them, so sync work never blocks a caller
// and never overlaps itself.  Advertise messages from peers schedule the
// same round (coalesced while one is pending).
//
// CONFLICT RULE: highest stamp wins, with one carve-out — an entry this
// node REFIT locally is pinned and never clobbered by a remote pull.  The
// node that paid for a fine-tune on its own context's runs does not have
// its specialization silently replaced by gossip; peers still pull the
// refit weights FROM it (refits get fresh stamps and are advertised).
//
// LOCK ORDER: exchange catalog mutex -> registry mutex -> entry mutex.
// Transport calls (peer I/O) are NEVER made while holding the catalog
// mutex; install_remote holds it across the catalog re-check plus the
// registry publish so a losing pull cannot clobber a winning one.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "exchange/transport.hpp"
#include "net/server.hpp"
#include "parallel/strand.hpp"
#include "serve/model_registry.hpp"
#include "serve/serve_result.hpp"
#include "util/circuit_breaker.hpp"

namespace bellamy::exchange {

struct ExchangeOptions {
  /// Period of the background anti-entropy loop started by start_sync().
  std::chrono::milliseconds sync_interval{500};
  /// Push an advertise at every peer right after a local publish/refit
  /// (cuts propagation latency to one one-way message; the periodic digest
  /// loop still catches anything missed).
  bool advertise_on_update = true;
  /// Per-peer circuit breaker: after `failure_threshold` consecutive
  /// transport failures a peer's circuit opens and every call to it is
  /// skipped (no wire traffic, no redial stalls) until a half-open probe
  /// succeeds after `cooldown`.  Anti-entropy stops hammering dead nodes.
  util::CircuitBreakerOptions breaker;
};

/// Per-peer health, reported in ExchangeStats::peers.
struct PeerStats {
  std::string name;
  const char* breaker_state = "closed";
  std::uint64_t failures = 0;   ///< transport failures observed
  std::uint64_t successes = 0;  ///< calls that reached a live peer
  std::uint64_t skips = 0;      ///< calls skipped while the circuit was open
  std::uint64_t trips = 0;      ///< closed/half-open -> open transitions
  std::uint64_t probes = 0;     ///< half-open probes admitted
  std::uint64_t retries = 0;    ///< transport-level redial retries
};

/// Monotonic counters (stats()).
struct ExchangeStats {
  std::uint64_t pulls_served = 0;       ///< checkpoints handed to peers
  std::uint64_t pulls_completed = 0;    ///< checkpoints installed from peers
  std::uint64_t warm_starts = 0;        ///< derive() from a pulled base
  std::uint64_t sync_rounds = 0;        ///< anti-entropy rounds run
  std::uint64_t conflicts_skipped = 0;  ///< remote newer but locally pinned
  std::uint64_t catalog_size = 0;       ///< rows currently advertised
  std::uint64_t breaker_skips = 0;      ///< peer calls skipped: circuit open
  std::uint64_t peer_failures = 0;      ///< transport failures, all peers
  std::vector<PeerStats> peers;         ///< per-peer health snapshot
};

/// One node of the exchange mesh.  Implements net::PeerService, so the same
/// object answers the wire messages when handed to a ServeServer
/// (ServerOptions::peer_service) and the in-process calls when wrapped in a
/// LocalTransport.  Thread-safe throughout.  Must outlive any refit still
/// in flight through refit_async() (serverd tears down in that order; tests
/// wait on the futures).
class ExchangeRegistry final : public net::PeerService {
 public:
  /// `registry` must outlive this node.
  explicit ExchangeRegistry(serve::ModelRegistry& registry, ExchangeOptions options = {});
  ~ExchangeRegistry() override;

  ExchangeRegistry(const ExchangeRegistry&) = delete;
  ExchangeRegistry& operator=(const ExchangeRegistry&) = delete;

  /// Add a peer this node will sync against.  Peers are contacted from the
  /// sync strand and from open()-ing callers; add before start_sync() or
  /// any time after (thread-safe).
  void add_peer(std::shared_ptr<PeerTransport> peer);
  std::size_t peer_count() const;

  // -- local operations: registry semantics plus stamping + gossip --

  /// registry.publish + a fresh catalog stamp + advertise.
  serve::ServeResult<serve::ModelHandle> publish(const serve::ModelKey& key,
                                                 const core::BellamyModel& model);

  /// The five-step resolution above.  Never pretrains.
  serve::ServeResult<serve::ModelHandle> open(const serve::ModelKey& key);

  /// open(), falling back to pretraining on `runs` when no node has the
  /// job.  The pretrained model is published (stamped + advertised), so the
  /// REST of the mesh warm-starts off this node from now on.
  serve::ServeResult<serve::ModelHandle> open_or_pretrain(
      const serve::ModelKey& key, const std::vector<data::JobRun>& pretrain_runs,
      const core::PreTrainConfig& config);

  /// registry.refit_async, with the completion hook extended to pin + stamp
  /// the entry and advertise the new weights.  Same coalescing/future
  /// semantics as the registry call.
  std::shared_future<serve::ServeResult<core::FineTuneResult>> refit_async(
      const serve::ModelHandle& handle, std::vector<data::JobRun> runs,
      const core::FineTuneConfig& config,
      core::ReuseStrategy strategy = core::ReuseStrategy::kPartialUnfreeze,
      serve::RefitCallback on_complete = nullptr);

  // -- net::PeerService (the server-facing half) --

  std::vector<DigestEntry> digest_entries() override;
  serve::ServeResult<PulledCheckpoint> pull_model(const serve::ModelKey& key) override;
  void on_advertise(const std::vector<DigestEntry>& entries) override;
  serve::ServeResult<serve::ModelHandle> open_on_miss(const serve::ModelKey& key) override;
  void note_published(const serve::ModelKey& key) override;
  void note_refit(const serve::ModelKey& key) override;

  // -- anti-entropy control --

  /// Start the periodic background sync (no-op when already running).
  void start_sync();
  /// Run one full digest-compare-pull round against every peer and wait for
  /// it (deterministic convergence in tests; console `sync`).
  void sync_now();
  /// Stop the timer and drain the sync strand.  Idempotent; the destructor
  /// calls it.
  void stop();

  // -- introspection --

  /// Catalog stamp for `key` (0 = not catalogued).
  std::uint64_t stamp_of(const serve::ModelKey& key) const;
  /// True when `key` was refit locally (protected from remote clobber).
  bool pinned(const serve::ModelKey& key) const;
  ExchangeStats stats() const;
  serve::ModelRegistry& registry() { return registry_; }

 private:
  struct CatalogEntry {
    std::uint64_t stamp = 0;
    bool pinned = false;  ///< locally refit; never overwritten by a pull
  };

  /// A transport plus its health: the breaker gates every call, the
  /// counters feed PeerStats.
  struct Peer {
    Peer(std::shared_ptr<PeerTransport> t, const util::CircuitBreakerOptions& breaker_options)
        : transport(std::move(t)), breaker(breaker_options) {}
    std::shared_ptr<PeerTransport> transport;
    util::CircuitBreaker breaker;
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> successes{0};
    std::atomic<std::uint64_t> skips{0};
  };

  /// Run one transport call through the peer's breaker: an open circuit is
  /// skipped without touching the wire; the outcome feeds the breaker
  /// (transport failures count against it, typed peer-side answers are
  /// proof of life and count as success).
  template <typename Fn>
  auto guarded(Peer& peer, Fn&& fn) -> decltype(fn()) {
    using Result = decltype(fn());
    if (!peer.breaker.allow()) {
      peer.skips.fetch_add(1);
      breaker_skips_.fetch_add(1);
      return Result::failure(serve::ServeStatus::kShutdown,
                             "peer " + peer.transport->name() + ": circuit open");
    }
    auto result = fn();
    if (!result.ok() && is_transport_failure(result.status())) {
      peer.failures.fetch_add(1);
      peer_failures_.fetch_add(1);
      peer.breaker.record_failure();
    } else {
      peer.successes.fetch_add(1);
      peer.breaker.record_success();
    }
    return result;
  }

  /// ++clock_ (callers hold mutex_).
  std::uint64_t next_stamp_locked();
  /// Catalog rows for keys published straight into the registry (wire
  /// publishes, pre-wired models) get minted lazily; rows whose key left
  /// the registry (erase) are dropped.  Callers hold mutex_.
  void absorb_registry_locked();
  /// Fresh stamp for `key` (optionally pinning it), then gossip.
  void stamp_local(const serve::ModelKey& key, bool pin);
  /// Install a checkpoint pulled off a peer, unless the catalog already
  /// holds something as-new / pinned (the conflict rule).  Returns the
  /// key's handle either way.
  serve::ServeResult<serve::ModelHandle> install_remote(const serve::ModelKey& key,
                                                        std::uint64_t stamp,
                                                        const std::string& checkpoint_text);
  /// One digest-compare-pull round against every peer (runs on the strand).
  void sync_once();
  /// Post a sync round on the strand, coalescing with any round already
  /// queued (safe from reader threads and the timer alike).
  void schedule_sync();
  /// Post an advertise of the current catalog to every peer (best-effort,
  /// on the strand).
  void post_advertise();
  std::vector<std::shared_ptr<Peer>> peers_snapshot() const;

  serve::ModelRegistry& registry_;
  ExchangeOptions options_;

  mutable std::mutex mutex_;  ///< guards catalog_, clock_, peers_
  std::map<serve::ModelKey, CatalogEntry> catalog_;
  std::uint64_t clock_ = 0;
  std::vector<std::shared_ptr<Peer>> peers_;

  parallel::Strand sync_strand_{parallel::ThreadPool::global()};
  std::atomic<bool> sync_queued_{false};  ///< coalesces pending sync rounds

  std::thread timer_;
  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  bool timer_running_ = false;
  bool stopping_ = false;

  std::atomic<std::uint64_t> pulls_served_{0};
  std::atomic<std::uint64_t> pulls_completed_{0};
  std::atomic<std::uint64_t> warm_starts_{0};
  std::atomic<std::uint64_t> sync_rounds_{0};
  std::atomic<std::uint64_t> conflicts_skipped_{0};
  std::atomic<std::uint64_t> breaker_skips_{0};
  std::atomic<std::uint64_t> peer_failures_{0};
};

}  // namespace bellamy::exchange
