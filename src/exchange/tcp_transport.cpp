#include "exchange/tcp_transport.hpp"

#include <utility>

namespace bellamy::exchange {

TcpTransport::TcpTransport(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port) {}

std::shared_ptr<net::NetClient> TcpTransport::ensure_connected(std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (client_ && client_->connected()) return client_;
  auto fresh = std::make_shared<net::NetClient>();
  if (!fresh->connect(host_, port_, error)) return nullptr;
  client_ = std::move(fresh);
  return client_;
}

void TcpTransport::drop(const std::shared_ptr<net::NetClient>& client) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (client_ == client) client_.reset();
}

bool TcpTransport::transport_failure(serve::ServeStatus status) {
  // kShutdown is how NetClient reports a dead connection; kInternalError
  // covers protocol garbage, after which the stream position is untrusted.
  return status == serve::ServeStatus::kShutdown ||
         status == serve::ServeStatus::kInternalError;
}

serve::ServeResult<std::vector<DigestEntry>> TcpTransport::digest() {
  std::string error;
  auto client = ensure_connected(error);
  if (!client) {
    return serve::ServeResult<std::vector<DigestEntry>>::failure(
        serve::ServeStatus::kShutdown, "peer " + name() + " unreachable: " + error);
  }
  auto result = client->digest();
  if (!result.ok() && transport_failure(result.status())) drop(client);
  return result;
}

serve::ServeResult<PulledCheckpoint> TcpTransport::pull(const serve::ModelKey& key) {
  std::string error;
  auto client = ensure_connected(error);
  if (!client) {
    return serve::ServeResult<PulledCheckpoint>::failure(
        serve::ServeStatus::kShutdown, "peer " + name() + " unreachable: " + error);
  }
  auto result = client->pull_model(key);
  if (!result.ok() && transport_failure(result.status())) drop(client);
  return result;
}

serve::ServeResult<serve::Unit> TcpTransport::advertise(
    const std::vector<DigestEntry>& entries) {
  std::string error;
  auto client = ensure_connected(error);
  if (!client) {
    return serve::ServeResult<serve::Unit>::failure(
        serve::ServeStatus::kShutdown, "peer " + name() + " unreachable: " + error);
  }
  auto result = client->advertise(entries);
  if (!result.ok() && transport_failure(result.status())) drop(client);
  return result;
}

std::string TcpTransport::name() const { return host_ + ":" + std::to_string(port_); }

}  // namespace bellamy::exchange
