#include "exchange/tcp_transport.hpp"

#include <utility>

namespace bellamy::exchange {

TcpTransport::TcpTransport(std::string host, std::uint16_t port, TransportOptions options)
    : host_(std::move(host)), port_(port), options_(std::move(options)) {}

std::shared_ptr<net::NetClient> TcpTransport::ensure_connected(std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (client_ && client_->connected()) return client_;
  net::ClientOptions client_options;
  client_options.deadlines = options_.deadlines;
  client_options.fault_injector = options_.fault_injector;
  auto fresh = std::make_shared<net::NetClient>(std::move(client_options));
  if (!fresh->connect(host_, port_, error)) return nullptr;
  client_ = std::move(fresh);
  return client_;
}

void TcpTransport::drop(const std::shared_ptr<net::NetClient>& client) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (client_ == client) client_.reset();
}

serve::ServeResult<std::vector<DigestEntry>> TcpTransport::digest() {
  return with_retry<std::vector<DigestEntry>>(
      [](net::NetClient& client) { return client.digest(); });
}

serve::ServeResult<PulledCheckpoint> TcpTransport::pull(const serve::ModelKey& key) {
  return with_retry<PulledCheckpoint>(
      [&key](net::NetClient& client) { return client.pull_model(key); });
}

serve::ServeResult<serve::Unit> TcpTransport::advertise(
    const std::vector<DigestEntry>& entries) {
  return with_retry<serve::Unit>(
      [&entries](net::NetClient& client) { return client.advertise(entries); });
}

std::string TcpTransport::name() const { return host_ + ":" + std::to_string(port_); }

}  // namespace bellamy::exchange
