#pragma once
// TcpTransport: a PeerTransport over a real socket.
//
// Wraps a net::NetClient dialed at a peer bellamy_serverd and forwards the
// three exchange calls onto the wire (DigestRequest / PullRequest /
// AdvertiseRequest).  Connection management is lazy and self-healing:
//
//   * The first call dials; nothing connects at construction, so a mesh can
//     be wired up before its peers are listening.
//   * A transport-level failure (kShutdown: peer closed; kInternalError:
//     protocol garbage; kTimeout: deadline elapsed) drops the client and
//     RETRIES the call per TransportOptions::retry — redial plus re-send
//     with seeded exponential backoff — before giving up.  A peer that
//     restarted is picked back up mid-loop or by the next sync round.
//   * Peer-side typed failures (kUnknownModel, kInvalidArgument for a node
//     with no exchange layer) pass through untouched and do NOT drop the
//     connection: the peer answered, retrying cannot change its mind.
//
// Every call is bounded by TransportOptions::deadlines (connect bounds the
// dial, request bounds each call end-to-end), so a peer that accepts and
// then goes silent costs a typed kTimeout, never a hung sync strand.
//
// Thread-safe: one mutex serializes dial/teardown; the underlying NetClient
// is itself pipelined and thread-safe for the calls in flight.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exchange/transport.hpp"
#include "net/client.hpp"
#include "util/retry.hpp"

namespace bellamy::exchange {

struct TransportOptions {
  /// Budgets handed to the NetClient (connect / read / write / request).
  /// All 0 = unbounded, the pre-deadline behavior.
  net::DeadlineOptions deadlines;
  /// Per-call retry budget on transport failures.  max_attempts = 1 (the
  /// default) keeps every call single-shot.
  util::RetryPolicy retry{.max_attempts = 1};
  /// Chaos seam installed on the dialed socket (tests only).
  std::shared_ptr<net::FaultInjector> fault_injector;
};

class TcpTransport final : public PeerTransport {
 public:
  /// Peer address; `host` may be a hostname ("localhost") or numeric.
  TcpTransport(std::string host, std::uint16_t port, TransportOptions options = {});

  serve::ServeResult<std::vector<DigestEntry>> digest() override;
  serve::ServeResult<PulledCheckpoint> pull(const serve::ModelKey& key) override;
  serve::ServeResult<serve::Unit> advertise(const std::vector<DigestEntry>& entries) override;
  std::string name() const override;
  std::uint64_t retries() const override { return retries_.load(); }

 private:
  /// Current client, dialing if needed.  Null (with `error` set) when the
  /// peer is unreachable.
  std::shared_ptr<net::NetClient> ensure_connected(std::string& error);
  /// Forget `client` so the next call redials (only if it is still the
  /// current one — a racing call may have redialed already).
  void drop(const std::shared_ptr<net::NetClient>& client);

  /// Dial-call-classify loop: transport failures drop the client and retry
  /// per the policy; everything else returns as-is.
  template <typename T, typename Fn>
  serve::ServeResult<T> with_retry(Fn&& call) {
    util::RetrySchedule schedule(options_.retry);
    while (true) {
      std::string error;
      auto client = ensure_connected(error);
      serve::ServeResult<T> result =
          client ? call(*client)
                 : serve::ServeResult<T>::failure(
                       serve::ServeStatus::kShutdown,
                       "peer " + name() + " unreachable: " + error);
      if (result.ok() || !is_transport_failure(result.status())) return result;
      if (client) drop(client);
      std::chrono::milliseconds delay{0};
      if (!schedule.next_delay(delay)) return result;
      retries_.fetch_add(1);
      std::this_thread::sleep_for(delay);
    }
  }

  const std::string host_;
  const std::uint16_t port_;
  const TransportOptions options_;
  std::mutex mutex_;  ///< guards client_
  std::shared_ptr<net::NetClient> client_;
  std::atomic<std::uint64_t> retries_{0};
};

}  // namespace bellamy::exchange
