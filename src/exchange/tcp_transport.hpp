#pragma once
// TcpTransport: a PeerTransport over a real socket.
//
// Wraps a net::NetClient dialed at a peer bellamy_serverd and forwards the
// three exchange calls onto the wire (DigestRequest / PullRequest /
// AdvertiseRequest).  Connection management is lazy and self-healing:
//
//   * The first call dials; nothing connects at construction, so a mesh can
//     be wired up before its peers are listening.
//   * A transport-level failure (kShutdown: peer closed, send failed) drops
//     the client so the NEXT call redials — a peer that restarted is picked
//     back up by the following sync round without any intervention.
//   * Peer-side typed failures (kUnknownModel, kInvalidArgument for a node
//     with no exchange layer) pass through untouched and do NOT drop the
//     connection.
//
// Thread-safe: one mutex serializes dial/teardown; the underlying NetClient
// is itself pipelined and thread-safe for the calls in flight.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exchange/transport.hpp"
#include "net/client.hpp"

namespace bellamy::exchange {

class TcpTransport final : public PeerTransport {
 public:
  /// Peer address; `host` may be a hostname ("localhost") or numeric.
  TcpTransport(std::string host, std::uint16_t port);

  serve::ServeResult<std::vector<DigestEntry>> digest() override;
  serve::ServeResult<PulledCheckpoint> pull(const serve::ModelKey& key) override;
  serve::ServeResult<serve::Unit> advertise(const std::vector<DigestEntry>& entries) override;
  std::string name() const override;

 private:
  /// Current client, dialing if needed.  Null (with `error` set) when the
  /// peer is unreachable.
  std::shared_ptr<net::NetClient> ensure_connected(std::string& error);
  /// Forget `client` so the next call redials (only if it is still the
  /// current one — a racing call may have redialed already).
  void drop(const std::shared_ptr<net::NetClient>& client);
  /// True when `status` means the CONNECTION is bad, not the request.
  static bool transport_failure(serve::ServeStatus status);

  const std::string host_;
  const std::uint16_t port_;
  std::mutex mutex_;  ///< guards client_
  std::shared_ptr<net::NetClient> client_;
};

}  // namespace bellamy::exchange
