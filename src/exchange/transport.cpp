#include "exchange/transport.hpp"

#include <utility>

namespace bellamy::exchange {

LocalTransport::LocalTransport(net::PeerService& target, std::string name)
    : target_(target), name_(std::move(name)) {}

serve::ServeResult<std::vector<DigestEntry>> LocalTransport::digest() {
  return target_.digest_entries();
}

serve::ServeResult<PulledCheckpoint> LocalTransport::pull(const serve::ModelKey& key) {
  return target_.pull_model(key);
}

serve::ServeResult<serve::Unit> LocalTransport::advertise(
    const std::vector<DigestEntry>& entries) {
  target_.on_advertise(entries);
  return serve::ok();
}

std::string LocalTransport::name() const { return name_; }

}  // namespace bellamy::exchange
