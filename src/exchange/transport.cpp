#include "exchange/transport.hpp"

#include <thread>
#include <utility>

#include "net/fault_injector.hpp"

namespace bellamy::exchange {

bool is_transport_failure(serve::ServeStatus status) {
  return status == serve::ServeStatus::kShutdown ||
         status == serve::ServeStatus::kInternalError ||
         status == serve::ServeStatus::kTimeout;
}

LocalTransport::LocalTransport(net::PeerService& target, std::string name)
    : target_(target), name_(std::move(name)) {}

serve::ServeResult<std::vector<DigestEntry>> LocalTransport::digest() {
  return target_.digest_entries();
}

serve::ServeResult<PulledCheckpoint> LocalTransport::pull(const serve::ModelKey& key) {
  return target_.pull_model(key);
}

serve::ServeResult<serve::Unit> LocalTransport::advertise(
    const std::vector<DigestEntry>& entries) {
  target_.on_advertise(entries);
  return serve::ok();
}

std::string LocalTransport::name() const { return name_; }

ChaosTransport::ChaosTransport(std::shared_ptr<PeerTransport> inner,
                               std::shared_ptr<net::FaultInjector> faults)
    : inner_(std::move(inner)), faults_(std::move(faults)) {}

ChaosTransport::Veto ChaosTransport::consult() {
  Veto veto;
  if (down_.load()) {
    veto.vetoed = true;
    veto.status = serve::ServeStatus::kShutdown;
    veto.message = "peer " + inner_->name() + " unreachable: chaos outage";
    return veto;
  }
  if (!faults_) return veto;
  const net::Fault fault = faults_->next(net::FaultOp::kCall);
  switch (fault.kind) {
    case net::FaultKind::kNone:
      break;
    case net::FaultKind::kDelay:
      std::this_thread::sleep_for(fault.delay);
      break;
    case net::FaultKind::kDrop:
    case net::FaultKind::kTruncate:
    case net::FaultKind::kDisconnect:
      veto.vetoed = true;
      veto.status = serve::ServeStatus::kShutdown;
      veto.message = "peer " + inner_->name() + " unreachable: chaos disconnect";
      break;
    case net::FaultKind::kGarble:
      // A garbled frame is detected as protocol garbage, never delivered.
      veto.vetoed = true;
      veto.status = serve::ServeStatus::kInternalError;
      veto.message = "peer " + inner_->name() + ": chaos garbled frame";
      break;
  }
  return veto;
}

serve::ServeResult<std::vector<DigestEntry>> ChaosTransport::digest() {
  const Veto veto = consult();
  if (veto.vetoed) {
    return serve::ServeResult<std::vector<DigestEntry>>::failure(veto.status, veto.message);
  }
  return inner_->digest();
}

serve::ServeResult<PulledCheckpoint> ChaosTransport::pull(const serve::ModelKey& key) {
  const Veto veto = consult();
  if (veto.vetoed) {
    return serve::ServeResult<PulledCheckpoint>::failure(veto.status, veto.message);
  }
  return inner_->pull(key);
}

serve::ServeResult<serve::Unit> ChaosTransport::advertise(
    const std::vector<DigestEntry>& entries) {
  const Veto veto = consult();
  if (veto.vetoed) {
    return serve::ServeResult<serve::Unit>::failure(veto.status, veto.message);
  }
  return inner_->advertise(entries);
}

std::string ChaosTransport::name() const { return "chaos(" + inner_->name() + ")"; }

}  // namespace bellamy::exchange
