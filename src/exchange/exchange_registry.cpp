#include "exchange/exchange_registry.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "core/bellamy_model.hpp"
#include "nn/serialize.hpp"

namespace bellamy::exchange {

ExchangeRegistry::ExchangeRegistry(serve::ModelRegistry& registry, ExchangeOptions options)
    : registry_(registry), options_(options) {}

ExchangeRegistry::~ExchangeRegistry() { stop(); }

void ExchangeRegistry::add_peer(std::shared_ptr<PeerTransport> peer) {
  auto entry = std::make_shared<Peer>(std::move(peer), options_.breaker);
  std::lock_guard<std::mutex> lock(mutex_);
  peers_.push_back(std::move(entry));
}

std::size_t ExchangeRegistry::peer_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peers_.size();
}

std::vector<std::shared_ptr<ExchangeRegistry::Peer>> ExchangeRegistry::peers_snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peers_;
}

std::uint64_t ExchangeRegistry::next_stamp_locked() { return ++clock_; }

void ExchangeRegistry::absorb_registry_locked() {
  // Mint rows for keys that reached the registry behind our back (wire
  // publishes land in the registry first; the ServeServer's note_published
  // usually beats this, but the catalog must not DEPEND on it) and drop
  // rows whose key was erased — the catalog self-heals to "fitted registry
  // entries only", which is exactly the set a pull can serve.
  for (const serve::ModelKey& key : registry_.keys()) {
    if (catalog_.count(key) != 0) continue;
    const auto handle = registry_.find(key);
    if (handle.ok() && registry_.fitted(handle.value())) {
      catalog_[key] = CatalogEntry{next_stamp_locked(), false};
    }
  }
  for (auto it = catalog_.begin(); it != catalog_.end();) {
    if (registry_.find(it->first).ok()) {
      ++it;
    } else {
      it = catalog_.erase(it);
    }
  }
}

void ExchangeRegistry::stamp_local(const serve::ModelKey& key, bool pin) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CatalogEntry& row = catalog_[key];
    row.stamp = next_stamp_locked();
    // A refit pins (this node paid for the specialization); a publish
    // REPLACES the weights wholesale, so it also clears an earlier pin.
    row.pinned = pin;
  }
  if (options_.advertise_on_update) post_advertise();
}

// ---------------------------------------------------------------------------
// Local operations
// ---------------------------------------------------------------------------

serve::ServeResult<serve::ModelHandle> ExchangeRegistry::publish(
    const serve::ModelKey& key, const core::BellamyModel& model) {
  auto published = registry_.publish(key, model);
  if (published.ok()) note_published(key);
  return published;
}

serve::ServeResult<serve::ModelHandle> ExchangeRegistry::open(const serve::ModelKey& key) {
  if (key.job.empty() || key.context.empty()) {
    return serve::ServeResult<serve::ModelHandle>::failure(
        serve::ServeStatus::kInvalidArgument,
        "open '" + key.str() + "': model key needs a job and a context");
  }

  // 1. Local registry hit.
  if (auto found = registry_.find(key); found.ok() && registry_.fitted(found.value())) {
    return found;
  }

  // 2. Backing store hit (kInvalidArgument = storeless registry: keep going).
  if (auto opened = registry_.open(key); opened.ok()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      absorb_registry_locked();  // mints the row if the open materialized it
    }
    if (options_.advertise_on_update) post_advertise();
    return opened;
  } else if (opened.status() == serve::ServeStatus::kStoreError) {
    return opened;  // the store EXISTS but failed — that is an error, not a miss
  }

  // 3 + 4. Ask every peer what it has.  Transport I/O happens with no lock
  // held; stamps we observe advance the clock afterwards.  Peers behind an
  // open breaker are skipped outright, and a peer that TIMED OUT is
  // remembered: a miss caused by a silent peer is reported as kTimeout, not
  // as "nobody has it".
  struct Candidate {
    std::shared_ptr<Peer> peer;
    DigestEntry entry;
  };
  std::vector<Candidate> exact;
  std::vector<Candidate> same_job;
  bool peer_timed_out = false;
  const auto peers = peers_snapshot();
  for (const auto& peer : peers) {
    auto digest = guarded(*peer, [&] { return peer->transport->digest(); });
    if (!digest.ok()) {
      if (digest.status() == serve::ServeStatus::kTimeout) peer_timed_out = true;
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (DigestEntry& entry : digest.value()) {
      clock_ = std::max(clock_, entry.stamp);
      if (entry.key == key) {
        exact.push_back(Candidate{peer, std::move(entry)});
      } else if (entry.key.job == key.job) {
        same_job.push_back(Candidate{peer, std::move(entry)});
      }
    }
  }
  const auto by_stamp_desc = [](const Candidate& a, const Candidate& b) {
    return a.entry.stamp > b.entry.stamp;
  };
  std::stable_sort(exact.begin(), exact.end(), by_stamp_desc);
  std::stable_sort(same_job.begin(), same_job.end(), by_stamp_desc);

  // 3. Exact key on a peer: pull it, freshest advertiser first.
  for (const Candidate& candidate : exact) {
    auto pulled = guarded(*candidate.peer, [&] { return candidate.peer->transport->pull(key); });
    if (!pulled.ok()) {  // peer raced an erase / went away: try the next
      if (pulled.status() == serve::ServeStatus::kTimeout) peer_timed_out = true;
      continue;
    }
    auto installed =
        install_remote(key, pulled.value().stamp, pulled.value().checkpoint_text);
    if (installed.ok()) return installed;
  }

  // 4. Same job, other context: the Bellamy warm start.  Install the peer's
  // model under ITS key, then derive `key` from it — the derived entry
  // shares the pulled base checkpoint, exactly like a local derive().
  for (const Candidate& candidate : same_job) {
    auto pulled = guarded(*candidate.peer,
                          [&] { return candidate.peer->transport->pull(candidate.entry.key); });
    if (!pulled.ok()) {
      if (pulled.status() == serve::ServeStatus::kTimeout) peer_timed_out = true;
      continue;
    }
    auto base = install_remote(candidate.entry.key, pulled.value().stamp,
                               pulled.value().checkpoint_text);
    if (!base.ok()) continue;
    auto derived = registry_.derive(base.value(), key);
    if (!derived.ok()) {
      // Someone registered the key concurrently; their entry wins.
      if (auto found = registry_.find(key); found.ok()) return found;
      continue;
    }
    stamp_local(key, /*pin=*/false);
    warm_starts_.fetch_add(1);
    return derived;
  }

  // 5. Nothing anywhere.  A silent peer is NOT proof of absence: when any
  // peer timed out and nothing was found, the caller gets the typed
  // timeout (it may retry; a kUnknownModel would read as authoritative).
  if (peer_timed_out) {
    return serve::ServeResult<serve::ModelHandle>::failure(
        serve::ServeStatus::kTimeout,
        "open '" + key.str() + "': not local, not stored, and a peer deadline "
        "elapsed before it answered");
  }
  std::string detail = peers.empty() ? "and this node has no peers"
                                     : "and none of " + std::to_string(peers.size()) +
                                           " peer(s) has job '" + key.job + "'";
  return serve::ServeResult<serve::ModelHandle>::failure(
      serve::ServeStatus::kUnknownModel,
      "open '" + key.str() + "': not local, not stored, " + detail);
}

serve::ServeResult<serve::ModelHandle> ExchangeRegistry::open_or_pretrain(
    const serve::ModelKey& key, const std::vector<data::JobRun>& pretrain_runs,
    const core::PreTrainConfig& config) {
  auto opened = open(key);
  if (opened.ok() || opened.status() != serve::ServeStatus::kUnknownModel) return opened;
  // Cold start: the one pretrain the rest of the mesh now gets to skip.
  try {
    core::BellamyModel model(core::BellamyConfig{}, config.seed);
    core::pretrain(model, pretrain_runs, config);
    return publish(key, model);
  } catch (const std::invalid_argument& e) {
    return serve::ServeResult<serve::ModelHandle>::failure(
        serve::ServeStatus::kInvalidArgument,
        "open_or_pretrain '" + key.str() + "': " + e.what());
  } catch (const std::exception& e) {
    return serve::ServeResult<serve::ModelHandle>::failure(
        serve::ServeStatus::kInternalError,
        "open_or_pretrain '" + key.str() + "': " + e.what());
  }
}

std::shared_future<serve::ServeResult<core::FineTuneResult>> ExchangeRegistry::refit_async(
    const serve::ModelHandle& handle, std::vector<data::JobRun> runs,
    const core::FineTuneConfig& config, core::ReuseStrategy strategy,
    serve::RefitCallback on_complete) {
  const auto entry = registry_.resolve(handle);
  const serve::ModelKey key = entry ? entry->key : serve::ModelKey{};
  // The registry resolves ITS future before completion callbacks run, so a
  // caller waiting on it could observe the swap without the stamp.  Hand out
  // a future that resolves after note_refit instead: future-done implies
  // stamped-and-advertised.
  auto done =
      std::make_shared<std::promise<serve::ServeResult<core::FineTuneResult>>>();
  auto resolved = done->get_future().share();
  registry_.refit_async(
      handle, std::move(runs), config, strategy,
      [this, key, cb = std::move(on_complete), done](
          const serve::ServeResult<core::FineTuneResult>& result) {
        // kStoreError here means "swapped, auto-persist failed": the new
        // weights ARE serving, so they are stamped (and pinned) all the same.
        if (!key.job.empty() &&
            (result.ok() || result.status() == serve::ServeStatus::kStoreError)) {
          note_refit(key);
        }
        if (cb) cb(result);
        done->set_value(result);
      });
  return resolved;
}

// ---------------------------------------------------------------------------
// net::PeerService
// ---------------------------------------------------------------------------

std::vector<DigestEntry> ExchangeRegistry::digest_entries() {
  std::lock_guard<std::mutex> lock(mutex_);
  absorb_registry_locked();
  std::vector<DigestEntry> out;
  out.reserve(catalog_.size());
  for (const auto& [key, row] : catalog_) out.push_back(DigestEntry{key, row.stamp});
  return out;
}

serve::ServeResult<PulledCheckpoint> ExchangeRegistry::pull_model(const serve::ModelKey& key) {
  std::uint64_t stamp = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    absorb_registry_locked();
    const auto it = catalog_.find(key);
    if (it == catalog_.end()) {
      return serve::ServeResult<PulledCheckpoint>::failure(
          serve::ServeStatus::kUnknownModel,
          "pull '" + key.str() + "': not in this node's catalog");
    }
    stamp = it->second.stamp;
  }
  // Serialize OUTSIDE the catalog lock.  The text may be newer than the
  // stamp if a swap lands in between — harmless: the next digest round
  // re-advertises the newer stamp and peers re-pull.
  const auto handle = registry_.find(key);
  if (!handle.ok()) {
    return serve::ServeResult<PulledCheckpoint>::failure(handle.status(), handle.message());
  }
  auto text = registry_.checkpoint_text(handle.value());
  if (!text.ok()) {
    return serve::ServeResult<PulledCheckpoint>::failure(text.status(), text.message());
  }
  pulls_served_.fetch_add(1);
  PulledCheckpoint pulled;
  pulled.stamp = stamp;
  pulled.checkpoint_text = text.take();
  return pulled;
}

void ExchangeRegistry::on_advertise(const std::vector<DigestEntry>& entries) {
  bool interesting = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    absorb_registry_locked();
    for (const DigestEntry& entry : entries) {
      clock_ = std::max(clock_, entry.stamp);
      const auto it = catalog_.find(entry.key);
      if (it == catalog_.end() ||
          (!it->second.pinned && entry.stamp > it->second.stamp)) {
        interesting = true;
      }
    }
  }
  // Schedule (not run) a sync round: this is called from a server reader
  // thread, which must never park on peer I/O for gossip.
  if (interesting) schedule_sync();
}

serve::ServeResult<serve::ModelHandle> ExchangeRegistry::open_on_miss(
    const serve::ModelKey& key) {
  return open(key);
}

void ExchangeRegistry::note_published(const serve::ModelKey& key) {
  stamp_local(key, /*pin=*/false);
}

void ExchangeRegistry::note_refit(const serve::ModelKey& key) {
  stamp_local(key, /*pin=*/true);
}

// ---------------------------------------------------------------------------
// Anti-entropy
// ---------------------------------------------------------------------------

serve::ServeResult<serve::ModelHandle> ExchangeRegistry::install_remote(
    const serve::ModelKey& key, std::uint64_t stamp, const std::string& checkpoint_text) {
  // Parse outside the lock: a slow (or hostile) checkpoint must not tie up
  // the catalog.
  std::optional<core::BellamyModel> model;
  try {
    std::istringstream in(checkpoint_text);
    const nn::Checkpoint ckpt = nn::Checkpoint::load(in);
    model.emplace(core::BellamyModel::from_checkpoint(ckpt));
  } catch (const std::exception& e) {
    return serve::ServeResult<serve::ModelHandle>::failure(
        serve::ServeStatus::kInvalidArgument,
        "install '" + key.str() + "': bad checkpoint from peer: " + e.what());
  }

  // Catalog re-check and registry publish under ONE hold of the catalog
  // mutex (lock order: exchange -> registry -> entry), so two concurrent
  // pulls — or a pull racing a local refit's stamp — resolve by the
  // conflict rule instead of last-writer-wins.
  std::lock_guard<std::mutex> lock(mutex_);
  absorb_registry_locked();
  const auto it = catalog_.find(key);
  if (it != catalog_.end() && (it->second.pinned || it->second.stamp >= stamp)) {
    if (it->second.pinned && stamp > it->second.stamp) conflicts_skipped_.fetch_add(1);
    return registry_.find(key);  // the local version stands
  }
  auto published = registry_.publish(key, *model);
  if (!published.ok()) return published;
  clock_ = std::max(clock_, stamp);
  catalog_[key] = CatalogEntry{stamp, false};
  pulls_completed_.fetch_add(1);
  return published;
}

void ExchangeRegistry::sync_once() {
  sync_rounds_.fetch_add(1);
  for (const auto& peer : peers_snapshot()) {
    auto digest = guarded(*peer, [&] { return peer->transport->digest(); });
    if (!digest.ok()) continue;  // unreachable / circuit open: next round retries

    std::vector<DigestEntry> wants;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      absorb_registry_locked();
      for (const DigestEntry& entry : digest.value()) {
        clock_ = std::max(clock_, entry.stamp);
        const auto it = catalog_.find(entry.key);
        if (it == catalog_.end()) {
          wants.push_back(entry);
        } else if (entry.stamp > it->second.stamp) {
          if (it->second.pinned) {
            conflicts_skipped_.fetch_add(1);  // the refit this node paid for stands
          } else {
            wants.push_back(entry);
          }
        }
      }
    }
    for (const DigestEntry& want : wants) {
      auto pulled = guarded(*peer, [&] { return peer->transport->pull(want.key); });
      if (!pulled.ok()) continue;
      (void)install_remote(want.key, pulled.value().stamp, pulled.value().checkpoint_text);
    }
  }
}

void ExchangeRegistry::schedule_sync() {
  if (!sync_queued_.exchange(true)) {
    sync_strand_.post([this] {
      sync_queued_.store(false);
      sync_once();
    });
  }
}

void ExchangeRegistry::post_advertise() {
  sync_strand_.post([this] {
    const std::vector<DigestEntry> entries = digest_entries();
    for (const auto& peer : peers_snapshot()) {
      // Best-effort; digests catch stragglers, open circuits are skipped.
      (void)guarded(*peer, [&] { return peer->transport->advertise(entries); });
    }
  });
}

void ExchangeRegistry::start_sync() {
  std::lock_guard<std::mutex> lock(timer_mutex_);
  if (timer_running_ || stopping_) return;
  timer_running_ = true;
  timer_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(timer_mutex_);
    while (!stopping_) {
      if (timer_cv_.wait_for(lock, options_.sync_interval, [this] { return stopping_; })) {
        break;
      }
      schedule_sync();
    }
  });
}

void ExchangeRegistry::sync_now() {
  sync_strand_.post([this] { sync_once(); });
  sync_strand_.wait_idle();
}

void ExchangeRegistry::stop() {
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    stopping_ = true;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  sync_strand_.wait_idle();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::uint64_t ExchangeRegistry::stamp_of(const serve::ModelKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = catalog_.find(key);
  return it == catalog_.end() ? 0 : it->second.stamp;
}

bool ExchangeRegistry::pinned(const serve::ModelKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = catalog_.find(key);
  return it != catalog_.end() && it->second.pinned;
}

ExchangeStats ExchangeRegistry::stats() const {
  ExchangeStats s;
  s.pulls_served = pulls_served_.load();
  s.pulls_completed = pulls_completed_.load();
  s.warm_starts = warm_starts_.load();
  s.sync_rounds = sync_rounds_.load();
  s.conflicts_skipped = conflicts_skipped_.load();
  s.breaker_skips = breaker_skips_.load();
  s.peer_failures = peer_failures_.load();
  for (const auto& peer : peers_snapshot()) {
    PeerStats p;
    p.name = peer->transport->name();
    p.breaker_state = util::to_string(peer->breaker.state());
    p.failures = peer->failures.load();
    p.successes = peer->successes.load();
    p.skips = peer->skips.load();
    const auto counters = peer->breaker.counters();
    p.trips = counters.trips;
    p.probes = counters.probes;
    p.retries = peer->transport->retries();
    s.peers.push_back(std::move(p));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  s.catalog_size = catalog_.size();
  return s;
}

}  // namespace bellamy::exchange
