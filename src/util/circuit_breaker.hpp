#pragma once
// CircuitBreaker: failure isolation for calls at an unreliable dependency.
//
// The classic three-state machine:
//
//                 N consecutive failures
//      CLOSED ───────────────────────────▶ OPEN
//        ▲                                  │ cooldown elapses; the next
//        │ probe succeeds                   │ allow() is the single probe
//        │                                  ▼
//        └────────────────────────────── HALF-OPEN
//                                           │ probe fails
//                                           └──────────▶ OPEN (cooldown restarts)
//
// CLOSED passes everything through.  OPEN rejects instantly — callers skip
// the dependency without paying its timeout, which is the whole point: one
// dead peer must not tax every sync round by a full deadline.  After the
// cooldown exactly ONE caller is let through as the half-open probe; its
// outcome decides between re-closing and re-opening.  Everyone else keeps
// being rejected while the probe is in flight, so a recovering dependency
// is never greeted with a stampede.
//
// Thread-safe.  Time is injectable (set_time_source) so the cooldown path
// is testable without wall-clock sleeps.

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

namespace bellamy::util {

struct CircuitBreakerOptions {
  /// Consecutive failures that trip CLOSED -> OPEN.
  int failure_threshold = 3;
  /// How long OPEN rejects before admitting a half-open probe.
  std::chrono::milliseconds cooldown{2000};
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// May this call proceed?  False = skip the dependency (counted).  In
  /// OPEN past the cooldown this admits the caller as THE half-open probe;
  /// a caller admitted here must report record_success/record_failure.
  bool allow();

  /// Outcome reporting from calls that were allowed through.
  void record_success();
  void record_failure();

  State state() const;

  /// Monotonic counters for stats surfaces.
  struct Counters {
    std::uint64_t failures = 0;        ///< total failures recorded
    std::uint64_t successes = 0;       ///< total successes recorded
    std::uint64_t rejected = 0;        ///< allow() == false
    std::uint64_t trips = 0;           ///< transitions into OPEN
    std::uint64_t probes = 0;          ///< half-open probes admitted
  };
  Counters counters() const;

  /// Replace the clock (tests drive the cooldown without sleeping).
  void set_time_source(std::function<Clock::time_point()> now);

 private:
  Clock::time_point now_locked() const;

  mutable std::mutex mutex_;
  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  Clock::time_point opened_at_{};
  Counters counters_;
  std::function<Clock::time_point()> now_;
};

const char* to_string(CircuitBreaker::State state);

}  // namespace bellamy::util
