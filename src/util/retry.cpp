#include "util/retry.hpp"

#include <algorithm>

namespace bellamy::util {

namespace {

/// splitmix64: a full-period 64-bit mixer; two multiplies and three shifts,
/// statistically fine for jitter and bit-for-bit reproducible everywhere.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

RetrySchedule::RetrySchedule(const RetryPolicy& policy)
    : policy_(policy),
      backoff_ms_(static_cast<double>(policy.initial_backoff.count())),
      rng_state_(policy.jitter_seed) {}

bool RetrySchedule::next_delay(std::chrono::milliseconds& delay) {
  if (attempt_ >= policy_.max_attempts) return false;
  ++attempt_;

  double ms = std::min(backoff_ms_, static_cast<double>(policy_.max_backoff.count()));
  if (policy_.jitter > 0.0) {
    // Uniform in [ms * (1 - jitter), ms]: jitter only ever SHORTENS the
    // delay, so max_backoff stays an honest upper bound.
    const double u =
        static_cast<double>(splitmix64(rng_state_) >> 11) / 9007199254740992.0;  // [0,1)
    ms *= 1.0 - policy_.jitter * u;
  }
  delay = std::chrono::milliseconds(static_cast<std::int64_t>(ms + 0.5));
  backoff_ms_ *= std::max(1.0, policy_.multiplier);
  return true;
}

}  // namespace bellamy::util
