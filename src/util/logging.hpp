#pragma once
// Tiny leveled logger.  Benchmarks and examples keep their primary output on
// stdout; diagnostics go through here (stderr) so tables stay machine-readable.

#include <mutex>
#include <sstream>
#include <string>

namespace bellamy::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level (default kWarn so library code is quiet by default).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe write of one formatted line to stderr if level is enabled.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace bellamy::util
