#pragma once
// Minimal RFC-4180-ish CSV reader/writer used for dataset import/export.
// Supports quoted fields with embedded delimiters/quotes/newlines.

#include <iosfwd>
#include <string>
#include <vector>

namespace bellamy::util {

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index by name; throws std::out_of_range if missing.
  std::size_t column(const std::string& name) const;
};

/// Parse CSV from a stream. If `has_header` the first record becomes header.
CsvTable read_csv(std::istream& in, char delim = ',', bool has_header = true);

/// Parse CSV from a file path; throws std::runtime_error if unreadable.
CsvTable read_csv_file(const std::string& path, char delim = ',', bool has_header = true);

/// Serialize, quoting fields when needed.
void write_csv(std::ostream& out, const CsvTable& table, char delim = ',');
void write_csv_file(const std::string& path, const CsvTable& table, char delim = ',');

/// Quote a single field if it contains the delimiter, a quote or a newline.
std::string csv_escape(const std::string& field, char delim = ',');

}  // namespace bellamy::util
