#include "util/csv.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bellamy::util {

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

namespace {

// State machine over the whole stream so quoted newlines are handled.
std::vector<std::vector<std::string>> parse_records(std::istream& in, char delim) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool at_field_start = true;   // a quote only opens a quoted field here
  bool record_started = false;  // blank lines produce no record

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    at_field_start = true;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    record_started = false;
  };

  char c = 0;
  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && at_field_start) {
      in_quotes = true;
      at_field_start = false;
      record_started = true;
    } else if (c == delim) {
      end_field();
      record_started = true;
    } else if (c == '\r') {
      // swallow; \n handles record end
    } else if (c == '\n') {
      if (record_started || !field.empty()) end_record();
    } else {
      field += c;
      at_field_start = false;
      record_started = true;
    }
  }
  if (in_quotes) throw std::runtime_error("read_csv: unterminated quoted field");
  if (record_started || !field.empty()) end_record();
  return records;
}

}  // namespace

CsvTable read_csv(std::istream& in, char delim, bool has_header) {
  CsvTable table;
  auto records = parse_records(in, delim);
  std::size_t start = 0;
  if (has_header && !records.empty()) {
    table.header = std::move(records[0]);
    start = 1;
  }
  for (std::size_t i = start; i < records.size(); ++i) {
    if (!table.header.empty() && records[i].size() != table.header.size()) {
      throw std::runtime_error("read_csv: row " + std::to_string(i) + " has " +
                               std::to_string(records[i].size()) + " fields, header has " +
                               std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(records[i]));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path, char delim, bool has_header) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open '" + path + "'");
  return read_csv(in, delim, has_header);
}

std::string csv_escape(const std::string& field, char delim) {
  const bool needs_quotes = field.find(delim) != std::string::npos ||
                            field.find('"') != std::string::npos ||
                            field.find('\n') != std::string::npos ||
                            field.find('\r') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv(std::ostream& out, const CsvTable& table, char delim) {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << delim;
      out << csv_escape(row[i], delim);
    }
    out << '\n';
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
}

void write_csv_file(const std::string& path, const CsvTable& table, char delim) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv_file: cannot open '" + path + "'");
  write_csv(out, table, delim);
}

}  // namespace bellamy::util
