#include "util/circuit_breaker.hpp"

#include <utility>

namespace bellamy::util {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options) : options_(options) {}

CircuitBreaker::Clock::time_point CircuitBreaker::now_locked() const {
  return now_ ? now_() : Clock::now();
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_locked() - opened_at_ >= options_.cooldown) {
        // Cooldown over: this caller IS the probe; everyone behind it keeps
        // being rejected until the probe reports back.
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        counters_.probes += 1;
        return true;
      }
      counters_.rejected += 1;
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        // The previous probe's outcome never got reported (caller died
        // mid-call); admit a replacement rather than wedging half-open.
        probe_in_flight_ = true;
        counters_.probes += 1;
        return true;
      }
      counters_.rejected += 1;
      return false;
  }
  return true;  // unreachable
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.successes += 1;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.failures += 1;
  consecutive_failures_ += 1;
  if (state_ == State::kHalfOpen) {
    // The probe failed: back to OPEN for a fresh cooldown.
    probe_in_flight_ = false;
    state_ = State::kOpen;
    opened_at_ = now_locked();
    counters_.trips += 1;
  } else if (state_ == State::kClosed &&
             consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now_locked();
    counters_.trips += 1;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

CircuitBreaker::Counters CircuitBreaker::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void CircuitBreaker::set_time_source(std::function<Clock::time_point()> now) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_ = std::move(now);
}

const char* to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

}  // namespace bellamy::util
