#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bellamy::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double coeff_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

std::vector<double> ecdf(std::span<const double> xs, std::span<const double> thresholds) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (double t : thresholds) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), t);
    const auto cnt = static_cast<double>(std::distance(sorted.begin(), it));
    out.push_back(sorted.empty() ? 0.0 : cnt / static_cast<double>(sorted.size()));
  }
  return out;
}

std::vector<std::pair<double, double>> ecdf_steps(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> steps;
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    steps.emplace_back(sorted[i], static_cast<double>(i + 1) / n);
  }
  return steps;
}

std::vector<double> min_max_normalize(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  if (xs.empty()) return out;
  const double lo = min(xs);
  const double hi = max(xs);
  const double range = hi - lo;
  for (double& x : out) x = range > 0.0 ? (x - lo) / range : 0.0;
  return out;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace bellamy::util
