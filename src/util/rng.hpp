#pragma once
// Deterministic pseudo-random number generation for all stochastic components.
//
// Every experiment, generator and model in this repository takes an explicit
// 64-bit seed and derives its randomness from an Rng instance, which makes
// every run bit-for-bit reproducible.  The generator is xoshiro256++ seeded
// via SplitMix64, following the reference implementations by Blackman/Vigna.

#include <array>
#include <cstdint>
#include <vector>

namespace bellamy::util {

/// SplitMix64 step; used to expand a single seed into a full xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Small, fast, high-quality PRNG (xoshiro256++) with distribution helpers.
///
/// Not thread-safe; create one Rng per thread (see Rng::fork).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);
  /// Log-normal: exp(N(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log);
  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) in random order. Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for per-thread / per-task use).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bellamy::util
