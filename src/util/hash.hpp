#pragma once
// Stable (process-independent) string hashing.  Used for feature hashing and
// for deriving per-entity RNG seeds; never use std::hash for anything that
// must be reproducible across runs or platforms.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bellamy::util {

inline constexpr std::uint64_t kFnv1a64Seed = 0xcbf29ce484222325ULL;

/// 64-bit FNV-1a over raw bytes, chainable via `seed` for multi-part hashes
/// (parameter stamps, gather-cache keys).
inline std::uint64_t fnv1a64_bytes(const void* data, std::size_t len,
                                   std::uint64_t seed = kFnv1a64Seed) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// 64-bit FNV-1a.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = kFnv1a64Seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace bellamy::util
