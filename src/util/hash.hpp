#pragma once
// Stable (process-independent) string hashing.  Used for feature hashing and
// for deriving per-entity RNG seeds; never use std::hash for anything that
// must be reproducible across runs or platforms.

#include <cstdint>
#include <string_view>

namespace bellamy::util {

/// 64-bit FNV-1a.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace bellamy::util
