#pragma once
// RetryPolicy: bounded attempts with exponential backoff and deterministic
// seeded jitter.
//
// The net and exchange layers retry transport-level failures (dial refused,
// connection dropped, request timed out) — never peer-side typed failures,
// which would not change on a retry.  The policy is a plain value: how many
// attempts, how the backoff grows, how much jitter decorrelates a thundering
// herd.  Jitter is drawn from a SEEDED generator so a test (or a chaos
// schedule) replays the exact same delay sequence every run — determinism is
// a feature of this codebase, and the backoff path is no exception.
//
// A RetrySchedule is the stateful iterator over one operation's attempts:
//
//   util::RetrySchedule schedule(policy);
//   for (;;) {
//     if (try_the_thing()) break;
//     std::chrono::milliseconds delay;
//     if (!schedule.next_delay(delay)) return give_up();
//     std::this_thread::sleep_for(delay);
//   }
//
// The schedule never sleeps itself: callers own the sleep so they can bail
// early on shutdown.

#include <chrono>
#include <cstdint>

namespace bellamy::util {

struct RetryPolicy {
  /// Total tries INCLUDING the first one; 1 = no retries.
  int max_attempts = 3;
  /// Backoff before the first retry; doubles (times `multiplier`) after
  /// every failure, capped at `max_backoff`.
  std::chrono::milliseconds initial_backoff{50};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{2000};
  /// Fraction of the backoff randomized away: delay is drawn uniformly from
  /// [backoff * (1 - jitter), backoff].  0 disables jitter.
  double jitter = 0.25;
  /// Seed of the jitter stream (deterministic across runs; vary per peer to
  /// decorrelate).
  std::uint64_t jitter_seed = 1;
};

class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy);

  /// The delay before the NEXT attempt.  False when the attempt budget is
  /// exhausted — the last failure is final.
  bool next_delay(std::chrono::milliseconds& delay);

  /// Retries handed out so far.
  int retries_used() const { return attempt_ - 1; }

 private:
  RetryPolicy policy_;
  int attempt_ = 1;           ///< attempts consumed (the first try is free)
  double backoff_ms_;
  std::uint64_t rng_state_;   ///< splitmix64 — tiny, seedable, no <random> heft
};

}  // namespace bellamy::util
