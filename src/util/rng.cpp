#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace bellamy::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t r;
  do {
    r = next();
  } while (r > limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  cached_normal_ = mag * std::sin(two_pi * u2);
  has_cached_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu_log, double sigma_log) {
  return std::exp(normal(mu_log, sigma_log));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: shuffle the first k slots only.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace bellamy::util
