#pragma once
// Small string helpers shared by the encoding subsystem and CSV I/O.

#include <string>
#include <string_view>
#include <vector>

namespace bellamy::util {

/// ASCII lower-casing (the property vocabulary is case-insensitive).
std::string to_lower(std::string_view s);

/// Trim ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Join with a delimiter.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// True if `s` consists only of ASCII digits (and is non-empty).
bool is_unsigned_integer(std::string_view s);

/// Parse helpers that throw std::invalid_argument with context on failure.
double parse_double(std::string_view s);
long long parse_int(std::string_view s);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace bellamy::util
