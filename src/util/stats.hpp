#pragma once
// Descriptive statistics helpers used by the evaluation harness and the
// benchmark report generators (mean/median/stddev/percentiles/eCDF).

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace bellamy::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); returns 0 for n < 2.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Median (average of middle two for even n); returns 0 for empty input.
double median(std::span<const double> xs);

/// Linear-interpolation percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Min / max; both 0 for empty input.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Coefficient of variation (stddev / mean); 0 if mean is 0.
double coeff_of_variation(std::span<const double> xs);

/// Empirical CDF evaluated at the given thresholds: fraction of xs <= t.
std::vector<double> ecdf(std::span<const double> xs, std::span<const double> thresholds);

/// Step points of the eCDF: sorted unique values with cumulative probability.
std::vector<std::pair<double, double>> ecdf_steps(std::span<const double> xs);

/// Normalize values into [0, 1] by (x - min) / (max - min); constant input -> all 0.
std::vector<double> min_max_normalize(std::span<const double> xs);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< unbiased; 0 for n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace bellamy::util
