#include "util/string_utils.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace bellamy::util {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += delim;
    out += parts[i];
  }
  return out;
}

bool is_unsigned_integer(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

double parse_double(std::string_view s) {
  const std::string str = trim(s);
  try {
    std::size_t pos = 0;
    const double v = std::stod(str, &pos);
    if (pos != str.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_double: cannot parse '" + str + "'");
  }
}

long long parse_int(std::string_view s) {
  const std::string str = trim(s);
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(str, &pos);
    if (pos != str.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_int: cannot parse '" + str + "'");
  }
}

std::string format(const char* fmt, ...) {
  va_list args1;
  va_start(args1, fmt);
  va_list args2;
  va_copy(args2, args1);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args1);
  va_end(args1);
  if (needed < 0) {
    va_end(args2);
    throw std::runtime_error("format: encoding error");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace bellamy::util
