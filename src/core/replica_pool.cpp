#include "core/replica_pool.hpp"

#include "core/bellamy_model.hpp"

namespace bellamy::core {

ReplicaPool::ReplicaPool() = default;
ReplicaPool::~ReplicaPool() = default;

ReplicaPool::Lease::Lease(ReplicaPool* pool, std::unique_ptr<BellamyModel> model,
                          std::uint64_t stamp)
    : pool_(pool), model_(std::move(model)), stamp_(stamp) {}

ReplicaPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_), model_(std::move(other.model_)), stamp_(other.stamp_) {
  other.pool_ = nullptr;
}

ReplicaPool::Lease& ReplicaPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ && model_) pool_->release(std::move(model_), stamp_);
    pool_ = other.pool_;
    model_ = std::move(other.model_);
    stamp_ = other.stamp_;
    other.pool_ = nullptr;
  }
  return *this;
}

ReplicaPool::Lease::~Lease() {
  if (pool_ && model_) pool_->release(std::move(model_), stamp_);
}

ReplicaPool::Lease ReplicaPool::acquire(const BellamyModel& source) {
  const std::uint64_t stamp = source.state_stamp();
  std::shared_ptr<const nn::Checkpoint> ckpt;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (checkpoint_ && stamp_ == stamp) {
      if (!free_.empty()) {
        std::unique_ptr<BellamyModel> model = std::move(free_.back());
        free_.pop_back();
        ++hits_;
        return Lease(this, std::move(model), stamp);
      }
      ++misses_;
      ckpt = checkpoint_;  // snapshot — deserialization happens outside the lock
    }
  }
  if (!ckpt) {
    // Source mutated (fine-tune step, parameter restore, load) since the
    // pool last served it.  Serialize OUTSIDE the lock — concurrent
    // acquires/releases must not stall behind the rebuild — then install,
    // re-checking in case another thread installed the same stamp first.
    auto fresh = std::make_shared<const nn::Checkpoint>(source.to_checkpoint());
    std::lock_guard<std::mutex> lock(mutex_);
    if (!checkpoint_ || stamp_ != stamp) {
      if (checkpoint_) ++invalidations_;
      checkpoint_ = std::move(fresh);
      stamp_ = stamp;
      free_.clear();
    }
    if (!free_.empty()) {
      std::unique_ptr<BellamyModel> model = std::move(free_.back());
      free_.pop_back();
      ++hits_;
      return Lease(this, std::move(model), stamp);
    }
    ++misses_;
    ckpt = checkpoint_;
  }
  auto model = std::make_unique<BellamyModel>(BellamyModel::from_checkpoint(*ckpt));
  return Lease(this, std::move(model), stamp);
}

void ReplicaPool::release(std::unique_ptr<BellamyModel> model, std::uint64_t stamp) {
  // Parked replicas would otherwise pin their last forward's activation
  // caches (sized by the chunk they served) for the pool's lifetime — drop
  // them before parking, outside the lock.
  model->clear_forward_caches();
  std::lock_guard<std::mutex> lock(mutex_);
  // Only park replicas that still match the pool's current state; leases
  // outstanding across an invalidation are dropped here.
  if (checkpoint_ && stamp == stamp_) free_.push_back(std::move(model));
}

void ReplicaPool::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (checkpoint_) ++invalidations_;
  checkpoint_.reset();
  free_.clear();
}

std::size_t ReplicaPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

std::uint64_t ReplicaPool::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ReplicaPool::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ReplicaPool::invalidations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}

}  // namespace bellamy::core
