#pragma once
// Resource selection from runtime predictions (the paper's end use case:
// "The predicted runtimes can be used to effectively choose a suitable
// resource configuration", §V).  Given a fitted runtime model, a context
// template and a runtime target, pick the smallest scale-out predicted to
// meet the target.

#include <vector>

#include "data/runtime_model.hpp"

namespace bellamy::core {

struct ScaleoutPrediction {
  int scale_out = 0;
  double predicted_runtime_s = 0.0;
};

struct ResourceSelection {
  bool target_met = false;            ///< some candidate met the target
  int chosen_scale_out = 0;           ///< smallest meeting candidate, or the fastest
  double predicted_runtime_s = 0.0;
  std::vector<ScaleoutPrediction> predictions;  ///< all candidates, ascending scale-out
};

/// Evaluate `model` on `context_template` (its scale_out/runtime fields are
/// ignored) at every candidate scale-out.  Picks the smallest scale-out whose
/// prediction is <= target_runtime_s; if none qualifies, picks the candidate
/// with the fastest predicted runtime.
ResourceSelection select_scaleout(data::RuntimeModel& model,
                                  const data::JobRun& context_template,
                                  std::vector<int> candidate_scaleouts,
                                  double target_runtime_s);

}  // namespace bellamy::core
