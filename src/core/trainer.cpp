#include "core/trainer.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "nn/lr_scheduler.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace bellamy::core {

PreTrainResult pretrain(BellamyModel& model, const std::vector<data::JobRun>& runs,
                        const PreTrainConfig& config) {
  if (runs.empty()) throw std::invalid_argument("pretrain: no training runs");
  if (config.batch_size == 0) throw std::invalid_argument("pretrain: batch_size must be > 0");

  model.fit_normalization(runs);
  model.set_dropout_rate(config.dropout);
  model.set_trainable_components(true, true, true, true);

  nn::Adam::Config adam;
  adam.lr = config.learning_rate;
  adam.weight_decay = config.weight_decay;
  nn::Adam optimizer(model.parameters(), adam);

  util::Rng rng(config.seed);
  std::vector<std::size_t> order(runs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Encode the whole corpus once (scale-out features, targets, property
  // vectors deduplicated set-wide); every epoch's mini-batches are cheap
  // index gathers instead of per-sample re-vectorization.  The gather cache
  // additionally skips re-copying the unique property block when consecutive
  // batches touch the same rows (the common case for small corpora).
  const BellamyEncodedRuns encoded = model.encode_runs(runs);
  BellamyGatherCache gather_cache;

  PreTrainResult result;
  result.loss_history.reserve(config.epochs);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    double epoch_mae = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < order.size(); begin += config.batch_size) {
      const std::size_t end = std::min(order.size(), begin + config.batch_size);
      const std::span<const std::size_t> indices(order.data() + begin, end - begin);

      optimizer.zero_grad();
      const BellamyBatch batch = model.gather_batch(encoded, indices, &gather_cache);
      const BellamyLoss loss = model.train_step(batch, config.reconstruction_weight);
      optimizer.step();

      epoch_loss += loss.total;
      epoch_mae += loss.mae_seconds;
      ++batches;
    }
    result.loss_history.push_back(epoch_loss / static_cast<double>(batches));
    result.final_loss = result.loss_history.back();
    result.final_mae_seconds = epoch_mae / static_cast<double>(batches);
    ++result.epochs_run;
  }
  model.set_training(false);
  return result;
}

FineTuneResult finetune(BellamyModel& model, const std::vector<data::JobRun>& runs,
                        const FineTuneConfig& config) {
  if (runs.empty()) throw std::invalid_argument("finetune: no training runs");
  util::Timer timer;

  // Local variant: the model has never seen data, so fit normalization here.
  if (!model.normalization_fitted()) model.fit_normalization(runs);

  model.set_dropout_rate(0.0);  // Table I: fine-tuning dropout 0 %

  // Freeze policy: only z first; f unlocks later (auto-encoder stays fixed
  // unless explicitly requested).
  const std::size_t unlock_after =
      config.unlock_f_immediately
          ? 0
          : (config.unlock_f_after > 0
                 ? config.unlock_f_after
                 : std::max<std::size_t>(10, 100 / runs.size()));
  model.set_trainable_components(unlock_after == 0, config.train_autoencoder,
                                 config.train_autoencoder, true);

  nn::Adam::Config adam;
  adam.lr = config.base_lr;
  adam.weight_decay = config.weight_decay;
  nn::Adam optimizer(model.parameters(), adam);
  nn::CyclicalLr schedule(config.base_lr, config.max_lr, config.lr_cycle);

  const double recon_weight = config.train_autoencoder ? 1.0 : 0.0;
  const bool minibatch = config.batch_size > 0 && config.batch_size < runs.size();

  // The full batch is always materialized: the default loop trains on it
  // directly, and the mini-batch loop evaluates against it once per epoch
  // for best-state tracking (per-step losses cover different subsets).
  const BellamyBatch batch = model.make_batch(runs);

  FineTuneResult result;
  double best_mae = model.evaluate(batch, recon_weight).mae_seconds;
  auto best_state = model.snapshot_parameters();
  std::size_t best_epoch = 0;

  if (best_mae <= config.mae_target_seconds) {
    // Pre-trained model already satisfies the target in this context.
    result.best_mae_seconds = best_mae;
    result.reached_target = true;
    result.fit_seconds = timer.seconds();
    model.set_training(false);
    return result;
  }

  if (!minibatch) {
    // The paper's full-batch loop, bit-identical to pre-mini-batch builds.
    for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
      if (epoch == unlock_after && unlock_after > 0) {
        model.f().set_trainable(true);
      }
      optimizer.set_learning_rate(schedule.lr_at(epoch));
      optimizer.zero_grad();
      // train_step reports the loss of the *current* parameters, so the best
      // state must be snapshotted before the optimizer mutates them.
      const BellamyLoss loss = model.train_step(batch, recon_weight);
      if (loss.mae_seconds < best_mae) {
        best_mae = loss.mae_seconds;
        best_state = model.snapshot_parameters();
        best_epoch = epoch;
      }
      optimizer.step();
      ++result.epochs_run;
      if (best_mae <= config.mae_target_seconds) {
        result.reached_target = true;
        break;
      }
      if (epoch - best_epoch >= config.patience) break;  // no improvement
    }
  } else {
    // Opt-in mini-batch loop: the same encode-once/gather path pretrain
    // uses, seeded shuffles per epoch, one optimizer step per mini-batch.
    const BellamyEncodedRuns encoded = model.encode_runs(runs);
    BellamyGatherCache gather_cache;
    util::Rng rng(config.seed);
    std::vector<std::size_t> order(runs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

    for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
      if (epoch == unlock_after && unlock_after > 0) {
        model.f().set_trainable(true);
      }
      optimizer.set_learning_rate(schedule.lr_at(epoch));
      rng.shuffle(order);
      for (std::size_t begin = 0; begin < order.size(); begin += config.batch_size) {
        const std::size_t end = std::min(order.size(), begin + config.batch_size);
        const std::span<const std::size_t> indices(order.data() + begin, end - begin);
        optimizer.zero_grad();
        const BellamyBatch mini = model.gather_batch(encoded, indices, &gather_cache);
        model.train_step(mini, recon_weight);
        optimizer.step();
      }
      // Best-state tracking on the POST-step parameters over the full batch
      // (the only loss comparable across epochs here).
      const double epoch_mae = model.evaluate(batch, recon_weight).mae_seconds;
      if (epoch_mae < best_mae) {
        best_mae = epoch_mae;
        best_state = model.snapshot_parameters();
        best_epoch = epoch;
      }
      ++result.epochs_run;
      if (best_mae <= config.mae_target_seconds) {
        result.reached_target = true;
        break;
      }
      if (epoch - best_epoch >= config.patience) break;  // no improvement
    }
  }

  model.restore_parameters(best_state);
  model.set_training(false);
  result.best_mae_seconds = best_mae;
  result.fit_seconds = timer.seconds();
  return result;
}

}  // namespace bellamy::core
