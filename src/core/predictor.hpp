#pragma once
// RuntimeModel adapter around Bellamy so the evaluation harness can compare
// it head-to-head with the NNLS / Bell baselines.
//
// Every fit() starts from the same initial state — the stored pre-trained
// checkpoint, or a deterministic fresh initialization for the local variant —
// so repeated cross-validation splits are independent.  A pre-trained
// predictor accepts fit() with zero runs (extrapolation at 0 data points).

#include <memory>
#include <optional>
#include <string>

#include "core/bellamy_model.hpp"
#include "core/replica_pool.hpp"
#include "core/trainer.hpp"
#include "core/variants.hpp"
#include "data/runtime_model.hpp"
#include "nn/serialize.hpp"

namespace bellamy::core {

class BellamyPredictor : public data::RuntimeModel {
 public:
  /// Local variant: fresh model per fit, seeded deterministically.
  BellamyPredictor(BellamyConfig model_config, FineTuneConfig finetune_config,
                   std::uint64_t seed, std::string name = "Bellamy(local)");

  /// Pre-trained variant: every fit restarts from this model's checkpoint and
  /// applies the given reuse strategy before fine-tuning.
  BellamyPredictor(const BellamyModel& pretrained, FineTuneConfig finetune_config,
                   ReuseStrategy strategy = ReuseStrategy::kPartialUnfreeze,
                   std::string name = "Bellamy(pretrained)");

  /// Pre-trained variant from a stored checkpoint, shared rather than
  /// copied.  This is the cheap constructor for fan-out paths that build
  /// many predictors from one pre-training run (threaded split evaluation):
  /// no model is materialized until fit().
  BellamyPredictor(std::shared_ptr<const nn::Checkpoint> pretrained_checkpoint,
                   FineTuneConfig finetune_config,
                   ReuseStrategy strategy = ReuseStrategy::kPartialUnfreeze,
                   std::string name = "Bellamy(pretrained)");

  void fit(const std::vector<data::JobRun>& runs) override;
  double predict(const data::JobRun& query) override;
  /// One stacked forward pass through the fitted network for all queries.
  std::vector<double> predict_batch(const std::vector<data::JobRun>& queries) override;
  std::size_t min_training_points() const override { return pretrained_ ? 0 : 1; }
  std::string name() const override { return name_; }

  /// Statistics of the most recent fit (epochs, wall time, best MAE).
  const FineTuneResult& last_fit() const { return last_fit_; }
  /// Access the fitted model.  Throws std::runtime_error when fit() was
  /// never called (the optional holding the model is empty until then).
  BellamyModel& model();
  const BellamyModel& model() const;

  /// Introspection for service layers that must not use exceptions as
  /// control flow: whether fit() has produced a model, and the stamp of its
  /// serveable state (0 until fitted; see BellamyModel::state_stamp).
  bool fitted() const noexcept { return model_.has_value(); }
  std::uint64_t state_stamp() const noexcept;

 private:
  /// Throws a descriptive std::runtime_error if fit() was never called.
  const BellamyModel& fitted_model(const char* caller) const;
  BellamyModel& fitted_model(const char* caller);

  BellamyConfig model_config_;
  FineTuneConfig finetune_config_;
  ReuseStrategy strategy_ = ReuseStrategy::kPartialUnfreeze;
  std::shared_ptr<const nn::Checkpoint> pretrained_checkpoint_;
  bool pretrained_ = false;
  std::uint64_t seed_ = 0;
  std::string name_;
  std::optional<BellamyModel> model_;
  FineTuneResult last_fit_;
  /// One replica pool for the predictor's lifetime: fit() re-emplaces the
  /// model but installs this pool into it, so chunked prediction replicas
  /// survive across fits (the state stamp invalidates them on weight change).
  std::shared_ptr<ReplicaPool> replica_pool_ = std::make_shared<ReplicaPool>();
};

}  // namespace bellamy::core
