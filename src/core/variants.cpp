#include "core/variants.hpp"

#include <stdexcept>

namespace bellamy::core {

const char* scenario_name(PretrainScenario s) {
  switch (s) {
    case PretrainScenario::kLocal: return "local";
    case PretrainScenario::kFiltered: return "filtered";
    case PretrainScenario::kFull: return "full";
  }
  return "?";
}

const char* strategy_name(ReuseStrategy s) {
  switch (s) {
    case ReuseStrategy::kPartialUnfreeze: return "partial-unfreeze";
    case ReuseStrategy::kFullUnfreeze: return "full-unfreeze";
    case ReuseStrategy::kPartialReset: return "partial-reset";
    case ReuseStrategy::kFullReset: return "full-reset";
  }
  return "?";
}

data::Dataset pretraining_corpus(PretrainScenario scenario, const data::Dataset& history,
                                 const data::JobRun& target_context) {
  switch (scenario) {
    case PretrainScenario::kLocal:
      return data::Dataset{};
    case PretrainScenario::kFull:
      return history.filter_algorithm(target_context.algorithm)
          .exclude_context(target_context.context_key());
    case PretrainScenario::kFiltered:
      return history.filter_dissimilar(target_context)
          .exclude_context(target_context.context_key());
  }
  throw std::invalid_argument("pretraining_corpus: unknown scenario");
}

BellamyModel make_scenario_model(PretrainScenario scenario, const data::Dataset& history,
                                 const data::JobRun& target_context,
                                 const BellamyConfig& model_config,
                                 const PreTrainConfig& pretrain_config, std::uint64_t seed) {
  BellamyModel model(model_config, seed);
  if (scenario == PretrainScenario::kLocal) return model;
  const data::Dataset corpus = pretraining_corpus(scenario, history, target_context);
  if (corpus.empty()) return model;  // degenerate history: behave like local
  pretrain(model, corpus.runs(), pretrain_config);
  return model;
}

FineTuneConfig apply_reuse_strategy(ReuseStrategy strategy, BellamyModel& model,
                                    FineTuneConfig base) {
  switch (strategy) {
    case ReuseStrategy::kPartialUnfreeze:
      base.unlock_f_immediately = false;
      break;
    case ReuseStrategy::kFullUnfreeze:
      base.unlock_f_immediately = true;
      break;
    case ReuseStrategy::kPartialReset:
      model.reinit_z();
      base.unlock_f_immediately = false;
      break;
    case ReuseStrategy::kFullReset:
      model.reinit_f();
      model.reinit_z();
      base.unlock_f_immediately = true;  // both components must relearn
      break;
  }
  return base;
}

}  // namespace bellamy::core
