#include "core/model_store.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

namespace fs = std::filesystem;

namespace bellamy::core {

namespace {
constexpr const char* kExtension = ".bellamy";
}

ModelStore::ModelStore(std::string directory) : directory_(std::move(directory)) {
  fs::create_directories(directory_);
}

void ModelStore::validate_key_part(const std::string& part, const char* what) {
  if (part.empty()) throw std::invalid_argument(std::string("ModelStore: empty ") + what);
  for (char c : part) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) {
      throw std::invalid_argument(std::string("ModelStore: invalid character in ") + what +
                                  " '" + part + "'");
    }
  }
}

std::string ModelStore::path_for(const std::string& algorithm, const std::string& tag) const {
  validate_key_part(algorithm, "algorithm");
  validate_key_part(tag, "tag");
  return (fs::path(directory_) / (algorithm + "__" + tag + kExtension)).string();
}

void ModelStore::save(const BellamyModel& model, const std::string& algorithm,
                      const std::string& tag) {
  const std::string path = path_for(algorithm, tag);
  // Crash-safe: write the checkpoint to a temp file in the SAME directory
  // (rename is only atomic within a filesystem), then rename over the
  // target.  A crash mid-write leaves the previous checkpoint intact; a
  // reader never observes a half-written file.
  const std::string temp = path + ".tmp";
  try {
    model.save(temp);
    fs::rename(temp, path);
  } catch (const std::exception& e) {
    std::error_code discard;
    fs::remove(temp, discard);
    throw std::runtime_error("ModelStore::save: cannot write '" + algorithm + "/" + tag +
                             "' (temp " + temp + ", target " + path + "): " + e.what());
  }
}

BellamyModel ModelStore::load(const std::string& algorithm, const std::string& tag) const {
  return BellamyModel::from_checkpoint(load_checkpoint(algorithm, tag));
}

nn::Checkpoint ModelStore::load_checkpoint(const std::string& algorithm,
                                           const std::string& tag) const {
  const std::string path = path_for(algorithm, tag);
  if (!fs::exists(path)) {
    throw std::runtime_error("ModelStore::load: no model for '" + algorithm + "/" + tag +
                             "' (expected " + path + ")");
  }
  try {
    return nn::Checkpoint::load_file(path);
  } catch (const std::exception& e) {
    throw std::runtime_error("ModelStore::load: cannot read '" + algorithm + "/" + tag +
                             "' from " + path + ": " + e.what());
  }
}

bool ModelStore::contains(const std::string& algorithm, const std::string& tag) const {
  return fs::exists(path_for(algorithm, tag));
}

void ModelStore::remove(const std::string& algorithm, const std::string& tag) {
  fs::remove(path_for(algorithm, tag));
}

std::vector<std::string> ModelStore::list() const {
  std::vector<std::string> keys;
  if (!fs::exists(directory_)) return keys;
  for (const auto& entry : fs::directory_iterator(directory_)) {
    if (!entry.is_regular_file() || entry.path().extension() != kExtension) continue;
    std::string stem = entry.path().stem().string();
    const auto sep = stem.find("__");
    if (sep == std::string::npos) continue;
    keys.push_back(stem.substr(0, sep) + "/" + stem.substr(sep + 2));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace bellamy::core
