#pragma once
// The Bellamy architecture (paper §III, Fig. 3):
//
//   scale-out x  --[1/x, log x, x]--> normalize --> f --> e  (B x F)
//   property p^i --vectorize (N=40)--> g --> code c^i (B x M) --> h --> p̂^i
//   r = e ++ c^(1..m) ++ mean(c^(m+1..m+n))   --> z --> predicted runtime
//
// The joint objective (Table I) is Huber(runtime) + MSE(reconstruction).
// Properties of all samples are stacked into one (B * (m+n)) x N matrix so
// the shared encoder/decoder see a single batch — one forward/backward per
// step despite weight sharing across properties.
//
// The model owns its input/target normalization state (fit on training data,
// frozen into checkpoints; §IV-A) so a persisted model is self-contained.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/bellamy_config.hpp"
#include "data/record.hpp"
#include "encoding/property_encoder.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace bellamy::parallel {
class ThreadPool;
}

namespace bellamy::core {

class ReplicaPool;

/// Extract the paper's essential property list from a run:
/// node type, job parameters, dataset size, data characteristics.
std::vector<encoding::PropertyValue> essential_properties(const data::JobRun& run);
/// Optional property list: memory MB, CPU cores, job (algorithm) name.
std::vector<encoding::PropertyValue> optional_properties(const data::JobRun& run);

/// A set of runs encoded once for repeated batching: scale-out features and
/// targets per run, plus the property vectors deduplicated across the whole
/// set.  Pre-training gathers thousands of mini-batches from one of these, so
/// the (comparatively expensive) property vectorization runs once per corpus
/// instead of once per epoch.
struct BellamyEncodedRuns {
  nn::Matrix scaleout_raw;  ///< (R x 3) un-normalized [1/x, log x, x]
  nn::Matrix targets_raw;   ///< (R x 1) runtimes in seconds
  nn::Matrix properties;    ///< (U x N) distinct property vectors, first-use order
  std::vector<std::size_t> prop_row;  ///< (R*(m+n)) stacked slot -> row in properties
  std::size_t num_runs = 0;
  /// Process-unique id of this encoding (assigned by encode_runs).  The
  /// gather cache keys on it, so re-populating the same object from a
  /// different corpus can never serve a stale property block.
  std::uint64_t encode_id = 0;
};

/// A vectorized mini-batch ready for the network.  Property rows are
/// deduplicated: `properties` holds only the distinct vectors of this batch,
/// `prop_row` maps every stacked per-sample slot (sample-major, m essential
/// then n optional) to its row, and `prop_weight` is each row's multiplicity.
/// The encoder/decoder run over the unique rows only; gradients are
/// accumulated back per unique row via the same mapping.
struct BellamyBatch {
  nn::Matrix scaleout_raw;   ///< (B x 3) un-normalized [1/x, log x, x]
  nn::Matrix properties;     ///< (U x N) deduplicated property vectors
  nn::Matrix targets_raw;    ///< (B x 1) runtimes in seconds
  std::vector<std::size_t> prop_row;  ///< (B*(m+n)) stacked slot -> row in properties
  std::vector<double> prop_weight;    ///< (U) multiplicity of each unique row
  std::size_t batch_size = 0;

  std::size_t num_unique_properties() const { return properties.rows(); }
  /// Materialize the pre-dedup sample-major stacked matrix (B*(m+n) x N).
  nn::Matrix stacked_properties() const { return properties.gather_rows(prop_row); }
};

/// Optional cross-batch cache for gather_batch.  Small corpora routinely
/// produce consecutive mini-batches whose samples touch the SAME unique
/// property rows (every batch sees all contexts), so re-gathering the
/// (U x N) property block per batch is wasted work.  The cache keys on the
/// encoded set's property matrix identity plus a hash (and exact compare) of
/// the batch's used-row list and reuses the previously gathered block on a
/// match.  One cache serves one encoded set; gather_batch resets it when it
/// sees a different set.
struct BellamyGatherCache {
  std::uint64_t encode_id = 0;  ///< BellamyEncodedRuns::encode_id the cache serves
  std::uint64_t rows_hash = 0;
  std::vector<std::size_t> used_rows;
  nn::Matrix properties;
  std::uint64_t reuses = 0;  ///< batches served from the cache (stats)
};

/// Result of one forward pass.  `codes` / `reconstruction` cover the UNIQUE
/// property rows of the batch (matching BellamyBatch::properties); use the
/// stacked_* helpers for the per-sample-slot view.
struct BellamyForward {
  nn::Matrix prediction_raw;  ///< (B x 1) denormalized runtime prediction
  nn::Matrix prediction_norm; ///< (B x 1) network-space prediction
  nn::Matrix codes;           ///< (U x M) encoder output per unique property row
  nn::Matrix reconstruction;  ///< (U x N) decoder output per unique property row
  nn::Matrix combined;        ///< (B x combined_dim) the vector r
  std::vector<std::size_t> prop_row;  ///< copy of the batch's slot -> row mapping

  nn::Matrix stacked_codes() const { return codes.gather_rows(prop_row); }
  nn::Matrix stacked_reconstruction() const { return reconstruction.gather_rows(prop_row); }
};

/// Losses of one training step.
struct BellamyLoss {
  double total = 0.0;
  double huber = 0.0;          ///< runtime loss (network space)
  double reconstruction = 0.0; ///< auto-encoder MSE
  double mae_seconds = 0.0;    ///< runtime MAE in seconds (stopping criterion)
};

class BellamyModel {
 public:
  BellamyModel(BellamyConfig config, std::uint64_t seed);

  // ---- data preparation ----------------------------------------------------
  /// Encode a set of runs once (scale-out features, targets, property vectors
  /// deduplicated across the set).  Feed the result to gather_batch to form
  /// mini-batches without re-encoding.
  BellamyEncodedRuns encode_runs(const std::vector<data::JobRun>& runs) const;

  /// Assemble the mini-batch of the given run indices from an encoded set.
  /// The batch references only the property rows its samples use, with
  /// per-batch multiplicities.  With `cache`, consecutive batches that use
  /// the same unique-row set skip re-gathering the property block.
  BellamyBatch gather_batch(const BellamyEncodedRuns& encoded,
                            std::span<const std::size_t> indices,
                            BellamyGatherCache* cache = nullptr) const;

  /// encode_runs + gather_batch over all runs (one-shot convenience).
  BellamyBatch make_batch(const std::vector<data::JobRun>& runs) const;

  /// Fit scale-out feature bounds and target scaling on training runs.
  /// Called once before pre-training (or local training); fine-tuning reuses
  /// the persisted state.
  void fit_normalization(const std::vector<data::JobRun>& runs);
  bool normalization_fitted() const { return norm_fitted_; }

  // ---- forward / backward ---------------------------------------------------
  /// Forward pass; `training` toggles dropout.
  BellamyForward forward(const BellamyBatch& batch, bool training);

  /// Forward + joint loss + backward (gradients accumulate into parameters).
  /// reconstruction_weight 0 disables the auto-encoder path (fine-tuning).
  BellamyLoss train_step(const BellamyBatch& batch, double reconstruction_weight);

  /// Loss evaluation without gradients (dropout off).
  BellamyLoss evaluate(const BellamyBatch& batch, double reconstruction_weight);

  /// Predict runtimes in seconds (eval mode) for a whole batch in a single
  /// forward pass: all queries are encoded into one stacked property matrix
  /// and one scale-out matrix, so the network runs once regardless of batch
  /// size.  Repeated property values across queries are vectorized once.
  /// Batches of at least predict_chunk_threshold() queries are split into
  /// contiguous chunks across the global ThreadPool (per-thread model
  /// replicas built from a checkpoint); chunked results are bit-identical to
  /// the single-pass path.  An empty batch yields an empty vector.
  std::vector<double> predict_batch(const std::vector<data::JobRun>& runs);
  /// Alias for predict_batch (historical name).
  std::vector<double> predict(const std::vector<data::JobRun>& runs);
  double predict_one(const data::JobRun& run);

  /// Explicitly chunked prediction over `pool` (nullptr = global pool) in
  /// `num_chunks` contiguous slices (0 = one per pool worker).  Used
  /// internally for large batches; exposed so callers and tests can pick
  /// their own pool and chunking.
  std::vector<double> predict_batch_chunked(const std::vector<data::JobRun>& runs,
                                            parallel::ThreadPool* pool = nullptr,
                                            std::size_t num_chunks = 0);

  /// Minimum batch size at which predict_batch auto-chunks across the global
  /// ThreadPool (0 disables auto-chunking).  Default 2048.
  std::size_t predict_chunk_threshold() const { return predict_chunk_threshold_; }
  void set_predict_chunk_threshold(std::size_t threshold) {
    predict_chunk_threshold_ = threshold;
  }

  /// Stamp of the serveable state: a stable hash over every parameter plus
  /// the normalization state.  Any mutation (optimizer step, parameter
  /// restore, checkpoint load) changes it; the ReplicaPool keys on it.
  std::uint64_t state_stamp() const;

  /// Replica pool used by predict_batch_chunked (lazily created).  Shared
  /// across copies of a model; the stamp keying keeps a shared pool correct
  /// even when copies diverge.
  ReplicaPool& replica_pool();
  /// Install a caller-owned pool (BellamyPredictor keeps one across fit()s
  /// so a stream of large batches pays deserialization once per state).
  void set_replica_pool(std::shared_ptr<ReplicaPool> pool);

  // ---- components (freeze policy, reuse variants) ---------------------------
  nn::Sequential& f() { return f_; }
  nn::Sequential& g() { return g_; }
  nn::Sequential& h() { return h_; }
  nn::Sequential& z() { return z_; }

  /// All parameters of all four components.
  std::vector<nn::Parameter*> parameters();
  /// Freeze everything, then mark the given components trainable.
  void set_trainable_components(bool f_on, bool g_on, bool h_on, bool z_on);

  /// Re-initialize components (reuse variants partial-/full-reset).
  void reinit_f();
  void reinit_z();

  void set_training(bool training);
  void set_dropout_rate(double rate);

  /// Drop every component's forward-pass activation cache (the next forward
  /// re-caches).  Bounds the steady-state memory of parked pool replicas.
  void clear_forward_caches();

  // ---- persistence -----------------------------------------------------------
  nn::Checkpoint to_checkpoint() const;
  static BellamyModel from_checkpoint(const nn::Checkpoint& ckpt);
  void save(const std::string& path) const;
  static BellamyModel load(const std::string& path);

  const BellamyConfig& config() const { return config_; }

  /// Snapshot / restore all parameter values (best-state tracking).
  std::vector<nn::Matrix> snapshot_parameters();
  void restore_parameters(const std::vector<nn::Matrix>& snapshot);

 private:
  void build(std::uint64_t dropout_seed);
  nn::Matrix normalize_scaleout(const nn::Matrix& raw) const;
  double normalize_target(double seconds) const;
  double denormalize_target(double network_value) const;
  std::vector<double> predict_batch_serial(const std::vector<data::JobRun>& runs);
  /// Weighted (by row multiplicity) reconstruction MSE over the batch's
  /// unique property rows — equal to the MSE over the stacked matrix.  Fills
  /// `grad` (U x N) with d(mse)/d(reconstruction) when non-null.
  double reconstruction_mse(const BellamyForward& fw, const BellamyBatch& batch,
                            nn::Matrix* grad) const;

  BellamyConfig config_;
  util::Rng rng_;
  encoding::PropertyEncoder property_encoder_;

  nn::Sequential f_;  ///< scale-out modeling
  nn::Sequential g_;  ///< encoder
  nn::Sequential h_;  ///< decoder
  nn::Sequential z_;  ///< runtime predictor
  nn::AlphaDropout* g_dropout_ = nullptr;  ///< owned by g_
  nn::AlphaDropout* h_dropout_ = nullptr;  ///< owned by h_

  // Auto-chunking floor for predict_batch (not persisted).
  std::size_t predict_chunk_threshold_ = 2048;

  // Replica pool for chunked prediction (not persisted; lazily created).
  std::shared_ptr<ReplicaPool> replica_pool_;

  // Normalization state (persisted).
  bool norm_fitted_ = false;
  nn::Matrix scaleout_min_{1, 3, 0.0};
  nn::Matrix scaleout_max_{1, 3, 1.0};
  double target_mean_ = 0.0;
  double target_std_ = 1.0;

  // Direct layer handles for the reset reuse variants.
  std::vector<nn::Linear*> f_linears_;
  std::vector<nn::Linear*> z_linears_;
};

}  // namespace bellamy::core
