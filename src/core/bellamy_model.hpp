#pragma once
// The Bellamy architecture (paper §III, Fig. 3):
//
//   scale-out x  --[1/x, log x, x]--> normalize --> f --> e  (B x F)
//   property p^i --vectorize (N=40)--> g --> code c^i (B x M) --> h --> p̂^i
//   r = e ++ c^(1..m) ++ mean(c^(m+1..m+n))   --> z --> predicted runtime
//
// The joint objective (Table I) is Huber(runtime) + MSE(reconstruction).
// Properties of all samples are stacked into one (B * (m+n)) x N matrix so
// the shared encoder/decoder see a single batch — one forward/backward per
// step despite weight sharing across properties.
//
// The model owns its input/target normalization state (fit on training data,
// frozen into checkpoints; §IV-A) so a persisted model is self-contained.

#include <cstdint>
#include <string>
#include <vector>

#include "core/bellamy_config.hpp"
#include "data/record.hpp"
#include "encoding/property_encoder.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace bellamy::core {

/// Extract the paper's essential property list from a run:
/// node type, job parameters, dataset size, data characteristics.
std::vector<encoding::PropertyValue> essential_properties(const data::JobRun& run);
/// Optional property list: memory MB, CPU cores, job (algorithm) name.
std::vector<encoding::PropertyValue> optional_properties(const data::JobRun& run);

/// A vectorized mini-batch ready for the network.
struct BellamyBatch {
  nn::Matrix scaleout_raw;   ///< (B x 3) un-normalized [1/x, log x, x]
  nn::Matrix properties;     ///< (B*(m+n) x N) sample-major stacked vectors
  nn::Matrix targets_raw;    ///< (B x 1) runtimes in seconds
  std::size_t batch_size = 0;
};

/// Result of one forward pass.
struct BellamyForward {
  nn::Matrix prediction_raw;  ///< (B x 1) denormalized runtime prediction
  nn::Matrix prediction_norm; ///< (B x 1) network-space prediction
  nn::Matrix codes;           ///< (B*(m+n) x M)
  nn::Matrix reconstruction;  ///< (B*(m+n) x N)
  nn::Matrix combined;        ///< (B x combined_dim) the vector r
};

/// Losses of one training step.
struct BellamyLoss {
  double total = 0.0;
  double huber = 0.0;          ///< runtime loss (network space)
  double reconstruction = 0.0; ///< auto-encoder MSE
  double mae_seconds = 0.0;    ///< runtime MAE in seconds (stopping criterion)
};

class BellamyModel {
 public:
  BellamyModel(BellamyConfig config, std::uint64_t seed);

  // ---- data preparation ----------------------------------------------------
  BellamyBatch make_batch(const std::vector<data::JobRun>& runs) const;

  /// Fit scale-out feature bounds and target scaling on training runs.
  /// Called once before pre-training (or local training); fine-tuning reuses
  /// the persisted state.
  void fit_normalization(const std::vector<data::JobRun>& runs);
  bool normalization_fitted() const { return norm_fitted_; }

  // ---- forward / backward ---------------------------------------------------
  /// Forward pass; `training` toggles dropout.
  BellamyForward forward(const BellamyBatch& batch, bool training);

  /// Forward + joint loss + backward (gradients accumulate into parameters).
  /// reconstruction_weight 0 disables the auto-encoder path (fine-tuning).
  BellamyLoss train_step(const BellamyBatch& batch, double reconstruction_weight);

  /// Loss evaluation without gradients (dropout off).
  BellamyLoss evaluate(const BellamyBatch& batch, double reconstruction_weight);

  /// Predict runtimes in seconds (eval mode) for a whole batch in a single
  /// forward pass: all queries are encoded into one stacked property matrix
  /// and one scale-out matrix, so the network runs once regardless of batch
  /// size.  Repeated property values across queries are vectorized once.
  /// An empty batch yields an empty vector.
  std::vector<double> predict_batch(const std::vector<data::JobRun>& runs);
  /// Alias for predict_batch (historical name).
  std::vector<double> predict(const std::vector<data::JobRun>& runs);
  double predict_one(const data::JobRun& run);

  // ---- components (freeze policy, reuse variants) ---------------------------
  nn::Sequential& f() { return f_; }
  nn::Sequential& g() { return g_; }
  nn::Sequential& h() { return h_; }
  nn::Sequential& z() { return z_; }

  /// All parameters of all four components.
  std::vector<nn::Parameter*> parameters();
  /// Freeze everything, then mark the given components trainable.
  void set_trainable_components(bool f_on, bool g_on, bool h_on, bool z_on);

  /// Re-initialize components (reuse variants partial-/full-reset).
  void reinit_f();
  void reinit_z();

  void set_training(bool training);
  void set_dropout_rate(double rate);

  // ---- persistence -----------------------------------------------------------
  nn::Checkpoint to_checkpoint() const;
  static BellamyModel from_checkpoint(const nn::Checkpoint& ckpt);
  void save(const std::string& path) const;
  static BellamyModel load(const std::string& path);

  const BellamyConfig& config() const { return config_; }

  /// Snapshot / restore all parameter values (best-state tracking).
  std::vector<nn::Matrix> snapshot_parameters();
  void restore_parameters(const std::vector<nn::Matrix>& snapshot);

 private:
  void build(std::uint64_t dropout_seed);
  nn::Matrix normalize_scaleout(const nn::Matrix& raw) const;
  double normalize_target(double seconds) const;
  double denormalize_target(double network_value) const;

  BellamyConfig config_;
  util::Rng rng_;
  encoding::PropertyEncoder property_encoder_;

  nn::Sequential f_;  ///< scale-out modeling
  nn::Sequential g_;  ///< encoder
  nn::Sequential h_;  ///< decoder
  nn::Sequential z_;  ///< runtime predictor
  nn::AlphaDropout* g_dropout_ = nullptr;  ///< owned by g_
  nn::AlphaDropout* h_dropout_ = nullptr;  ///< owned by h_

  // Normalization state (persisted).
  bool norm_fitted_ = false;
  nn::Matrix scaleout_min_{1, 3, 0.0};
  nn::Matrix scaleout_max_{1, 3, 1.0};
  double target_mean_ = 0.0;
  double target_std_ = 1.0;

  // Direct layer handles for the reset reuse variants.
  std::vector<nn::Linear*> f_linears_;
  std::vector<nn::Linear*> z_linears_;
};

}  // namespace bellamy::core
