#include "core/predictor.hpp"

#include <stdexcept>
#include <utility>

#include "util/timer.hpp"

namespace bellamy::core {

BellamyPredictor::BellamyPredictor(BellamyConfig model_config, FineTuneConfig finetune_config,
                                   std::uint64_t seed, std::string name)
    : model_config_(model_config),
      finetune_config_(finetune_config),
      pretrained_(false),
      seed_(seed),
      name_(std::move(name)) {
  // The local variant trains f and z together from scratch — the staged
  // unlock only makes sense when z sits on top of a pre-trained f.
  finetune_config_.unlock_f_immediately = true;
}

BellamyPredictor::BellamyPredictor(const BellamyModel& pretrained,
                                   FineTuneConfig finetune_config, ReuseStrategy strategy,
                                   std::string name)
    : model_config_(pretrained.config()),
      finetune_config_(finetune_config),
      strategy_(strategy),
      pretrained_checkpoint_(std::make_shared<const nn::Checkpoint>(pretrained.to_checkpoint())),
      pretrained_(true),
      name_(std::move(name)) {}

BellamyPredictor::BellamyPredictor(std::shared_ptr<const nn::Checkpoint> pretrained_checkpoint,
                                   FineTuneConfig finetune_config, ReuseStrategy strategy,
                                   std::string name)
    : finetune_config_(finetune_config),
      strategy_(strategy),
      pretrained_checkpoint_(std::move(pretrained_checkpoint)),
      pretrained_(true),
      name_(std::move(name)) {
  if (!pretrained_checkpoint_) {
    throw std::invalid_argument("BellamyPredictor: null pretrained checkpoint");
  }
}

void BellamyPredictor::fit(const std::vector<data::JobRun>& runs) {
  util::Timer timer;
  if (pretrained_) {
    model_.emplace(BellamyModel::from_checkpoint(*pretrained_checkpoint_));
    model_->set_replica_pool(replica_pool_);
    FineTuneConfig cfg = apply_reuse_strategy(strategy_, *model_, finetune_config_);
    if (runs.empty()) {
      // Direct reuse without any context data (paper: "a pre-trained Bellamy
      // model can be directly applied in a new context without any seen data
      // points").
      last_fit_ = FineTuneResult{};
      last_fit_.fit_seconds = timer.seconds();
      return;
    }
    last_fit_ = finetune(*model_, runs, cfg);
  } else {
    if (runs.empty()) {
      throw std::invalid_argument("BellamyPredictor(local)::fit: needs >= 1 training point");
    }
    model_.emplace(model_config_, seed_);
    model_->set_replica_pool(replica_pool_);
    last_fit_ = finetune(*model_, runs, finetune_config_);
  }
  last_fit_.fit_seconds = timer.seconds();
}

double BellamyPredictor::predict(const data::JobRun& query) {
  return fitted_model("predict").predict_one(query);
}

std::vector<double> BellamyPredictor::predict_batch(const std::vector<data::JobRun>& queries) {
  return fitted_model("predict_batch").predict_batch(queries);
}

BellamyModel& BellamyPredictor::model() { return fitted_model("model"); }

const BellamyModel& BellamyPredictor::model() const { return fitted_model("model"); }

std::uint64_t BellamyPredictor::state_stamp() const noexcept {
  try {
    return model_ ? model_->state_stamp() : 0;
  } catch (...) {
    return 0;  // state_stamp never throws in practice; keep the noexcept honest
  }
}

const BellamyModel& BellamyPredictor::fitted_model(const char* caller) const {
  if (!model_) {
    // Dereferencing the empty optional here would be UB; fail loudly with
    // enough context to identify the offending predictor.
    throw std::runtime_error("BellamyPredictor::" + std::string(caller) + ": '" + name_ +
                             "' has no fitted model — call fit() first");
  }
  return *model_;
}

BellamyModel& BellamyPredictor::fitted_model(const char* caller) {
  return const_cast<BellamyModel&>(std::as_const(*this).fitted_model(caller));
}

}  // namespace bellamy::core
