#pragma once
// Thread-safe pool of BellamyModel replicas for the serving hot path.
//
// predict_batch_chunked needs one model replica per chunk because a forward
// pass caches activations inside the network modules — a model instance must
// never be shared across threads.  Before this pool, every call rebuilt its
// replicas from a freshly serialized checkpoint, which dominates steady-state
// latency for a service answering a stream of large batches.
//
// The pool keys its replicas by a stamp of the source model's state
// (BellamyModel::state_stamp: a hash over every parameter plus the
// normalization state).  acquire() compares the source's current stamp to the
// cached one; any mutation — a fine-tune step, restore_parameters, a
// checkpoint load — changes the stamp, so the pool transparently rebuilds its
// cached checkpoint and discards stale replicas.  Replicas are checked out
// via RAII leases and returned on destruction (dropped instead if the pool
// was invalidated while they were out).

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace bellamy::nn {
struct Checkpoint;
}

namespace bellamy::core {

class BellamyModel;

class ReplicaPool {
 public:
  ReplicaPool();
  ~ReplicaPool();
  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// RAII checkout: returns the replica to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    BellamyModel& model() { return *model_; }
    explicit operator bool() const { return model_ != nullptr; }

   private:
    friend class ReplicaPool;
    Lease(ReplicaPool* pool, std::unique_ptr<BellamyModel> model, std::uint64_t stamp);

    ReplicaPool* pool_ = nullptr;
    std::unique_ptr<BellamyModel> model_;
    std::uint64_t stamp_ = 0;
  };

  /// Check out a replica equivalent to `source`'s current state: a cached
  /// one when the state stamp matches, otherwise a fresh deserialization
  /// (after which the pool serves the new state).  Thread-safe; safe to call
  /// concurrently with leases outstanding.
  Lease acquire(const BellamyModel& source);

  /// Drop the cached checkpoint and all pooled replicas.  The next acquire
  /// rebuilds from its source; outstanding leases are discarded on return.
  void invalidate();

  /// Replicas currently parked in the pool (checked-out leases excluded).
  std::size_t size() const;

  // Counters for benches/tests: a hit reuses a pooled replica, a miss
  // deserializes one, an invalidation observed a changed source stamp (or an
  // explicit invalidate()).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t invalidations() const;

 private:
  void release(std::unique_ptr<BellamyModel> model, std::uint64_t stamp);

  mutable std::mutex mutex_;
  std::uint64_t stamp_ = 0;
  std::shared_ptr<const nn::Checkpoint> checkpoint_;  ///< null until first acquire
  std::vector<std::unique_ptr<BellamyModel>> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace bellamy::core
