#pragma once
// The paper's model variants.
//
// Pre-training scenarios (§IV-C.1):
//   local    — no pre-training (auto-encoder untrained, f/z fit from scratch)
//   filtered — pre-train only on maximally different contexts of the same job
//   full     — pre-train on all other contexts of the same job
//
// Reuse strategies for cross-environment transfer (§IV-C.2):
//   partial-unfreeze — adapt z first, f later (the default fine-tune policy)
//   full-unfreeze    — adapt f and z from the start
//   partial-reset    — re-initialize z, then fine-tune
//   full-reset       — re-initialize f and z (relearn the scale-out behaviour)
// The auto-encoder parameters are never changed by any reuse strategy.

#include <string>

#include "core/bellamy_model.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"

namespace bellamy::core {

enum class PretrainScenario { kLocal, kFiltered, kFull };
enum class ReuseStrategy { kPartialUnfreeze, kFullUnfreeze, kPartialReset, kFullReset };

const char* scenario_name(PretrainScenario s);
const char* strategy_name(ReuseStrategy s);

/// Select the pre-training corpus for a target context under a scenario:
/// kFull -> every run of the same algorithm outside the target context;
/// kFiltered -> additionally restricted to dissimilar contexts (>= 20 % size
/// difference, different node type / parameters / characteristics);
/// kLocal -> empty.
data::Dataset pretraining_corpus(PretrainScenario scenario, const data::Dataset& history,
                                 const data::JobRun& target_context);

/// Build a model for the scenario: pre-trained on the corpus for kFiltered /
/// kFull, freshly initialized for kLocal (or when the corpus is empty).
BellamyModel make_scenario_model(PretrainScenario scenario, const data::Dataset& history,
                                 const data::JobRun& target_context,
                                 const BellamyConfig& model_config,
                                 const PreTrainConfig& pretrain_config, std::uint64_t seed);

/// Mutate `model` and derive the fine-tune configuration implementing the
/// reuse strategy (resets re-initialize components; unfreeze choices map to
/// FineTuneConfig flags).
FineTuneConfig apply_reuse_strategy(ReuseStrategy strategy, BellamyModel& model,
                                    FineTuneConfig base);

}  // namespace bellamy::core
