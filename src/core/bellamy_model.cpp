#include "core/bellamy_model.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "core/replica_pool.hpp"
#include "nn/activations.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/hash.hpp"
#include "util/string_utils.hpp"

namespace bellamy::core {

std::vector<encoding::PropertyValue> essential_properties(const data::JobRun& run) {
  return {encoding::PropertyValue{run.node_type},
          encoding::PropertyValue{run.job_parameters},
          encoding::PropertyValue{run.dataset_size_mb},
          encoding::PropertyValue{run.data_characteristics}};
}

std::vector<encoding::PropertyValue> optional_properties(const data::JobRun& run) {
  return {encoding::PropertyValue{run.memory_mb}, encoding::PropertyValue{run.cpu_cores},
          encoding::PropertyValue{run.algorithm}};
}

BellamyModel::BellamyModel(BellamyConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      property_encoder_(encoding::PropertyEncoder::Config{config.property_dim, {}}) {
  if (config_.num_essential != 4 || config_.num_optional != 3) {
    // The property extraction below follows the fixed C3O schema; other
    // schemas would need custom extractors.
    throw std::invalid_argument(
        "BellamyModel: this build uses the C3O property schema (4 essential, 3 optional)");
  }
  build(rng_.next());
}

void BellamyModel::build(std::uint64_t dropout_seed) {
  using nn::Activation;
  const auto& c = config_;

  // f: scale-out modeling, 3 -> hidden -> F, SELU, biased.
  auto& f1 = f_.emplace<nn::Linear>(c.scaleout_input, c.scaleout_hidden, true, c.init, rng_,
                                    "f.l1");
  f_.add(nn::make_activation(Activation::kSelu));
  auto& f2 =
      f_.emplace<nn::Linear>(c.scaleout_hidden, c.scaleout_out, true, c.init, rng_, "f.l2");
  f_.add(nn::make_activation(Activation::kSelu));
  f_linears_ = {&f1, &f2};

  // g: encoder, N -> hidden -> M, SELU, no bias, dropout between layers.
  g_.emplace<nn::Linear>(c.property_dim, c.encoder_hidden, false, c.init, rng_, "g.l1");
  g_.add(nn::make_activation(Activation::kSelu));
  {
    auto drop = std::make_unique<nn::AlphaDropout>(c.dropout, util::Rng(dropout_seed));
    g_dropout_ = drop.get();
    g_.add(std::move(drop));
  }
  g_.emplace<nn::Linear>(c.encoder_hidden, c.code_dim, false, c.init, rng_, "g.l2");
  g_.add(nn::make_activation(Activation::kSelu));

  // h: decoder, M -> hidden -> N, no bias, tanh output (§IV-A).
  h_.emplace<nn::Linear>(c.code_dim, c.encoder_hidden, false, c.init, rng_, "h.l1");
  h_.add(nn::make_activation(Activation::kSelu));
  {
    auto drop = std::make_unique<nn::AlphaDropout>(c.dropout, util::Rng(dropout_seed ^ 0x9e37ULL));
    h_dropout_ = drop.get();
    h_.add(std::move(drop));
  }
  h_.emplace<nn::Linear>(c.encoder_hidden, c.property_dim, false, c.init, rng_, "h.l2");
  h_.add(nn::make_activation(Activation::kTanh));

  // z: predictor, combined -> hidden -> 1, SELU, biased.
  auto& z1 = z_.emplace<nn::Linear>(c.combined_dim(), c.predictor_hidden, true, c.init, rng_,
                                    "z.l1");
  z_.add(nn::make_activation(Activation::kSelu));
  auto& z2 = z_.emplace<nn::Linear>(c.predictor_hidden, 1, true, c.init, rng_, "z.l2");
  z_.add(nn::make_activation(Activation::kSelu));
  z_linears_ = {&z1, &z2};
}

BellamyEncodedRuns BellamyModel::encode_runs(const std::vector<data::JobRun>& runs) const {
  if (runs.empty()) throw std::invalid_argument("BellamyModel::encode_runs: no runs");
  // Runs routinely share context properties (a scale-out sweep varies only
  // x), so the vectorization is memoized per distinct value and the stacked
  // property matrix stores each distinct vector exactly once.  encode_cached
  // returns a stable reference per distinct value, so the address doubles as
  // the row's identity.
  encoding::PropertyEncodeCache encode_cache;
  const std::size_t r = runs.size();
  const std::size_t ppr = config_.props_per_sample();
  static std::atomic<std::uint64_t> next_encode_id{1};
  BellamyEncodedRuns encoded;
  encoded.encode_id = next_encode_id.fetch_add(1, std::memory_order_relaxed);
  encoded.num_runs = r;
  encoded.scaleout_raw = nn::Matrix(r, 3);
  encoded.targets_raw = nn::Matrix(r, 1);
  encoded.prop_row.resize(r * ppr);
  std::unordered_map<const std::vector<double>*, std::size_t> unique_index;
  std::vector<const std::vector<double>*> unique_rows;
  for (std::size_t i = 0; i < r; ++i) {
    const auto& run = runs[i];
    if (run.scale_out < 1) {
      throw std::invalid_argument("BellamyModel::encode_runs: scale-out must be >= 1");
    }
    const double x = static_cast<double>(run.scale_out);
    encoded.scaleout_raw(i, 0) = 1.0 / x;
    encoded.scaleout_raw(i, 1) = std::log(x);
    encoded.scaleout_raw(i, 2) = x;
    encoded.targets_raw(i, 0) = run.runtime_s;

    const auto ess = essential_properties(run);
    const auto opt = optional_properties(run);
    std::size_t slot = i * ppr;
    for (const auto* props : {&ess, &opt}) {
      for (const auto& p : *props) {
        const std::vector<double>& vec = property_encoder_.encode_cached(p, encode_cache);
        const auto [it, inserted] = unique_index.try_emplace(&vec, unique_rows.size());
        if (inserted) unique_rows.push_back(&vec);
        encoded.prop_row[slot++] = it->second;
      }
    }
  }
  encoded.properties = nn::Matrix(unique_rows.size(), config_.property_dim);
  for (std::size_t row = 0; row < unique_rows.size(); ++row) {
    const auto& vec = *unique_rows[row];
    for (std::size_t j = 0; j < vec.size(); ++j) encoded.properties(row, j) = vec[j];
  }
  return encoded;
}

BellamyBatch BellamyModel::gather_batch(const BellamyEncodedRuns& encoded,
                                        std::span<const std::size_t> indices,
                                        BellamyGatherCache* cache) const {
  if (indices.empty()) {
    throw std::invalid_argument("BellamyModel::gather_batch: empty index set");
  }
  const std::size_t b = indices.size();
  const std::size_t ppr = config_.props_per_sample();
  BellamyBatch batch;
  batch.batch_size = b;
  batch.scaleout_raw = nn::Matrix(b, 3);
  batch.targets_raw = nn::Matrix(b, 1);
  batch.prop_row.resize(b * ppr);

  // Remap the set-wide unique rows to a batch-local unique set (first-use
  // order keeps the gather deterministic).
  constexpr std::size_t kUnused = static_cast<std::size_t>(-1);
  std::vector<std::size_t> local_row(encoded.properties.rows(), kUnused);
  std::vector<std::size_t> used_rows;
  for (std::size_t bi = 0; bi < b; ++bi) {
    const std::size_t i = indices[bi];
    if (i >= encoded.num_runs) {
      throw std::out_of_range("BellamyModel::gather_batch: run index out of range");
    }
    for (std::size_t j = 0; j < 3; ++j) batch.scaleout_raw(bi, j) = encoded.scaleout_raw(i, j);
    batch.targets_raw(bi, 0) = encoded.targets_raw(i, 0);
    for (std::size_t p = 0; p < ppr; ++p) {
      const std::size_t global = encoded.prop_row[i * ppr + p];
      if (local_row[global] == kUnused) {
        local_row[global] = used_rows.size();
        used_rows.push_back(global);
      }
      batch.prop_row[bi * ppr + p] = local_row[global];
    }
  }
  // Small corpora make consecutive batches hit the same unique-row set
  // (every batch sees all contexts); a cheap hash compare (verified exactly)
  // then reuses the previously gathered property block instead of copying
  // row by row.  Multiplicities still differ per batch and are recomputed.
  const std::uint64_t rows_hash = util::fnv1a64_bytes(
      used_rows.data(), used_rows.size() * sizeof(used_rows[0]));
  if (cache && cache->encode_id == encoded.encode_id && cache->rows_hash == rows_hash &&
      cache->used_rows == used_rows) {
    batch.properties = cache->properties;
    ++cache->reuses;
  } else {
    batch.properties = encoded.properties.gather_rows(used_rows);
    if (cache) {
      cache->encode_id = encoded.encode_id;
      cache->rows_hash = rows_hash;
      cache->used_rows = used_rows;
      cache->properties = batch.properties;
    }
  }
  batch.prop_weight.assign(used_rows.size(), 0.0);
  for (const std::size_t row : batch.prop_row) batch.prop_weight[row] += 1.0;
  return batch;
}

BellamyBatch BellamyModel::make_batch(const std::vector<data::JobRun>& runs) const {
  if (runs.empty()) throw std::invalid_argument("BellamyModel::make_batch: empty batch");
  const BellamyEncodedRuns encoded = encode_runs(runs);
  std::vector<std::size_t> all(runs.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return gather_batch(encoded, all);
}

void BellamyModel::fit_normalization(const std::vector<data::JobRun>& runs) {
  if (runs.empty()) {
    throw std::invalid_argument("BellamyModel::fit_normalization: no runs");
  }
  const BellamyEncodedRuns batch = encode_runs(runs);
  const std::size_t count = batch.num_runs;
  for (std::size_t j = 0; j < 3; ++j) {
    double lo = batch.scaleout_raw(0, j);
    double hi = lo;
    for (std::size_t i = 1; i < count; ++i) {
      lo = std::min(lo, batch.scaleout_raw(i, j));
      hi = std::max(hi, batch.scaleout_raw(i, j));
    }
    scaleout_min_(0, j) = lo;
    scaleout_max_(0, j) = hi;
  }
  if (config_.standardize_target) {
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) sum += batch.targets_raw(i, 0);
    target_mean_ = sum / static_cast<double>(count);
    double var = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const double d = batch.targets_raw(i, 0) - target_mean_;
      var += d * d;
    }
    target_std_ = std::sqrt(var / static_cast<double>(count));
    if (target_std_ < 1e-9) target_std_ = std::max(1.0, std::abs(target_mean_) * 0.25);
  } else {
    // Paper-faithful mode: the network predicts raw seconds.
    target_mean_ = 0.0;
    target_std_ = 1.0;
  }
  norm_fitted_ = true;
}

nn::Matrix BellamyModel::normalize_scaleout(const nn::Matrix& raw) const {
  nn::Matrix out = raw;
  for (std::size_t j = 0; j < 3; ++j) {
    const double lo = scaleout_min_(0, j);
    const double range = scaleout_max_(0, j) - lo;
    for (std::size_t i = 0; i < out.rows(); ++i) {
      out(i, j) = range > 1e-12 ? (out(i, j) - lo) / range : out(i, j) - lo;
    }
  }
  return out;
}

double BellamyModel::normalize_target(double seconds) const {
  return (seconds - target_mean_) / target_std_;
}

double BellamyModel::denormalize_target(double network_value) const {
  return network_value * target_std_ + target_mean_;
}

BellamyForward BellamyModel::forward(const BellamyBatch& batch, bool training) {
  if (!norm_fitted_) {
    throw std::logic_error("BellamyModel::forward: fit_normalization was never called "
                           "(pre-train or load a checkpoint first)");
  }
  set_training(training);

  BellamyForward fw;
  fw.prop_row = batch.prop_row;
  const nn::Matrix xs = normalize_scaleout(batch.scaleout_raw);
  const nn::Matrix e = f_.forward(xs);                // (B x F)
  fw.codes = g_.forward(batch.properties);            // (U x M) unique rows only
  fw.reconstruction = h_.forward(fw.codes);           // (U x N)

  const std::size_t b = batch.batch_size;
  const std::size_t m = config_.num_essential;
  const std::size_t n = config_.num_optional;
  const std::size_t M = config_.code_dim;
  const std::size_t F = config_.scaleout_out;
  const std::size_t ppr = config_.props_per_sample();

  fw.combined = nn::Matrix(b, config_.combined_dim());
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < F; ++j) fw.combined(i, j) = e(i, j);
    for (std::size_t p = 0; p < m; ++p) {
      const std::size_t crow = batch.prop_row[i * ppr + p];
      for (std::size_t j = 0; j < M; ++j) {
        fw.combined(i, F + p * M + j) = fw.codes(crow, j);
      }
    }
    for (std::size_t j = 0; j < M; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < n; ++p) acc += fw.codes(batch.prop_row[i * ppr + m + p], j);
      fw.combined(i, F + m * M + j) = n ? acc / static_cast<double>(n) : 0.0;
    }
  }

  fw.prediction_norm = z_.forward(fw.combined);  // (B x 1)
  fw.prediction_raw = fw.prediction_norm.apply(
      [this](double v) { return denormalize_target(v); });
  return fw;
}

double BellamyModel::reconstruction_mse(const BellamyForward& fw, const BellamyBatch& batch,
                                        nn::Matrix* grad) const {
  // MSE over the stacked (B*(m+n) x N) matrix, computed on the unique rows
  // weighted by multiplicity: duplicate rows reconstruct identically, so
  // their terms are the unique-row terms counted prop_weight times.
  const std::size_t u = batch.num_unique_properties();
  const std::size_t cols = config_.property_dim;
  const double denom =
      static_cast<double>(batch.prop_row.size()) * static_cast<double>(cols);
  if (grad) *grad = nn::Matrix(u, cols);
  double total = 0.0;
  for (std::size_t r = 0; r < u; ++r) {
    const double weight = batch.prop_weight[r];
    for (std::size_t c = 0; c < cols; ++c) {
      const double e = fw.reconstruction(r, c) - batch.properties(r, c);
      total += weight * e * e;
      if (grad) (*grad)(r, c) = weight * 2.0 * e / denom;
    }
  }
  return total / denom;
}

BellamyLoss BellamyModel::train_step(const BellamyBatch& batch, double reconstruction_weight) {
  BellamyForward fw = forward(batch, /*training=*/true);

  const nn::Matrix targets_norm =
      batch.targets_raw.apply([this](double v) { return normalize_target(v); });

  BellamyLoss loss;
  const auto huber = nn::huber_loss(fw.prediction_norm, targets_norm, config_.huber_delta);
  loss.huber = huber.value;
  {
    const auto mae = nn::mae_loss(fw.prediction_raw, batch.targets_raw);
    loss.mae_seconds = mae.value;
  }

  // Backward through z to the combined vector.
  const nn::Matrix grad_combined = z_.backward(huber.grad);

  const std::size_t b = batch.batch_size;
  const std::size_t m = config_.num_essential;
  const std::size_t n = config_.num_optional;
  const std::size_t M = config_.code_dim;
  const std::size_t F = config_.scaleout_out;
  const std::size_t ppr = config_.props_per_sample();

  // Split grad_combined into the scale-out part and the code parts.  A
  // unique property row that serves several stacked slots receives the SUM
  // of their gradients (its code fed all of them), accumulated in
  // slot order — the dedup-aware equivalent of the stacked scatter.
  nn::Matrix grad_e(b, F);
  nn::Matrix grad_codes(batch.num_unique_properties(), M, 0.0);
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < F; ++j) grad_e(i, j) = grad_combined(i, j);
    for (std::size_t p = 0; p < m; ++p) {
      const std::size_t crow = batch.prop_row[i * ppr + p];
      for (std::size_t j = 0; j < M; ++j) {
        grad_codes(crow, j) += grad_combined(i, F + p * M + j);
      }
    }
    for (std::size_t j = 0; j < M; ++j) {
      const double go = n ? grad_combined(i, F + m * M + j) / static_cast<double>(n) : 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        grad_codes(batch.prop_row[i * ppr + m + p], j) += go;
      }
    }
  }

  f_.backward(grad_e);

  if (reconstruction_weight > 0.0) {
    nn::Matrix grad_recon;
    loss.reconstruction = reconstruction_mse(fw, batch, &grad_recon);
    grad_recon *= reconstruction_weight;
    grad_codes += h_.backward(grad_recon);
  }

  g_.backward(grad_codes);

  loss.total = loss.huber + reconstruction_weight * loss.reconstruction;
  return loss;
}

BellamyLoss BellamyModel::evaluate(const BellamyBatch& batch, double reconstruction_weight) {
  BellamyForward fw = forward(batch, /*training=*/false);
  const nn::Matrix targets_norm =
      batch.targets_raw.apply([this](double v) { return normalize_target(v); });
  BellamyLoss loss;
  loss.huber = nn::huber_loss(fw.prediction_norm, targets_norm, config_.huber_delta).value;
  loss.mae_seconds = nn::mae_loss(fw.prediction_raw, batch.targets_raw).value;
  if (reconstruction_weight > 0.0) {
    loss.reconstruction = reconstruction_mse(fw, batch, nullptr);
  }
  loss.total = loss.huber + reconstruction_weight * loss.reconstruction;
  return loss;
}

std::vector<double> BellamyModel::predict_batch(const std::vector<data::JobRun>& runs) {
  if (runs.empty()) return {};
  if (!norm_fitted_) {
    throw std::logic_error("BellamyModel::predict_batch: fit_normalization was never called "
                           "(pre-train or load a checkpoint first)");
  }
  // Very large batches go memory-bound in a single stacked pass on one core
  // (the B=4096 dip), so they are split into contiguous chunks across the
  // global ThreadPool.  Every output row's arithmetic is independent of the
  // batch it rides in and every chunk writes a disjoint output range, so
  // the chunked result is bit-identical under any schedule the
  // work-stealing pool picks (chunks only need to run exactly once, and
  // the caller's helping wait assembles them in submission order).
  if (predict_chunk_threshold_ > 0 && runs.size() >= predict_chunk_threshold_ &&
      parallel::ThreadPool::global().size() > 1) {
    return predict_batch_chunked(runs);
  }
  return predict_batch_serial(runs);
}

std::vector<double> BellamyModel::predict_batch_serial(const std::vector<data::JobRun>& runs) {
  set_training(false);

  const std::size_t b = runs.size();
  const std::size_t m = config_.num_essential;
  const std::size_t n = config_.num_optional;
  const std::size_t M = config_.code_dim;
  const std::size_t F = config_.scaleout_out;
  const std::size_t ppr = config_.props_per_sample();

  // Inference needs the property codes but never the reconstruction, so the
  // decoder h is skipped entirely.  encode_runs dedups the property rows, so
  // the encoder g runs over the UNIQUE rows only and the codes are gathered
  // back per sample — the encoder cost is O(distinct properties), not
  // O(B * (m+n)).  Row-wise the arithmetic is identical to the stacked
  // forward, so predictions match the per-sample path bit for bit.
  const BellamyEncodedRuns encoded = encode_runs(runs);

  const nn::Matrix e = f_.forward(normalize_scaleout(encoded.scaleout_raw));  // (B x F)
  const nn::Matrix codes = g_.forward(encoded.properties);                    // (U x M)

  nn::Matrix combined(b, config_.combined_dim());
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < F; ++j) combined(i, j) = e(i, j);
    for (std::size_t p = 0; p < m; ++p) {
      const std::size_t crow = encoded.prop_row[i * ppr + p];
      for (std::size_t j = 0; j < M; ++j) combined(i, F + p * M + j) = codes(crow, j);
    }
    for (std::size_t j = 0; j < M; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < n; ++p) acc += codes(encoded.prop_row[i * ppr + m + p], j);
      combined(i, F + m * M + j) = n ? acc / static_cast<double>(n) : 0.0;
    }
  }

  const nn::Matrix prediction = z_.forward(combined);  // (B x 1)
  std::vector<double> out(b);
  for (std::size_t i = 0; i < b; ++i) out[i] = denormalize_target(prediction(i, 0));
  return out;
}

std::uint64_t BellamyModel::state_stamp() const {
  // Stable hash over the architecture config, every parameter tensor, and
  // the normalization state — everything a replica's predictions depend on.
  // The optimizer mutates parameters through raw pointers, so the stamp is
  // recomputed from the values (cheap: one pass over ~2k doubles) rather
  // than tracked.  The config fields are included so two models that happen
  // to share parameter bytes but differ in architecture can never collide
  // on a shared pool (fields are hashed individually — raw struct bytes
  // would include indeterminate padding).
  std::uint64_t h = util::kFnv1a64Seed;
  const auto mix = [&h](const auto& v) { h = util::fnv1a64_bytes(&v, sizeof(v), h); };
  mix(config_.scaleout_input);
  mix(config_.scaleout_hidden);
  mix(config_.scaleout_out);
  mix(config_.property_dim);
  mix(config_.encoder_hidden);
  mix(config_.code_dim);
  mix(config_.predictor_hidden);
  mix(config_.num_essential);
  mix(config_.num_optional);
  mix(config_.dropout);
  mix(config_.huber_delta);
  mix(config_.init);
  mix(config_.standardize_target);
  auto* self = const_cast<BellamyModel*>(this);
  for (const nn::Parameter* p : self->parameters()) {
    const auto flat = p->value.flat();
    h = util::fnv1a64_bytes(flat.data(), flat.size() * sizeof(double), h);
  }
  h = util::fnv1a64_bytes(scaleout_min_.data(), 3 * sizeof(double), h);
  h = util::fnv1a64_bytes(scaleout_max_.data(), 3 * sizeof(double), h);
  h = util::fnv1a64_bytes(&target_mean_, sizeof(double), h);
  h = util::fnv1a64_bytes(&target_std_, sizeof(double), h);
  const unsigned char fitted = norm_fitted_ ? 1 : 0;
  return util::fnv1a64_bytes(&fitted, 1, h);
}

ReplicaPool& BellamyModel::replica_pool() {
  if (!replica_pool_) replica_pool_ = std::make_shared<ReplicaPool>();
  return *replica_pool_;
}

void BellamyModel::set_replica_pool(std::shared_ptr<ReplicaPool> pool) {
  replica_pool_ = std::move(pool);
}

std::vector<double> BellamyModel::predict_batch_chunked(const std::vector<data::JobRun>& runs,
                                                        parallel::ThreadPool* pool,
                                                        std::size_t num_chunks) {
  if (runs.empty()) return {};
  if (!norm_fitted_) {
    throw std::logic_error(
        "BellamyModel::predict_batch_chunked: fit_normalization was never called "
        "(pre-train or load a checkpoint first)");
  }
  parallel::ThreadPool& p = pool ? *pool : parallel::ThreadPool::global();
  const std::size_t b = runs.size();
  const std::size_t chunks = std::min(b, num_chunks ? num_chunks : std::max<std::size_t>(
                                                                       1, p.size()));
  // From inside the pool, nested fan-out would be safe (parallel_for helps
  // drain the queue) but the outer fan-out already owns the workers — run
  // inline instead of competing for them.
  if (chunks <= 1 || p.owns_current_thread()) return predict_batch_serial(runs);

  // One forward pass caches activations inside the network modules, so a
  // model instance must never be shared across threads — every chunk checks
  // a replica out of the pool.  The pool serves cached replicas while this
  // model's state stamp is unchanged (steady-state serving pays the
  // checkpoint deserialization once, not per call) and rebuilds them
  // transparently after any mutation.
  ReplicaPool& rp = replica_pool();
  std::vector<ReplicaPool::Lease> leases;
  leases.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) leases.push_back(rp.acquire(*this));

  const std::size_t chunk_size = (b + chunks - 1) / chunks;
  std::vector<double> out(b);
  parallel::parallel_for(
      chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk_size;
        if (begin >= b) return;
        const std::size_t end = std::min(b, begin + chunk_size);
        const std::vector<data::JobRun> slice(runs.begin() + static_cast<std::ptrdiff_t>(begin),
                                              runs.begin() + static_cast<std::ptrdiff_t>(end));
        const auto preds = leases[c].model().predict_batch_serial(slice);
        std::copy(preds.begin(), preds.end(), out.begin() + static_cast<std::ptrdiff_t>(begin));
      },
      &p);
  return out;
}

std::vector<double> BellamyModel::predict(const std::vector<data::JobRun>& runs) {
  return predict_batch(runs);
}

double BellamyModel::predict_one(const data::JobRun& run) { return predict_batch({run})[0]; }

std::vector<nn::Parameter*> BellamyModel::parameters() {
  std::vector<nn::Parameter*> ps;
  for (nn::Sequential* s : {&f_, &g_, &h_, &z_}) {
    const auto sub = s->parameters();
    ps.insert(ps.end(), sub.begin(), sub.end());
  }
  return ps;
}

void BellamyModel::set_trainable_components(bool f_on, bool g_on, bool h_on, bool z_on) {
  f_.set_trainable(f_on);
  g_.set_trainable(g_on);
  h_.set_trainable(h_on);
  z_.set_trainable(z_on);
}

void BellamyModel::reinit_f() {
  for (nn::Linear* l : f_linears_) l->reinitialize(config_.init, rng_);
}

void BellamyModel::reinit_z() {
  for (nn::Linear* l : z_linears_) l->reinitialize(config_.init, rng_);
}

void BellamyModel::set_training(bool training) {
  f_.set_training(training);
  g_.set_training(training);
  h_.set_training(training);
  z_.set_training(training);
}

void BellamyModel::set_dropout_rate(double rate) {
  g_dropout_->set_rate(rate);
  h_dropout_->set_rate(rate);
}

void BellamyModel::clear_forward_caches() {
  f_.clear_forward_cache();
  g_.clear_forward_cache();
  h_.clear_forward_cache();
  z_.clear_forward_cache();
}

nn::Checkpoint BellamyModel::to_checkpoint() const {
  nn::Checkpoint ckpt;
  auto* self = const_cast<BellamyModel*>(this);
  nn::store_parameters(ckpt, self->f_);
  nn::store_parameters(ckpt, self->g_);
  nn::store_parameters(ckpt, self->h_);
  nn::store_parameters(ckpt, self->z_);
  ckpt.matrices.emplace("norm.scaleout_min", scaleout_min_);
  ckpt.matrices.emplace("norm.scaleout_max", scaleout_max_);
  ckpt.matrices.emplace("norm.target", nn::Matrix{{target_mean_, target_std_}});

  const auto& c = config_;
  ckpt.meta["format"] = "bellamy-model";
  ckpt.meta["norm_fitted"] = norm_fitted_ ? "1" : "0";
  ckpt.meta["scaleout_hidden"] = std::to_string(c.scaleout_hidden);
  ckpt.meta["scaleout_out"] = std::to_string(c.scaleout_out);
  ckpt.meta["property_dim"] = std::to_string(c.property_dim);
  ckpt.meta["encoder_hidden"] = std::to_string(c.encoder_hidden);
  ckpt.meta["code_dim"] = std::to_string(c.code_dim);
  ckpt.meta["predictor_hidden"] = std::to_string(c.predictor_hidden);
  ckpt.meta["dropout"] = util::format("%.17g", c.dropout);
  ckpt.meta["huber_delta"] = util::format("%.17g", c.huber_delta);
  ckpt.meta["init"] = nn::init_name(c.init);
  ckpt.meta["standardize_target"] = c.standardize_target ? "1" : "0";
  return ckpt;
}

BellamyModel BellamyModel::from_checkpoint(const nn::Checkpoint& ckpt) {
  if (ckpt.meta_value("format") != "bellamy-model") {
    throw std::runtime_error("BellamyModel::from_checkpoint: not a bellamy-model checkpoint");
  }
  BellamyConfig cfg;
  cfg.scaleout_hidden = std::stoul(ckpt.meta_value("scaleout_hidden"));
  cfg.scaleout_out = std::stoul(ckpt.meta_value("scaleout_out"));
  cfg.property_dim = std::stoul(ckpt.meta_value("property_dim"));
  cfg.encoder_hidden = std::stoul(ckpt.meta_value("encoder_hidden"));
  cfg.code_dim = std::stoul(ckpt.meta_value("code_dim"));
  cfg.predictor_hidden = std::stoul(ckpt.meta_value("predictor_hidden"));
  cfg.dropout = util::parse_double(ckpt.meta_value("dropout"));
  cfg.huber_delta = util::parse_double(ckpt.meta_value("huber_delta"));
  if (ckpt.meta.count("standardize_target")) {
    cfg.standardize_target = ckpt.meta_value("standardize_target") == "1";
  }
  const std::string init = ckpt.meta_value("init");
  if (init == "he_normal") cfg.init = nn::Init::kHeNormal;
  else if (init == "lecun_normal") cfg.init = nn::Init::kLeCunNormal;
  else if (init == "xavier_normal") cfg.init = nn::Init::kXavierNormal;
  else throw std::runtime_error("BellamyModel::from_checkpoint: unknown init '" + init + "'");

  BellamyModel model(cfg, /*seed=*/0xbe11a3ULL);
  for (nn::Sequential* s : {&model.f_, &model.g_, &model.h_, &model.z_}) {
    nn::restore_parameters(ckpt, *s);
  }
  model.scaleout_min_ = ckpt.matrix("norm.scaleout_min");
  model.scaleout_max_ = ckpt.matrix("norm.scaleout_max");
  const nn::Matrix& t = ckpt.matrix("norm.target");
  model.target_mean_ = t(0, 0);
  model.target_std_ = t(0, 1);
  model.norm_fitted_ = ckpt.meta_value("norm_fitted") == "1";
  return model;
}

void BellamyModel::save(const std::string& path) const { to_checkpoint().save_file(path); }

BellamyModel BellamyModel::load(const std::string& path) {
  return from_checkpoint(nn::Checkpoint::load_file(path));
}

std::vector<nn::Matrix> BellamyModel::snapshot_parameters() {
  std::vector<nn::Matrix> snap;
  for (nn::Parameter* p : parameters()) snap.push_back(p->value);
  return snap;
}

void BellamyModel::restore_parameters(const std::vector<nn::Matrix>& snapshot) {
  const auto params = parameters();
  if (snapshot.size() != params.size()) {
    throw std::invalid_argument("BellamyModel::restore_parameters: snapshot size mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = snapshot[i];
}

}  // namespace bellamy::core
