#pragma once
// Filesystem-backed store of pre-trained models, keyed by (algorithm, tag).
// This is the "collaborative sharing" building block the paper motivates:
// users in the same environment pre-train per algorithm once, persist the
// model, and others fine-tune from it.

#include <string>
#include <vector>

#include "core/bellamy_model.hpp"

namespace bellamy::core {

class ModelStore {
 public:
  /// Creates the directory if needed.
  explicit ModelStore(std::string directory);

  /// File path a given key maps to.
  std::string path_for(const std::string& algorithm, const std::string& tag) const;

  /// save/load wrap any I/O or parse failure in a std::runtime_error that
  /// names the key, the file path AND the underlying reason — a missing
  /// model, an unwritable directory and a corrupt checkpoint must be
  /// distinguishable from the message alone.
  void save(const BellamyModel& model, const std::string& algorithm, const std::string& tag);
  BellamyModel load(const std::string& algorithm, const std::string& tag) const;
  /// The raw checkpoint for a key (same error contract as load).  Serving
  /// layers share one loaded checkpoint across many model instances.
  nn::Checkpoint load_checkpoint(const std::string& algorithm, const std::string& tag) const;
  bool contains(const std::string& algorithm, const std::string& tag) const;
  void remove(const std::string& algorithm, const std::string& tag);

  /// All stored "algorithm/tag" keys, sorted.
  std::vector<std::string> list() const;

  const std::string& directory() const { return directory_; }

 private:
  static void validate_key_part(const std::string& part, const char* what);
  std::string directory_;
};

}  // namespace bellamy::core
