#include "core/resource_selector.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bellamy::core {

ResourceSelection select_scaleout(data::RuntimeModel& model,
                                  const data::JobRun& context_template,
                                  std::vector<int> candidate_scaleouts,
                                  double target_runtime_s) {
  if (candidate_scaleouts.empty()) {
    throw std::invalid_argument("select_scaleout: no candidate scale-outs");
  }
  if (target_runtime_s <= 0.0) {
    throw std::invalid_argument("select_scaleout: target runtime must be > 0");
  }
  std::sort(candidate_scaleouts.begin(), candidate_scaleouts.end());
  candidate_scaleouts.erase(
      std::unique(candidate_scaleouts.begin(), candidate_scaleouts.end()),
      candidate_scaleouts.end());

  // One query per candidate, answered in a single batched forward pass:
  // every query shares the template's context, so the sweep costs one
  // stacked network evaluation instead of |candidates| scalar ones.
  std::vector<data::JobRun> queries;
  queries.reserve(candidate_scaleouts.size());
  for (int x : candidate_scaleouts) {
    if (x < 1) throw std::invalid_argument("select_scaleout: scale-out must be >= 1");
    data::JobRun query = context_template;
    query.scale_out = x;
    queries.push_back(std::move(query));
  }
  const std::vector<double> predicted = model.predict_batch(queries);

  ResourceSelection sel;
  double fastest = std::numeric_limits<double>::infinity();
  int fastest_x = candidate_scaleouts.front();
  for (std::size_t i = 0; i < candidate_scaleouts.size(); ++i) {
    const int x = candidate_scaleouts[i];
    const double pred = predicted[i];
    sel.predictions.push_back({x, pred});
    if (pred < fastest) {
      fastest = pred;
      fastest_x = x;
    }
    if (!sel.target_met && pred <= target_runtime_s) {
      sel.target_met = true;
      sel.chosen_scale_out = x;
      sel.predicted_runtime_s = pred;
    }
  }
  if (!sel.target_met) {
    sel.chosen_scale_out = fastest_x;
    sel.predicted_runtime_s = fastest;
  }
  return sel;
}

}  // namespace bellamy::core
