#pragma once
// Training engines (paper §III-A, §IV-A, Table I).
//
// Pre-training: full joint objective (Huber + reconstruction MSE), Adam with
// L2 weight decay, alpha-dropout active, fixed epoch budget, mini-batches of
// 64 drawn from all available cross-context data.
//
// Fine-tuning: Huber only, dropout 0, cyclical LR annealing in (1e-3, 1e-2),
// freeze policy "first update only z, allow f after a number of epochs
// dependent on the amount of data samples", best-state tracking by smallest
// runtime MAE, stop early when MAE <= 5 s or no improvement for 1000 epochs.

#include <cstdint>
#include <vector>

#include "core/bellamy_model.hpp"
#include "data/record.hpp"

namespace bellamy::core {

struct PreTrainConfig {
  std::size_t epochs = 2500;
  std::size_t batch_size = 64;
  double learning_rate = 1e-2;
  double weight_decay = 1e-3;
  double dropout = 0.10;
  double reconstruction_weight = 1.0;
  std::uint64_t seed = 7;
};

struct PreTrainResult {
  std::size_t epochs_run = 0;
  double final_loss = 0.0;
  double final_mae_seconds = 0.0;
  std::vector<double> loss_history;  ///< per-epoch mean total loss
};

struct FineTuneConfig {
  std::size_t max_epochs = 2500;
  double base_lr = 1e-3;   ///< cyclical annealing bounds (Table I)
  double max_lr = 1e-2;
  std::size_t lr_cycle = 100;
  double weight_decay = 1e-3;
  double mae_target_seconds = 5.0;   ///< stopping criterion
  std::size_t patience = 1000;       ///< epochs without improvement before stop
  std::uint64_t seed = 11;

  /// Opt-in mini-batching (ROADMAP: the prerequisite for cheap refits over
  /// huge contexts).  0 — the default — keeps the paper's full-batch loop
  /// bit-identically; a value >= the run count falls back to full batch
  /// too.  With 0 < batch_size < #runs, every epoch draws seeded shuffled
  /// mini-batches through the same encode-once/gather path pretrain uses,
  /// and best-state tracking moves to an epoch-level full-batch evaluation
  /// (per-step losses cover different subsets and are not comparable).
  std::size_t batch_size = 0;

  /// Freeze policy: epochs before f becomes trainable; 0 derives a
  /// sample-count-dependent default, max(10, 100 / #samples) (paper: "after
  /// a number of epochs dependent on the amount of data samples").
  std::size_t unlock_f_after = 0;
  /// full-unfreeze variant: train f from the start.
  bool unlock_f_immediately = false;
  /// Train the auto-encoder too (never done in the paper's fine-tuning).
  bool train_autoencoder = false;
};

struct FineTuneResult {
  std::size_t epochs_run = 0;       ///< epochs actually executed
  double best_mae_seconds = 0.0;    ///< MAE of the restored best state
  bool reached_target = false;      ///< stopped because MAE <= target
  double fit_seconds = 0.0;         ///< wall-clock time of the whole fit
};

/// Pre-train `model` on `runs` (fits normalization first).
PreTrainResult pretrain(BellamyModel& model, const std::vector<data::JobRun>& runs,
                        const PreTrainConfig& config);

/// Fine-tune a (pre-trained or fresh) model on the few runs of a concrete
/// context.  If the model has no normalization state yet (local variant),
/// it is fit on `runs`.
FineTuneResult finetune(BellamyModel& model, const std::vector<data::JobRun>& runs,
                        const FineTuneConfig& config);

}  // namespace bellamy::core
