#pragma once
// Model configuration (paper Table I and §IV-A).
//
// Architecture defaults:
//   f (scale-out): 3 -> 16 -> 8, SELU, with biases
//   g (encoder):   40 -> 8 -> 4, SELU, no biases, alpha-dropout between layers
//   h (decoder):   4 -> 8 -> 40, SELU then tanh output, no biases, dropout
//   z (predictor): (8 + (m+1)*4) -> 8 -> 1, SELU, with biases

#include <cstddef>

#include "nn/init.hpp"

namespace bellamy::core {

struct BellamyConfig {
  // -- dimensions (Table I: Hidden-Dim 8, Out-Dim 1, Decoding 40, Encoding 4)
  std::size_t scaleout_input = 3;    ///< [1/x, log x, x]
  std::size_t scaleout_hidden = 16;  ///< hidden dim of f
  std::size_t scaleout_out = 8;      ///< F, output dim of f
  std::size_t property_dim = 40;     ///< N, vectorized property size
  std::size_t encoder_hidden = 8;    ///< hidden dim of g and h
  std::size_t code_dim = 4;          ///< M, code size
  std::size_t predictor_hidden = 8;  ///< hidden dim of z

  // -- context property counts (C3O schema, §IV-B): m essential, n optional
  std::size_t num_essential = 4;  ///< node type, job params, dataset size, characteristics
  std::size_t num_optional = 3;   ///< memory MB, CPU cores, job name

  // -- training-time knobs
  double dropout = 0.10;          ///< alpha-dropout rate in g/h during pre-training
  double huber_delta = 1.0;       ///< runtime-loss threshold
  nn::Init init = nn::Init::kHeNormal;

  /// If true (library default), runtimes are standardized with training-set
  /// mean/std before entering the loss — robust across datasets whose
  /// runtimes span orders of magnitude.  If false, the network predicts raw
  /// seconds exactly as the paper's implementation does; this reproduces the
  /// paper's convergence behaviour (a from-scratch "local" model needs many
  /// epochs to even reach the right output scale, while fine-tuning a
  /// pre-trained model is fast).  The reproduction benches use false.
  bool standardize_target = true;

  /// Dimension of the combined vector r = e ++ essential codes ++ mean(optional).
  std::size_t combined_dim() const {
    return scaleout_out + (num_essential + 1) * code_dim;
  }
  /// Rows per sample in the stacked property matrix.
  std::size_t props_per_sample() const { return num_essential + num_optional; }
};

}  // namespace bellamy::core
