#pragma once
// Legacy-boundary wrappers: drive any data::RuntimeModel (NNLS, Bell,
// Bellamy, ServingModel) with typed outcomes instead of
// catch-as-control-flow — a fit rejected as degenerate or a query outside a
// model's domain comes back as a ServeStatus, not a std::exception.  The
// eval harness runs its contenders through these; deliberately a leaf
// header (no registry/service includes) so that dependency stays cheap.

#include <vector>

#include "data/record.hpp"
#include "data/runtime_model.hpp"
#include "serve/serve_result.hpp"

namespace bellamy::serve {

/// Fit `model` on `runs`; kInvalidArgument for a rejected/degenerate fit,
/// kInternalError for anything else the model layer throws.
ServeResult<Unit> try_fit(data::RuntimeModel& model, const std::vector<data::JobRun>& runs);
/// Predict one query; kNotFitted when the model has not been fitted yet.
ServeResult<double> try_predict(data::RuntimeModel& model, const data::JobRun& query);
/// Predict a batch (one stacked pass for models that support it); same
/// error mapping as try_predict.
ServeResult<std::vector<double>> try_predict_batch(data::RuntimeModel& model,
                                                   const std::vector<data::JobRun>& queries);

}  // namespace bellamy::serve
