#include "serve/model_registry.hpp"

#include <sstream>
#include <utility>

#include "util/timer.hpp"

namespace bellamy::serve {

namespace {

ServeResult<ModelHandle> validate_key(const ModelKey& key) {
  if (key.job.empty() || key.context.empty()) {
    return ServeResult<ModelHandle>::failure(
        ServeStatus::kInvalidArgument, "model key needs a job and a context, got '" +
                                           key.str() + "'");
  }
  return ModelHandle{};
}

/// The refit recipe shared by refit() and refit_async(): fine-tune a fresh
/// copy of the entry's CURRENT base checkpoint off to the side (no lock held
/// across the fine-tune — serving and other registry operations proceed),
/// then swap atomically under the entry mutex.  kConflict when a publish
/// replaced the base mid-fine-tune: swapping in weights derived from the OLD
/// base would leave base and served model disagreeing for every later
/// refit/derive.
ServeResult<core::FineTuneResult> run_refit(
    const std::shared_ptr<detail::RegistryEntry>& entry,
    const std::vector<data::JobRun>& runs, const core::FineTuneConfig& config,
    core::ReuseStrategy strategy) {
  std::shared_ptr<const nn::Checkpoint> base;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    base = entry->base;
  }
  if (!base) {
    return ServeResult<core::FineTuneResult>::failure(
        ServeStatus::kNotFitted,
        "refit '" + entry->key.str() + "': no base checkpoint — publish or open first");
  }
  reduce::ReductionConfig reduction;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    reduction = entry->reduction;
  }
  try {
    // Same recipe as BellamyPredictor::fit, so refit results are
    // bit-identical to the legacy path given the same config.
    auto fresh = core::BellamyModel::from_checkpoint(*base);

    // Training-data reduction: map the full history to a bounded coreset
    // BEFORE the fine-tune.  Loss-aware scoring runs against the fresh base
    // copy while it still carries the published weights (apply_reuse_strategy
    // may re-initialize components below).
    const std::vector<data::JobRun>* train = &runs;
    std::vector<data::JobRun> coreset;
    reduce::ReductionReport report;
    const bool reduced = reduction.active() && !runs.empty();
    if (reduced) {
      coreset = reduce::reduce_runs(runs, reduction, &fresh, &report);
      train = &coreset;
    }

    const core::FineTuneConfig cfg = core::apply_reuse_strategy(strategy, fresh, config);
    core::FineTuneResult result;
    util::Timer timer;
    if (!train->empty()) result = core::finetune(fresh, *train, cfg);
    result.fit_seconds = timer.seconds();

    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->base != base) {
      return ServeResult<core::FineTuneResult>::failure(
          ServeStatus::kConflict,
          "refit '" + entry->key.str() + "': base checkpoint changed during the fine-tune");
    }
    entry->model.emplace(std::move(fresh));
    entry->model->set_replica_pool(entry->pool);
    if (reduced) {
      entry->last_reduction = report;
      entry->reductions += 1;
      entry->runs_dropped += report.dropped_runs;
    }
    return result;
  } catch (const std::invalid_argument& e) {
    return ServeResult<core::FineTuneResult>::failure(
        ServeStatus::kInvalidArgument, "refit '" + entry->key.str() + "': " + e.what());
  } catch (const std::exception& e) {
    return ServeResult<core::FineTuneResult>::failure(
        ServeStatus::kInternalError, "refit '" + entry->key.str() + "': " + e.what());
  }
}

/// persist() body once the entry is resolved.  A free function (not a
/// member) because auto-persisting refit tasks call it after the registry
/// may already be gone — they capture the entry and the store by value.
ServeResult<Unit> persist_to_store(const std::shared_ptr<detail::RegistryEntry>& entry,
                                   const std::shared_ptr<core::ModelStore>& store) {
  if (!store) {
    return ServeResult<Unit>::failure(
        ServeStatus::kInvalidArgument,
        "persist '" + entry->key.str() + "': registry has no backing ModelStore");
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (!entry->model) {
    return ServeResult<Unit>::failure(
        ServeStatus::kNotFitted, "persist '" + entry->key.str() + "': no model to save");
  }
  try {
    store->save(*entry->model, entry->key.job, entry->key.context);
    return ok();
  } catch (const std::invalid_argument& e) {
    return ServeResult<Unit>::failure(ServeStatus::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    return ServeResult<Unit>::failure(ServeStatus::kStoreError, e.what());
  }
}

}  // namespace

ModelRegistry::ModelRegistry(std::shared_ptr<core::ModelStore> store)
    : store_(std::move(store)) {}

std::pair<ModelHandle, std::shared_ptr<detail::RegistryEntry>>
ModelRegistry::entry_for_key_locked(const ModelKey& key) {
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    return {ModelHandle(it->second), entries_.at(it->second)};
  }
  const std::uint64_t id = next_id_++;
  auto entry = std::make_shared<detail::RegistryEntry>();
  entry->key = key;
  entry->reduction = default_reduction_;
  entries_.emplace(id, entry);
  by_key_.emplace(key, id);
  return {ModelHandle(id), std::move(entry)};
}

ServeResult<ModelHandle> ModelRegistry::publish(const ModelKey& key,
                                                const core::BellamyModel& model) {
  if (auto bad = validate_key(key); !bad.ok()) return bad;
  try {
    // Snapshot the caller's model: the checkpoint becomes both the entry's
    // refit base and the source of the serveable copy, so base and serving
    // weights agree at publish time.
    auto ckpt = std::make_shared<const nn::Checkpoint>(model.to_checkpoint());
    auto serving = core::BellamyModel::from_checkpoint(*ckpt);

    ModelHandle handle;
    std::shared_ptr<detail::RegistryEntry> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::tie(handle, entry) = entry_for_key_locked(key);
    }
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    entry->base = std::move(ckpt);
    entry->model.emplace(std::move(serving));
    entry->model->set_replica_pool(entry->pool);
    return handle;
  } catch (const std::exception& e) {
    return ServeResult<ModelHandle>::failure(
        ServeStatus::kInternalError, "publish '" + key.str() + "': " + e.what());
  }
}

ServeResult<ModelHandle> ModelRegistry::open(const ModelKey& key) {
  if (auto bad = validate_key(key); !bad.ok()) return bad;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = by_key_.find(key); it != by_key_.end()) {
      const auto& entry = entries_.at(it->second);
      std::lock_guard<std::mutex> entry_lock(entry->mutex);
      if (entry->model) {
        return ModelHandle(it->second);  // already materialized; share it
      }
      // A reserve()d route: fall through and materialize it from the store.
    }
  }
  if (!store_) {
    return ServeResult<ModelHandle>::failure(
        ServeStatus::kInvalidArgument,
        "open '" + key.str() + "': registry has no backing ModelStore");
  }
  try {
    if (!store_->contains(key.job, key.context)) {
      return ServeResult<ModelHandle>::failure(
          ServeStatus::kUnknownModel, "open '" + key.str() + "': nothing stored at " +
                                          store_->path_for(key.job, key.context));
    }
    auto ckpt = std::make_shared<const nn::Checkpoint>(
        store_->load_checkpoint(key.job, key.context));
    auto serving = core::BellamyModel::from_checkpoint(*ckpt);

    ModelHandle handle;
    std::shared_ptr<detail::RegistryEntry> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::tie(handle, entry) = entry_for_key_locked(key);
    }
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    if (!entry->model) {  // lost a publish/open race: keep the winner's state
      entry->base = std::move(ckpt);
      entry->model.emplace(std::move(serving));
      entry->model->set_replica_pool(entry->pool);
    }
    return handle;
  } catch (const std::invalid_argument& e) {
    return ServeResult<ModelHandle>::failure(ServeStatus::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    return ServeResult<ModelHandle>::failure(ServeStatus::kStoreError,
                                             "open '" + key.str() + "': " + e.what());
  }
}

ServeResult<ModelHandle> ModelRegistry::reserve(const ModelKey& key) {
  if (auto bad = validate_key(key); !bad.ok()) return bad;
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_for_key_locked(key).first;
}

ServeResult<ModelHandle> ModelRegistry::derive(const ModelHandle& base, const ModelKey& key) {
  if (auto bad = validate_key(key); !bad.ok()) return bad;
  const auto source = resolve(base);
  if (!source) {
    return ServeResult<ModelHandle>::failure(ServeStatus::kUnknownModel,
                                             "derive: unknown base handle");
  }
  std::shared_ptr<const nn::Checkpoint> ckpt;
  {
    std::lock_guard<std::mutex> lock(source->mutex);
    ckpt = source->base;
  }
  if (!ckpt) {
    return ServeResult<ModelHandle>::failure(
        ServeStatus::kNotFitted,
        "derive from '" + source->key.str() + "': base handle has no checkpoint yet");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (by_key_.count(key)) {  // fast-fail before the checkpoint materialization
      return ServeResult<ModelHandle>::failure(
          ServeStatus::kInvalidArgument, "derive: key '" + key.str() + "' already registered");
    }
  }
  try {
    // Build the entry fully populated BEFORE it becomes visible, then insert
    // or reject under one lock — a publish/reserve racing onto the same key
    // must never be clobbered silently.
    auto entry = std::make_shared<detail::RegistryEntry>();
    entry->key = key;
    entry->model.emplace(core::BellamyModel::from_checkpoint(*ckpt));
    entry->model->set_replica_pool(entry->pool);
    entry->base = std::move(ckpt);  // the SAME checkpoint object as the base handle

    std::lock_guard<std::mutex> lock(mutex_);
    entry->reduction = default_reduction_;
    if (by_key_.count(key)) {
      return ServeResult<ModelHandle>::failure(
          ServeStatus::kConflict,
          "derive: key '" + key.str() + "' was registered concurrently");
    }
    const std::uint64_t id = next_id_++;
    entries_.emplace(id, std::move(entry));
    by_key_.emplace(key, id);
    return ModelHandle(id);
  } catch (const std::exception& e) {
    return ServeResult<ModelHandle>::failure(
        ServeStatus::kInternalError, "derive '" + key.str() + "': " + e.what());
  }
}

ServeResult<ModelHandle> ModelRegistry::find(const ModelKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = by_key_.find(key); it != by_key_.end()) return ModelHandle(it->second);
  return ServeResult<ModelHandle>::failure(ServeStatus::kUnknownModel,
                                           "no model registered for '" + key.str() + "'");
}

ServeResult<core::FineTuneResult> ModelRegistry::refit(const ModelHandle& handle,
                                                       const std::vector<data::JobRun>& runs,
                                                       const core::FineTuneConfig& config,
                                                       core::ReuseStrategy strategy) {
  const auto entry = resolve(handle);
  if (!entry) {
    return ServeResult<core::FineTuneResult>::failure(ServeStatus::kUnknownModel,
                                                      "refit: unknown handle");
  }
  return run_refit(entry, runs, config, strategy);
}

std::shared_future<ServeResult<core::FineTuneResult>> ModelRegistry::refit_async(
    const ModelHandle& handle, std::vector<data::JobRun> runs,
    const core::FineTuneConfig& config, core::ReuseStrategy strategy,
    RefitCallback on_complete) {
  const auto entry = resolve(handle);
  if (!entry) {
    std::promise<ServeResult<core::FineTuneResult>> failed;
    failed.set_value(ServeResult<core::FineTuneResult>::failure(
        ServeStatus::kUnknownModel, "refit_async: unknown handle"));
    auto future = failed.get_future().share();
    if (on_complete) on_complete(future.get());  // inline: there is no strand to ride
    return future;
  }

  std::shared_future<ServeResult<core::FineTuneResult>> future;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->pending_refit) {
      // Coalesce: the queued job has not started, so replace its payload and
      // share its future — every caller observes the LATEST request's result
      // and only one fine-tune runs.  The new caller's callback JOINS the
      // queued job's callbacks; all fire with the shared result.
      entry->pending_refit->runs = std::move(runs);
      entry->pending_refit->config = config;
      entry->pending_refit->strategy = strategy;
      if (on_complete) entry->pending_refit->callbacks.push_back(std::move(on_complete));
      return entry->pending_refit->future;
    }
    detail::RefitJob job;
    job.runs = std::move(runs);
    job.config = config;
    job.strategy = strategy;
    job.promise =
        std::make_shared<std::promise<ServeResult<core::FineTuneResult>>>();
    job.future = job.promise->get_future().share();
    if (on_complete) job.callbacks.push_back(std::move(on_complete));
    future = job.future;
    entry->pending_refit = std::move(job);
  }
  // One strand task per queued job: the strand serializes this entry's
  // refits, so a task posted while another runs simply waits its turn.  The
  // task captures the entry's shared_ptr (plus the store and auto-persist
  // flag by value) — it survives erase() and registry teardown (the entry's
  // Strand destructor drains before the entry dies).
  entry->refit_strand.post([entry, store = store_, auto_persist = auto_persist_] {
    detail::RefitJob job;
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      if (!entry->pending_refit) return;  // defensive; the job rode an earlier task
      job = std::move(*entry->pending_refit);
      entry->pending_refit.reset();
      entry->refit_running = true;
    }
    ServeResult<core::FineTuneResult> result =
        run_refit(entry, job.runs, job.config, job.strategy);
    if (result.ok() && auto_persist->load(std::memory_order_relaxed)) {
      // Mirror the swapped weights into the backing store so a restart
      // serves what refit produced, not the stale pre-refit checkpoint.  A
      // persist failure downgrades the shared result to kStoreError but the
      // swap above has already landed — serving is never rolled back.
      if (const ServeResult<Unit> persisted = persist_to_store(entry, store); !persisted.ok()) {
        result = ServeResult<core::FineTuneResult>::failure(
            ServeStatus::kStoreError, "refit '" + entry->key.str() +
                                          "': weights swapped, but auto-persist failed: " +
                                          persisted.error_text());
      }
    }
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      entry->refit_running = false;
    }
    // Future first (waiters unblock even if a callback throws), then every
    // coalesced caller's completion hook, still on the strand, after the
    // swap is visible to serving.
    job.promise->set_value(result);
    for (const RefitCallback& callback : job.callbacks) {
      try {
        callback(result);
      } catch (...) {
        // A notification hook must never take down the strand (and with it a
        // pool worker); the result already reached the future.
      }
    }
  });
  return future;
}

bool ModelRegistry::refit_pending(const ModelHandle& handle) const noexcept {
  try {
    const auto entry = resolve(handle);
    if (!entry) return false;
    std::lock_guard<std::mutex> lock(entry->mutex);
    return entry->pending_refit.has_value() || entry->refit_running;
  } catch (...) {
    return false;  // a throwing lock must not escalate to std::terminate
  }
}

ServeResult<Unit> ModelRegistry::set_reduction(const ModelHandle& handle,
                                               const reduce::ReductionConfig& config) {
  const auto entry = resolve(handle);
  if (!entry) {
    return ServeResult<Unit>::failure(ServeStatus::kUnknownModel,
                                      "set_reduction: unknown handle");
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  entry->reduction = config;
  return ok();
}

reduce::ReductionConfig ModelRegistry::reduction(const ModelHandle& handle) const noexcept {
  try {
    const auto entry = resolve(handle);
    if (!entry) return {};
    std::lock_guard<std::mutex> lock(entry->mutex);
    return entry->reduction;
  } catch (...) {
    return {};
  }
}

reduce::ReductionReport ModelRegistry::last_reduction(
    const ModelHandle& handle) const noexcept {
  try {
    const auto entry = resolve(handle);
    if (!entry) return {};
    std::lock_guard<std::mutex> lock(entry->mutex);
    return entry->last_reduction;
  } catch (...) {
    return {};
  }
}

std::pair<std::uint64_t, std::uint64_t> ModelRegistry::reduction_counters(
    const ModelHandle& handle) const noexcept {
  try {
    const auto entry = resolve(handle);
    if (!entry) return {0, 0};
    std::lock_guard<std::mutex> lock(entry->mutex);
    return {entry->reductions, entry->runs_dropped};
  } catch (...) {
    return {0, 0};
  }
}

void ModelRegistry::set_default_reduction(const reduce::ReductionConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  default_reduction_ = config;
}

reduce::ReductionConfig ModelRegistry::default_reduction() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return default_reduction_;
}

ServeResult<Unit> ModelRegistry::persist(const ModelHandle& handle) {
  const auto entry = resolve(handle);
  if (!entry) {
    return ServeResult<Unit>::failure(ServeStatus::kUnknownModel, "persist: unknown handle");
  }
  return persist_to_store(entry, store_);
}

void ModelRegistry::set_auto_persist(bool enabled) noexcept {
  auto_persist_->store(enabled, std::memory_order_relaxed);
}

bool ModelRegistry::auto_persist() const noexcept {
  return auto_persist_->load(std::memory_order_relaxed);
}

ServeResult<std::string> ModelRegistry::checkpoint_text(const ModelHandle& handle) const {
  const auto entry = resolve(handle);
  if (!entry) {
    return ServeResult<std::string>::failure(ServeStatus::kUnknownModel,
                                             "checkpoint_text: unknown handle");
  }
  try {
    std::ostringstream out;
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      if (!entry->model) {
        return ServeResult<std::string>::failure(
            ServeStatus::kNotFitted,
            "checkpoint_text '" + entry->key.str() + "': entry has no fitted model");
      }
      entry->model->to_checkpoint().save(out);
    }
    return out.str();
  } catch (const std::exception& e) {
    return ServeResult<std::string>::failure(
        ServeStatus::kInternalError, "checkpoint_text '" + entry->key.str() + "': " + e.what());
  }
}

ServeResult<Unit> ModelRegistry::erase(const ModelHandle& handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(handle.id());
  if (it == entries_.end()) {
    return ServeResult<Unit>::failure(ServeStatus::kUnknownModel, "erase: unknown handle");
  }
  by_key_.erase(it->second->key);
  entries_.erase(it);
  return ok();
}

bool ModelRegistry::fitted(const ModelHandle& handle) const noexcept {
  try {
    const auto entry = resolve(handle);
    if (!entry) return false;
    std::lock_guard<std::mutex> lock(entry->mutex);
    return entry->model.has_value();
  } catch (...) {
    return false;  // a throwing lock must not escalate to std::terminate
  }
}

std::uint64_t ModelRegistry::state_stamp(const ModelHandle& handle) const noexcept {
  try {
    const auto entry = resolve(handle);
    if (!entry) return 0;
    std::lock_guard<std::mutex> lock(entry->mutex);
    return entry->model ? entry->model->state_stamp() : 0;
  } catch (...) {
    return 0;
  }
}

std::shared_ptr<const nn::Checkpoint> ModelRegistry::base_checkpoint(
    const ModelHandle& handle) const {
  const auto entry = resolve(handle);
  if (!entry) return nullptr;
  std::lock_guard<std::mutex> lock(entry->mutex);
  return entry->base;
}

std::vector<ModelKey> ModelRegistry::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ModelKey> out;
  out.reserve(by_key_.size());
  for (const auto& [key, id] : by_key_) out.push_back(key);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::shared_ptr<detail::RegistryEntry> ModelRegistry::resolve(const ModelHandle& handle) const {
  return resolve_id(handle.id());
}

std::shared_ptr<detail::RegistryEntry> ModelRegistry::resolve_id(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second;
}

}  // namespace bellamy::serve
