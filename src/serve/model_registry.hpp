#pragma once
// ModelRegistry: the serve layer's model directory, layered over
// core::ModelStore.
//
// The paper's deployment story is a shared, always-on service keyed by
// (job, context): providers publish pre-trained per-algorithm models once,
// consumers open them, fine-tune on their own few runs, and query.  The
// registry gives that shape a stable in-process identity:
//
//   * publish(key, model)  — install a fitted model; publishing to an
//     existing key hot-swaps the weights behind the SAME handle.
//   * open(key)            — materialize a model from the backing ModelStore
//     (job -> algorithm, context -> tag).  Checkpoints loaded from the same
//     stored file are shared, not re-read.
//   * derive(handle, key)  — a new handle for a new context that SHARES the
//     base checkpoint of an existing one (direct reuse until refit).
//   * refit(handle, runs)  — fine-tune a fresh copy of the base checkpoint
//     off to the side and swap it in atomically.  In-flight predictions keep
//     serving the old weights; the state-stamp change invalidates the
//     handle's ReplicaPool so the next micro-batch serves the new ones.
//   * refit_async(...)     — the same recipe, scheduled on the global
//     ThreadPool instead of the caller's thread.  One Strand per entry
//     serializes refits of the SAME handle; refits of different handles run
//     in parallel; a request arriving while one is still QUEUED replaces its
//     payload and shares its future (duplicate-coalescing).  The caller —
//     and serving — never block on the fine-tune.
//
// Handles stay valid across hot-swaps and refits; erase() retires one.
// All operations are thread-safe.

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/bellamy_model.hpp"
#include "core/model_store.hpp"
#include "core/replica_pool.hpp"
#include "core/trainer.hpp"
#include "core/variants.hpp"
#include "parallel/strand.hpp"
#include "reduce/reduction.hpp"
#include "serve/serve_result.hpp"

namespace bellamy::serve {

/// Identity of a served model: the dataflow job (algorithm) plus the context
/// tag it was trained or specialized for.
struct ModelKey {
  std::string job;
  std::string context;

  bool operator==(const ModelKey& other) const {
    return job == other.job && context == other.context;
  }
  bool operator<(const ModelKey& other) const {
    return job != other.job ? job < other.job : context < other.context;
  }
  std::string str() const { return job + "/" + context; }
};

/// Opaque, copyable reference to a registry entry.  Default-constructed
/// handles are invalid; handles stay stable across publish/refit hot-swaps.
class ModelHandle {
 public:
  ModelHandle() = default;
  std::uint64_t id() const { return id_; }
  explicit operator bool() const { return id_ != 0; }
  bool operator==(const ModelHandle& other) const { return id_ == other.id_; }

 private:
  friend class ModelRegistry;
  explicit ModelHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Completion hook of a background refit: invoked on the refit strand right
/// after the hot-swap (or the typed failure), carrying exactly what the
/// shared_future resolves with.  Lets a server push refit-done events over a
/// connection instead of parking a thread on the future.
using RefitCallback = std::function<void(const ServeResult<core::FineTuneResult>&)>;

namespace detail {

/// A queued background refit: the latest requested payload plus the promise
/// every coalesced caller shares and every coalesced caller's completion
/// callback (all fire with the shared result).
struct RefitJob {
  std::vector<data::JobRun> runs;
  core::FineTuneConfig config;
  core::ReuseStrategy strategy = core::ReuseStrategy::kPartialUnfreeze;
  std::shared_ptr<std::promise<ServeResult<core::FineTuneResult>>> promise;
  std::shared_future<ServeResult<core::FineTuneResult>> future;
  std::vector<RefitCallback> callbacks;
};

/// One served model.  `mutex` guards `base`, `model`, and the refit
/// bookkeeping (`pending_refit`, `refit_running`); the PredictionService
/// holds it only for the (cheap, stamp-keyed) replica acquire, never across
/// a forward pass, and background refits hold it only to pick up their job
/// and to swap — never across the fine-tune itself.  `pool` is shared with
/// the model so chunked prediction and the service lease from the same
/// replica cache.  `refit_strand` serializes this entry's background refits
/// on the process-wide ThreadPool; tasks capture the entry's shared_ptr, so
/// an erase()d entry finishes its in-flight refit harmlessly off-registry.
/// The strand's ordering is its own (drainer chaining), not the pool's: the
/// work-stealing scheduler is free to run the drainer task from any worker
/// or helper thread, and refits still execute one at a time in post order.
struct RegistryEntry {
  ModelKey key;
  mutable std::mutex mutex;
  std::shared_ptr<const nn::Checkpoint> base;  ///< pretrained base for refits
  std::optional<core::BellamyModel> model;     ///< current serveable weights
  std::shared_ptr<core::ReplicaPool> pool = std::make_shared<core::ReplicaPool>();
  std::optional<RefitJob> pending_refit;  ///< queued, not started (coalescing point)
  bool refit_running = false;             ///< a background refit is executing
  parallel::Strand refit_strand{parallel::ThreadPool::global()};

  /// Training-data reduction applied on the refit strand before finetune
  /// (seeded at entry creation from the registry default; see
  /// set_reduction()).  `last_reduction` / the counters record what refits
  /// actually dropped — all guarded by `mutex`.
  reduce::ReductionConfig reduction;
  reduce::ReductionReport last_reduction;
  std::uint64_t reductions = 0;    ///< refits that ran with an active policy
  std::uint64_t runs_dropped = 0;  ///< cumulative runs dropped across refits
};

}  // namespace detail

class ModelRegistry {
 public:
  /// In-memory registry (publish/derive/refit only; open/persist need a store).
  ModelRegistry() = default;
  /// Store-backed registry: open() loads from and persist() saves to `store`.
  explicit ModelRegistry(std::shared_ptr<core::ModelStore> store);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Install a fitted model under `key` (snapshot — the caller keeps its
  /// instance).  An existing key keeps its handle and hot-swaps its weights;
  /// the model's checkpoint becomes the entry's refit base.
  ServeResult<ModelHandle> publish(const ModelKey& key, const core::BellamyModel& model);

  /// Load the stored model for `key` from the backing store.  Re-opening a
  /// key returns its existing handle without touching the store.
  ServeResult<ModelHandle> open(const ModelKey& key);

  /// Pre-register `key` with no model yet (requests answer kNotFitted until
  /// a publish).  Useful to reserve routes before models arrive.
  ServeResult<ModelHandle> reserve(const ModelKey& key);

  /// New handle for `key` sharing `base`'s pretrained checkpoint (the
  /// checkpoint object itself, not a copy); starts as a direct-reuse model.
  ServeResult<ModelHandle> derive(const ModelHandle& base, const ModelKey& key);

  /// Handle registered for `key`, if any.
  ServeResult<ModelHandle> find(const ModelKey& key) const;

  /// Fine-tune a fresh copy of the entry's base checkpoint on `runs` under
  /// `strategy` and hot-swap it in.  Empty `runs` = direct reuse (reset to
  /// the base weights).  Serving continues on the old weights until the
  /// swap.  BLOCKS the caller for the full fine-tune; prefer refit_async()
  /// inside serving loops.  Fails with kConflict when a publish replaced the
  /// base checkpoint mid-fine-tune (retry against the new base if desired).
  ServeResult<core::FineTuneResult> refit(
      const ModelHandle& handle, const std::vector<data::JobRun>& runs,
      const core::FineTuneConfig& config,
      core::ReuseStrategy strategy = core::ReuseStrategy::kPartialUnfreeze);

  /// Queue the same refit as a background job on the process-wide
  /// parallel::ThreadPool and return immediately; the shared_future resolves
  /// with exactly what refit() would have returned (same recipe, bit-
  /// identical weights, same kConflict stamp check).  Serving continues on
  /// the old weights until the atomic swap.
  ///
  /// Scheduling: refits of the same handle are serialized in request order
  /// (per-entry Strand); refits of different handles run concurrently.
  /// DUPLICATE-COALESCING: while a job is still queued (not yet started), a
  /// new refit_async() on the same handle replaces the queued payload and
  /// returns the SAME future — both callers observe the result of the
  /// latest request.  A job already running is never disturbed; the new
  /// request queues behind it.
  ///
  /// COMPLETION NOTIFICATION: pass `on_complete` to be called on the refit
  /// strand right after the swap (or the typed failure) with the same
  /// ServeResult the future resolves with — no thread has to poll the
  /// shared_future.  Every coalesced caller's callback fires (all with the
  /// shared result of the latest payload); callbacks of an unknown handle
  /// fire inline before this returns.  A callback must not block on the
  /// returned future (it resolves before the callbacks run) and should not
  /// do long work — it executes on the strand, delaying the handle's next
  /// queued refit.
  std::shared_future<ServeResult<core::FineTuneResult>> refit_async(
      const ModelHandle& handle, std::vector<data::JobRun> runs,
      const core::FineTuneConfig& config,
      core::ReuseStrategy strategy = core::ReuseStrategy::kPartialUnfreeze,
      RefitCallback on_complete = nullptr);

  /// True while the handle has a background refit queued or running.
  bool refit_pending(const ModelHandle& handle) const noexcept;

  /// Install the training-data reduction applied before every subsequent
  /// refit of this handle (refit and refit_async alike, on the refit
  /// strand): the run history is mapped to a coreset of at most
  /// `config.budget` runs by the seeded policy, loss-aware scoring against
  /// the fresh base copy, BEFORE finetune sees it.  An inactive config
  /// (kNone or budget 0) restores full-history refits.
  ServeResult<Unit> set_reduction(const ModelHandle& handle,
                                  const reduce::ReductionConfig& config);
  /// The handle's current reduction config (default-constructed when the
  /// handle is unknown).
  reduce::ReductionConfig reduction(const ModelHandle& handle) const noexcept;
  /// What the handle's LAST reduced refit dropped (kept_runs == 0 until an
  /// active-policy refit swaps in).
  reduce::ReductionReport last_reduction(const ModelHandle& handle) const noexcept;
  /// Cumulative {reduced refits, runs dropped} of the handle.
  std::pair<std::uint64_t, std::uint64_t> reduction_counters(
      const ModelHandle& handle) const noexcept;

  /// Reduction config seeded into every FUTURE entry (publish/open/reserve/
  /// derive); existing entries keep theirs.  What `bellamy_serverd
  /// --refit-budget/--refit-policy` installs before any model arrives.
  void set_default_reduction(const reduce::ReductionConfig& config);
  reduce::ReductionConfig default_reduction() const;

  /// Save the entry's current weights to the backing store under its key.
  ServeResult<Unit> persist(const ModelHandle& handle);

  /// Opt-in: persist every successful background-refit swap to the backing
  /// store, on the refit strand, right after the swap.  Without this a
  /// store-backed entry goes silently stale — the swap never reaches disk,
  /// so a restart serves pre-refit weights.  A persist failure surfaces as
  /// kStoreError in the refit's shared result (the swap itself has already
  /// landed and is NEVER rolled back or blocked); enabling this on a
  /// registry with no backing store reports the same way.  Off by default.
  void set_auto_persist(bool enabled) noexcept;
  bool auto_persist() const noexcept;

  /// The entry's CURRENT serving weights serialized as nn::Checkpoint text
  /// (the ModelStore on-disk format, hex-float exact) — what a peer pulling
  /// this model over the exchange layer receives.  Snapshots under the entry
  /// mutex; never holds it across I/O.
  ServeResult<std::string> checkpoint_text(const ModelHandle& handle) const;

  /// Retire a handle: subsequent resolves (and service requests) fail with
  /// kUnknownModel.  Outstanding replica leases finish their batch.
  ServeResult<Unit> erase(const ModelHandle& handle);

  /// Introspection without catch-as-control-flow: unknown handles and
  /// unfitted entries report false / 0 instead of throwing.
  bool fitted(const ModelHandle& handle) const noexcept;
  std::uint64_t state_stamp(const ModelHandle& handle) const noexcept;

  /// The entry's shared pretrained checkpoint (null when reserve()d).
  /// Exposed so tests can certify checkpoint sharing across handles.
  std::shared_ptr<const nn::Checkpoint> base_checkpoint(const ModelHandle& handle) const;

  /// All registered keys, sorted.
  std::vector<ModelKey> keys() const;
  std::size_t size() const;

  /// Entry lookup for the PredictionService (null when unknown/erased).
  std::shared_ptr<detail::RegistryEntry> resolve(const ModelHandle& handle) const;
  /// Same, by raw handle id (the service queues ids, not handles).
  std::shared_ptr<detail::RegistryEntry> resolve_id(std::uint64_t id) const;

 private:
  /// Insert-or-get the entry for `key`; returns its handle.
  std::pair<ModelHandle, std::shared_ptr<detail::RegistryEntry>> entry_for_key_locked(
      const ModelKey& key);

  mutable std::mutex mutex_;
  std::shared_ptr<core::ModelStore> store_;
  /// Shared with in-flight refit tasks: they capture the flag (and the
  /// store) by value because a strand task may outlive the registry itself.
  std::shared_ptr<std::atomic<bool>> auto_persist_ =
      std::make_shared<std::atomic<bool>>(false);
  std::uint64_t next_id_ = 1;
  reduce::ReductionConfig default_reduction_;  ///< copied into new entries
  std::map<std::uint64_t, std::shared_ptr<detail::RegistryEntry>> entries_;
  std::map<ModelKey, std::uint64_t> by_key_;
};

}  // namespace bellamy::serve
