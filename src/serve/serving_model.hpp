#pragma once
// ServingModel: the thin data::RuntimeModel adapter over the serve facade.
//
// The evaluation harness, the resource selector and the baselines all speak
// RuntimeModel (fit/predict/predict_batch, exceptions on failure).  This
// adapter lets that world run on top of the registry + service without
// knowing about handles: fit() refits the handle's base checkpoint through
// the registry (hot-swapping the served weights), predictions go through the
// micro-batching PredictionService, and typed ServeResults are folded back
// into the legacy exception contract at this boundary — the serve layer
// itself never throws for serving conditions.

#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "core/variants.hpp"
#include "data/runtime_model.hpp"
#include "serve/model_registry.hpp"
#include "serve/prediction_service.hpp"

namespace bellamy::serve {

/// data::RuntimeModel adapter over (registry, service, handle).
///
/// Thread-safety: predictions inherit the PredictionService's full
/// concurrency (any thread, coalesced); fit() delegates to
/// ModelRegistry::refit and BLOCKS for the fine-tune, mirroring the legacy
/// contract the eval harness expects — use the registry's refit_async
/// directly for non-blocking refits.
class ServingModel : public data::RuntimeModel {
 public:
  /// `registry` and `service` must outlive the adapter; `handle` must carry a
  /// base checkpoint (publish/open/derive) for fit() to work.
  ServingModel(ModelRegistry& registry, PredictionService& service, ModelHandle handle,
               core::FineTuneConfig finetune_config,
               core::ReuseStrategy strategy = core::ReuseStrategy::kPartialUnfreeze,
               std::string name = "Bellamy(serve)");

  /// Refit the handle from its base checkpoint on `runs` (empty = direct
  /// reuse).  Serving hot-swaps; in-flight micro-batches finish on the old
  /// weights.
  void fit(const std::vector<data::JobRun>& runs) override;
  double predict(const data::JobRun& query) override;
  std::vector<double> predict_batch(const std::vector<data::JobRun>& queries) override;
  std::size_t min_training_points() const override { return 0; }
  std::string name() const override { return name_; }

  const ModelHandle& handle() const { return handle_; }
  /// Statistics of the most recent fit() (mirrors BellamyPredictor).
  const core::FineTuneResult& last_fit() const { return last_fit_; }

 private:
  ModelRegistry& registry_;
  PredictionService& service_;
  ModelHandle handle_;
  core::FineTuneConfig finetune_config_;
  core::ReuseStrategy strategy_;
  std::string name_;
  core::FineTuneResult last_fit_;
};

}  // namespace bellamy::serve
