#include "serve/serving_model.hpp"

#include <stdexcept>
#include <utility>

namespace bellamy::serve {

ServingModel::ServingModel(ModelRegistry& registry, PredictionService& service,
                           ModelHandle handle, core::FineTuneConfig finetune_config,
                           core::ReuseStrategy strategy, std::string name)
    : registry_(registry),
      service_(service),
      handle_(handle),
      finetune_config_(finetune_config),
      strategy_(strategy),
      name_(std::move(name)) {
  if (!handle_) throw std::invalid_argument("ServingModel: invalid model handle");
}

void ServingModel::fit(const std::vector<data::JobRun>& runs) {
  last_fit_ = registry_.refit(handle_, runs, finetune_config_, strategy_).unwrap();
}

double ServingModel::predict(const data::JobRun& query) {
  return service_.predict(handle_, query).unwrap();
}

std::vector<double> ServingModel::predict_batch(const std::vector<data::JobRun>& queries) {
  return service_.predict_many(handle_, queries).unwrap();
}

}  // namespace bellamy::serve
