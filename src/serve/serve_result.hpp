#pragma once
// Typed results for the serving facade.
//
// The legacy per-call-site API (BellamyPredictor, ModelStore) signals every
// failure — unfitted model, unknown key, corrupt checkpoint — as an untyped
// std::runtime_error, which forces callers into catch-as-control-flow.  The
// serve layer returns ServeResult<T> instead: a status code plus a
// human-readable message, so a service loop can branch on WHY a request
// failed (retry a kShutdown, drop a kUnknownModel, alert on kStoreError)
// without string matching.  unwrap() converts back to the exception contract
// at legacy boundaries (data::RuntimeModel adapters).

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace bellamy::serve {

enum class ServeStatus {
  kOk = 0,
  kUnknownModel,     ///< no entry for this handle / key
  kNotFitted,        ///< entry exists but holds no serveable model yet
  kInvalidArgument,  ///< malformed key, missing backing store, key collision, ...
  kStoreError,       ///< ModelStore load/save failed (path + reason in message)
  kShutdown,         ///< service is stopping; request not accepted
  kConflict,         ///< lost a race with a concurrent mutation; retry if desired
  kInternalError,    ///< unexpected exception from the model layer
  kTimeout,          ///< a configured deadline elapsed before the op completed
};

inline const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kUnknownModel: return "unknown model";
    case ServeStatus::kNotFitted: return "not fitted";
    case ServeStatus::kInvalidArgument: return "invalid argument";
    case ServeStatus::kStoreError: return "store error";
    case ServeStatus::kShutdown: return "shutdown";
    case ServeStatus::kConflict: return "conflict";
    case ServeStatus::kInternalError: return "internal error";
    case ServeStatus::kTimeout: return "timeout";
  }
  return "unknown status";
}

/// Empty payload for operations that only succeed or fail (persist, erase).
struct Unit {};

template <typename T>
class [[nodiscard]] ServeResult {
 public:
  /// Success (implicit so `return value;` works).
  ServeResult(T value) : value_(std::move(value)) {}

  static ServeResult failure(ServeStatus status, std::string message) {
    ServeResult r;
    r.status_ = status;
    r.message_ = std::move(message);
    return r;
  }

  bool ok() const { return status_ == ServeStatus::kOk; }
  explicit operator bool() const { return ok(); }
  ServeStatus status() const { return status_; }
  /// Failure description; empty on success.
  const std::string& message() const { return message_; }

  /// The payload.  Calling these on a failed result is a programming error
  /// (std::logic_error), not a serving condition.
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T& value() & {
    require_ok();
    return *value_;
  }
  /// Move the payload out.
  T take() {
    require_ok();
    return std::move(*value_);
  }
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Legacy boundary: payload on success, std::runtime_error(message)
  /// otherwise — the contract data::RuntimeModel callers already expect.
  T unwrap() {
    if (!ok()) throw std::runtime_error(error_text());
    return std::move(*value_);
  }
  /// Like unwrap() for results whose payload the caller discards.
  void expect() const {
    if (!ok()) throw std::runtime_error(error_text());
  }

  /// "status: message" (or just the status name) for logs.
  std::string error_text() const {
    std::string text = to_string(status_);
    if (!message_.empty()) {
      text += ": ";
      text += message_;
    }
    return text;
  }

 private:
  ServeResult() = default;

  void require_ok() const {
    if (!ok()) {
      throw std::logic_error(std::string("ServeResult::value on failure (") + error_text() +
                             ")");
    }
  }

  ServeStatus status_ = ServeStatus::kOk;
  std::string message_;
  std::optional<T> value_;
};

/// Convenience for `return ok();` in Unit-returning operations.
inline ServeResult<Unit> ok() { return ServeResult<Unit>(Unit{}); }

}  // namespace bellamy::serve
