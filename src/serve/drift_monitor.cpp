#include "serve/drift_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/replica_pool.hpp"

namespace bellamy::serve {

namespace {

/// Relative error with a floor so near-zero observed runtimes cannot blow
/// the EWMA up to infinity.
double relative_error(double predicted, double observed) {
  const double denom = std::max(std::abs(observed), 1.0);
  return std::abs(predicted - observed) / denom;
}

}  // namespace

DriftMonitor::DriftMonitor(ModelRegistry& registry, DriftOptions options)
    : registry_(registry), options_(std::move(options)) {}

ServeResult<DriftObservation> DriftMonitor::report(const ModelHandle& handle,
                                                   const data::JobRun& run) {
  const auto entry = registry_.resolve(handle);
  if (!entry) {
    return ServeResult<DriftObservation>::failure(ServeStatus::kUnknownModel,
                                                  "report_run: unknown handle");
  }

  // Predict with the handle's CURRENT weights through the same stamp-keyed
  // replica lease serving uses — cheap on the steady-state path and never
  // holding the entry mutex across the forward pass.
  core::ReplicaPool::Lease lease;
  {
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    if (!entry->model) {
      return ServeResult<DriftObservation>::failure(
          ServeStatus::kNotFitted,
          "report_run '" + entry->key.str() + "': no serveable model");
    }
    try {
      lease = entry->pool->acquire(*entry->model);
    } catch (const std::exception& e) {
      return ServeResult<DriftObservation>::failure(
          ServeStatus::kInternalError,
          "report_run '" + entry->key.str() + "': replica acquire failed: " + e.what());
    }
  }
  double predicted = 0.0;
  try {
    predicted = lease.model().predict_one(run);
  } catch (const std::exception& e) {
    return ServeResult<DriftObservation>::failure(
        ServeStatus::kInternalError,
        "report_run '" + entry->key.str() + "': " + e.what());
  }

  const double error = relative_error(predicted, run.runtime_s);

  DriftObservation observation;
  std::vector<data::JobRun> refit_runs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    State& state = states_[handle.id()];
    state.reports += 1;
    state.ewma = state.reports == 1
                     ? error
                     : options_.ewma_alpha * error + (1.0 - options_.ewma_alpha) * state.ewma;
    state.history.push_back(run);
    if (state.history.size() > options_.history_limit) {
      state.history.erase(state.history.begin(),
                          state.history.end() - static_cast<std::ptrdiff_t>(
                                                    options_.history_limit));
    }
    const bool degraded = options_.threshold > 0.0 &&
                          state.reports >= options_.min_reports &&
                          state.ewma > options_.threshold;
    if (degraded && !state.latched) {
      // Exactly once per episode: latch BEFORE queueing, re-arm only below.
      state.latched = true;
      state.refits += 1;
      observation.refit_triggered = true;
      refit_runs = state.history;
    } else if (!degraded && state.latched && state.ewma <= options_.threshold) {
      state.latched = false;  // error recovered: the episode is over
    }
    observation.error_ewma = state.ewma;
    observation.reports = state.reports;
  }

  if (observation.refit_triggered) {
    // Outside the monitor mutex: refit_async takes the entry mutex and must
    // never nest under ours.  The entry's ReductionConfig bounds the cost.
    registry_.refit_async(handle, std::move(refit_runs), options_.finetune,
                          options_.strategy);
  }
  return observation;
}

DriftStats DriftMonitor::stats(const ModelHandle& handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  DriftStats out;
  const auto it = states_.find(handle.id());
  if (it == states_.end()) return out;
  out.error_ewma = it->second.ewma;
  out.reports = it->second.reports;
  out.refits = it->second.refits;
  out.armed = !it->second.latched;
  return out;
}

void DriftMonitor::annotate(const ModelHandle& handle, ServeMetrics& metrics) const {
  const DriftStats s = stats(handle);
  metrics.drift_error_ewma = s.error_ewma;
  metrics.drift_reports = s.reports;
  metrics.drift_refits = s.refits;
}

std::vector<data::JobRun> DriftMonitor::history(const ModelHandle& handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = states_.find(handle.id());
  return it == states_.end() ? std::vector<data::JobRun>{} : it->second.history;
}

}  // namespace bellamy::serve
