#pragma once
// bellamy::serve — the repo's serving front door.
//
//   ModelStore (disk)  ->  ModelRegistry (handles, hot-swap)  ->
//   PredictionService (micro-batching)  ->  ReplicaPool (per-handle replicas)
//
// Typical wiring:
//
//   auto store = std::make_shared<core::ModelStore>("/models");
//   serve::ModelRegistry registry(store);
//   serve::PredictionService service(registry);          // default config
//
//   auto handle = registry.open({"sgd", "c3o-v1"}).unwrap();   // or publish()
//   service.set_qos(handle, {QosClass::kInteractive, 4.0}).expect();
//   auto refit = registry.refit_async(handle, observed, fine); // background
//   double seconds = service.predict(handle, query).unwrap();  // any thread
//
// Every operation returns a ServeResult instead of throwing; ServingModel
// adapts a handle back to the exception-based data::RuntimeModel interface
// for the evaluation harness and the resource selector.  The scheduler
// (adaptive flush deadlines, QoS lanes, cross-handle EDF dispatch,
// background refits) is documented in docs/ARCHITECTURE.md.
//
// The service must be stopped/destroyed before the registry, and the
// registry before the store.

#include "serve/drift_monitor.hpp"       // IWYU pragma: export
#include "serve/model_registry.hpp"      // IWYU pragma: export
#include "serve/prediction_service.hpp"  // IWYU pragma: export
#include "serve/runtime_adapter.hpp"     // IWYU pragma: export
#include "serve/serve_result.hpp"        // IWYU pragma: export
#include "serve/serving_model.hpp"       // IWYU pragma: export
