#pragma once
// Fixed-bucket log-scale latency histogram for the serving hot path.
//
// The scheduler needs request-latency percentiles ONLINE (the wire
// MetricsResponse, the admin `stats` command, and drift-triggered refits all
// read them), but the dispatch path cannot afford per-request allocation or a
// sorted reservoir.  This histogram is a flat array of counters with a
// log-linear bucket layout (HdrHistogram-style): values below 8 us get exact
// buckets, every power-of-two octave above is split into 8 sub-buckets, so
// the relative quantile error is bounded by 12.5% at any magnitude while
// record() is a handful of bit operations and one increment.
//
// Not thread-safe by itself: the PredictionService records under the lane's
// service mutex, which it already holds to count responses.

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace bellamy::serve {

class LatencyHistogram {
 public:
  /// 8 exact buckets + 24 octaves x 8 sub-buckets covers [0, ~134 s) in
  /// microseconds; anything slower saturates into the last bucket.
  static constexpr std::size_t kBuckets = 200;

  /// O(1), allocation-free; safe for any value (saturates at the top).
  void record(std::uint64_t us) {
    counts_[bucket_index(us)] += 1;
    count_ += 1;
  }

  std::uint64_t count() const { return count_; }

  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]); 0 when
  /// empty.  Reported value is conservative: true quantile <= returned value
  /// < true quantile * 1.125.
  std::uint64_t quantile_us(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // ceil(q * count): the rank of the quantile observation.
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.999999));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) return bucket_upper_us(i);
    }
    return bucket_upper_us(kBuckets - 1);
  }

  void reset() {
    counts_.fill(0);
    count_ = 0;
  }

  /// Bucket of a value: exact below 8, then (octave, next-3-bits) above.
  static std::size_t bucket_index(std::uint64_t us) {
    if (us < 8) return static_cast<std::size_t>(us);
    const int b = std::bit_width(us);  // MSB position, >= 4 here
    const std::size_t octave = static_cast<std::size_t>(b - 3);
    const std::size_t sub = static_cast<std::size_t>((us >> (b - 4)) & 7u);
    return std::min(octave * 8 + sub, kBuckets - 1);
  }

  /// Largest value mapping into bucket i (inclusive).
  static std::uint64_t bucket_upper_us(std::size_t i) {
    if (i < 8) return static_cast<std::uint64_t>(i);
    const std::uint64_t octave = i / 8;
    const std::uint64_t sub = i % 8;
    return ((9 + sub) << (octave - 1)) - 1;  // (8+sub+1) * 2^(octave-1) - 1
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
};

}  // namespace bellamy::serve
