#include "serve/runtime_adapter.hpp"

#include <stdexcept>

namespace bellamy::serve {

ServeResult<Unit> try_fit(data::RuntimeModel& model, const std::vector<data::JobRun>& runs) {
  try {
    model.fit(runs);
    return ok();
  } catch (const std::invalid_argument& e) {
    return ServeResult<Unit>::failure(ServeStatus::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    return ServeResult<Unit>::failure(ServeStatus::kInternalError, e.what());
  }
}

ServeResult<double> try_predict(data::RuntimeModel& model, const data::JobRun& query) {
  try {
    return model.predict(query);
  } catch (const std::invalid_argument& e) {
    return ServeResult<double>::failure(ServeStatus::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    return ServeResult<double>::failure(ServeStatus::kInternalError, e.what());
  }
}

ServeResult<std::vector<double>> try_predict_batch(data::RuntimeModel& model,
                                                   const std::vector<data::JobRun>& queries) {
  try {
    return model.predict_batch(queries);
  } catch (const std::invalid_argument& e) {
    return ServeResult<std::vector<double>>::failure(ServeStatus::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    return ServeResult<std::vector<double>>::failure(ServeStatus::kInternalError, e.what());
  }
}

}  // namespace bellamy::serve
