#pragma once
// PredictionService: the concurrent front door of the serve layer.
//
// N client threads call predict(handle, query) (or predict_async for a
// future).  Requests land in a bounded per-handle queue; dispatcher workers
// coalesce whatever is pending into a micro-batch and flush it when either
// the batch is full (max_batch) or the oldest request has waited
// flush_deadline.  A micro-batch executes ONE stacked forward pass on a
// replica checked out of the handle's stamp-keyed ReplicaPool, so
//
//   * concurrent callers share forward passes instead of serializing on a
//     model mutex (a batch of k requests costs ~1 forward, not k), and
//   * a registry refit hot-swaps weights between micro-batches: the stamp
//     change makes the next acquire rebuild the replicas, while in-flight
//     batches finish on the old weights.
//
// Coalescing is bit-transparent: predict_batch is certified bit-identical to
// the per-sample loop, and a replica built from a checkpoint predicts
// bit-identically to its source — so the value a request receives does not
// depend on which micro-batch it rode in (tests/serve/
// test_prediction_service.cpp soaks this under 8+ client threads).
//
// When the queue is full, producers block (backpressure) rather than drop;
// stop() drains every queue before joining the workers, so no accepted
// request is ever lost.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/record.hpp"
#include "serve/model_registry.hpp"
#include "serve/serve_result.hpp"

namespace bellamy::serve {

struct ServiceConfig {
  /// Flush a micro-batch at this many pending requests.  1 disables
  /// coalescing (every request runs its own forward pass).
  std::size_t max_batch = 64;
  /// Bounded queue capacity per handle; producers block when it is full.
  std::size_t max_queue = 1024;
  /// Flush a partial batch once its oldest request has waited this long.
  std::chrono::microseconds flush_deadline{500};
  /// Dispatcher threads executing micro-batches (>= 1).
  std::size_t workers = 1;
};

/// Per-handle serving counters.  A snapshot; not synchronized with in-flight
/// requests beyond the service mutex.
struct ServeMetrics {
  std::uint64_t requests = 0;          ///< accepted into the queue
  std::uint64_t responses = 0;         ///< futures fulfilled (ok or error)
  std::uint64_t batches = 0;           ///< micro-batches executed
  std::uint64_t coalesced = 0;         ///< requests that shared a batch with others
  std::uint64_t deadline_flushes = 0;  ///< partial batches flushed by deadline
  std::uint64_t max_queue_depth = 0;   ///< high-water mark of the pending queue
  std::uint64_t queue_depth = 0;       ///< pending requests right now
  std::uint64_t replica_hits = 0;      ///< handle pool counters (see ReplicaPool)
  std::uint64_t replica_misses = 0;
  std::uint64_t replica_invalidations = 0;

  /// Mean requests per executed micro-batch (0 before the first batch).
  double mean_batch_fill() const {
    return batches == 0 ? 0.0 : static_cast<double>(responses) / static_cast<double>(batches);
  }
};

class PredictionService {
 public:
  /// The registry must outlive the service.
  explicit PredictionService(ModelRegistry& registry, ServiceConfig config = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Blocking predict: enqueue, wait for the micro-batch carrying it.
  ServeResult<double> predict(const ModelHandle& handle, const data::JobRun& query);

  /// Enqueue and return immediately; the future resolves when the request's
  /// micro-batch executes.  Always returns a valid future (errors travel
  /// through it).
  std::future<ServeResult<double>> predict_async(const ModelHandle& handle,
                                                 const data::JobRun& query);

  /// Enqueue all queries (they coalesce like any other traffic) and wait.
  /// Fails with the first per-request error if any; an empty batch is ok.
  ServeResult<std::vector<double>> predict_many(const ModelHandle& handle,
                                                const std::vector<data::JobRun>& queries);

  /// Serving counters for one handle (zeroed until its first request).
  ServeResult<ServeMetrics> metrics(const ModelHandle& handle) const;

  /// Drain every queue, then stop the workers.  Requests arriving after
  /// stop() fail with kShutdown.  Idempotent; the destructor calls it.
  void stop();

  const ServiceConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    data::JobRun query;
    std::promise<ServeResult<double>> promise;
    Clock::time_point enqueued;
  };

  /// Pending traffic of one handle.
  struct Lane {
    std::deque<Request> queue;
    ServeMetrics metrics;
  };

  void worker_loop();
  /// Execute one micro-batch outside the service mutex; returns one result
  /// per request (the caller resolves the promises after counting them).
  std::vector<ServeResult<double>> run_batch(std::uint64_t handle_id,
                                             const std::vector<Request>& batch);
  static std::vector<ServeResult<double>> fail_batch(std::size_t size, ServeStatus status,
                                                     const std::string& message);

  ModelRegistry& registry_;
  ServiceConfig config_;

  mutable std::mutex mutex_;
  std::mutex stop_mutex_;             ///< serializes stop() (join is not reentrant)
  std::condition_variable work_cv_;   ///< signals workers: traffic or stop
  std::condition_variable space_cv_;  ///< signals producers: queue has room
  std::map<std::uint64_t, Lane> lanes_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bellamy::serve
