#pragma once
// PredictionService: the concurrent front door of the serve layer.
//
// N client threads call predict(handle, query) (or predict_async for a
// future).  Requests land in a bounded per-handle lane; dispatcher workers
// coalesce whatever is pending into a micro-batch and flush it when either
// the batch is full (max_batch) or the lane's flush deadline expires.  A
// micro-batch executes ONE stacked forward pass on a replica checked out of
// the handle's stamp-keyed ReplicaPool, so
//
//   * concurrent callers share forward passes instead of serializing on a
//     model mutex (a batch of k requests costs ~1 forward, not k), and
//   * a registry refit hot-swaps weights between micro-batches: the stamp
//     change makes the next acquire rebuild the replicas, while in-flight
//     batches finish on the old weights.
//
// Scheduling (this is the adaptive, fair core — see docs/ARCHITECTURE.md):
//
//   * ADAPTIVE FLUSH: each lane tracks an EWMA of request inter-arrival
//     time.  When the adaptive band [flush_deadline_min, flush_deadline_max]
//     is enabled, the flush deadline is the expected time to fill a batch at
//     the observed rate, clamped to the band — a bursty lane waits long
//     enough to coalesce aggressively, a trickle lane (which could never
//     fill a batch inside the band) answers near-immediately at the band
//     floor.  The effective deadline is exposed through ServeMetrics.
//   * QoS LANES: every lane carries a HandleQos (kInteractive/kBulk class +
//     weight).  The weight divides the flush deadline, so urgent lanes flush
//     sooner and rank earlier.
//   * CROSS-HANDLE DISPATCH: ready lanes enter a central deadline-ordered
//     min-heap (earliest-virtual-deadline-first; class breaks ties) instead
//     of the old id-order lane scan.  A lane's virtual deadline grows from
//     its OLDEST request's arrival time, so a saturated hot lane — whose
//     front is always recent — can never starve a cold lane whose deadline
//     has expired.  Dispatch lag past the virtual deadline is metered
//     (max_dispatch_lag_us / starved_flushes).
//
// Coalescing is bit-transparent: predict_batch is certified bit-identical to
// the per-sample loop, and a replica built from a checkpoint predicts
// bit-identically to its source — so the value a request receives does not
// depend on which micro-batch it rode in (tests/serve/
// test_prediction_service.cpp soaks this under 8+ client threads).
//
// When the queue is full, producers block (backpressure) rather than drop;
// stop() drains every queue before joining the workers, so no accepted
// request is ever lost.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

#include "data/record.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/model_registry.hpp"
#include "serve/serve_result.hpp"

namespace bellamy::serve {

/// QoS class of a lane.  The class picks the tie-break between two lanes
/// whose virtual deadlines collide and documents intent; the weight does the
/// quantitative work (see HandleQos::weight).
enum class QosClass : std::uint8_t {
  kInteractive = 0,  ///< latency-sensitive traffic; wins deadline ties
  kBulk = 1,         ///< throughput traffic; happy to coalesce
};

/// Returns a stable lowercase name ("interactive" / "bulk") for logs and
/// bench output.
const char* to_string(QosClass qos);

/// Per-handle scheduling policy, set via PredictionService::set_qos().
struct HandleQos {
  /// Scheduling class; defaults to interactive (the pre-QoS behavior).
  QosClass qos = QosClass::kInteractive;
  /// Urgency multiplier, > 0.  The lane's flush deadline is DIVIDED by the
  /// weight, so weight 4 flushes (and ranks) 4x sooner and weight 0.5 is
  /// content to wait twice as long.  1.0 = neutral.
  double weight = 1.0;
  /// Aging boost: a hard ceiling on the lane's effective flush deadline,
  /// applied AFTER the weight division (0 = disabled).  A down-weighted
  /// kBulk lane under extreme interactive load can otherwise see its
  /// deadline stretched arbitrarily (long band deadline / small weight);
  /// max_lag guarantees the lane ranks no worse than a request that has
  /// already waited this long, bounding its dispatch lag.
  std::chrono::microseconds max_lag{0};
};

/// Tunables of a PredictionService, fixed at construction.
struct ServeOptions {
  /// Flush a micro-batch at this many pending requests.  1 disables
  /// coalescing (every request runs its own forward pass).
  std::size_t max_batch = 64;
  /// Bounded queue capacity per handle; producers block when it is full.
  std::size_t max_queue = 1024;
  /// Static flush deadline: flush a partial batch once its oldest request
  /// has waited this long.  Used verbatim while the adaptive band is
  /// disabled, and as the effective deadline of a lane that has not seen
  /// two requests yet (no inter-arrival sample).
  std::chrono::microseconds flush_deadline{500};
  /// Adaptive flush band.  When flush_deadline_max > 0, each lane's
  /// effective deadline adapts inside [flush_deadline_min,
  /// flush_deadline_max]: the expected time to fill max_batch at the lane's
  /// EWMA arrival rate, clamped to the band — except that a lane too slow to
  /// fill a batch within the band at all drops to the band FLOOR (waiting
  /// would add latency without adding fill).  flush_deadline_max == 0 (the
  /// default) keeps the static deadline above.
  std::chrono::microseconds flush_deadline_min{50};
  std::chrono::microseconds flush_deadline_max{0};
  /// Smoothing factor of the per-lane inter-arrival EWMA in (0, 1]; higher
  /// adapts faster, lower rides out bursts.
  double ewma_alpha = 0.2;
  /// A batch dispatched more than this far past its virtual deadline counts
  /// as starved (ServeMetrics::starved_flushes).  Purely diagnostic.
  std::chrono::microseconds starvation_lag{10000};
  /// Scheduling policy for lanes that never called set_qos().
  HandleQos default_qos{};
  /// Dispatcher threads executing micro-batches (>= 1).
  std::size_t workers = 1;
};

/// Per-handle serving counters.  A snapshot; not synchronized with in-flight
/// requests beyond the service mutex.
///
/// Accounting invariants (held whenever the lane is drained, certified by
/// tests/serve/test_prediction_service.cpp):
///
///   requests  == responses                       (nothing lost or invented)
///   coalesced + deadline_flushes + drain_flushes == batches
///
/// `coalesced` counts SIZE-triggered flushes (the batch filled to
/// max_batch), `deadline_flushes` counts deadline-triggered partial flushes,
/// `drain_flushes` counts batches pushed out by stop().  Requests that
/// shared a batch with others are tallied separately in coalesced_requests.
struct ServeMetrics {
  std::uint64_t requests = 0;            ///< accepted into the queue
  std::uint64_t responses = 0;           ///< futures fulfilled (ok or error)
  std::uint64_t batches = 0;             ///< micro-batches executed
  std::uint64_t coalesced = 0;           ///< batches flushed full (size-triggered)
  std::uint64_t deadline_flushes = 0;    ///< partial batches flushed by deadline
  std::uint64_t drain_flushes = 0;       ///< batches flushed by stop() drain
  std::uint64_t coalesced_requests = 0;  ///< requests that shared a batch with others
  std::uint64_t max_queue_depth = 0;     ///< high-water mark of the pending queue
  std::uint64_t queue_depth = 0;         ///< pending requests right now
  std::uint64_t replica_hits = 0;        ///< handle pool counters (see ReplicaPool)
  std::uint64_t replica_misses = 0;
  std::uint64_t replica_invalidations = 0;

  // -- scheduler introspection (PR 5) --
  /// Flush deadline the lane's NEXT batch will get (static, or adaptive from
  /// the EWMA below, divided by the QoS weight).
  std::uint64_t effective_flush_deadline_us = 0;
  /// EWMA of request inter-arrival time (0 until two requests arrived).
  double interarrival_ewma_us = 0.0;
  /// Worst observed dispatch lag: how far past its virtual deadline a batch
  /// of this lane started executing.  Bounded lag == no starvation.
  std::uint64_t max_dispatch_lag_us = 0;
  /// Batches whose dispatch lag exceeded ServeOptions::starvation_lag.
  std::uint64_t starved_flushes = 0;

  // -- request-latency percentiles (PR 6) --
  /// Enqueue-to-response latency quantiles from the lane's fixed-bucket
  /// log-scale histogram (serve/latency_histogram.hpp): zero allocation on
  /// the hot path, <= 12.5% relative bucket error.  0 until the first
  /// response.  These feed the wire MetricsResponse and the admin `stats`
  /// console.
  std::uint64_t latency_count = 0;  ///< responses measured into the histogram
  std::uint64_t latency_p50_us = 0;
  std::uint64_t latency_p95_us = 0;
  std::uint64_t latency_p99_us = 0;

  // -- drift monitoring + refit economics (PR 9) --
  /// Relative-prediction-error EWMA over runs reported via report_run
  /// (serve::DriftMonitor); 0 until the first report.
  double drift_error_ewma = 0.0;
  std::uint64_t drift_reports = 0;  ///< observed runs reported for this handle
  std::uint64_t drift_refits = 0;   ///< refits auto-queued by drift detection
  /// Training-data reduction counters from the registry entry: refits that
  /// ran with an active ReductionConfig, cumulative runs they dropped, and
  /// the coreset size of the latest one.
  std::uint64_t reductions = 0;
  std::uint64_t reduction_runs_dropped = 0;
  std::uint64_t reduction_last_kept = 0;

  /// Mean requests per executed micro-batch (0 before the first batch).
  double mean_batch_fill() const {
    return batches == 0 ? 0.0 : static_cast<double>(responses) / static_cast<double>(batches);
  }
};

/// Thread-safe micro-batching prediction front end over a ModelRegistry.
///
/// Thread-safety contract: every public member may be called concurrently
/// from any thread.  predict()/predict_many() block (on the micro-batch, and
/// on backpressure when the lane is full); predict_async() blocks only on
/// backpressure.  stop() is idempotent and drains accepted requests before
/// joining the workers; the destructor calls it.
class PredictionService {
 public:
  /// The registry must outlive the service.
  explicit PredictionService(ModelRegistry& registry, ServeOptions options = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Blocking predict: enqueue, wait for the micro-batch carrying it.
  ServeResult<double> predict(const ModelHandle& handle, const data::JobRun& query);

  /// Enqueue and return immediately; the future resolves when the request's
  /// micro-batch executes.  Always returns a valid future (errors travel
  /// through it).
  std::future<ServeResult<double>> predict_async(const ModelHandle& handle,
                                                 const data::JobRun& query);

  /// Enqueue all queries (they coalesce like any other traffic) and wait.
  /// Fails with the first per-request error if any; an empty batch is ok.
  ServeResult<std::vector<double>> predict_many(const ModelHandle& handle,
                                                const std::vector<data::JobRun>& queries);

  /// Set the handle's scheduling policy (class + weight); takes effect from
  /// the next batch the lane opens.  Fails with kUnknownModel for a retired
  /// handle and kInvalidArgument for a non-positive/non-finite weight.
  ServeResult<Unit> set_qos(const ModelHandle& handle, HandleQos qos);

  /// The handle's current scheduling policy (default_qos until set_qos).
  ServeResult<HandleQos> qos(const ModelHandle& handle) const;

  /// Serving counters for one handle (zeroed until its first request).
  ServeResult<ServeMetrics> metrics(const ModelHandle& handle) const;

  /// Drain every queue, then stop the workers.  Requests arriving after
  /// stop() fail with kShutdown.  Idempotent; the destructor calls it.
  void stop();

  const ServeOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    data::JobRun query;
    std::promise<ServeResult<double>> promise;
    Clock::time_point enqueued;
  };

  /// Why a lane was marked ready to flush.
  enum class FlushReason : std::uint8_t { kSize, kDeadline, kDrain };

  /// Pending traffic of one handle.
  struct Lane {
    std::deque<Request> queue;
    ServeMetrics metrics;
    LatencyHistogram latency;  ///< enqueue-to-response, microseconds
    HandleQos qos;
    /// EWMA of inter-arrival time in microseconds (0 = fewer than two
    /// requests seen).
    double ewma_interarrival_us = 0.0;
    Clock::time_point last_arrival{};
    bool saw_arrival = false;
    /// Scheduling state: a lane is IDLE (empty), ARMED (non-empty, timer
    /// set at `virtual_deadline`), or READY (in the ready heap).  `token`
    /// invalidates stale heap entries: it bumps whenever the lane's front —
    /// and therefore its deadline — changes.
    bool ready = false;
    std::uint64_t token = 0;
    FlushReason reason = FlushReason::kDeadline;
    Clock::time_point virtual_deadline{};
  };

  /// Lazy-deleted entry of the timer heap (earliest deadline first) and the
  /// ready heap (earliest virtual deadline first, interactive wins ties).
  struct HeapEntry {
    Clock::time_point when;
    std::uint8_t qos_class = 0;
    std::uint64_t lane_id = 0;
    std::uint64_t token = 0;
    bool operator>(const HeapEntry& other) const {
      if (when != other.when) return when > other.when;
      if (qos_class != other.qos_class) return qos_class > other.qos_class;
      return lane_id > other.lane_id;
    }
  };
  using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

  void worker_loop();
  /// Flush deadline the lane's next batch gets, in microseconds (adaptive or
  /// static, divided by the QoS weight; always >= 1).
  std::uint64_t effective_deadline_us(const Lane& lane) const;
  /// Mark a non-ready, non-empty lane ready and push it onto the ready heap.
  /// Caller holds the service mutex.
  void mark_ready(std::uint64_t id, Lane& lane, FlushReason reason);
  /// Arm the deadline timer for a non-empty, non-ready lane (front changed).
  /// Caller holds the service mutex.
  void arm_timer(std::uint64_t id, Lane& lane);
  /// Promote lanes whose deadline expired from the timer heap to the ready
  /// heap; returns the earliest still-armed deadline.  Caller holds the
  /// service mutex.
  std::optional<Clock::time_point> promote_expired(Clock::time_point now);
  /// Garbage-collect drained lanes of erased handles.  Caller holds the
  /// service mutex.
  void gc_lanes();
  /// Execute one micro-batch outside the service mutex; returns one result
  /// per request (the caller resolves the promises after counting them).
  std::vector<ServeResult<double>> run_batch(std::uint64_t handle_id,
                                             const std::vector<Request>& batch);
  static std::vector<ServeResult<double>> fail_batch(std::size_t size, ServeStatus status,
                                                     const std::string& message);

  ModelRegistry& registry_;
  ServeOptions options_;

  mutable std::mutex mutex_;
  std::mutex stop_mutex_;             ///< serializes stop() (join is not reentrant)
  std::condition_variable work_cv_;   ///< signals workers: traffic or stop
  std::condition_variable space_cv_;  ///< signals producers: queue has room
  std::map<std::uint64_t, Lane> lanes_;
  MinHeap ready_;                     ///< flushable lanes, earliest deadline first
  MinHeap timers_;                    ///< armed flush deadlines of waiting lanes
  std::uint64_t dispatches_ = 0;      ///< total batches taken (drives lane GC cadence)
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bellamy::serve
