#pragma once
// DriftMonitor: online prediction-error tracking + drift-triggered refits.
//
// Serving answers "how long will this run take"; the cluster eventually
// answers back with the measured runtime.  report() closes that loop (the
// wire path is ReportRunRequest): the monitor predicts the reported run with
// the handle's CURRENT weights, folds the relative error into a per-handle
// EWMA, and keeps the observed run in a bounded history.  When the EWMA
// degrades past `threshold` the monitor auto-queues ONE background refit
// over that history via ModelRegistry::refit_async — the entry's
// ReductionConfig bounds the fine-tune cost, the hot-swap/kConflict
// semantics are untouched, and a latch guarantees exactly one trigger per
// degradation episode: it re-arms only after the EWMA falls back below the
// threshold (a healthy model pulls it down; a refit storm cannot form).
//
// Enel (arXiv 2108.12211) motivates the shape: react to changing cluster
// conditions when they are OBSERVED, not on a fixed refit cadence.
//
// Thread-safe; report() is called from server connection threads.  The
// registry must outlive the monitor.

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/trainer.hpp"
#include "core/variants.hpp"
#include "data/record.hpp"
#include "serve/model_registry.hpp"
#include "serve/prediction_service.hpp"
#include "serve/serve_result.hpp"

namespace bellamy::serve {

struct DriftOptions {
  /// EWMA smoothing factor in (0, 1]; the first report seeds the EWMA.
  double ewma_alpha = 0.2;
  /// Relative-error level that queues a refit; 0 = monitor only (never
  /// triggers, still tracks).
  double threshold = 0.0;
  /// Reports required before the threshold is consulted — one unlucky
  /// first observation must not refit.
  std::uint64_t min_reports = 8;
  /// Observed runs kept per handle (oldest dropped); the triggered refit
  /// trains on this window.
  std::size_t history_limit = 4096;
  /// Fine-tune recipe of triggered refits.
  core::FineTuneConfig finetune;
  core::ReuseStrategy strategy = core::ReuseStrategy::kPartialUnfreeze;
};

/// What one report() observed (also the wire ReportRunResponse payload).
struct DriftObservation {
  double error_ewma = 0.0;
  std::uint64_t reports = 0;
  bool refit_triggered = false;  ///< THIS report crossed the threshold
};

/// Per-handle counters for stats consoles and tests.
struct DriftStats {
  double error_ewma = 0.0;
  std::uint64_t reports = 0;
  std::uint64_t refits = 0;  ///< refits this monitor auto-queued
  bool armed = true;         ///< false while latched inside an episode
};

class DriftMonitor {
 public:
  explicit DriftMonitor(ModelRegistry& registry, DriftOptions options = {});

  DriftMonitor(const DriftMonitor&) = delete;
  DriftMonitor& operator=(const DriftMonitor&) = delete;

  /// Feed one observed run back: predict it with the handle's current
  /// weights, update the error EWMA, remember the run, maybe trigger a
  /// refit.  kUnknownModel / kNotFitted for handles that cannot predict.
  ServeResult<DriftObservation> report(const ModelHandle& handle, const data::JobRun& run);

  /// Counters of the handle (zeroed when it never reported).
  DriftStats stats(const ModelHandle& handle) const;

  /// Copy drift counters into a ServeMetrics snapshot (leaves every other
  /// field alone) — the glue between the monitor and the wire metrics.
  void annotate(const ModelHandle& handle, ServeMetrics& metrics) const;

  /// The bounded observed-run window a triggered refit would train on.
  std::vector<data::JobRun> history(const ModelHandle& handle) const;

  const DriftOptions& options() const { return options_; }

 private:
  struct State {
    double ewma = 0.0;
    std::uint64_t reports = 0;
    std::uint64_t refits = 0;
    bool latched = false;  ///< an episode's refit already fired
    std::vector<data::JobRun> history;
  };

  ModelRegistry& registry_;
  const DriftOptions options_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, State> states_;
};

}  // namespace bellamy::serve
