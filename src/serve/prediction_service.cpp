#include "serve/prediction_service.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace bellamy::serve {

namespace {
/// Lane garbage collection only kicks in past this many lanes — below it,
/// probing the registry per drained lane per wake costs more than the map.
constexpr std::size_t kGcMinLanes = 64;
}  // namespace

PredictionService::PredictionService(ModelRegistry& registry, ServiceConfig config)
    : registry_(registry), config_(config) {
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  config_.max_queue = std::max<std::size_t>(1, config_.max_queue);
  // A batch can never fill past the queue bound — clamp so the size-based
  // flush stays reachable instead of silently degrading to deadline flushes.
  config_.max_batch = std::min(config_.max_batch, config_.max_queue);
  config_.workers = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PredictionService::~PredictionService() { stop(); }

ServeResult<double> PredictionService::predict(const ModelHandle& handle,
                                               const data::JobRun& query) {
  return predict_async(handle, query).get();
}

std::future<ServeResult<double>> PredictionService::predict_async(const ModelHandle& handle,
                                                                  const data::JobRun& query) {
  std::promise<ServeResult<double>> promise;
  std::future<ServeResult<double>> future = promise.get_future();
  if (!registry_.resolve(handle)) {
    promise.set_value(ServeResult<double>::failure(ServeStatus::kUnknownModel,
                                                   "predict: unknown model handle"));
    return future;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  // Bounded queue: block the producer until the dispatcher makes room.  The
  // lane is re-looked-up on every predicate evaluation — a drained lane may
  // be garbage-collected (and recreated by operator[]) while we wait, so a
  // held reference could dangle.
  space_cv_.wait(lock, [&] {
    return stopping_ || lanes_[handle.id()].queue.size() < config_.max_queue;
  });
  if (stopping_) {
    lock.unlock();
    promise.set_value(
        ServeResult<double>::failure(ServeStatus::kShutdown, "service is stopping"));
    return future;
  }
  Lane& lane = lanes_[handle.id()];
  lane.queue.push_back(Request{query, std::move(promise), Clock::now()});
  lane.metrics.requests += 1;
  lane.metrics.queue_depth = lane.queue.size();
  lane.metrics.max_queue_depth =
      std::max<std::uint64_t>(lane.metrics.max_queue_depth, lane.queue.size());
  lock.unlock();
  work_cv_.notify_one();
  return future;
}

ServeResult<std::vector<double>> PredictionService::predict_many(
    const ModelHandle& handle, const std::vector<data::JobRun>& queries) {
  std::vector<std::future<ServeResult<double>>> futures;
  futures.reserve(queries.size());
  for (const data::JobRun& query : queries) {
    futures.push_back(predict_async(handle, query));
  }
  std::vector<double> out(queries.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResult<double> r = futures[i].get();
    if (!r.ok()) {
      // Drain the siblings before reporting — their promises resolve anyway,
      // and abandoning futures mid-batch would hide secondary errors.
      for (std::size_t j = i + 1; j < futures.size(); ++j) futures[j].wait();
      return ServeResult<std::vector<double>>::failure(r.status(), r.message());
    }
    out[i] = r.value();
  }
  return out;
}

ServeResult<ServeMetrics> PredictionService::metrics(const ModelHandle& handle) const {
  const auto entry = registry_.resolve(handle);
  if (!entry) {
    return ServeResult<ServeMetrics>::failure(ServeStatus::kUnknownModel,
                                              "metrics: unknown model handle");
  }
  ServeMetrics out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = lanes_.find(handle.id()); it != lanes_.end()) {
      out = it->second.metrics;
      out.queue_depth = it->second.queue.size();
    }
  }
  out.replica_hits = entry->pool->hits();
  out.replica_misses = entry->pool->misses();
  out.replica_invalidations = entry->pool->invalidations();
  return out;
}

void PredictionService::stop() {
  // One stopper at a time: join() from two threads on the same worker is UB.
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // The workers drained every queue before exiting; anything still pending
  // (a producer raced stop() past the registry check) fails loudly here.
  // These rejections do NOT count as responses — `responses` means "answered
  // through a micro-batch", which keeps mean_batch_fill() honest.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, lane] : lanes_) {
    for (Request& request : lane.queue) {
      request.promise.set_value(
          ServeResult<double>::failure(ServeStatus::kShutdown, "service stopped"));
    }
    lane.queue.clear();
  }
}

void PredictionService::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const Clock::time_point now = Clock::now();
    std::optional<Clock::time_point> nearest_deadline;
    std::uint64_t ready_id = 0;
    Lane* ready_lane = nullptr;
    bool by_deadline = false;
    for (auto it = lanes_.begin(); it != lanes_.end();) {
      Lane& lane = it->second;
      if (lane.queue.empty()) {
        // Garbage-collect lanes of erased handles so lanes_ does not grow
        // (and get scanned) forever under handle churn.  The registry probe
        // runs with the service mutex held, so only bother once the map is
        // big enough for unbounded growth to matter; drained lanes of live
        // handles keep their metrics.
        if (lanes_.size() >= kGcMinLanes && !registry_.resolve_id(it->first)) {
          it = lanes_.erase(it);
        } else {
          ++it;
        }
        continue;
      }
      const Clock::time_point deadline = lane.queue.front().enqueued + config_.flush_deadline;
      if (lane.queue.size() >= config_.max_batch || stopping_ || now >= deadline) {
        ready_id = it->first;
        ready_lane = &lane;
        by_deadline = lane.queue.size() < config_.max_batch && !stopping_;
        break;
      }
      if (!nearest_deadline || deadline < *nearest_deadline) nearest_deadline = deadline;
      ++it;
    }

    if (ready_lane) {
      const std::size_t take = std::min(ready_lane->queue.size(), config_.max_batch);
      std::vector<Request> batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(ready_lane->queue.front()));
        ready_lane->queue.pop_front();
      }
      ready_lane->metrics.batches += 1;
      if (take > 1) ready_lane->metrics.coalesced += take;
      if (by_deadline) ready_lane->metrics.deadline_flushes += 1;
      ready_lane->metrics.queue_depth = ready_lane->queue.size();
      lock.unlock();
      space_cv_.notify_all();
      std::vector<ServeResult<double>> results = run_batch(ready_id, batch);
      // Count the responses BEFORE resolving the futures: a client that
      // reads metrics right after .get() must see its own response.  find(),
      // not operator[] — the lane may have been garbage-collected while the
      // batch ran, and resurrecting it would leave inconsistent metrics.
      lock.lock();
      if (const auto it = lanes_.find(ready_id); it != lanes_.end()) {
        it->second.metrics.responses += take;
      }
      lock.unlock();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].promise.set_value(std::move(results[i]));
      }
      lock.lock();
      continue;
    }

    if (stopping_) return;  // every queue is empty
    if (nearest_deadline) {
      work_cv_.wait_until(lock, *nearest_deadline);
    } else {
      work_cv_.wait(lock);
    }
  }
}

std::vector<ServeResult<double>> PredictionService::fail_batch(std::size_t size,
                                                               ServeStatus status,
                                                               const std::string& message) {
  std::vector<ServeResult<double>> results;
  results.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    results.push_back(ServeResult<double>::failure(status, message));
  }
  return results;
}

std::vector<ServeResult<double>> PredictionService::run_batch(
    std::uint64_t handle_id, const std::vector<Request>& batch) {
  const auto entry = registry_.resolve_id(handle_id);
  if (!entry) {
    return fail_batch(batch.size(), ServeStatus::kUnknownModel,
                      "model was erased while the request was queued");
  }

  // Check a replica out of the handle's pool.  The entry mutex covers the
  // acquire so a concurrent refit cannot swap the model mid-serialization;
  // on the steady-state hit path this is a stamp compare + vector pop.
  core::ReplicaPool::Lease lease;
  {
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    if (!entry->model) {
      return fail_batch(
          batch.size(), ServeStatus::kNotFitted,
          "'" + entry->key.str() + "' has no serveable model — publish or refit first");
    }
    try {
      lease = entry->pool->acquire(*entry->model);
    } catch (const std::exception& e) {
      return fail_batch(batch.size(), ServeStatus::kInternalError,
                        "'" + entry->key.str() + "': replica acquire failed: " + e.what());
    }
  }

  std::vector<data::JobRun> queries;
  queries.reserve(batch.size());
  for (const Request& request : batch) queries.push_back(request.query);

  try {
    // One stacked forward pass for the whole micro-batch — bit-identical to
    // a per-request predict loop by the predict_batch contract.
    const std::vector<double> predictions = lease.model().predict_batch(queries);
    std::vector<ServeResult<double>> results;
    results.reserve(batch.size());
    for (const double prediction : predictions) results.push_back(prediction);
    return results;
  } catch (const std::exception& e) {
    return fail_batch(batch.size(), ServeStatus::kInternalError,
                      "'" + entry->key.str() + "': batch forward failed: " + e.what());
  }
}

}  // namespace bellamy::serve
