#include "serve/prediction_service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace bellamy::serve {

namespace {
/// Lane garbage collection only kicks in past this many lanes — below it,
/// probing the registry per drained lane costs more than the map.
constexpr std::size_t kGcMinLanes = 64;
/// ...and only every this many dispatched batches, so the sweep (which
/// probes the registry under the service mutex) stays off the hot path.
constexpr std::uint64_t kGcEveryDispatches = 256;

std::uint64_t saturating_us(std::chrono::steady_clock::duration d) {
  if (d <= std::chrono::steady_clock::duration::zero()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}
}  // namespace

const char* to_string(QosClass qos) {
  return qos == QosClass::kInteractive ? "interactive" : "bulk";
}

PredictionService::PredictionService(ModelRegistry& registry, ServeOptions options)
    : registry_(registry), options_(options) {
  options_.max_batch = std::max<std::size_t>(1, options_.max_batch);
  options_.max_queue = std::max<std::size_t>(1, options_.max_queue);
  // A batch can never fill past the queue bound — clamp so the size-based
  // flush stays reachable instead of silently degrading to deadline flushes.
  options_.max_batch = std::min(options_.max_batch, options_.max_queue);
  options_.workers = std::max<std::size_t>(1, options_.workers);
  if (options_.flush_deadline_max.count() > 0 &&
      options_.flush_deadline_min > options_.flush_deadline_max) {
    options_.flush_deadline_min = options_.flush_deadline_max;
  }
  if (!(options_.ewma_alpha > 0.0) || options_.ewma_alpha > 1.0) options_.ewma_alpha = 0.2;
  if (!(options_.default_qos.weight > 0.0) || !std::isfinite(options_.default_qos.weight)) {
    options_.default_qos.weight = 1.0;
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PredictionService::~PredictionService() { stop(); }

ServeResult<double> PredictionService::predict(const ModelHandle& handle,
                                               const data::JobRun& query) {
  return predict_async(handle, query).get();
}

std::future<ServeResult<double>> PredictionService::predict_async(const ModelHandle& handle,
                                                                  const data::JobRun& query) {
  std::promise<ServeResult<double>> promise;
  std::future<ServeResult<double>> future = promise.get_future();
  if (!registry_.resolve(handle)) {
    promise.set_value(ServeResult<double>::failure(ServeStatus::kUnknownModel,
                                                   "predict: unknown model handle"));
    return future;
  }

  auto lane_for = [this](std::uint64_t id) -> Lane& {
    const auto [it, inserted] = lanes_.try_emplace(id);
    if (inserted) it->second.qos = options_.default_qos;
    return it->second;
  };

  std::unique_lock<std::mutex> lock(mutex_);
  // Bounded queue: block the producer until the dispatcher makes room.  The
  // lane is re-looked-up on every predicate evaluation — a drained lane may
  // be garbage-collected (and recreated) while we wait, so a held reference
  // could dangle.
  space_cv_.wait(lock, [&] {
    return stopping_ || lane_for(handle.id()).queue.size() < options_.max_queue;
  });
  if (stopping_) {
    lock.unlock();
    promise.set_value(
        ServeResult<double>::failure(ServeStatus::kShutdown, "service is stopping"));
    return future;
  }
  Lane& lane = lane_for(handle.id());
  const Clock::time_point now = Clock::now();
  // Inter-arrival EWMA: the signal the adaptive flush deadline feeds on.
  if (lane.saw_arrival) {
    const double ia_us =
        std::chrono::duration<double, std::micro>(now - lane.last_arrival).count();
    lane.ewma_interarrival_us =
        lane.ewma_interarrival_us == 0.0
            ? ia_us
            : options_.ewma_alpha * ia_us +
                  (1.0 - options_.ewma_alpha) * lane.ewma_interarrival_us;
  }
  lane.saw_arrival = true;
  lane.last_arrival = now;

  lane.queue.push_back(Request{query, std::move(promise), now});
  lane.metrics.requests += 1;
  lane.metrics.queue_depth = lane.queue.size();
  lane.metrics.max_queue_depth =
      std::max<std::uint64_t>(lane.metrics.max_queue_depth, lane.queue.size());
  if (!lane.ready) {
    if (lane.queue.size() >= options_.max_batch) {
      mark_ready(handle.id(), lane, FlushReason::kSize);
    } else if (lane.queue.size() == 1) {
      arm_timer(handle.id(), lane);
    }
  }
  lock.unlock();
  // Wake a worker either way: a new ready lane needs a dispatcher, a newly
  // armed deadline may be earlier than the one a worker is sleeping on.
  work_cv_.notify_one();
  return future;
}

ServeResult<std::vector<double>> PredictionService::predict_many(
    const ModelHandle& handle, const std::vector<data::JobRun>& queries) {
  std::vector<std::future<ServeResult<double>>> futures;
  futures.reserve(queries.size());
  for (const data::JobRun& query : queries) {
    futures.push_back(predict_async(handle, query));
  }
  std::vector<double> out(queries.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResult<double> r = futures[i].get();
    if (!r.ok()) {
      // Drain the siblings before reporting — their promises resolve anyway,
      // and abandoning futures mid-batch would hide secondary errors.
      for (std::size_t j = i + 1; j < futures.size(); ++j) futures[j].wait();
      return ServeResult<std::vector<double>>::failure(r.status(), r.message());
    }
    out[i] = r.value();
  }
  return out;
}

ServeResult<Unit> PredictionService::set_qos(const ModelHandle& handle, HandleQos qos) {
  if (!(qos.weight > 0.0) || !std::isfinite(qos.weight)) {
    return ServeResult<Unit>::failure(ServeStatus::kInvalidArgument,
                                      "set_qos: weight must be a positive finite number");
  }
  if (qos.max_lag.count() < 0) {
    return ServeResult<Unit>::failure(ServeStatus::kInvalidArgument,
                                      "set_qos: max_lag must be >= 0 (0 disables the cap)");
  }
  if (!registry_.resolve(handle)) {
    return ServeResult<Unit>::failure(ServeStatus::kUnknownModel,
                                      "set_qos: unknown model handle");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  lanes_.try_emplace(handle.id()).first->second.qos = qos;
  return ok();
}

ServeResult<HandleQos> PredictionService::qos(const ModelHandle& handle) const {
  if (!registry_.resolve(handle)) {
    return ServeResult<HandleQos>::failure(ServeStatus::kUnknownModel,
                                           "qos: unknown model handle");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = lanes_.find(handle.id()); it != lanes_.end()) return it->second.qos;
  return options_.default_qos;
}

ServeResult<ServeMetrics> PredictionService::metrics(const ModelHandle& handle) const {
  const auto entry = registry_.resolve(handle);
  if (!entry) {
    return ServeResult<ServeMetrics>::failure(ServeStatus::kUnknownModel,
                                              "metrics: unknown model handle");
  }
  ServeMetrics out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = lanes_.find(handle.id()); it != lanes_.end()) {
      out = it->second.metrics;
      out.queue_depth = it->second.queue.size();
      out.effective_flush_deadline_us = effective_deadline_us(it->second);
      out.interarrival_ewma_us = it->second.ewma_interarrival_us;
      out.latency_count = it->second.latency.count();
      out.latency_p50_us = it->second.latency.quantile_us(0.50);
      out.latency_p95_us = it->second.latency.quantile_us(0.95);
      out.latency_p99_us = it->second.latency.quantile_us(0.99);
    }
  }
  out.replica_hits = entry->pool->hits();
  out.replica_misses = entry->pool->misses();
  out.replica_invalidations = entry->pool->invalidations();
  return out;
}

void PredictionService::stop() {
  // One stopper at a time: join() from two threads on the same worker is UB.
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // The workers drained every queue before exiting; anything still pending
  // (a producer raced stop() past the registry check) fails loudly here.
  // These rejections do NOT count as responses — `responses` means "answered
  // through a micro-batch", which keeps mean_batch_fill() honest.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, lane] : lanes_) {
    for (Request& request : lane.queue) {
      request.promise.set_value(
          ServeResult<double>::failure(ServeStatus::kShutdown, "service stopped"));
    }
    lane.queue.clear();
  }
}

std::uint64_t PredictionService::effective_deadline_us(const Lane& lane) const {
  double base_us = static_cast<double>(options_.flush_deadline.count());
  if (options_.flush_deadline_max.count() > 0) {
    const double min_us = static_cast<double>(options_.flush_deadline_min.count());
    const double max_us = static_cast<double>(options_.flush_deadline_max.count());
    if (lane.ewma_interarrival_us == 0.0) {
      // No inter-arrival sample yet: start from the static deadline, inside
      // the band.
      base_us = std::clamp(base_us, min_us, max_us);
    } else {
      // Expected time to fill the rest of a batch at the observed rate.  A
      // lane too slow to fill one inside the band gets the band FLOOR:
      // waiting longer would add latency without adding fill.
      const double expected_fill_us =
          lane.ewma_interarrival_us * static_cast<double>(options_.max_batch - 1);
      base_us = expected_fill_us > max_us ? min_us : std::max(expected_fill_us, min_us);
    }
  }
  double scaled = base_us / lane.qos.weight;
  // Aging cap: no matter how the band and weight stretch the deadline, a
  // capped lane never waits (nor ranks) worse than max_lag — the boost that
  // keeps down-weighted kBulk lanes live under extreme interactive load.
  if (lane.qos.max_lag.count() > 0) {
    scaled = std::min(scaled, static_cast<double>(lane.qos.max_lag.count()));
  }
  return static_cast<std::uint64_t>(std::llround(std::max(1.0, scaled)));
}

void PredictionService::mark_ready(std::uint64_t id, Lane& lane, FlushReason reason) {
  lane.ready = true;
  lane.reason = reason;
  ++lane.token;  // invalidate any armed timer entry
  // EDF rank: the deadline the lane's OLDEST request is entitled to.  A hot
  // lane that fills instantly still ranks by its (recent) front arrival, so
  // an expired cold lane always sorts ahead of it — the no-starvation
  // property.
  lane.virtual_deadline =
      lane.queue.front().enqueued + std::chrono::microseconds(effective_deadline_us(lane));
  ready_.push(HeapEntry{lane.virtual_deadline, static_cast<std::uint8_t>(lane.qos.qos), id,
                        lane.token});
}

void PredictionService::arm_timer(std::uint64_t id, Lane& lane) {
  ++lane.token;
  lane.virtual_deadline =
      lane.queue.front().enqueued + std::chrono::microseconds(effective_deadline_us(lane));
  timers_.push(HeapEntry{lane.virtual_deadline, static_cast<std::uint8_t>(lane.qos.qos), id,
                         lane.token});
}

std::optional<PredictionService::Clock::time_point> PredictionService::promote_expired(
    Clock::time_point now) {
  while (!timers_.empty()) {
    const HeapEntry top = timers_.top();
    const auto it = lanes_.find(top.lane_id);
    // Lazy deletion: the token bumps whenever the lane's front (and so its
    // deadline) changed after this entry was pushed.
    if (it == lanes_.end() || it->second.token != top.token || it->second.ready ||
        it->second.queue.empty()) {
      timers_.pop();
      continue;
    }
    if (top.when > now) return top.when;  // earliest live deadline, still ahead
    timers_.pop();
    mark_ready(top.lane_id, it->second, FlushReason::kDeadline);
  }
  return std::nullopt;
}

void PredictionService::gc_lanes() {
  // Garbage-collect lanes of erased handles so lanes_ does not grow forever
  // under handle churn.  The registry probe runs with the service mutex
  // held, so only bother once the map is big enough for unbounded growth to
  // matter; drained lanes of live handles keep their metrics.
  if (lanes_.size() < kGcMinLanes) return;
  for (auto it = lanes_.begin(); it != lanes_.end();) {
    if (it->second.queue.empty() && !it->second.ready && !registry_.resolve_id(it->first)) {
      it = lanes_.erase(it);  // heap entries for this id go stale and get skipped
    } else {
      ++it;
    }
  }
}

void PredictionService::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const Clock::time_point now = Clock::now();
    const std::optional<Clock::time_point> next_deadline = promote_expired(now);
    if (stopping_) {
      // Drain: every waiting lane flushes now, deadlines notwithstanding.
      for (auto& [id, lane] : lanes_) {
        if (!lane.ready && !lane.queue.empty()) mark_ready(id, lane, FlushReason::kDrain);
      }
    }

    if (!ready_.empty()) {
      const HeapEntry top = ready_.top();
      ready_.pop();
      const auto it = lanes_.find(top.lane_id);
      if (it == lanes_.end() || !it->second.ready || it->second.token != top.token ||
          it->second.queue.empty()) {
        continue;  // stale entry (lane dispatched, re-ranked, or collected)
      }
      Lane& lane = it->second;
      const std::size_t take = std::min(lane.queue.size(), options_.max_batch);
      std::vector<Request> batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(lane.queue.front()));
        lane.queue.pop_front();
      }
      lane.metrics.batches += 1;
      switch (lane.reason) {
        case FlushReason::kSize: lane.metrics.coalesced += 1; break;
        case FlushReason::kDeadline: lane.metrics.deadline_flushes += 1; break;
        case FlushReason::kDrain: lane.metrics.drain_flushes += 1; break;
      }
      if (take > 1) lane.metrics.coalesced_requests += take;
      const std::uint64_t lag_us = saturating_us(now - lane.virtual_deadline);
      lane.metrics.max_dispatch_lag_us =
          std::max(lane.metrics.max_dispatch_lag_us, lag_us);
      if (lag_us > static_cast<std::uint64_t>(options_.starvation_lag.count())) {
        lane.metrics.starved_flushes += 1;
      }
      lane.metrics.queue_depth = lane.queue.size();
      lane.ready = false;
      ++lane.token;
      if (!lane.queue.empty()) {
        // Leftover traffic re-enters the scheduler under the lane's NEW
        // front: full again -> ready now, else re-arm its deadline.
        if (lane.queue.size() >= options_.max_batch) {
          mark_ready(top.lane_id, lane, FlushReason::kSize);
        } else if (stopping_) {
          mark_ready(top.lane_id, lane, FlushReason::kDrain);
        } else {
          arm_timer(top.lane_id, lane);
        }
      }
      if (++dispatches_ % kGcEveryDispatches == 0) gc_lanes();
      // Read the heap before unlocking — it is mutex_-guarded state.
      const bool more_ready = !ready_.empty();

      lock.unlock();
      space_cv_.notify_all();
      if (more_ready) work_cv_.notify_one();  // more work: wake a sibling
      std::vector<ServeResult<double>> results = run_batch(top.lane_id, batch);
      // Count the responses BEFORE resolving the futures: a client that
      // reads metrics right after .get() must see its own response.  find(),
      // not operator[] — the lane may have been garbage-collected while the
      // batch ran, and resurrecting it would leave inconsistent metrics.
      lock.lock();
      if (const auto post = lanes_.find(top.lane_id); post != lanes_.end()) {
        post->second.metrics.responses += take;
        // Enqueue-to-response latency, recorded before the futures resolve so
        // a client reading metrics after .get() sees its own sample.  The
        // histogram increment is allocation-free (flat counter array).
        const Clock::time_point done = Clock::now();
        for (const Request& request : batch) {
          post->second.latency.record(saturating_us(done - request.enqueued));
        }
      }
      lock.unlock();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].promise.set_value(std::move(results[i]));
      }
      lock.lock();
      continue;
    }

    if (stopping_) return;  // nothing ready and every queue drained
    if (next_deadline) {
      work_cv_.wait_until(lock, *next_deadline);
    } else {
      work_cv_.wait(lock);
    }
  }
}

std::vector<ServeResult<double>> PredictionService::fail_batch(std::size_t size,
                                                               ServeStatus status,
                                                               const std::string& message) {
  std::vector<ServeResult<double>> results;
  results.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    results.push_back(ServeResult<double>::failure(status, message));
  }
  return results;
}

std::vector<ServeResult<double>> PredictionService::run_batch(
    std::uint64_t handle_id, const std::vector<Request>& batch) {
  const auto entry = registry_.resolve_id(handle_id);
  if (!entry) {
    return fail_batch(batch.size(), ServeStatus::kUnknownModel,
                      "model was erased while the request was queued");
  }

  // Check a replica out of the handle's pool.  The entry mutex covers the
  // acquire so a concurrent refit cannot swap the model mid-serialization;
  // on the steady-state hit path this is a stamp compare + vector pop.
  core::ReplicaPool::Lease lease;
  {
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    if (!entry->model) {
      return fail_batch(
          batch.size(), ServeStatus::kNotFitted,
          "'" + entry->key.str() + "' has no serveable model — publish or refit first");
    }
    try {
      lease = entry->pool->acquire(*entry->model);
    } catch (const std::exception& e) {
      return fail_batch(batch.size(), ServeStatus::kInternalError,
                        "'" + entry->key.str() + "': replica acquire failed: " + e.what());
    }
  }

  std::vector<data::JobRun> queries;
  queries.reserve(batch.size());
  for (const Request& request : batch) queries.push_back(request.query);

  try {
    // One stacked forward pass for the whole micro-batch — bit-identical to
    // a per-request predict loop by the predict_batch contract.
    const std::vector<double> predictions = lease.model().predict_batch(queries);
    std::vector<ServeResult<double>> results;
    results.reserve(batch.size());
    for (const double prediction : predictions) results.push_back(prediction);
    return results;
  } catch (const std::exception& e) {
    return fail_batch(batch.size(), ServeStatus::kInternalError,
                      "'" + entry->key.str() + "': batch forward failed: " + e.what());
  }
}

}  // namespace bellamy::serve
