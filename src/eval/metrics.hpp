#pragma once
// Prediction-error metrics used in the evaluation: mean relative error (MRE,
// Fig. 5) and mean absolute error (MAE, Figs. 6/8), plus RMSE for tests.

#include <cstddef>
#include <vector>

namespace bellamy::eval {

/// |pred - actual|.
double absolute_error(double predicted, double actual);
/// |pred - actual| / |actual|; throws std::invalid_argument if actual == 0.
double relative_error(double predicted, double actual);

struct ErrorStats {
  double mae = 0.0;
  double mre = 0.0;
  double rmse = 0.0;
  std::size_t count = 0;
};

/// Streaming accumulator over (predicted, actual) pairs.
class ErrorAccumulator {
 public:
  void add(double predicted, double actual);
  void merge(const ErrorAccumulator& other);
  ErrorStats stats() const;
  std::size_t count() const { return n_; }

 private:
  double abs_sum_ = 0.0;
  double rel_sum_ = 0.0;
  double sq_sum_ = 0.0;
  std::size_t n_ = 0;
};

/// Convenience: stats over parallel vectors (sizes must match).
ErrorStats compute_errors(const std::vector<double>& predicted,
                          const std::vector<double>& actual);

}  // namespace bellamy::eval
