#pragma once
// Random sub-sampling cross-validation splits (paper §IV-C):
//
// "For every fixed amount of training data points, random training points are
//  selected from the dataset such that the scale-outs of the data points are
//  pairwise different.  To evaluate the interpolation capabilities ... we
//  randomly select a test point such that its scale-out lies in the range of
//  the training points.  For evaluating the extrapolation capabilities, we
//  randomly select a test point such that its scale-out lies outside of the
//  range of the training points."
//
// Splits are deduplicated; generation stops at `max_splits` unique splits or
// when the attempt budget is exhausted.

#include <cstdint>
#include <optional>
#include <vector>

#include "data/record.hpp"

namespace bellamy::util {
class Rng;
}

namespace bellamy::eval {

struct Split {
  std::vector<std::size_t> train;                ///< indices into the context's runs
  std::optional<std::size_t> interpolation_test; ///< in-range test point
  std::optional<std::size_t> extrapolation_test; ///< out-of-range test point
};

/// Generate up to `max_splits` unique splits with `num_train_points` training
/// points over the runs of one context.  Splits where no valid interpolation
/// (resp. extrapolation) point exists carry nullopt for that test.  With
/// num_train_points == 0 the split is extrapolation-only: a bare test point.
std::vector<Split> generate_splits(const std::vector<data::JobRun>& runs,
                                   std::size_t num_train_points, std::size_t max_splits,
                                   util::Rng& rng);

/// Convenience accessors.
std::vector<data::JobRun> train_runs(const std::vector<data::JobRun>& runs, const Split& s);

}  // namespace bellamy::eval
