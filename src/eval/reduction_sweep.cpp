#include "eval/reduction_sweep.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "core/bellamy_model.hpp"
#include "core/variants.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "util/rng.hpp"

namespace bellamy::eval {
namespace {

/// One evaluation context, prepared once and reused by every grid cell: the
/// history/holdout split plus a base model pre-trained on every OTHER
/// context, with its post-pretrain parameters snapshotted so each refit
/// starts from the identical state.
struct PreparedContext {
  std::string key;
  std::vector<data::JobRun> history;
  std::vector<data::JobRun> holdout;
  std::unique_ptr<core::BellamyModel> model;
  std::vector<nn::Matrix> base;
};

/// Split a context's runs into history and held-out slices.  Membership is a
/// seeded draw; BOTH slices preserve the original run order so the recency
/// policy still sees a meaningful history axis.
void split_runs(const std::vector<data::JobRun>& runs, double eval_fraction, util::Rng& rng,
                std::vector<data::JobRun>& history, std::vector<data::JobRun>& holdout) {
  const auto n = runs.size();
  auto want = static_cast<std::size_t>(eval_fraction * static_cast<double>(n));
  want = std::clamp<std::size_t>(want, 1, n - 1);  // both sides non-empty
  std::vector<bool> held(n, false);
  for (const std::size_t i : rng.sample_without_replacement(n, want)) held[i] = true;
  for (std::size_t i = 0; i < n; ++i) (held[i] ? holdout : history).push_back(runs[i]);
}

/// Restore the base parameters, reduce the history, fine-tune, and score the
/// holdout.  Returns wall-clock seconds of reduce + finetune (restore and
/// evaluation are bookkeeping, not refit cost).
double refit_and_score(PreparedContext& ctx, const reduce::ReductionConfig& reduction,
                       const core::FineTuneConfig& finetune, ErrorAccumulator& errors,
                       reduce::ReductionReport* report) {
  ctx.model->restore_parameters(ctx.base);
  const core::FineTuneConfig tuned = core::apply_reuse_strategy(
      core::ReuseStrategy::kPartialUnfreeze, *ctx.model, finetune);

  const auto start = std::chrono::steady_clock::now();
  const std::vector<data::JobRun> kept =
      reduce::reduce_runs(ctx.history, reduction, ctx.model.get(), report);
  core::finetune(*ctx.model, kept, tuned);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  const std::vector<double> predicted = ctx.model->predict_batch(ctx.holdout);
  for (std::size_t i = 0; i < ctx.holdout.size(); ++i) {
    errors.add(predicted[i], ctx.holdout[i].runtime_s);
  }
  return elapsed.count();
}

}  // namespace

ReductionSweepResult run_reduction_sweep(const data::Dataset& c3o,
                                         const ReductionSweepConfig& cfg) {
  const std::vector<data::ContextGroup> groups = c3o.contexts();
  if (groups.empty()) throw std::invalid_argument("reduction sweep: empty dataset");
  if (cfg.budgets.empty() || cfg.policies.empty()) {
    throw std::invalid_argument("reduction sweep: empty grid");
  }

  util::Rng rng(cfg.seed);
  std::vector<std::size_t> picked =
      select_evaluation_contexts(groups, std::max<std::size_t>(cfg.contexts, 1), rng);

  // Prepare every context up front so all cells share the same splits and
  // base checkpoints.
  std::vector<PreparedContext> contexts;
  for (const std::size_t gi : picked) {
    const data::ContextGroup& group = groups[gi];
    if (group.runs.size() < 2) continue;
    PreparedContext ctx;
    ctx.key = group.key;
    split_runs(group.runs, cfg.eval_fraction, rng, ctx.history, ctx.holdout);
    ctx.model = std::make_unique<core::BellamyModel>(cfg.model_config, cfg.seed);
    const data::Dataset corpus = c3o.exclude_context(group.key);
    core::pretrain(*ctx.model, corpus.runs().empty() ? group.runs : corpus.runs(),
                   cfg.pretrain);
    ctx.base = ctx.model->snapshot_parameters();
    contexts.push_back(std::move(ctx));
  }
  if (contexts.empty()) throw std::invalid_argument("reduction sweep: no usable contexts");

  ReductionSweepResult result;

  // Reference: full-history refit per context.
  result.full.policy = reduce::policy_name(reduce::ReductionPolicy::kNone);
  ErrorAccumulator full_errors;
  for (PreparedContext& ctx : contexts) {
    reduce::ReductionReport report;
    result.full.refit_seconds +=
        refit_and_score(ctx, reduce::ReductionConfig{}, cfg.finetune, full_errors, &report);
    result.full.input_runs += report.input_runs;
    result.full.kept_runs += report.kept_runs;
  }
  result.full.mae_seconds = full_errors.stats().mae;

  // The (policy, budget) grid.
  for (const reduce::ReductionPolicy policy : cfg.policies) {
    for (const std::size_t budget : cfg.budgets) {
      reduce::ReductionConfig reduction;
      reduction.policy = policy;
      reduction.budget = budget;
      reduction.seed = cfg.seed;

      ReductionPoint point;
      point.policy = reduce::policy_name(policy);
      point.budget = budget;
      ErrorAccumulator errors;
      for (PreparedContext& ctx : contexts) {
        reduce::ReductionReport report;
        point.refit_seconds += refit_and_score(ctx, reduction, cfg.finetune, errors, &report);
        point.input_runs += report.input_runs;
        point.kept_runs += report.kept_runs;
        point.scaleout_coverage = std::min(point.scaleout_coverage, report.scaleout_coverage());
      }
      point.mae_seconds = errors.stats().mae;
      point.refit_speedup =
          point.refit_seconds > 0.0 ? result.full.refit_seconds / point.refit_seconds : 1.0;
      point.mae_ratio =
          result.full.mae_seconds > 0.0 ? point.mae_seconds / result.full.mae_seconds : 1.0;
      result.points.push_back(std::move(point));
    }
  }
  return result;
}

}  // namespace bellamy::eval
