#include "eval/report.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

namespace bellamy::eval {

namespace {
std::map<SeriesKey, ErrorAccumulator> accumulate_series(const std::vector<EvalRecord>& records,
                                                        const std::string& task) {
  std::map<SeriesKey, ErrorAccumulator> acc;
  for (const auto& r : records) {
    if (r.task != task) continue;
    acc[{r.algorithm, r.model, r.num_points}].add(r.predicted, r.actual);
  }
  return acc;
}
}  // namespace

std::map<SeriesKey, ErrorStats> aggregate_series(const std::vector<EvalRecord>& records,
                                                 const std::string& task) {
  std::map<SeriesKey, ErrorStats> out;
  for (const auto& [key, acc] : accumulate_series(records, task)) out[key] = acc.stats();
  return out;
}

std::map<PairKey, ErrorStats> aggregate_overall(const std::vector<EvalRecord>& records,
                                                const std::string& task) {
  std::map<PairKey, ErrorAccumulator> acc;
  for (const auto& r : records) {
    if (r.task != task) continue;
    acc[{r.algorithm, r.model}].add(r.predicted, r.actual);
  }
  std::map<PairKey, ErrorStats> out;
  for (const auto& [key, a] : acc) out[key] = a.stats();
  return out;
}

std::map<std::string, double> mean_fit_seconds(const std::vector<FitRecord>& fits) {
  std::map<std::string, std::pair<double, std::size_t>> acc;
  for (const auto& f : fits) {
    auto& [sum, n] = acc[f.model];
    sum += f.fit_seconds;
    ++n;
  }
  std::map<std::string, double> out;
  for (const auto& [model, sn] : acc) out[model] = sn.first / static_cast<double>(sn.second);
  return out;
}

std::map<PairKey, std::vector<double>> epochs_by_algorithm_model(
    const std::vector<FitRecord>& fits) {
  std::map<PairKey, std::vector<double>> out;
  for (const auto& f : fits) {
    out[{f.algorithm, f.model}].push_back(static_cast<double>(f.epochs));
  }
  return out;
}

std::vector<std::string> distinct_models(const std::vector<EvalRecord>& records) {
  std::vector<std::string> out;
  for (const auto& r : records) {
    if (std::find(out.begin(), out.end(), r.model) == out.end()) out.push_back(r.model);
  }
  return out;
}

std::vector<std::string> distinct_algorithms(const std::vector<EvalRecord>& records) {
  std::vector<std::string> out;
  for (const auto& r : records) {
    if (std::find(out.begin(), out.end(), r.algorithm) == out.end()) {
      out.push_back(r.algorithm);
    }
  }
  return out;
}

void print_banner(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("  %s\n", title.c_str());
  std::printf("  bellamy-cpp reproduction | hw_threads=%u | build=" __DATE__ "\n",
              std::thread::hardware_concurrency());
  std::printf("==============================================================\n");
}

std::string ascii_bar(double value, double maximum, std::size_t width) {
  if (maximum <= 0.0 || value < 0.0) return std::string(width, '-');
  const double frac = std::min(1.0, value / maximum);
  const auto filled = static_cast<std::size_t>(frac * static_cast<double>(width) + 0.5);
  return std::string(filled, '#') + std::string(width - filled, '-');
}

}  // namespace bellamy::eval
