#pragma once
// Aggregation and text-report helpers shared by the bench binaries.  All
// tabular output is TSV so the printed series can be diffed / plotted
// directly; a small ASCII bar helper mirrors the paper's bar charts.

#include <map>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/metrics.hpp"

namespace bellamy::eval {

/// (algorithm, model, num_points) -> error stats for one task.
using SeriesKey = std::tuple<std::string, std::string, std::size_t>;
std::map<SeriesKey, ErrorStats> aggregate_series(const std::vector<EvalRecord>& records,
                                                 const std::string& task);

/// (algorithm, model) -> error stats across all #points for one task.
using PairKey = std::pair<std::string, std::string>;
std::map<PairKey, ErrorStats> aggregate_overall(const std::vector<EvalRecord>& records,
                                                const std::string& task);

/// (model) -> mean fit seconds.
std::map<std::string, double> mean_fit_seconds(const std::vector<FitRecord>& fits);

/// (algorithm, model) -> all observed fine-tuning epoch counts.
std::map<PairKey, std::vector<double>> epochs_by_algorithm_model(
    const std::vector<FitRecord>& fits);

/// Distinct values preserving first-seen order.
std::vector<std::string> distinct_models(const std::vector<EvalRecord>& records);
std::vector<std::string> distinct_algorithms(const std::vector<EvalRecord>& records);

/// "#### <title> ####" banner plus build/runtime info (stands in for the
/// paper's Table II hardware/software table).
void print_banner(const std::string& title);

/// Fixed-width ASCII bar, e.g. "#####-----" for value/maximum = 0.5.
std::string ascii_bar(double value, double maximum, std::size_t width = 40);

}  // namespace bellamy::eval
