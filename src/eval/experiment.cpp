#include "eval/experiment.hpp"

#include <map>
#include <memory>
#include <stdexcept>

#include "baselines/bell_model.hpp"
#include "baselines/ernest.hpp"
#include "core/predictor.hpp"
#include "core/variants.hpp"
#include "eval/metrics.hpp"
#include "eval/splits.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace bellamy::eval {

namespace {

/// A model under evaluation plus its bookkeeping handles.
struct Contender {
  std::string name;
  data::RuntimeModelPtr model;
  core::BellamyPredictor* bellamy = nullptr;  ///< non-null for Bellamy variants
};

void evaluate_split(const std::vector<data::JobRun>& runs, const Split& split,
                    std::size_t num_points, const std::string& algorithm,
                    const std::string& context_key, std::vector<Contender>& contenders,
                    ExperimentResult& out) {
  const auto train = train_runs(runs, split);
  for (auto& c : contenders) {
    if (train.size() < c.model->min_training_points()) continue;
    util::Timer fit_timer;
    try {
      c.model->fit(train);
    } catch (const std::exception&) {
      continue;  // split unusable for this model (e.g. degenerate NNLS)
    }

    FitRecord fit;
    fit.algorithm = algorithm;
    fit.model = c.name;
    fit.num_points = num_points;
    fit.fit_seconds = c.bellamy ? c.bellamy->last_fit().fit_seconds : fit_timer.seconds();
    fit.epochs = c.bellamy ? c.bellamy->last_fit().epochs_run : 0;
    out.fits.push_back(fit);

    auto record = [&](const char* task, std::size_t test_index) {
      const data::JobRun& test = runs.at(test_index);
      EvalRecord rec;
      rec.algorithm = algorithm;
      rec.model = c.name;
      rec.task = task;
      rec.context_key = context_key;
      rec.num_points = num_points;
      rec.actual = test.runtime_s;
      try {
        rec.predicted = c.model->predict(test);
      } catch (const std::exception&) {
        return;  // model cannot answer this query
      }
      rec.abs_error = absolute_error(rec.predicted, rec.actual);
      rec.rel_error = relative_error(rec.predicted, rec.actual);
      out.evals.push_back(std::move(rec));
    };
    if (split.interpolation_test && num_points >= 1) {
      record("interpolation", *split.interpolation_test);
    }
    if (split.extrapolation_test) {
      record("extrapolation", *split.extrapolation_test);
    }
  }
}

}  // namespace

std::vector<std::size_t> select_evaluation_contexts(
    const std::vector<data::ContextGroup>& groups, std::size_t count, util::Rng& rng) {
  if (groups.empty()) return {};
  count = std::min(count, groups.size());

  // Bucket groups by node type, in deterministic order.
  std::map<std::string, std::vector<std::size_t>> by_node;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    by_node[groups[i].runs.front().node_type].push_back(i);
  }
  std::vector<std::size_t> chosen;
  std::vector<bool> taken(groups.size(), false);
  // One context per node type first (coverage requirement).
  for (auto& [node, idxs] : by_node) {
    if (chosen.size() >= count) break;
    const std::size_t pick = idxs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(idxs.size()) - 1))];
    chosen.push_back(pick);
    taken[pick] = true;
  }
  // Fill the remainder randomly.
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (!taken[i]) rest.push_back(i);
  }
  rng.shuffle(rest);
  for (std::size_t i = 0; i < rest.size() && chosen.size() < count; ++i) {
    chosen.push_back(rest[i]);
  }
  return chosen;
}

ExperimentResult run_cross_context(const data::Dataset& c3o, const CrossContextConfig& cfg) {
  ExperimentResult out;
  const auto algorithms = cfg.algorithms.empty() ? c3o.algorithms() : cfg.algorithms;

  for (const auto& algorithm : algorithms) {
    const data::Dataset algo_data = c3o.filter_algorithm(algorithm);
    if (algo_data.empty()) {
      throw std::invalid_argument("run_cross_context: no data for algorithm '" + algorithm +
                                  "'");
    }
    util::Rng rng(cfg.seed ^ util::fnv1a64(algorithm));
    const auto groups = algo_data.contexts();
    const auto chosen = select_evaluation_contexts(groups, cfg.contexts_per_algorithm, rng);

    for (const std::size_t gi : chosen) {
      const data::ContextGroup& group = groups[gi];
      const data::JobRun& reference = group.runs.front();

      // Pre-train once per (context, scenario); every split restarts from
      // the stored checkpoint inside BellamyPredictor.
      std::vector<std::pair<core::PretrainScenario, std::string>> scenarios;
      if (cfg.include_local) scenarios.push_back({core::PretrainScenario::kLocal, "Bellamy (local)"});
      if (cfg.include_filtered) {
        scenarios.push_back({core::PretrainScenario::kFiltered, "Bellamy (filtered)"});
      }
      if (cfg.include_full) scenarios.push_back({core::PretrainScenario::kFull, "Bellamy (full)"});

      std::vector<Contender> contenders;
      if (cfg.include_nnls) {
        contenders.push_back({"NNLS", std::make_unique<baselines::ErnestModel>(), nullptr});
      }
      if (cfg.include_bell) {
        contenders.push_back({"Bell", std::make_unique<baselines::BellModel>(), nullptr});
      }
      for (const auto& [scenario, name] : scenarios) {
        if (scenario == core::PretrainScenario::kLocal) {
          auto pred = std::make_unique<core::BellamyPredictor>(cfg.model_config, cfg.finetune,
                                                               rng.next(), name);
          auto* handle = pred.get();
          contenders.push_back({name, std::move(pred), handle});
        } else {
          core::PreTrainConfig pre = cfg.pretrain;
          pre.seed = rng.next();
          core::BellamyModel pretrained(cfg.model_config, rng.next());
          data::Dataset corpus = core::pretraining_corpus(scenario, algo_data, reference);
          if (cfg.pretrain_sample_cap > 0 && corpus.size() > cfg.pretrain_sample_cap) {
            corpus = corpus.sample(cfg.pretrain_sample_cap, rng);
          }
          if (!corpus.empty()) core::pretrain(pretrained, corpus.runs(), pre);
          auto pred = std::make_unique<core::BellamyPredictor>(
              pretrained, cfg.finetune, core::ReuseStrategy::kPartialUnfreeze, name);
          auto* handle = pred.get();
          contenders.push_back({name, std::move(pred), handle});
        }
      }

      for (std::size_t n = 0; n <= cfg.max_points; ++n) {
        const auto splits = generate_splits(group.runs, n, cfg.max_splits, rng);
        for (const auto& split : splits) {
          evaluate_split(group.runs, split, n, algorithm, group.key, contenders, out);
        }
      }
    }
  }
  return out;
}

ExperimentResult run_cross_environment(const data::Dataset& c3o, const data::Dataset& bell,
                                       const CrossEnvironmentConfig& cfg) {
  ExperimentResult out;
  std::vector<std::string> algorithms = cfg.algorithms;
  if (algorithms.empty()) {
    for (const auto& a : bell.algorithms()) {
      if (!c3o.filter_algorithm(a).empty()) algorithms.push_back(a);
    }
  }

  for (const auto& algorithm : algorithms) {
    const data::Dataset cloud = c3o.filter_algorithm(algorithm);
    const data::Dataset cluster = bell.filter_algorithm(algorithm);
    if (cloud.empty() || cluster.empty()) {
      throw std::invalid_argument("run_cross_environment: missing data for '" + algorithm +
                                  "'");
    }
    util::Rng rng(cfg.seed ^ util::fnv1a64(algorithm));

    // Pre-train on ALL cloud contexts of this algorithm (the target context
    // lives in a different environment entirely).
    core::PreTrainConfig pre = cfg.pretrain;
    pre.seed = rng.next();
    core::BellamyModel pretrained(cfg.model_config, rng.next());
    data::Dataset corpus = cloud;
    if (cfg.pretrain_sample_cap > 0 && corpus.size() > cfg.pretrain_sample_cap) {
      corpus = corpus.sample(cfg.pretrain_sample_cap, rng);
    }
    core::pretrain(pretrained, corpus.runs(), pre);

    const auto groups = cluster.contexts();  // Bell data: one context per algorithm
    for (const auto& group : groups) {
      std::vector<Contender> contenders;
      if (cfg.include_nnls) {
        contenders.push_back({"NNLS", std::make_unique<baselines::ErnestModel>(), nullptr});
      }
      if (cfg.include_bell) {
        contenders.push_back({"Bell", std::make_unique<baselines::BellModel>(), nullptr});
      }
      {
        auto pred = std::make_unique<core::BellamyPredictor>(cfg.model_config, cfg.finetune,
                                                             rng.next(), "Bellamy (local)");
        auto* handle = pred.get();
        contenders.push_back({"Bellamy (local)", std::move(pred), handle});
      }
      for (const auto strategy :
           {core::ReuseStrategy::kPartialUnfreeze, core::ReuseStrategy::kFullUnfreeze,
            core::ReuseStrategy::kPartialReset, core::ReuseStrategy::kFullReset}) {
        const std::string name = std::string("Bellamy (") + core::strategy_name(strategy) + ")";
        auto pred =
            std::make_unique<core::BellamyPredictor>(pretrained, cfg.finetune, strategy, name);
        auto* handle = pred.get();
        contenders.push_back({name, std::move(pred), handle});
      }

      for (std::size_t n = 1; n <= cfg.max_points; ++n) {
        const auto splits = generate_splits(group.runs, n, cfg.max_splits, rng);
        for (const auto& split : splits) {
          evaluate_split(group.runs, split, n, algorithm, group.key, contenders, out);
        }
      }
    }
  }
  return out;
}

}  // namespace bellamy::eval
