#include "eval/experiment.hpp"

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "baselines/bell_model.hpp"
#include "baselines/ernest.hpp"
#include "core/predictor.hpp"
#include "core/variants.hpp"
#include "eval/metrics.hpp"
#include "eval/splits.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/runtime_adapter.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace bellamy::eval {

namespace {

/// A model under evaluation plus its bookkeeping handles.
struct Contender {
  std::string name;
  data::RuntimeModelPtr model;
  core::BellamyPredictor* bellamy = nullptr;  ///< non-null for Bellamy variants
};

/// Deterministic recipe for (re)building one contender.  The threaded path
/// evaluates splits on independent contender instances; because every fit()
/// restarts from the captured seed / checkpoint, an instance built from the
/// same spec produces bit-identical predictions no matter which thread (or
/// how many times) it is built.
struct ContenderSpec {
  enum class Kind { kNnls, kBell, kBellamyLocal, kBellamyPretrained };
  Kind kind = Kind::kNnls;
  std::string name;
  std::uint64_t seed = 0;                            ///< kBellamyLocal
  std::shared_ptr<const nn::Checkpoint> checkpoint;  ///< kBellamyPretrained
  core::ReuseStrategy strategy = core::ReuseStrategy::kPartialUnfreeze;
};

std::vector<Contender> make_contenders(const std::vector<ContenderSpec>& specs,
                                       const core::BellamyConfig& model_config,
                                       const core::FineTuneConfig& finetune) {
  std::vector<Contender> out;
  out.reserve(specs.size());
  for (const ContenderSpec& spec : specs) {
    switch (spec.kind) {
      case ContenderSpec::Kind::kNnls:
        out.push_back({spec.name, std::make_unique<baselines::ErnestModel>(), nullptr});
        break;
      case ContenderSpec::Kind::kBell:
        out.push_back({spec.name, std::make_unique<baselines::BellModel>(), nullptr});
        break;
      case ContenderSpec::Kind::kBellamyLocal: {
        auto pred = std::make_unique<core::BellamyPredictor>(model_config, finetune, spec.seed,
                                                             spec.name);
        auto* handle = pred.get();
        out.push_back({spec.name, std::move(pred), handle});
        break;
      }
      case ContenderSpec::Kind::kBellamyPretrained: {
        auto pred = std::make_unique<core::BellamyPredictor>(spec.checkpoint, finetune,
                                                             spec.strategy, spec.name);
        auto* handle = pred.get();
        out.push_back({spec.name, std::move(pred), handle});
        break;
      }
    }
  }
  return out;
}

void evaluate_split(const std::vector<data::JobRun>& runs, const Split& split,
                    std::size_t num_points, const std::string& algorithm,
                    const std::string& context_key, std::vector<Contender>& contenders,
                    ExperimentResult& out) {
  const auto train = train_runs(runs, split);

  // Collect the split's test queries once; every fitted contender answers
  // them in a single predict_batch call.
  std::vector<const char*> tasks;
  std::vector<data::JobRun> queries;
  if (split.interpolation_test && num_points >= 1) {
    tasks.push_back("interpolation");
    queries.push_back(runs.at(*split.interpolation_test));
  }
  if (split.extrapolation_test) {
    tasks.push_back("extrapolation");
    queries.push_back(runs.at(*split.extrapolation_test));
  }

  for (auto& c : contenders) {
    if (train.size() < c.model->min_training_points()) continue;
    util::Timer fit_timer;
    // The serve-layer wrappers fold the RuntimeModel exception contract into
    // typed results, so an unusable split (e.g. degenerate NNLS) is a status
    // branch here, not a catch block.
    if (!serve::try_fit(*c.model, train).ok()) continue;

    FitRecord fit;
    fit.algorithm = algorithm;
    fit.model = c.name;
    fit.num_points = num_points;
    fit.fit_seconds = c.bellamy ? c.bellamy->last_fit().fit_seconds : fit_timer.seconds();
    fit.epochs = c.bellamy ? c.bellamy->last_fit().epochs_run : 0;
    out.fits.push_back(fit);

    std::vector<double> predicted;
    std::vector<bool> answered(queries.size(), true);
    if (auto batch = serve::try_predict_batch(*c.model, queries); batch.ok()) {
      predicted = batch.take();
    } else {
      // Batch failed as a whole — fall back per query so one unanswerable
      // query does not drop the records of its sibling.
      predicted.assign(queries.size(), 0.0);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (auto one = serve::try_predict(*c.model, queries[i]); one.ok()) {
          predicted[i] = one.value();
        } else {
          answered[i] = false;
        }
      }
    }

    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (!answered[i]) continue;
      EvalRecord rec;
      rec.algorithm = algorithm;
      rec.model = c.name;
      rec.task = tasks[i];
      rec.context_key = context_key;
      rec.num_points = num_points;
      rec.actual = queries[i].runtime_s;
      rec.predicted = predicted[i];
      rec.abs_error = absolute_error(rec.predicted, rec.actual);
      rec.rel_error = relative_error(rec.predicted, rec.actual);
      out.evals.push_back(std::move(rec));
    }
  }
}

/// One split awaiting evaluation (splits are generated serially so the RNG
/// stream is identical whether evaluation later runs on 1 or N threads).
struct SplitTask {
  std::size_t num_points = 0;
  Split split;
};

/// Evaluate all splits of one context: serially on the shared contender set
/// when `pool` is null, otherwise fanned out over the pool with per-split
/// contender instances rebuilt from `specs`.  Records are appended to `out`
/// in deterministic split order either way.
void evaluate_context(const std::vector<data::JobRun>& runs,
                      const std::vector<SplitTask>& split_tasks, const std::string& algorithm,
                      const std::string& context_key, const std::vector<ContenderSpec>& specs,
                      const core::BellamyConfig& model_config,
                      const core::FineTuneConfig& finetune, parallel::ThreadPool* pool,
                      ExperimentResult& out) {
  if (!pool) {
    auto contenders = make_contenders(specs, model_config, finetune);
    for (const SplitTask& task : split_tasks) {
      evaluate_split(runs, task.split, task.num_points, algorithm, context_key, contenders,
                     out);
    }
    return;
  }
  // parallel_map returns partials in split_tasks order no matter how the
  // work-stealing pool schedules the tasks (each writes its own slot; the
  // waiter assembles in submission order), so the concatenation below is as
  // deterministic as the serial branch above.
  const std::vector<ExperimentResult> partials = parallel::parallel_map(
      split_tasks,
      [&](const SplitTask& task) {
        auto contenders = make_contenders(specs, model_config, finetune);
        ExperimentResult local;
        evaluate_split(runs, task.split, task.num_points, algorithm, context_key, contenders,
                       local);
        return local;
      },
      pool);
  for (const ExperimentResult& partial : partials) {
    out.evals.insert(out.evals.end(), partial.evals.begin(), partial.evals.end());
    out.fits.insert(out.fits.end(), partial.fits.begin(), partial.fits.end());
  }
}

}  // namespace

std::vector<std::size_t> select_evaluation_contexts(
    const std::vector<data::ContextGroup>& groups, std::size_t count, util::Rng& rng) {
  if (groups.empty()) return {};
  count = std::min(count, groups.size());

  // Bucket groups by node type, in deterministic order.
  std::map<std::string, std::vector<std::size_t>> by_node;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    by_node[groups[i].runs.front().node_type].push_back(i);
  }
  std::vector<std::size_t> chosen;
  std::vector<bool> taken(groups.size(), false);
  // One context per node type first (coverage requirement).
  for (auto& [node, idxs] : by_node) {
    if (chosen.size() >= count) break;
    const std::size_t pick = idxs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(idxs.size()) - 1))];
    chosen.push_back(pick);
    taken[pick] = true;
  }
  // Fill the remainder randomly.
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (!taken[i]) rest.push_back(i);
  }
  rng.shuffle(rest);
  for (std::size_t i = 0; i < rest.size() && chosen.size() < count; ++i) {
    chosen.push_back(rest[i]);
  }
  return chosen;
}

ExperimentResult run_cross_context(const data::Dataset& c3o, const CrossContextConfig& cfg) {
  ExperimentResult out;
  const auto algorithms = cfg.algorithms.empty() ? c3o.algorithms() : cfg.algorithms;
  std::optional<parallel::ThreadPool> pool;
  if (cfg.eval_threads > 1) pool.emplace(cfg.eval_threads);

  for (const auto& algorithm : algorithms) {
    const data::Dataset algo_data = c3o.filter_algorithm(algorithm);
    if (algo_data.empty()) {
      throw std::invalid_argument("run_cross_context: no data for algorithm '" + algorithm +
                                  "'");
    }
    util::Rng rng(cfg.seed ^ util::fnv1a64(algorithm));
    const auto groups = algo_data.contexts();
    const auto chosen = select_evaluation_contexts(groups, cfg.contexts_per_algorithm, rng);

    for (const std::size_t gi : chosen) {
      const data::ContextGroup& group = groups[gi];
      const data::JobRun& reference = group.runs.front();

      // Pre-train once per (context, scenario); every split restarts from
      // the stored checkpoint.  Seeds are drawn here, in fixed order, so the
      // RNG stream — and with it every split and every fit — is identical
      // whether evaluation later runs serial or threaded.
      std::vector<std::pair<core::PretrainScenario, std::string>> scenarios;
      if (cfg.include_local) scenarios.push_back({core::PretrainScenario::kLocal, "Bellamy (local)"});
      if (cfg.include_filtered) {
        scenarios.push_back({core::PretrainScenario::kFiltered, "Bellamy (filtered)"});
      }
      if (cfg.include_full) scenarios.push_back({core::PretrainScenario::kFull, "Bellamy (full)"});

      std::vector<ContenderSpec> specs;
      if (cfg.include_nnls) specs.push_back({.kind = ContenderSpec::Kind::kNnls, .name = "NNLS"});
      if (cfg.include_bell) specs.push_back({.kind = ContenderSpec::Kind::kBell, .name = "Bell"});
      for (const auto& [scenario, name] : scenarios) {
        if (scenario == core::PretrainScenario::kLocal) {
          ContenderSpec spec{.kind = ContenderSpec::Kind::kBellamyLocal, .name = name};
          spec.seed = rng.next();
          specs.push_back(std::move(spec));
        } else {
          core::PreTrainConfig pre = cfg.pretrain;
          pre.seed = rng.next();
          core::BellamyModel pretrained(cfg.model_config, rng.next());
          data::Dataset corpus = core::pretraining_corpus(scenario, algo_data, reference);
          if (cfg.pretrain_sample_cap > 0 && corpus.size() > cfg.pretrain_sample_cap) {
            corpus = corpus.sample(cfg.pretrain_sample_cap, rng);
          }
          if (!corpus.empty()) core::pretrain(pretrained, corpus.runs(), pre);
          ContenderSpec spec{.kind = ContenderSpec::Kind::kBellamyPretrained, .name = name};
          spec.checkpoint = std::make_shared<const nn::Checkpoint>(pretrained.to_checkpoint());
          spec.strategy = core::ReuseStrategy::kPartialUnfreeze;
          specs.push_back(std::move(spec));
        }
      }

      std::vector<SplitTask> split_tasks;
      for (std::size_t n = 0; n <= cfg.max_points; ++n) {
        for (auto& split : generate_splits(group.runs, n, cfg.max_splits, rng)) {
          split_tasks.push_back({n, std::move(split)});
        }
      }
      evaluate_context(group.runs, split_tasks, algorithm, group.key, specs, cfg.model_config,
                       cfg.finetune, pool ? &*pool : nullptr, out);
    }
  }
  return out;
}

ExperimentResult run_cross_environment(const data::Dataset& c3o, const data::Dataset& bell,
                                       const CrossEnvironmentConfig& cfg) {
  ExperimentResult out;
  std::optional<parallel::ThreadPool> pool;
  if (cfg.eval_threads > 1) pool.emplace(cfg.eval_threads);
  std::vector<std::string> algorithms = cfg.algorithms;
  if (algorithms.empty()) {
    for (const auto& a : bell.algorithms()) {
      if (!c3o.filter_algorithm(a).empty()) algorithms.push_back(a);
    }
  }

  for (const auto& algorithm : algorithms) {
    const data::Dataset cloud = c3o.filter_algorithm(algorithm);
    const data::Dataset cluster = bell.filter_algorithm(algorithm);
    if (cloud.empty() || cluster.empty()) {
      throw std::invalid_argument("run_cross_environment: missing data for '" + algorithm +
                                  "'");
    }
    util::Rng rng(cfg.seed ^ util::fnv1a64(algorithm));

    // Pre-train on ALL cloud contexts of this algorithm (the target context
    // lives in a different environment entirely).
    core::PreTrainConfig pre = cfg.pretrain;
    pre.seed = rng.next();
    core::BellamyModel pretrained(cfg.model_config, rng.next());
    data::Dataset corpus = cloud;
    if (cfg.pretrain_sample_cap > 0 && corpus.size() > cfg.pretrain_sample_cap) {
      corpus = corpus.sample(cfg.pretrain_sample_cap, rng);
    }
    core::pretrain(pretrained, corpus.runs(), pre);

    const auto pretrained_ckpt =
        std::make_shared<const nn::Checkpoint>(pretrained.to_checkpoint());

    const auto groups = cluster.contexts();  // Bell data: one context per algorithm
    for (const auto& group : groups) {
      std::vector<ContenderSpec> specs;
      if (cfg.include_nnls) specs.push_back({.kind = ContenderSpec::Kind::kNnls, .name = "NNLS"});
      if (cfg.include_bell) specs.push_back({.kind = ContenderSpec::Kind::kBell, .name = "Bell"});
      {
        ContenderSpec spec{.kind = ContenderSpec::Kind::kBellamyLocal, .name = "Bellamy (local)"};
        spec.seed = rng.next();
        specs.push_back(std::move(spec));
      }
      for (const auto strategy :
           {core::ReuseStrategy::kPartialUnfreeze, core::ReuseStrategy::kFullUnfreeze,
            core::ReuseStrategy::kPartialReset, core::ReuseStrategy::kFullReset}) {
        ContenderSpec spec{.kind = ContenderSpec::Kind::kBellamyPretrained,
                           .name = std::string("Bellamy (") + core::strategy_name(strategy) +
                                   ")"};
        spec.checkpoint = pretrained_ckpt;
        spec.strategy = strategy;
        specs.push_back(std::move(spec));
      }

      std::vector<SplitTask> split_tasks;
      for (std::size_t n = 1; n <= cfg.max_points; ++n) {
        for (auto& split : generate_splits(group.runs, n, cfg.max_splits, rng)) {
          split_tasks.push_back({n, std::move(split)});
        }
      }
      evaluate_context(group.runs, split_tasks, algorithm, group.key, specs, cfg.model_config,
                       cfg.finetune, pool ? &*pool : nullptr, out);
    }
  }
  return out;
}

}  // namespace bellamy::eval
