#pragma once
// Accuracy-vs-refit-time Pareto sweep for the reduction policies.
//
// For each evaluation context the sweep pre-trains a base model on every
// OTHER context (the paper's cross-context setup), holds out a slice of the
// context's runs for evaluation, and then refits the base model twice per
// grid cell: once on the FULL remaining history (the reference point) and
// once on each (policy, budget) coreset.  Each cell reports wall-clock refit
// time (reduction included) and held-out MAE, normalised against the full
// refit, so `bench_reduce` and the docs can plot the Pareto frontier and the
// CI gate can pin the headline "N x cheaper within 5 % accuracy" claim.
//
// Everything except wall-clock timing is deterministic: contexts, splits and
// coresets all derive from `ReductionSweepConfig::seed`.

#include <cstdint>
#include <string>
#include <vector>

#include "core/bellamy_config.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "reduce/reduction.hpp"

namespace bellamy::eval {

struct ReductionSweepConfig {
  /// Policies on the grid (default: every active policy).
  std::vector<reduce::ReductionPolicy> policies = {
      reduce::ReductionPolicy::kUniform, reduce::ReductionPolicy::kRecency,
      reduce::ReductionPolicy::kCoverage, reduce::ReductionPolicy::kLossAware};
  /// Coreset budgets on the grid.  Budgets >= the history size collapse to
  /// the reference point and are still reported (speedup ~ 1).
  std::vector<std::size_t> budgets = {8, 16, 32};
  std::size_t contexts = 4;      ///< evaluation contexts (node-type covering)
  double eval_fraction = 0.25;   ///< held-out slice of each context's runs
  core::BellamyConfig model_config;
  core::PreTrainConfig pretrain;
  /// Applied identically to the full and the reduced refits; keep
  /// mae_target_seconds at 0 so both run the same epoch count and the timing
  /// ratio reflects the data reduction, not early stopping.
  core::FineTuneConfig finetune;
  std::uint64_t seed = 2021;
};

/// One cell of the sweep, aggregated over all evaluation contexts.
struct ReductionPoint {
  std::string policy;            ///< reduce::policy_name
  std::size_t budget = 0;        ///< 0 for the full-history reference
  std::size_t input_runs = 0;    ///< summed history size across contexts
  std::size_t kept_runs = 0;     ///< summed coreset size across contexts
  double refit_seconds = 0.0;    ///< summed wall-clock: reduce + finetune
  double mae_seconds = 0.0;      ///< held-out MAE across contexts
  double scaleout_coverage = 1.0;  ///< worst-case bin coverage across contexts
  double refit_speedup = 1.0;    ///< full.refit_seconds / refit_seconds
  double mae_ratio = 1.0;        ///< mae_seconds / full.mae_seconds
};

struct ReductionSweepResult {
  ReductionPoint full;                  ///< the full-history reference refit
  std::vector<ReductionPoint> points;   ///< one per (policy, budget) cell
};

ReductionSweepResult run_reduction_sweep(const data::Dataset& c3o,
                                         const ReductionSweepConfig& cfg);

}  // namespace bellamy::eval
