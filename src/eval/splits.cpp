#include "eval/splits.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "util/rng.hpp"

namespace bellamy::eval {

namespace {

/// Signature for uniqueness checks.
std::vector<std::size_t> signature(const Split& s) {
  std::vector<std::size_t> sig = s.train;
  std::sort(sig.begin(), sig.end());
  sig.push_back(s.interpolation_test ? *s.interpolation_test + 1 : 0);
  sig.push_back(s.extrapolation_test ? *s.extrapolation_test + 1 : 0);
  return sig;
}

}  // namespace

std::vector<Split> generate_splits(const std::vector<data::JobRun>& runs,
                                   std::size_t num_train_points, std::size_t max_splits,
                                   util::Rng& rng) {
  if (max_splits == 0) return {};
  if (runs.empty()) throw std::invalid_argument("generate_splits: no runs");

  // Index the runs by scale-out.
  std::map<int, std::vector<std::size_t>> by_scaleout;
  for (std::size_t i = 0; i < runs.size(); ++i) by_scaleout[runs[i].scale_out].push_back(i);
  std::vector<int> scaleouts;
  scaleouts.reserve(by_scaleout.size());
  for (const auto& [x, idxs] : by_scaleout) scaleouts.push_back(x);

  if (num_train_points > scaleouts.size()) return {};  // cannot pick pairwise-different

  std::vector<Split> splits;
  std::set<std::vector<std::size_t>> seen;
  const std::size_t max_attempts = max_splits * 60 + 200;

  for (std::size_t attempt = 0; attempt < max_attempts && splits.size() < max_splits;
       ++attempt) {
    Split s;

    int lo_x = 0;
    int hi_x = 0;
    if (num_train_points > 0) {
      // Pick pairwise-different scale-outs, then one random run at each.
      const auto chosen =
          rng.sample_without_replacement(scaleouts.size(), num_train_points);
      std::vector<int> train_x;
      for (std::size_t ci : chosen) {
        const int x = scaleouts[ci];
        train_x.push_back(x);
        const auto& pool = by_scaleout[x];
        s.train.push_back(pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))]);
      }
      lo_x = *std::min_element(train_x.begin(), train_x.end());
      hi_x = *std::max_element(train_x.begin(), train_x.end());
    }

    const std::set<std::size_t> train_set(s.train.begin(), s.train.end());

    // Interpolation candidates: scale-out within [lo, hi], not a train sample.
    if (num_train_points > 0) {
      std::vector<std::size_t> in_range;
      for (std::size_t i = 0; i < runs.size(); ++i) {
        if (train_set.count(i)) continue;
        if (runs[i].scale_out >= lo_x && runs[i].scale_out <= hi_x) in_range.push_back(i);
      }
      if (!in_range.empty()) {
        s.interpolation_test = in_range[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(in_range.size()) - 1))];
      }
    }

    // Extrapolation candidates: strictly outside [lo, hi] (any point when
    // there is no training data at all).
    {
      std::vector<std::size_t> out_range;
      for (std::size_t i = 0; i < runs.size(); ++i) {
        if (train_set.count(i)) continue;
        if (num_train_points == 0 || runs[i].scale_out < lo_x || runs[i].scale_out > hi_x) {
          out_range.push_back(i);
        }
      }
      if (!out_range.empty()) {
        s.extrapolation_test = out_range[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(out_range.size()) - 1))];
      }
    }

    if (!s.interpolation_test && !s.extrapolation_test) continue;  // useless split
    if (seen.insert(signature(s)).second) splits.push_back(std::move(s));
  }
  return splits;
}

std::vector<data::JobRun> train_runs(const std::vector<data::JobRun>& runs, const Split& s) {
  std::vector<data::JobRun> out;
  out.reserve(s.train.size());
  for (std::size_t i : s.train) out.push_back(runs.at(i));
  return out;
}

}  // namespace bellamy::eval
