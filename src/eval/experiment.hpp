#pragma once
// Experiment drivers reproducing the paper's two evaluation series:
//
//  * run_cross_context   — §IV-C.1 "Ad Hoc Cross-Context Learning" on the
//    C3O-like traces (Figs. 5-7, training-time paragraph).
//  * run_cross_environment — §IV-C.2 "Potential of Ad Hoc Cross-Environment
//    Learning": pre-train on C3O-like cloud traces, reuse on Bell-like
//    private-cluster traces (Fig. 8, timing paragraph).
//
// Both emit flat per-prediction EvalRecords and per-fit FitRecords; the bench
// binaries aggregate them into the published tables/series.

#include <cstdint>
#include <string>
#include <vector>

#include "core/bellamy_config.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"

namespace bellamy::eval {

struct EvalRecord {
  std::string algorithm;
  std::string model;       ///< "NNLS", "Bell", "Bellamy (local)", ...
  std::string task;        ///< "interpolation" | "extrapolation"
  std::string context_key;
  std::size_t num_points = 0;
  double predicted = 0.0;
  double actual = 0.0;
  double abs_error = 0.0;
  double rel_error = 0.0;
};

struct FitRecord {
  std::string algorithm;
  std::string model;
  std::size_t num_points = 0;
  double fit_seconds = 0.0;
  std::size_t epochs = 0;  ///< fine-tuning epochs (0 for the closed-form baselines)
};

struct ExperimentResult {
  std::vector<EvalRecord> evals;
  std::vector<FitRecord> fits;
};

struct CrossContextConfig {
  std::vector<std::string> algorithms;         ///< empty = all in the dataset
  std::size_t contexts_per_algorithm = 7;      ///< paper: 7, each node type covered
  std::size_t max_splits = 200;                ///< unique splits per #points
  std::size_t max_points = 6;                  ///< training points swept 0..max
  bool include_nnls = true;
  bool include_bell = true;
  bool include_local = true;
  bool include_filtered = true;
  bool include_full = true;
  core::BellamyConfig model_config;
  core::PreTrainConfig pretrain;
  core::FineTuneConfig finetune;
  /// Cap on the pre-training corpus size (0 = use all runs).  Lets quick
  /// benchmark runs bound single-core pre-training cost.
  std::size_t pretrain_sample_cap = 0;
  std::uint64_t seed = 2021;
  /// Worker threads for cross-validation split evaluation.  <= 1 runs the
  /// serial reference path.  N > 1 fans independent splits out over a
  /// ThreadPool; every split rebuilds its contenders from the same
  /// deterministic seeds / checkpoints, so records are bit-identical to the
  /// serial path (fit wall-times differ, predictions do not).
  std::size_t eval_threads = 1;
};

ExperimentResult run_cross_context(const data::Dataset& c3o, const CrossContextConfig& cfg);

struct CrossEnvironmentConfig {
  std::vector<std::string> algorithms;  ///< empty = all common to both datasets
  std::size_t max_splits = 500;
  std::size_t max_points = 6;
  bool include_nnls = true;
  bool include_bell = true;
  core::BellamyConfig model_config;
  core::PreTrainConfig pretrain;
  core::FineTuneConfig finetune;
  std::size_t pretrain_sample_cap = 0;  ///< 0 = use the full corpus
  std::uint64_t seed = 2022;
  /// Same contract as CrossContextConfig::eval_threads.
  std::size_t eval_threads = 1;
};

/// Pre-trains one model per algorithm on ALL C3O runs of that algorithm and
/// evaluates the four reuse strategies plus a local model on the Bell traces.
ExperimentResult run_cross_environment(const data::Dataset& c3o, const data::Dataset& bell,
                                       const CrossEnvironmentConfig& cfg);

/// Pick up to `count` evaluation contexts such that every node type occurring
/// in the groups appears at least once (paper: "assuring that each node type
/// is present at least once in one of the contexts").
std::vector<std::size_t> select_evaluation_contexts(
    const std::vector<data::ContextGroup>& groups, std::size_t count, util::Rng& rng);

}  // namespace bellamy::eval
