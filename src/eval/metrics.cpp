#include "eval/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace bellamy::eval {

double absolute_error(double predicted, double actual) { return std::abs(predicted - actual); }

double relative_error(double predicted, double actual) {
  if (actual == 0.0) throw std::invalid_argument("relative_error: actual is zero");
  return std::abs(predicted - actual) / std::abs(actual);
}

void ErrorAccumulator::add(double predicted, double actual) {
  const double abs_e = absolute_error(predicted, actual);
  abs_sum_ += abs_e;
  rel_sum_ += relative_error(predicted, actual);
  sq_sum_ += abs_e * abs_e;
  ++n_;
}

void ErrorAccumulator::merge(const ErrorAccumulator& other) {
  abs_sum_ += other.abs_sum_;
  rel_sum_ += other.rel_sum_;
  sq_sum_ += other.sq_sum_;
  n_ += other.n_;
}

ErrorStats ErrorAccumulator::stats() const {
  ErrorStats s;
  s.count = n_;
  if (n_ == 0) return s;
  const double n = static_cast<double>(n_);
  s.mae = abs_sum_ / n;
  s.mre = rel_sum_ / n;
  s.rmse = std::sqrt(sq_sum_ / n);
  return s;
}

ErrorStats compute_errors(const std::vector<double>& predicted,
                          const std::vector<double>& actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("compute_errors: size mismatch");
  }
  ErrorAccumulator acc;
  for (std::size_t i = 0; i < predicted.size(); ++i) acc.add(predicted[i], actual[i]);
  return acc.stats();
}

}  // namespace bellamy::eval
