#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace bellamy::parallel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

namespace {
// Owning pool of the current thread (nullptr outside any pool worker).
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

bool ThreadPool::owns_current_thread() const { return t_current_pool == this; }

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();  // exceptions are captured by the packaged_task wrapper
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

bool ThreadPool::try_run_pending_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
    ++active_;
  }
  task();  // exceptions are captured by the packaged_task wrapper
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bellamy::parallel
