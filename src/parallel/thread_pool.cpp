#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "parallel/work_stealing_deque.hpp"

namespace bellamy::parallel {

// ---------------------------------------------------------------------------
// Sleep/wake + idle protocol (the part a lock-free queue does NOT give you).
//
// Two counters drive it:
//   queued_  — tasks made visible (pushed) but not yet claimed.  Incremented
//              BEFORE the push, decremented at claim, so it is an upper
//              bound that is never negative and never undercounts.
//   pending_ — queued + claimed-but-running.  Incremented with queued_,
//              decremented only after the task body finished.
//
// Lost-wakeup freedom is a Dekker argument, run twice:
//
//   producer: queued_++ (seq_cst) ... then loads sleepers_
//   sleeper:  sleepers_++ (seq_cst, under sleep_mutex_) ... then loads queued_
//
// In the seq_cst total order one of the two stores precedes the other, so
// either the producer sees sleepers_ > 0 and notifies (the notify itself is
// made under sleep_mutex_, which serializes with the sleeper's park-and-
// check, so it cannot fall between "checked queued_" and "began waiting"),
// or the sleeper sees queued_ > 0 and never parks.  The same pair with
// pending_ / idle_waiters_ covers wait_idle: the finisher of the LAST
// pending task sees the waiter or the waiter sees pending_ == 0.
//
// Spin phase + wake filter.  A notify with parked waiters is a futex
// syscall, and with tiny tasks a naive "notify on every push" spends more
// time in the kernel than in task bodies (measured: ~1 notify and ~0.6
// park/unpark round-trips PER TASK on the contention bench).  So at most
// ONE worker pool-wide sits in a bounded spin (claim attempts interleaved
// with yields) before parking, and producers skip the notify while a
// spinner is registered — the spinner is already scanning and will find
// the push.  This stays lost-wakeup-free because it only filters the
// SYSCALL, not the Dekker protocol: the producer loads spinners_ after its
// queued_++; the spinner clears spinners_ before the park-and-check; in
// the seq_cst order either the producer sees spinners_ == 0 and falls
// through to the sleepers_ check above, or the spinner's park predicate
// (which re-reads queued_ under sleep_mutex_) sees the producer's push and
// refuses to sleep.  A spinner that DOES claim work passes the wake baton
// before running it (notify_one if queued_ > 0 and sleepers_ > 0), so on
// multi-core hosts parallelism ramps back up even though producers went
// quiet.
//
// This fixes for good the wait_idle defect the mutex-queue pool was exposed
// to: its idle condition was "queue empty && active == 0", where active was
// maintained in two separate critical sections by helping threads — a task
// CLAIMED by a helper but not yet counted could make the pool look idle.
// Here a task is pending_ from before it is visible until after it ran, no
// matter which thread runs it (tests/parallel/test_thread_pool.cpp:
// WaitIdleSeesTaskClaimedByExternalHelper).
// ---------------------------------------------------------------------------

struct ThreadPool::Worker {
  WorkStealingDeque<Task*> deque;
  // Rotating victim cursor so the steal scan does not always hammer worker
  // 0 first (plain member: only touched by the owning worker thread).
  std::size_t next_victim = 0;
};

struct ThreadPool::InjectStripe {
  std::mutex mutex;
  std::deque<Task*> queue;
};

namespace {

// Owning pool of the current thread (nullptr outside any pool worker) and
// the worker index within it.  t_worker_index is only meaningful while
// t_current_pool matches the pool asking.
thread_local const ThreadPool* t_current_pool = nullptr;
thread_local std::size_t t_worker_index = 0;

// Stable per-thread token for picking an injection stripe: consecutive
// external submitter threads land on different stripes, so N submitters
// contend on ~N distinct mutexes instead of one.
std::size_t submitter_token() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t token = next.fetch_add(1, std::memory_order_relaxed);
  return token;
}

// Spin laps before a failed claimant parks.  Each lap is one yield plus one
// full claim scan: cheap when the host is otherwise busy (yield reschedules
// real work), bounded to tens of microseconds when it is not.
constexpr int kSpinLaps = 64;

// Tasks a WORKER drags from an injection stripe into its own deque per lock
// acquisition (external helpers take exactly one).  Amortizes the stripe
// mutex across a burst and turns the follow-up claims into lock-free pops;
// the moved tasks stay counted in queued_ and stay stealable, so no
// protocol invariant moves.
constexpr int kClaimBatch = 16;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  worker_state_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    worker_state_.push_back(std::make_unique<Worker>());
  }
  // One stripe per worker up to 8: enough to spread submitter contention,
  // small enough that the workers' claim scan stays cheap.
  const std::size_t stripes = std::min<std::size_t>(num_threads, 8);
  inject_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    inject_.push_back(std::make_unique<InjectStripe>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // stopping_ is set under BOTH the sleep mutex (so no worker parks after
    // missing it) and every stripe mutex (so an external enqueue either
    // completed its push before this point — and a worker will run it before
    // exiting, see worker_loop — or observes stopping_ and throws).
    std::unique_lock<std::mutex> sleep_lock(sleep_mutex_);
    std::vector<std::unique_lock<std::mutex>> stripe_locks;
    stripe_locks.reserve(inject_.size());
    for (auto& stripe : inject_) stripe_locks.emplace_back(stripe->mutex);
    stopping_.store(true, std::memory_order_seq_cst);
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Workers drain every queue before exiting, so nothing should remain; be
  // defensive anyway (a Task* leak would trip the ASan lane).
  for (auto& stripe : inject_) {
    for (Task* task : stripe->queue) delete task;
  }
  for (auto& worker : worker_state_) {
    while (Task* task = worker->deque.pop()) delete task;
  }
}

bool ThreadPool::owns_current_thread() const { return t_current_pool == this; }

void ThreadPool::enqueue(Task task) {
  if (stopping_.load(std::memory_order_seq_cst)) {
    throw std::runtime_error("ThreadPool::submit after shutdown");
  }
  Task* node = new Task(std::move(task));
  if (t_current_pool == this) {
    // Worker-local fast path: lock-free push onto our own deque.  The
    // pushing worker cannot exit before draining its own deque (its
    // queued_++ below is program-ordered before any later exit check), so
    // even a push racing the destructor is executed, exactly once.
    pending_.fetch_add(1, std::memory_order_seq_cst);
    queued_.fetch_add(1, std::memory_order_seq_cst);
    worker_state_[t_worker_index]->deque.push(node);
  } else {
    InjectStripe& stripe = *inject_[submitter_token() % inject_.size()];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    if (stopping_.load(std::memory_order_seq_cst)) {
      delete node;
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    pending_.fetch_add(1, std::memory_order_seq_cst);
    queued_.fetch_add(1, std::memory_order_seq_cst);
    stripe.queue.push_back(node);
  }
  // Dekker partner of the sleeper's park-and-check; see the protocol note.
  // The spinners_ filter skips the syscall while a worker is spin-scanning
  // (it will find this push); safety is carried by the park predicate.
  if (spinners_.load(std::memory_order_seq_cst) == 0 &&
      sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    cv_.notify_one();
  }
}

ThreadPool::Task* ThreadPool::claim_task(std::ptrdiff_t self) {
  Task* task = nullptr;
  Worker* me = self >= 0 ? worker_state_[static_cast<std::size_t>(self)].get() : nullptr;
  // 1. Own deque, LIFO: freshest work, still hot in this core's cache.
  if (me) task = me->deque.pop();
  // 2. Injection stripes, FIFO: external submitters' work.  Start at a
  //    caller-dependent stripe so claimants do not convoy on stripe 0.
  if (!task) {
    const std::size_t stripes = inject_.size();
    const std::size_t start =
        self >= 0 ? static_cast<std::size_t>(self) : submitter_token();
    for (std::size_t i = 0; i < stripes && !task; ++i) {
      InjectStripe& stripe = *inject_[(start + i) % stripes];
      std::lock_guard<std::mutex> lock(stripe.mutex);
      if (!stripe.queue.empty()) {
        task = stripe.queue.front();
        stripe.queue.pop_front();
        // Batch refill: pushing onto our own deque is owner-only, and
        // claim_task runs on the owning thread, so this is race-free.
        for (int k = 1; me && k < kClaimBatch && !stripe.queue.empty(); ++k) {
          me->deque.push(stripe.queue.front());
          stripe.queue.pop_front();
        }
      }
    }
  }
  // 3. Steal one round over the other workers, oldest task first.
  if (!task) {
    const std::size_t n = worker_state_.size();
    std::size_t start = me ? me->next_victim : submitter_token();
    for (std::size_t i = 0; i < n && !task; ++i) {
      const std::size_t victim = (start + i) % n;
      if (self >= 0 && victim == static_cast<std::size_t>(self)) continue;
      task = worker_state_[victim]->deque.steal();
      if (task && me) me->next_victim = victim;
    }
  }
  if (task) queued_.fetch_sub(1, std::memory_order_seq_cst);
  return task;
}

void ThreadPool::run_task(Task* task) {
  (*task)();  // exceptions are captured by the packaged_task wrapper
  delete task;
  // Last pending task published idleness: Dekker partner of wait_idle's
  // register-then-check (see the protocol note).
  if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
      idle_waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  t_current_pool = this;
  t_worker_index = index;
  for (;;) {
    if (Task* task = claim_task(static_cast<std::ptrdiff_t>(index))) {
      run_task(task);
      continue;
    }
    // Spin phase: become THE spinner (at most one pool-wide) and re-scan
    // with yields for a bounded number of laps before paying the futex
    // park.  Producers skip their notify while we are registered here; the
    // protocol note explains why that cannot lose a wakeup.
    int expected_spinners = 0;
    if (spinners_.compare_exchange_strong(expected_spinners, 1,
                                          std::memory_order_seq_cst)) {
      Task* task = nullptr;
      for (int lap = 0; lap < kSpinLaps && !task; ++lap) {
        if (stopping_.load(std::memory_order_seq_cst)) break;
        std::this_thread::yield();
        task = claim_task(static_cast<std::ptrdiff_t>(index));
      }
      spinners_.store(0, std::memory_order_seq_cst);
      if (task) {
        // Wake baton: producers went quiet while we spun, so if there is
        // more visible work and everyone else is parked, wake one before
        // disappearing into the task body.
        if (queued_.load(std::memory_order_seq_cst) > 0 &&
            sleepers_.load(std::memory_order_seq_cst) > 0) {
          std::lock_guard<std::mutex> lock(sleep_mutex_);
          cv_.notify_one();
        }
        run_task(task);
        continue;
      }
    }
    // Park.  sleepers_++ BEFORE the queued_ re-check (under the mutex) is
    // the sleeper half of the Dekker pair; the cv predicate re-checks on
    // every wake so a notify can never be consumed without effect.
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lock, [this] {
      return queued_.load(std::memory_order_seq_cst) > 0 ||
             stopping_.load(std::memory_order_seq_cst);
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (stopping_.load(std::memory_order_seq_cst) &&
        queued_.load(std::memory_order_seq_cst) == 0) {
      // Shutdown AND nothing left to claim anywhere: the destructor holds
      // every stripe mutex when it sets stopping_, so any task counted in
      // queued_ before this read is already pushed and will be claimed —
      // by us on the next lap if queued_ > 0 here, by someone else if a
      // racing claim just took it (their run finishes before their exit).
      return;
    }
  }
}

bool ThreadPool::try_run_pending_task() {
  const std::ptrdiff_t self =
      t_current_pool == this ? static_cast<std::ptrdiff_t>(t_worker_index) : -1;
  Task* task = claim_task(self);
  if (!task) return false;
  run_task(task);
  return true;
}

void ThreadPool::wait_idle() {
  if (owns_current_thread()) {
    // Helping wait: parking a worker inside wait_idle could deadlock (the
    // remaining work may sit in OUR deque, and with one worker there is
    // nobody else).  Drain instead; yield covers the claimed-but-running
    // tail where there is nothing left to help with.
    while (pending_.load(std::memory_order_seq_cst) > 0) {
      if (!try_run_pending_task()) std::this_thread::yield();
    }
    return;
  }
  if (pending_.load(std::memory_order_seq_cst) == 0) return;
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  idle_waiters_.fetch_add(1, std::memory_order_seq_cst);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_seq_cst) == 0;
  });
  idle_waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

std::size_t ThreadPool::pending_approx() const {
  const std::int64_t p = pending_.load(std::memory_order_seq_cst);
  return p > 0 ? static_cast<std::size_t>(p) : 0;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bellamy::parallel
