#include "parallel/strand.hpp"

#include <thread>
#include <utility>

namespace bellamy::parallel {

void Strand::post(std::function<void()> task) {
  bool start_drain = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    if (!draining_) {
      draining_ = true;
      start_drain = true;
    }
  }
  if (start_drain) {
    // The drain loop's future is intentionally dropped: drain() never throws
    // (tasks that do would unwind a pool worker first), and completion is
    // observed through wait_idle(), not the future.
    pool_.submit([this] { drain(); });
  }
}

namespace {
// Strand whose drain loop is running on the current thread (nullptr outside
// one).  Lets wait_idle() recognize re-entry from inside this strand's own
// frame — e.g. a destructor chain fired by the final task's closure — where
// parking or helping would wait on a draining_ flag this very frame is
// responsible for clearing.
thread_local const Strand* t_active_strand = nullptr;
}  // namespace

void Strand::drain() {
  // Save/restore rather than set/clear: a helping wait can nest one
  // strand's drain inside another's task on the same thread.
  const Strand* const prev_active = t_active_strand;
  t_active_strand = this;
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) {
        // Retire while holding the lock: a racing post() either sees
        // draining_ == true and just enqueues (we will pop it on the next
        // iteration) or sees false and starts a fresh drainer — never both.
        draining_ = false;
        idle_cv_.notify_all();
        t_active_strand = prev_active;
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    // Retire-or-continue BEFORE destroying the closure: the closure may own
    // the last reference to the strand's owner (a registry entry whose
    // erase() already dropped the registry's reference), in which case this
    // object dies with it — past this point the retiring path may only
    // touch locals and the thread_local.
    bool retire;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      retire = queue_.empty();
      if (retire) {
        draining_ = false;
        idle_cv_.notify_all();
      }
    }
    task = nullptr;  // closure destroyed here; `this` may be gone when retiring
    if (retire) {
      t_active_strand = prev_active;
      return;
    }
  }
}

void Strand::wait_idle() {
  if (t_active_strand == this) {
    // Called from inside this strand's own drain frame (a task, or a
    // destructor chain the final task's closure triggered).  Everything
    // posted so far has run or will run before this frame retires; parking
    // or helping here would spin on a draining_ flag only this frame clears.
    return;
  }
  if (pool_.owns_current_thread()) {
    // Called from a pool worker: parking would let strand work queued BEHIND
    // this worker's slot deadlock the wait.  Help the pool instead.  Under
    // the work-stealing scheduler the drainer task this wait depends on may
    // sit in ANY worker's deque or injection stripe; try_run_pending_task
    // claims across all of them (own pop, stripe scan, steal round), so the
    // helping loop reaches it no matter where the post() landed.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty() && !draining_) return;
      }
      if (!pool_.try_run_pending_task()) std::this_thread::yield();
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !draining_; });
}

std::size_t Strand::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + (draining_ ? 1 : 0);
}

}  // namespace bellamy::parallel
