#pragma once
// Chase–Lev work-stealing deque: the lock-free primitive under ThreadPool.
//
// One OWNER thread pushes and pops at the bottom (LIFO — freshly spawned
// work stays cache-hot on the worker that created it); any number of THIEF
// threads steal from the top (FIFO — the oldest task leaves first, which is
// what keeps nested parallel_for fair: a worker fans out, keeps the tail of
// its own chunks, and idle workers drain the head).
//
// This is the growable circular-array deque of Chase & Lev ("Dynamic
// Circular Work-Stealing Deque", SPAA 2005) with the memory orders of
// Lê et al. ("Correct and Efficient Work-Stealing for Weak Memory Models",
// PPoPP 2013), with one deliberate deviation: the PPoPP formulation's
// standalone seq_cst *fences* are folded into seq_cst orders on the
// `top_`/`bottom_` accesses themselves.  ThreadSanitizer does not model
// std::atomic_thread_fence, so the fence formulation produces false
// positives under the TSan CI lane; putting the ordering on the atomic
// accesses is strictly stronger, costs nothing measurable at this
// task granularity, and keeps every cross-thread access an atomic op TSan
// can reason about.
//
// Invariants (checked by tests/parallel/test_work_stealing_deque.cpp):
//   * top_ <= bottom_ + 1 at all times; both increase monotonically.
//   * Every pushed element is returned by exactly one successful pop() or
//     steal() — the single CAS on top_ is the only point of contention, so
//     a task can never be claimed twice or lost.
//   * pop() and push() are owner-only and wait-free; steal() is lock-free
//     (a thief can lose a race and return empty, but some thread made
//     progress).
//   * grow() never blocks thieves: the old array stays readable (retired,
//     freed with the deque) and cells in [top_, bottom_) hold the same
//     values in both arrays, so a thief that read a stale array pointer
//     still reads the right element for any index its CAS can win.
//
// T must be trivially copyable and have a falsy "empty" value (pointers:
// nullptr) — the pool stores heap-allocated task pointers.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace bellamy::parallel {

template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WorkStealingDeque elements must be trivially copyable "
                "(store pointers to anything bigger)");

 public:
  /// `capacity` must be a power of two (the ring index is masked, not
  /// wrapped); the deque grows by doubling when the owner outruns thieves.
  explicit WorkStealingDeque(std::size_t capacity = 64) {
    auto initial = std::make_unique<Array>(capacity);
    array_.store(initial.get(), std::memory_order_relaxed);
    retired_.push_back(std::move(initial));
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: append at the bottom.  Grows (amortized O(1)) when full.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->capacity)) {
      a = grow(a, t, b);
    }
    a->cell(b).store(value, std::memory_order_relaxed);
    // Publish the cell before the new bottom: a thief that observes b+1
    // (acquire) must observe the element.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: remove the most recently pushed element (LIFO).  Returns
  /// the empty value T{} when the deque is empty or a thief won the race
  /// for the final element.
  T pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    // Reserve the bottom slot BEFORE reading top_ (store-load ordering —
    // this pairs with the thief's top_-then-bottom_ read order; seq_cst on
    // both sides stands in for the PPoPP fence, see header comment).
    bottom_.store(b, std::memory_order_seq_cst);
    const std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return T{};
    }
    T value = a->cell(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Final element: race the thieves for it via the same CAS they use.
      std::int64_t expected = t;
      if (!top_.compare_exchange_strong(expected, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        value = T{};  // a thief got it first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Any thread: remove the oldest element (FIFO).  Returns T{} when empty
  /// or when another claimant won the CAS (lock-free, not wait-free — the
  /// caller is expected to move on to another victim, not retry in place).
  T steal() {
    const std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return T{};
    Array* a = array_.load(std::memory_order_acquire);
    T value = a->cell(t).load(std::memory_order_relaxed);
    std::int64_t expected = t;
    if (!top_.compare_exchange_strong(expected, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return T{};
    }
    return value;
  }

  /// Racy size estimate (never negative).  For heuristics only — by the
  /// time the caller acts on it, it is already stale.
  std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

  /// Current ring capacity (grows by doubling; for tests).
  std::size_t capacity() const {
    return array_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct Array {
    explicit Array(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          cells(std::make_unique<std::atomic<T>[]>(cap)) {}
    std::atomic<T>& cell(std::int64_t i) { return cells[static_cast<std::size_t>(i) & mask]; }
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;
  };

  /// Owner only: double the ring, copying the live window [t, b).  The old
  /// array is retired, NOT freed — a thief holding a stale pointer may
  /// still read from it (safely: the live window is identical in both).
  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Array>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->cell(i).store(old->cell(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    Array* raw = bigger.get();
    array_.store(raw, std::memory_order_release);
    retired_.push_back(std::move(bigger));
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_{nullptr};
  // Every array ever allocated, freed with the deque (owner-only access).
  // Indices only grow, so a retired array can never be mistaken for live
  // storage of a new element — thieves just read stale-but-equal values.
  std::vector<std::unique_ptr<Array>> retired_;
};

}  // namespace bellamy::parallel
