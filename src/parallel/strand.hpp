#pragma once
// Strand: a serial executor layered over a ThreadPool.
//
// Tasks post()ed to one strand run in FIFO order and never concurrently with
// each other, while still executing on the shared pool's workers — the
// classic "strand" (Asio) / "serial queue" (GCD) shape.  Many strands share
// one pool: each strand consumes at most one worker at a time, so a thousand
// idle strands cost nothing and a busy one cannot monopolize the pool.
//
// The serve layer uses one strand per registry entry to serialize background
// refits (ModelRegistry::refit_async): fine-tunes of the SAME handle queue up
// behind each other, fine-tunes of different handles run in parallel.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

#include "parallel/thread_pool.hpp"

namespace bellamy::parallel {

/// Serial FIFO executor over a shared ThreadPool.
///
/// Thread-safety: post() and wait_idle() may be called from any thread,
/// including from inside a strand task.  wait_idle() called from within
/// this strand's own drain frame — a task, or a destructor chain triggered
/// by a task closure that owned the caller — returns immediately instead of
/// waiting on itself.  A strand may be owned by an object that its own
/// tasks keep alive (a shared_ptr'd registry entry): the drain loop retires
/// before it destroys each task closure, so the FINAL closure dropping the
/// last reference (destroying the strand from inside its own loop) is safe.
class Strand {
 public:
  /// Tasks execute on `pool`'s workers; the pool must outlive the strand.
  explicit Strand(ThreadPool& pool) : pool_(pool) {}

  Strand(const Strand&) = delete;
  Strand& operator=(const Strand&) = delete;

  /// Destruction waits for every posted task to finish (tasks capture state
  /// the strand's owner is about to tear down).
  ~Strand() { wait_idle(); }

  /// Enqueue `task` behind everything already posted.  Tasks must not throw:
  /// an escaping exception would unwind a pool worker, so it terminates.
  void post(std::function<void()> task);

  /// Block until the strand has no queued or running task.  Helping-safe:
  /// when called from a worker of the underlying pool, the caller drains
  /// pool tasks while it waits instead of parking (nested-wait protocol of
  /// ThreadPool::try_run_pending_task).
  void wait_idle();

  /// Queued + running tasks right now (0 = idle).  Snapshot only.
  std::size_t depth() const;

 private:
  /// Run queued tasks until the queue is empty, then retire the drainer.
  /// At most one drain loop is in flight per strand — that is the mutual
  /// exclusion guarantee.
  void drain();

  ThreadPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  bool draining_ = false;
};

}  // namespace bellamy::parallel
