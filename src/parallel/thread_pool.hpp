#pragma once
// Fixed-size thread pool with a shared task queue.
//
// The evaluation harness fans out independent cross-validation splits and
// hyper-parameter trials over this pool (the paper used Ray Tune for the
// same purpose).  Exceptions thrown by tasks are captured and rethrown to
// the caller via the returned std::future.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace bellamy::parallel {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; the future carries its result or exception.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using Result = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<F>(f),
         ... captured = std::forward<Args>(args)]() mutable -> Result {
          return std::invoke(std::move(fn), std::move(captured)...);
        });
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool::submit after shutdown");
      tasks_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Block until all currently queued and running tasks finish.
  void wait_idle();

  /// True when called from one of THIS pool's worker threads.  Code that
  /// fans out over a pool and then blocks on the results from inside the
  /// same pool must drain the queue while it waits (see
  /// try_run_pending_task) — otherwise every worker could end up waiting on
  /// tasks that no free worker is left to run.
  bool owns_current_thread() const;

  /// Pop and execute one queued task on the calling thread, if any.  Returns
  /// false when the queue was empty.  This is the helping primitive for
  /// nested fan-out: a worker that blocks on futures of its own pool calls
  /// this in its wait loop, so the caller runs its share of the nested work
  /// inline and the pool can never deadlock on nested parallel_for.
  bool try_run_pending_task();

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace bellamy::parallel
