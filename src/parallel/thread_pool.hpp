#pragma once
// Work-stealing thread pool.
//
// Every worker owns a Chase–Lev deque (work_stealing_deque.hpp): a task
// submitted FROM a pool worker is pushed lock-free onto that worker's own
// deque (LIFO for the owner — nested parallel_for chunks stay cache-hot),
// and idle workers steal from the top (FIFO — oldest work first).  Tasks
// submitted from OUTSIDE the pool land in a small set of mutex-striped
// injection queues; the stripe mutex is uncontended in the common case and
// external submitters never touch the workers' deques.
//
// Sleep/wake uses an eventcount-style protocol (see thread_pool.cpp): the
// fast path — submit with every worker busy, or a worker finding work —
// takes no lock and makes no syscall.  The evaluation harness fans out
// independent cross-validation splits and hyper-parameter trials over this
// pool (the paper used Ray Tune for the same purpose); threaded GEMM, the
// chunked batch predictor, refit Strands, and the serve dispatcher all
// share it.  Exceptions thrown by tasks are captured and rethrown to the
// caller via the returned std::future.
//
// Scheduling freedom vs determinism: the pool makes NO ordering promise
// between tasks — only that each runs exactly once.  Bit-identical results
// (threaded GEMM, chunked predict, parallel_reduce) come from the CALLERS
// writing disjoint output slots and combining them in submission order, so
// they hold under any interleaving this scheduler can produce.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bellamy::parallel {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; the future carries its result or exception.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using Result = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<F>(f),
         ... captured = std::forward<Args>(args)]() mutable -> Result {
          return std::invoke(std::move(fn), std::move(captured)...);
        });
    std::future<Result> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Block until all currently queued and running tasks finish — including
  /// tasks they spawn before the pending count reaches zero, and tasks a
  /// helping thread claimed via try_run_pending_task but has not finished
  /// (the count covers claimed-but-running work, not just the queues).
  /// Called from a worker of THIS pool it helps (drains tasks inline)
  /// instead of parking, so it is deadlock-free at any nesting depth.
  void wait_idle();

  /// True when called from one of THIS pool's worker threads.  Code that
  /// fans out over a pool and then blocks on the results from inside the
  /// same pool must drain tasks while it waits (see try_run_pending_task) —
  /// otherwise every worker could end up waiting on tasks that no free
  /// worker is left to run.
  bool owns_current_thread() const;

  /// Pop and execute one task on the calling thread, if any can be claimed.
  /// Returns false when nothing was claimable.  A pool worker drains its own
  /// deque first, then the injection stripes, then steals; any other thread
  /// acts as a pure thief (injection stripes, then steals).  This is the
  /// helping primitive for nested fan-out: a thread that blocks on futures
  /// of this pool calls it in its wait loop, so the caller runs its share of
  /// the nested work inline and the pool can never deadlock on nested
  /// parallel_for.
  bool try_run_pending_task();

  /// Queued-or-running task count right now.  Racy snapshot, for tests and
  /// metrics only.
  std::size_t pending_approx() const;

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

 private:
  using Task = std::function<void()>;

  struct Worker;        // per-worker deque + steal cursor (thread_pool.cpp)
  struct InjectStripe;  // mutex + FIFO for external submitters

  /// Type-erased submit: routes to the caller's own deque (pool workers) or
  /// an injection stripe (external threads), then wakes a sleeper if any.
  void enqueue(Task task);

  /// Claim one task: own deque (self >= 0), injection stripes, then steal a
  /// round over the other workers.  Decrements queued_ on success.
  Task* claim_task(std::ptrdiff_t self);

  /// Run a claimed task, retire it, and publish idleness when it was the
  /// last pending one.
  void run_task(Task* task);

  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Worker>> worker_state_;
  std::vector<std::unique_ptr<InjectStripe>> inject_;
  std::vector<std::thread> workers_;

  // Counters (all seq_cst at the use sites: they form Dekker pairs with
  // sleepers_/idle_waiters_ — see the protocol note in thread_pool.cpp).
  std::atomic<std::int64_t> queued_{0};   ///< pushed but not yet claimed (upper bound)
  std::atomic<std::int64_t> pending_{0};  ///< queued + running
  std::atomic<int> sleepers_{0};          ///< workers parked or about to park
  std::atomic<int> spinners_{0};          ///< 0 or 1: a worker spin-scanning for work
  std::atomic<int> idle_waiters_{0};      ///< threads parked in wait_idle
  std::atomic<bool> stopping_{false};

  std::mutex sleep_mutex_;  ///< guards cv_/idle_cv_ park-and-check only
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
};

}  // namespace bellamy::parallel
