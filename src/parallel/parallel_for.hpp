#pragma once
// Blocked parallel loops on top of ThreadPool.
//
// parallel_for(n, body)        — body(i) for i in [0, n), order unspecified.
// parallel_map(items, fn)      — element-wise transform preserving order.
// parallel_reduce(n, init, ...)— tree-free chunked reduction.
//
// The first exception thrown by any body is rethrown on the calling thread
// after all chunks complete.
//
// Nested use is supported: called from a worker of the SAME pool, the caller
// helps drain the pool while it waits (running its own share — and anything
// else claimable — inline), so nested fan-out can never deadlock and still
// uses every worker.  Under the work-stealing scheduler a nested call's
// chunks land on the calling worker's own deque and are popped LIFO by the
// helping loop (or stolen by idle peers), so the nested loop's work stays
// cache-local without any change here.  The chunking still sees the pool's
// full worker count, so callers that size work by pool.size() (e.g. the
// GEMM panel split) behave identically at any nesting depth.
//
// Determinism note: the pool promises exactly-once execution, not order.
// parallel_for writes disjoint indices, parallel_map/parallel_reduce write
// disjoint slots and combine them in SUBMISSION order on the waiting
// thread — which is why their results are bit-identical to the serial loop
// at any worker count and under any steal schedule (stress-checked in
// tests/parallel/test_pool_stress.cpp).

#include <chrono>
#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace bellamy::parallel {

namespace detail {
/// Wait for `f`, draining `pool`'s queue from the calling thread when the
/// caller is itself one of the pool's workers (help-based nested blocking).
template <typename Future>
void wait_helping(ThreadPool& pool, bool help, Future& f) {
  using namespace std::chrono_literals;
  if (!help) {
    f.wait();
    return;
  }
  while (f.wait_for(0s) != std::future_status::ready) {
    if (!pool.try_run_pending_task()) f.wait_for(50us);
  }
}
}  // namespace detail

/// Runs body(i) for every i in [0, n) across the pool in contiguous chunks.
template <typename Body>
void parallel_for(std::size_t n, Body&& body, ThreadPool* pool = nullptr,
                  std::size_t min_chunk = 1) {
  if (n == 0) return;
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  const std::size_t workers = p.size();
  if (workers <= 1 || n <= min_chunk) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  const bool help = p.owns_current_thread();
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    if (begin >= n) break;
    const std::size_t end = std::min(n, begin + chunk_size);
    futures.push_back(p.submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      detail::wait_helping(p, help, f);
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Order-preserving parallel transform.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn, ThreadPool* pool = nullptr)
    -> std::vector<decltype(fn(items.front()))> {
  using R = decltype(fn(items.front()));
  std::vector<R> out(items.size());
  parallel_for(
      items.size(), [&](std::size_t i) { out[i] = fn(items[i]); }, pool);
  return out;
}

/// Chunked reduction: combine(acc, value(i)). `combine` must be associative.
template <typename Acc, typename ValueFn, typename CombineFn>
Acc parallel_reduce(std::size_t n, Acc init, ValueFn&& value, CombineFn&& combine,
                    ThreadPool* pool = nullptr) {
  if (n == 0) return init;
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  const std::size_t workers = p.size();
  if (workers <= 1) {
    Acc acc = init;
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, value(i));
    return acc;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  const bool help = p.owns_current_thread();
  std::vector<std::future<Acc>> futures;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    if (begin >= n) break;
    const std::size_t end = std::min(n, begin + chunk_size);
    futures.push_back(p.submit([&, begin, end] {
      Acc acc = init;
      for (std::size_t i = begin; i < end; ++i) acc = combine(acc, value(i));
      return acc;
    }));
  }
  Acc total = init;
  for (auto& f : futures) {
    detail::wait_helping(p, help, f);
    total = combine(total, f.get());
  }
  return total;
}

}  // namespace bellamy::parallel
