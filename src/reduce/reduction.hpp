#pragma once
// bellamy::reduce — training-data reduction for cheap refits.
//
// Under heavy traffic a context's run history grows without bound, and with
// it the cost of every `refit_async` fine-tune.  A ReductionConfig maps the
// full history to a bounded coreset BEFORE fine-tuning (arXiv 2111.07904:
// carefully reduced training sets preserve accuracy at a fraction of the
// training cost).  Four deterministic, seeded policies:
//
//   kUniform    seeded uniform subsample of the history
//   kRecency    recency-weighted sampling (weight halves every
//               `recency_half_life` runs of age; newest run has weight 1)
//   kCoverage   scale-out-coverage binning: stratify by scale_out and take
//               round-robin across bins so the interpolation range is never
//               hollowed out — every populated bin keeps at least one run
//               whenever budget >= #bins
//   kLossAware  score candidates by the current model's absolute prediction
//               error and keep the hardest (falls back to kUniform when no
//               model is available, e.g. a cold refit with no base)
//
// Determinism contract: same seed + same history => byte-identical coreset,
// independent of thread count (selection is single-threaded; the only model
// interaction, predict_batch, is itself bit-identical across chunkings).
// Kept runs always preserve their original history order.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "data/record.hpp"

namespace bellamy::core {
class BellamyModel;
}

namespace bellamy::reduce {

enum class ReductionPolicy : std::uint8_t {
  kNone = 0,       ///< identity: keep the full history
  kUniform = 1,    ///< seeded uniform subsample
  kRecency = 2,    ///< recency-weighted sampling
  kCoverage = 3,   ///< scale-out-coverage binning
  kLossAware = 4,  ///< keep the runs the current model predicts worst
};

/// Stable lowercase name ("none", "uniform", "recency", "coverage",
/// "loss-aware") for flags, JSON and logs.
const char* policy_name(ReductionPolicy policy);
/// Inverse of policy_name; std::nullopt for unknown names.
std::optional<ReductionPolicy> parse_policy(std::string_view name);

struct ReductionConfig {
  ReductionPolicy policy = ReductionPolicy::kNone;
  std::size_t budget = 0;    ///< max runs kept; 0 keeps everything
  std::uint64_t seed = 17;   ///< drives every stochastic policy
  /// kRecency: a run's weight halves every this-many runs of age.
  double recency_half_life = 64.0;

  /// True when this config can ever drop a run.
  bool active() const { return policy != ReductionPolicy::kNone && budget > 0; }
};

/// What one reduction did: sizes plus scale-out coverage stats, so callers
/// (registry stats, bench JSON, tests) can see whether the interpolation
/// range survived.
struct ReductionReport {
  ReductionPolicy policy = ReductionPolicy::kNone;
  std::size_t input_runs = 0;
  std::size_t kept_runs = 0;
  std::size_t dropped_runs = 0;
  std::size_t budget = 0;             ///< 0 = unbounded
  std::size_t input_scaleout_bins = 0;  ///< distinct scale-outs in the history
  std::size_t kept_scaleout_bins = 0;   ///< distinct scale-outs in the coreset
  int min_scaleout_kept = 0;
  int max_scaleout_kept = 0;

  /// Fraction of populated scale-out bins still represented (1.0 when the
  /// input is empty).
  double scaleout_coverage() const {
    if (input_scaleout_bins == 0) return 1.0;
    return static_cast<double>(kept_scaleout_bins) /
           static_cast<double>(input_scaleout_bins);
  }
};

/// Map `runs` to a coreset of at most `config.budget` runs (original order
/// preserved).  `model` is only consulted by kLossAware — pass the model the
/// refit is about to fine-tune; nullptr falls back to kUniform.  When the
/// config is inactive or the budget covers the history, the input is
/// returned unchanged (still reported).
std::vector<data::JobRun> reduce_runs(const std::vector<data::JobRun>& runs,
                                      const ReductionConfig& config,
                                      core::BellamyModel* model = nullptr,
                                      ReductionReport* report = nullptr);

}  // namespace bellamy::reduce
