#include "reduce/reduction.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "core/bellamy_model.hpp"
#include "util/rng.hpp"

namespace bellamy::reduce {
namespace {

/// Seeded uniform pick of k indices out of [0, n).
std::vector<std::size_t> pick_uniform(std::size_t n, std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  return rng.sample_without_replacement(n, k);
}

/// Recency-weighted sampling without replacement: the newest run (index
/// n-1) has weight 1 and a run's weight halves every `half_life` positions
/// of age.  k sequential roulette picks over the surviving prefix sums —
/// O(n*k), fine for histories in the thousands.
std::vector<std::size_t> pick_recency(std::size_t n, std::size_t k, std::uint64_t seed,
                                      double half_life) {
  if (half_life <= 0.0) half_life = 1.0;
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double age = static_cast<double>(n - 1 - i);
    weight[i] = std::exp2(-age / half_life);
  }
  util::Rng rng(seed);
  std::vector<std::size_t> picked;
  picked.reserve(k);
  std::vector<bool> taken(n, false);
  for (std::size_t round = 0; round < k; ++round) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      if (!taken[i]) total += weight[i];
    double ball = rng.uniform() * total;
    std::size_t choice = n;  // falls through to the last free slot on fp slack
    for (std::size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      choice = i;
      ball -= weight[i];
      if (ball <= 0.0) break;
    }
    taken[choice] = true;
    picked.push_back(choice);
  }
  return picked;
}

/// Scale-out-coverage binning: group by scale_out, then round-robin across
/// bins (ascending scale-out) taking each bin's runs newest-first.  The
/// first lap hands every populated bin one slot, so no bin empties as long
/// as budget >= #bins.
std::vector<std::size_t> pick_coverage(const std::vector<data::JobRun>& runs,
                                       std::size_t k, std::uint64_t seed) {
  std::map<int, std::vector<std::size_t>> bins;  // scale_out -> indices, oldest first
  for (std::size_t i = 0; i < runs.size(); ++i) bins[runs[i].scale_out].push_back(i);
  // Within each bin keep the newest runs first (they reflect the current
  // cluster conditions); a seeded shuffle of the remainder spreads which
  // older runs survive across refits.
  util::Rng rng(seed);
  std::vector<std::vector<std::size_t>> queues;
  queues.reserve(bins.size());
  for (auto& [scale_out, indices] : bins) {
    std::reverse(indices.begin(), indices.end());  // newest first
    if (indices.size() > 1) {
      std::vector<std::size_t> rest(indices.begin() + 1, indices.end());
      rng.shuffle(rest);
      std::copy(rest.begin(), rest.end(), indices.begin() + 1);
    }
    queues.push_back(std::move(indices));
  }
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (std::size_t lap = 0; picked.size() < k; ++lap) {
    bool any = false;
    for (auto& queue : queues) {
      if (lap >= queue.size()) continue;
      any = true;
      picked.push_back(queue[lap]);
      if (picked.size() == k) break;
    }
    if (!any) break;  // every bin exhausted (k > n cannot happen here)
  }
  return picked;
}

/// Loss-aware: rank by the current model's absolute prediction error and
/// keep the k hardest.  Ties break toward the older run (lower index) so
/// the selection is a pure function of (model bits, history, k).
std::vector<std::size_t> pick_loss_aware(const std::vector<data::JobRun>& runs,
                                         std::size_t k, core::BellamyModel& model) {
  const std::vector<double> predicted = model.predict_batch(runs);
  std::vector<std::size_t> order(runs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ea = std::abs(predicted[a] - runs[a].runtime_s);
    const double eb = std::abs(predicted[b] - runs[b].runtime_s);
    if (ea != eb) return ea > eb;
    return a < b;
  });
  order.resize(k);
  return order;
}

void fill_report(const std::vector<data::JobRun>& input,
                 const std::vector<data::JobRun>& kept,
                 const ReductionConfig& config, ReductionReport* report) {
  if (report == nullptr) return;
  *report = ReductionReport{};
  report->policy = config.policy;
  report->budget = config.budget;
  report->input_runs = input.size();
  report->kept_runs = kept.size();
  report->dropped_runs = input.size() - kept.size();
  std::set<int> input_bins;
  for (const data::JobRun& run : input) input_bins.insert(run.scale_out);
  report->input_scaleout_bins = input_bins.size();
  std::set<int> kept_bins;
  for (const data::JobRun& run : kept) kept_bins.insert(run.scale_out);
  report->kept_scaleout_bins = kept_bins.size();
  if (!kept_bins.empty()) {
    report->min_scaleout_kept = *kept_bins.begin();
    report->max_scaleout_kept = *kept_bins.rbegin();
  }
}

}  // namespace

const char* policy_name(ReductionPolicy policy) {
  switch (policy) {
    case ReductionPolicy::kNone: return "none";
    case ReductionPolicy::kUniform: return "uniform";
    case ReductionPolicy::kRecency: return "recency";
    case ReductionPolicy::kCoverage: return "coverage";
    case ReductionPolicy::kLossAware: return "loss-aware";
  }
  return "unknown";
}

std::optional<ReductionPolicy> parse_policy(std::string_view name) {
  if (name == "none") return ReductionPolicy::kNone;
  if (name == "uniform") return ReductionPolicy::kUniform;
  if (name == "recency") return ReductionPolicy::kRecency;
  if (name == "coverage") return ReductionPolicy::kCoverage;
  if (name == "loss-aware" || name == "loss_aware") return ReductionPolicy::kLossAware;
  return std::nullopt;
}

std::vector<data::JobRun> reduce_runs(const std::vector<data::JobRun>& runs,
                                      const ReductionConfig& config,
                                      core::BellamyModel* model,
                                      ReductionReport* report) {
  if (!config.active() || config.budget >= runs.size()) {
    fill_report(runs, runs, config, report);
    return runs;
  }

  const std::size_t k = config.budget;
  std::vector<std::size_t> picked;
  switch (config.policy) {
    case ReductionPolicy::kNone:
      break;  // unreachable: active() is false for kNone
    case ReductionPolicy::kUniform:
      picked = pick_uniform(runs.size(), k, config.seed);
      break;
    case ReductionPolicy::kRecency:
      picked = pick_recency(runs.size(), k, config.seed, config.recency_half_life);
      break;
    case ReductionPolicy::kCoverage:
      picked = pick_coverage(runs, k, config.seed);
      break;
    case ReductionPolicy::kLossAware:
      // A cold refit has no model to score with; uniform is the neutral
      // fallback that still honors the budget deterministically.
      picked = model != nullptr ? pick_loss_aware(runs, k, *model)
                                : pick_uniform(runs.size(), k, config.seed);
      break;
  }

  std::sort(picked.begin(), picked.end());  // preserve history order
  std::vector<data::JobRun> kept;
  kept.reserve(picked.size());
  for (const std::size_t index : picked) kept.push_back(runs[index]);
  fill_report(runs, kept, config, report);
  return kept;
}

}  // namespace bellamy::reduce
