#!/usr/bin/env python3
"""Compare a bench JSON artifact against its committed baseline.

Usage: bench-compare.py BASELINE.json CURRENT.json [--threshold=0.25]

Walks both documents and compares every numeric leaf whose key encodes a
direction:

  *_ms               lower is better (latency)
  *_per_s            higher is better (throughput)
  speedup* / *speedup  higher is better

Keys without a direction (counts, diffs, flags) are ignored.  A metric
regresses when it is worse than the baseline by more than the threshold
(default 25%).  Exit status: 0 = no regression, 1 = regression, 2 = usage or
parse error.  Keys present in only one file are reported but never fail the
run (benches grow new sections).

CI runs this as a NON-BLOCKING step: machine-to-machine variance on shared
runners exceeds what a hard gate can tolerate, but the report makes real
regressions visible in the job log.
"""

import json
import sys


def numeric_leaves(node, prefix=""):
    """Yield (dotted.path, value) for every numeric leaf in a JSON tree."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from numeric_leaves(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from numeric_leaves(value, f"{prefix}[{i}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield prefix, float(node)


def direction(path):
    """+1 = higher is better, -1 = lower is better, 0 = not comparable."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith("_ms"):
        return -1
    if leaf.endswith("_per_s") or "speedup" in leaf:
        return 1
    return 0


def main(argv):
    threshold = 0.25
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    try:
        with open(paths[0]) as f:
            baseline = dict(numeric_leaves(json.load(f)))
        with open(paths[1]) as f:
            current = dict(numeric_leaves(json.load(f)))
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench-compare: {err}", file=sys.stderr)
        return 2

    regressions = []
    print(f"{'metric':50s} {'baseline':>12s} {'current':>12s} {'change':>9s}")
    for path in sorted(baseline):
        sign = direction(path)
        if sign == 0:
            continue
        if path not in current:
            print(f"{path:50s} {baseline[path]:12.2f} {'missing':>12s}")
            continue
        base, cur = baseline[path], current[path]
        if base == 0:
            continue
        change = (cur - base) / abs(base)
        worse = -sign * change  # positive = regression for either direction
        flag = ""
        if worse > threshold:
            flag = "  << REGRESSION"
            regressions.append((path, change))
        print(f"{path:50s} {base:12.2f} {cur:12.2f} {change:+8.1%}{flag}")
    for path in sorted(set(current) - set(baseline)):
        if direction(path):
            print(f"{path:50s} {'new':>12s} {current[path]:12.2f}")

    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed more than "
            f"{threshold:.0%} vs {paths[0]}",
            file=sys.stderr,
        )
        return 1
    print(f"\nno regression beyond {threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
