#!/usr/bin/env python3
"""Sweep the repo's markdown files for dead relative links.

Usage: docs-link-check.py [ROOT]   (default: the repo root containing this script)

Checks every inline markdown link `[text](target)` in every *.md file under
ROOT (skipping .git/ and build*/):

  * http(s)/mailto targets are ignored (no network in CI),
  * pure-anchor targets (#section) are ignored,
  * anything else must resolve — relative to the file's directory, or to
    ROOT when the target starts with '/' — to an existing file or directory
    (an #anchor suffix is stripped first).

Exit status: 0 = all links resolve, 1 = at least one dead link (each is
reported as file:line), 2 = usage error.  Run by the format CI job, and
cheap enough to run locally before committing docs.
"""

import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    dead = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                if target.startswith("/"):
                    resolved = os.path.join(root, target.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(path), target)
                if not os.path.exists(resolved):
                    dead.append((lineno, match.group(1)))
    return dead


def main(argv):
    if len(argv) > 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    root = os.path.abspath(
        argv[1] if len(argv) == 2 else os.path.join(os.path.dirname(__file__), "..")
    )

    checked = 0
    failures = 0
    for path in md_files(root):
        checked += 1
        for lineno, target in check_file(path, root):
            failures += 1
            rel = os.path.relpath(path, root)
            print(f"{rel}:{lineno}: dead link -> {target}")
    print(f"docs-link-check: {checked} markdown file(s), {failures} dead link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
