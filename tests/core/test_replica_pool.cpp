// ReplicaPool contract: chunked prediction stays bit-identical to the serial
// pass, replicas are reused across calls while the model is unchanged (hits,
// no fresh deserialization), and ANY weight mutation — a fine-tune step, a
// parameter restore, an explicit invalidate — makes the pool serve the
// updated weights on the next call.

#include "core/replica_pool.hpp"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/bellamy_model.hpp"
#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "parallel/thread_pool.hpp"

namespace bellamy::core {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 61;
    ds = data::C3OGenerator(cfg).generate_algorithm("sort", 5);
    const auto groups = ds.contexts();
    target_runs = groups.front().runs;
    rest = ds.exclude_context(groups.front().key);
    queries.reserve(64);
    for (std::size_t i = 0; i < 64; ++i) {
      data::JobRun q = target_runs.front();
      q.scale_out = static_cast<int>(1 + i % 60);
      queries.push_back(q);
    }
  }
  data::Dataset ds;
  std::vector<data::JobRun> target_runs;
  data::Dataset rest;
  std::vector<data::JobRun> queries;
};

BellamyModel quick_pretrained(const data::Dataset& corpus, std::uint64_t seed) {
  BellamyModel model(BellamyConfig{}, seed);
  PreTrainConfig pre;
  pre.epochs = 60;
  pretrain(model, corpus.runs(), pre);
  return model;
}

TEST(ReplicaPool, ChunkedPredictionBitIdenticalAndReused) {
  Fixture fx;
  BellamyModel model = quick_pretrained(fx.rest, 3);
  model.set_predict_chunk_threshold(0);  // serial reference stays single-pass
  const auto serial = model.predict_batch(fx.queries);

  parallel::ThreadPool pool(4);
  const auto first = model.predict_batch_chunked(fx.queries, &pool, 4);
  ASSERT_EQ(first.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(first[i], serial[i]);

  ReplicaPool& rp = model.replica_pool();
  EXPECT_EQ(rp.misses(), 4u);  // first call deserializes every chunk replica
  EXPECT_EQ(rp.hits(), 0u);
  EXPECT_EQ(rp.size(), 4u);  // all leases returned

  const auto second = model.predict_batch_chunked(fx.queries, &pool, 4);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(second[i], serial[i]);
  EXPECT_EQ(rp.misses(), 4u);  // steady state: no new deserialization
  EXPECT_EQ(rp.hits(), 4u);
}

TEST(ReplicaPool, FineTuneInvalidatesAndServesUpdatedWeights) {
  Fixture fx;
  BellamyModel model = quick_pretrained(fx.rest, 5);
  model.set_predict_chunk_threshold(0);
  parallel::ThreadPool pool(4);

  const auto before = model.predict_batch_chunked(fx.queries, &pool, 4);
  const std::uint64_t stamp_before = model.state_stamp();

  FineTuneConfig ft;
  ft.max_epochs = 30;
  ft.patience = 30;
  finetune(model, {fx.target_runs.begin(), fx.target_runs.begin() + 4}, ft);
  EXPECT_NE(model.state_stamp(), stamp_before);

  const auto serial_after = model.predict_batch(fx.queries);
  const auto chunked_after = model.predict_batch_chunked(fx.queries, &pool, 4);
  ASSERT_EQ(chunked_after.size(), serial_after.size());
  bool any_changed = false;
  for (std::size_t i = 0; i < serial_after.size(); ++i) {
    EXPECT_EQ(chunked_after[i], serial_after[i]) << "stale replica at query " << i;
    if (chunked_after[i] != before[i]) any_changed = true;
  }
  EXPECT_TRUE(any_changed) << "fine-tune did not change any prediction";
  EXPECT_GE(model.replica_pool().invalidations(), 1u);
}

TEST(ReplicaPool, ExplicitInvalidateRebuilds) {
  Fixture fx;
  BellamyModel model = quick_pretrained(fx.rest, 7);
  model.set_predict_chunk_threshold(0);
  parallel::ThreadPool pool(2);

  const auto serial = model.predict_batch(fx.queries);
  (void)model.predict_batch_chunked(fx.queries, &pool, 2);
  ReplicaPool& rp = model.replica_pool();
  const auto misses_before = rp.misses();
  rp.invalidate();
  EXPECT_EQ(rp.size(), 0u);
  const auto preds = model.predict_batch_chunked(fx.queries, &pool, 2);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(preds[i], serial[i]);
  EXPECT_GT(rp.misses(), misses_before);
}

TEST(ReplicaPool, LeaseRoundTrip) {
  Fixture fx;
  BellamyModel model = quick_pretrained(fx.rest, 9);
  ReplicaPool pool;
  {
    ReplicaPool::Lease lease = pool.acquire(model);
    ASSERT_TRUE(lease);
    // The replica predicts exactly like its source.
    model.set_predict_chunk_threshold(0);
    lease.model().set_predict_chunk_threshold(0);
    EXPECT_EQ(lease.model().predict_batch(fx.queries), model.predict_batch(fx.queries));
    EXPECT_EQ(pool.size(), 0u);  // checked out
  }
  EXPECT_EQ(pool.size(), 1u);  // returned on lease destruction
  EXPECT_EQ(pool.misses(), 1u);
  {
    ReplicaPool::Lease lease = pool.acquire(model);
    EXPECT_EQ(pool.hits(), 1u);
  }
}

TEST(ReplicaPool, ConcurrentAcquiresAreSafe) {
  Fixture fx;
  BellamyModel model = quick_pretrained(fx.rest, 11);
  model.set_predict_chunk_threshold(0);
  const auto serial = model.predict_batch(fx.queries);

  ReplicaPool pool;
  parallel::ThreadPool workers(8);
  std::vector<std::future<std::vector<double>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(workers.submit([&] {
      ReplicaPool::Lease lease = pool.acquire(model);
      lease.model().set_predict_chunk_threshold(0);
      return lease.model().predict_batch(fx.queries);
    }));
  }
  for (auto& f : futures) {
    const auto preds = f.get();
    ASSERT_EQ(preds.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(preds[i], serial[i]);
  }
  EXPECT_EQ(pool.hits() + pool.misses(), 16u);
}

// BellamyPredictor keeps one pool across fits: after a re-fit the pool serves
// the NEW model's weights (stamp invalidation), never the old ones.
TEST(ReplicaPool, PredictorPoolSurvivesRefit) {
  Fixture fx;
  const BellamyModel pretrained = quick_pretrained(fx.rest, 13);
  FineTuneConfig ft;
  ft.max_epochs = 40;
  ft.patience = 40;
  BellamyPredictor pred(pretrained, ft);

  parallel::ThreadPool pool(2);
  pred.fit({fx.target_runs.begin(), fx.target_runs.begin() + 3});
  pred.model().set_predict_chunk_threshold(0);
  const auto first = pred.model().predict_batch_chunked(fx.queries, &pool, 2);
  const std::uint64_t misses_after_first = pred.model().replica_pool().misses();
  EXPECT_GT(misses_after_first, 0u);

  pred.fit({fx.target_runs.begin(), fx.target_runs.begin() + 5});
  pred.model().set_predict_chunk_threshold(0);
  const auto serial = pred.model().predict_batch(fx.queries);
  const auto chunked = pred.model().predict_batch_chunked(fx.queries, &pool, 2);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(chunked[i], serial[i]);
  (void)first;
}

}  // namespace
}  // namespace bellamy::core
