#include "core/resource_selector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ernest.hpp"

namespace bellamy::core {
namespace {

/// Deterministic stand-in model: runtime = 600 / x + 10 * x.
class FakeModel : public data::RuntimeModel {
 public:
  void fit(const std::vector<data::JobRun>&) override {}
  double predict(const data::JobRun& q) override {
    const double x = q.scale_out;
    return 600.0 / x + 10.0 * x;
  }
  std::size_t min_training_points() const override { return 0; }
  std::string name() const override { return "fake"; }
};

data::JobRun context_template() {
  data::JobRun r;
  r.algorithm = "sgd";
  r.scale_out = 0;
  return r;
}

TEST(ResourceSelector, PicksSmallestMeetingTarget) {
  FakeModel model;
  // Predictions: x=2 -> 320, x=4 -> 190, x=6 -> 160, x=8 -> 155, x=10 -> 160.
  const auto sel =
      select_scaleout(model, context_template(), {2, 4, 6, 8, 10}, 200.0);
  EXPECT_TRUE(sel.target_met);
  EXPECT_EQ(sel.chosen_scale_out, 4);
  EXPECT_NEAR(sel.predicted_runtime_s, 190.0, 1e-9);
}

TEST(ResourceSelector, FallsBackToFastestWhenTargetUnreachable) {
  FakeModel model;
  const auto sel = select_scaleout(model, context_template(), {2, 4, 6, 8, 10}, 100.0);
  EXPECT_FALSE(sel.target_met);
  EXPECT_EQ(sel.chosen_scale_out, 8);  // minimum of 600/x + 10x on the grid
  EXPECT_NEAR(sel.predicted_runtime_s, 155.0, 1e-9);
}

TEST(ResourceSelector, PredictionsReportedForAllCandidates) {
  FakeModel model;
  const auto sel = select_scaleout(model, context_template(), {6, 2, 4}, 1000.0);
  ASSERT_EQ(sel.predictions.size(), 3u);
  // Sorted ascending by scale-out.
  EXPECT_EQ(sel.predictions[0].scale_out, 2);
  EXPECT_EQ(sel.predictions[2].scale_out, 6);
}

TEST(ResourceSelector, DeduplicatesCandidates) {
  FakeModel model;
  const auto sel = select_scaleout(model, context_template(), {4, 4, 4}, 1000.0);
  EXPECT_EQ(sel.predictions.size(), 1u);
}

TEST(ResourceSelector, TargetJustMetAtBoundary) {
  FakeModel model;
  const auto sel = select_scaleout(model, context_template(), {2}, 320.0);
  EXPECT_TRUE(sel.target_met);
  EXPECT_EQ(sel.chosen_scale_out, 2);
}

TEST(ResourceSelector, InvalidInputsThrow) {
  FakeModel model;
  EXPECT_THROW(select_scaleout(model, context_template(), {}, 100.0),
               std::invalid_argument);
  EXPECT_THROW(select_scaleout(model, context_template(), {2}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(select_scaleout(model, context_template(), {0}, 10.0),
               std::invalid_argument);
}

TEST(ResourceSelector, WorksWithErnestModel) {
  // End-to-end with a real baseline: fit Ernest on a U-shaped curve, then
  // pick resources for a runtime target.
  baselines::ErnestModel model;
  std::vector<data::JobRun> runs;
  for (int x = 2; x <= 12; x += 2) {
    data::JobRun r = context_template();
    r.scale_out = x;
    r.runtime_s = 30.0 + 900.0 / x + 20.0 * std::log(x) + 2.0 * x;
    runs.push_back(r);
  }
  model.fit(runs);
  const auto sel = select_scaleout(model, context_template(), {2, 4, 6, 8, 10, 12}, 300.0);
  EXPECT_TRUE(sel.target_met);
  // True runtimes: x=4 -> 290.7 meets 300; x=2 -> 497.9 does not.
  EXPECT_EQ(sel.chosen_scale_out, 4);
}

}  // namespace
}  // namespace bellamy::core
