#include "core/variants.hpp"

#include <gtest/gtest.h>

#include "data/c3o_generator.hpp"

namespace bellamy::core {
namespace {

data::Dataset corpus() {
  data::C3OGeneratorConfig cfg;
  cfg.seed = 21;
  return data::C3OGenerator(cfg).generate_algorithm("kmeans", 6);
}

TEST(Variants, Names) {
  EXPECT_STREQ(scenario_name(PretrainScenario::kLocal), "local");
  EXPECT_STREQ(scenario_name(PretrainScenario::kFiltered), "filtered");
  EXPECT_STREQ(scenario_name(PretrainScenario::kFull), "full");
  EXPECT_STREQ(strategy_name(ReuseStrategy::kPartialUnfreeze), "partial-unfreeze");
  EXPECT_STREQ(strategy_name(ReuseStrategy::kFullUnfreeze), "full-unfreeze");
  EXPECT_STREQ(strategy_name(ReuseStrategy::kPartialReset), "partial-reset");
  EXPECT_STREQ(strategy_name(ReuseStrategy::kFullReset), "full-reset");
}

TEST(PretrainingCorpus, LocalIsEmpty) {
  const auto ds = corpus();
  const auto target = ds.runs().front();
  EXPECT_TRUE(pretraining_corpus(PretrainScenario::kLocal, ds, target).empty());
}

TEST(PretrainingCorpus, FullExcludesTargetContextOnly) {
  const auto ds = corpus();
  const auto target = ds.runs().front();
  const auto full = pretraining_corpus(PretrainScenario::kFull, ds, target);
  EXPECT_EQ(full.size(), ds.exclude_context(target.context_key()).size());
  for (const auto& r : full.runs()) {
    EXPECT_NE(r.context_key(), target.context_key());
    EXPECT_EQ(r.algorithm, target.algorithm);
  }
}

TEST(PretrainingCorpus, FilteredIsSubsetOfFull) {
  const auto ds = corpus();
  const auto target = ds.runs().front();
  const auto full = pretraining_corpus(PretrainScenario::kFull, ds, target);
  const auto filtered = pretraining_corpus(PretrainScenario::kFiltered, ds, target);
  EXPECT_LE(filtered.size(), full.size());
  for (const auto& r : filtered.runs()) {
    EXPECT_NE(r.node_type, target.node_type);
    EXPECT_NE(r.data_characteristics, target.data_characteristics);
    EXPECT_NE(r.job_parameters, target.job_parameters);
    const double rel =
        std::abs(static_cast<double>(r.dataset_size_mb) -
                 static_cast<double>(target.dataset_size_mb)) /
        static_cast<double>(target.dataset_size_mb);
    EXPECT_GE(rel, 0.20);
  }
}

TEST(MakeScenarioModel, LocalIsUntrained) {
  const auto ds = corpus();
  const auto target = ds.runs().front();
  BellamyModel model = make_scenario_model(PretrainScenario::kLocal, ds, target,
                                           BellamyConfig{}, PreTrainConfig{}, 1);
  EXPECT_FALSE(model.normalization_fitted());
}

TEST(MakeScenarioModel, FullIsPretrained) {
  const auto ds = corpus();
  const auto target = ds.runs().front();
  PreTrainConfig pre;
  pre.epochs = 30;
  BellamyModel model =
      make_scenario_model(PretrainScenario::kFull, ds, target, BellamyConfig{}, pre, 2);
  EXPECT_TRUE(model.normalization_fitted());
}

TEST(MakeScenarioModel, EmptyFilteredCorpusFallsBackToLocal) {
  // A dataset with only the target context: filtered corpus is empty.
  const auto ds = corpus();
  const auto target = ds.runs().front();
  const auto only_target = ds.filter_context(target.context_key());
  PreTrainConfig pre;
  pre.epochs = 10;
  BellamyModel model = make_scenario_model(PretrainScenario::kFiltered, only_target, target,
                                           BellamyConfig{}, pre, 3);
  EXPECT_FALSE(model.normalization_fitted());
}

TEST(ApplyReuseStrategy, PartialUnfreezeKeepsWeights) {
  BellamyModel model(BellamyConfig{}, 4);
  const auto f = model.f().parameters()[0]->value;
  const auto z = model.z().parameters()[0]->value;
  const auto cfg = apply_reuse_strategy(ReuseStrategy::kPartialUnfreeze, model, {});
  EXPECT_FALSE(cfg.unlock_f_immediately);
  EXPECT_EQ(model.f().parameters()[0]->value, f);
  EXPECT_EQ(model.z().parameters()[0]->value, z);
}

TEST(ApplyReuseStrategy, FullUnfreezeSetsFlagOnly) {
  BellamyModel model(BellamyConfig{}, 5);
  const auto f = model.f().parameters()[0]->value;
  const auto cfg = apply_reuse_strategy(ReuseStrategy::kFullUnfreeze, model, {});
  EXPECT_TRUE(cfg.unlock_f_immediately);
  EXPECT_EQ(model.f().parameters()[0]->value, f);
}

TEST(ApplyReuseStrategy, PartialResetReinitializesZOnly) {
  BellamyModel model(BellamyConfig{}, 6);
  const auto f = model.f().parameters()[0]->value;
  const auto z = model.z().parameters()[0]->value;
  apply_reuse_strategy(ReuseStrategy::kPartialReset, model, {});
  EXPECT_EQ(model.f().parameters()[0]->value, f);
  EXPECT_NE(model.z().parameters()[0]->value, z);
}

TEST(ApplyReuseStrategy, FullResetReinitializesFAndZ) {
  BellamyModel model(BellamyConfig{}, 7);
  const auto f = model.f().parameters()[0]->value;
  const auto z = model.z().parameters()[0]->value;
  const auto g = model.g().parameters()[0]->value;
  const auto cfg = apply_reuse_strategy(ReuseStrategy::kFullReset, model, {});
  EXPECT_NE(model.f().parameters()[0]->value, f);
  EXPECT_NE(model.z().parameters()[0]->value, z);
  EXPECT_EQ(model.g().parameters()[0]->value, g);  // auto-encoder untouched
  EXPECT_TRUE(cfg.unlock_f_immediately);
}

}  // namespace
}  // namespace bellamy::core
