#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include "data/c3o_generator.hpp"

namespace bellamy::core {
namespace {

data::Dataset tiny_corpus() {
  data::C3OGeneratorConfig cfg;
  cfg.seed = 5;
  return data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
}

std::vector<data::JobRun> group_first_half(const std::vector<data::JobRun>& runs) {
  return {runs.begin(), runs.begin() + static_cast<std::ptrdiff_t>(runs.size() / 2)};
}

PreTrainConfig fast_pretrain() {
  PreTrainConfig cfg;
  cfg.epochs = 120;
  cfg.learning_rate = 1e-2;
  cfg.dropout = 0.05;
  return cfg;
}

FineTuneConfig fast_finetune() {
  FineTuneConfig cfg;
  cfg.max_epochs = 300;
  cfg.patience = 150;
  cfg.mae_target_seconds = 5.0;
  return cfg;
}

TEST(Pretrain, LossDecreases) {
  const auto corpus = tiny_corpus();
  BellamyModel model(BellamyConfig{}, 1);
  const auto result = pretrain(model, corpus.runs(), fast_pretrain());
  EXPECT_EQ(result.epochs_run, 120u);
  ASSERT_GE(result.loss_history.size(), 2u);
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

TEST(Pretrain, FitsNormalization) {
  const auto corpus = tiny_corpus();
  BellamyModel model(BellamyConfig{}, 2);
  EXPECT_FALSE(model.normalization_fitted());
  pretrain(model, corpus.runs(), fast_pretrain());
  EXPECT_TRUE(model.normalization_fitted());
}

TEST(Pretrain, EmptyRunsThrows) {
  BellamyModel model(BellamyConfig{}, 3);
  EXPECT_THROW(pretrain(model, {}, fast_pretrain()), std::invalid_argument);
}

TEST(Pretrain, ImprovesMaeSubstantially) {
  const auto corpus = tiny_corpus();
  BellamyModel model(BellamyConfig{}, 4);
  PreTrainConfig cfg = fast_pretrain();
  cfg.epochs = 400;
  const auto result = pretrain(model, corpus.runs(), cfg);
  // Mean runtime of sgd contexts is in the hundreds of seconds; after
  // pre-training the in-sample MAE should be a small fraction of that.
  double mean_rt = 0.0;
  for (const auto& r : corpus.runs()) mean_rt += r.runtime_s;
  mean_rt /= static_cast<double>(corpus.size());
  EXPECT_LT(result.final_mae_seconds, 0.4 * mean_rt);
}

TEST(Finetune, LocalModelFitsSmallContext) {
  const auto ds = tiny_corpus();
  const auto group = ds.contexts().front();
  BellamyModel model(BellamyConfig{}, 5);
  FineTuneConfig cfg = fast_finetune();
  cfg.unlock_f_immediately = true;
  cfg.max_epochs = 800;
  cfg.patience = 400;
  const auto result = finetune(model, group.runs, cfg);
  EXPECT_GT(result.epochs_run, 0u);
  // Best MAE must be well below the context's mean runtime.
  EXPECT_LT(result.best_mae_seconds, group.runs.front().runtime_s);
}

TEST(Finetune, StopsAtMaeTarget) {
  const auto ds = tiny_corpus();
  const auto group = ds.contexts().front();
  BellamyModel model(BellamyConfig{}, 6);
  FineTuneConfig cfg = fast_finetune();
  cfg.mae_target_seconds = 1e9;  // trivially satisfied after one epoch
  const auto result = finetune(model, group.runs, cfg);
  EXPECT_TRUE(result.reached_target);
  EXPECT_LE(result.epochs_run, 1u);
}

TEST(Finetune, PatienceStopsTraining) {
  const auto ds = tiny_corpus();
  const auto group = ds.contexts().front();
  BellamyModel model(BellamyConfig{}, 7);
  FineTuneConfig cfg = fast_finetune();
  cfg.mae_target_seconds = 0.0;  // unreachable
  cfg.patience = 30;
  cfg.max_epochs = 2000;
  const auto result = finetune(model, group.runs, cfg);
  EXPECT_LT(result.epochs_run, 2000u);
  EXPECT_FALSE(result.reached_target);
}

TEST(Finetune, FreezePolicyKeepsAutoencoderFixed) {
  const auto corpus = tiny_corpus();
  BellamyModel model(BellamyConfig{}, 8);
  pretrain(model, corpus.runs(), fast_pretrain());
  const auto g_before = model.g().parameters()[0]->value;
  const auto h_before = model.h().parameters()[0]->value;
  const auto group = corpus.contexts().front();
  finetune(model, group.runs, fast_finetune());
  EXPECT_EQ(model.g().parameters()[0]->value, g_before);
  EXPECT_EQ(model.h().parameters()[0]->value, h_before);
}

TEST(Finetune, FreezesFInitiallyThenUnlocks) {
  const auto corpus = tiny_corpus();
  BellamyModel model(BellamyConfig{}, 9);
  pretrain(model, corpus.runs(), fast_pretrain());
  const auto f_before = model.f().parameters()[0]->value;

  const auto group = corpus.contexts().front();
  // Short run that ends before the unlock threshold: f must stay fixed.
  FineTuneConfig cfg = fast_finetune();
  cfg.unlock_f_after = 1000;
  cfg.max_epochs = 20;
  cfg.patience = 1000;
  cfg.mae_target_seconds = 0.0;
  finetune(model, group.runs, cfg);
  EXPECT_EQ(model.f().parameters()[0]->value, f_before);

  // Long run past the unlock epoch: f adapts.  (Restore-best may return an
  // early state, so compare against the raw trained value via a fresh run
  // whose best state is forced to the end by an unreachable target.)
  BellamyModel model2(BellamyConfig{}, 9);
  pretrain(model2, corpus.runs(), fast_pretrain());
  const auto f2_before = model2.f().parameters()[0]->value;
  FineTuneConfig cfg2 = fast_finetune();
  cfg2.unlock_f_after = 5;
  cfg2.max_epochs = 200;
  cfg2.patience = 1000;
  cfg2.mae_target_seconds = 0.0;
  finetune(model2, group.runs, cfg2);
  EXPECT_NE(model2.f().parameters()[0]->value, f2_before);
}

TEST(Finetune, UnlockImmediatelyTrainsFFromStart) {
  const auto corpus = tiny_corpus();
  const auto group = corpus.contexts().front();
  BellamyModel model(BellamyConfig{}, 10);
  pretrain(model, corpus.runs(), fast_pretrain());
  const auto f_before = model.f().parameters()[0]->value;
  FineTuneConfig cfg = fast_finetune();
  cfg.unlock_f_immediately = true;
  cfg.max_epochs = 30;
  cfg.patience = 1000;
  cfg.mae_target_seconds = 0.0;
  finetune(model, group.runs, cfg);
  EXPECT_NE(model.f().parameters()[0]->value, f_before);
}

TEST(Finetune, BestStateRestored) {
  // After fine-tuning, the model's MAE equals the reported best MAE.
  const auto corpus = tiny_corpus();
  const auto group = corpus.contexts().front();
  BellamyModel model(BellamyConfig{}, 11);
  pretrain(model, corpus.runs(), fast_pretrain());
  const auto result = finetune(model, group.runs, fast_finetune());
  const auto batch = model.make_batch(group.runs);
  const double mae_now = model.evaluate(batch, 0.0).mae_seconds;
  EXPECT_NEAR(mae_now, result.best_mae_seconds, 1e-9);
}

TEST(Finetune, PretrainedConvergesFasterThanLocal) {
  // The paper's Fig. 7 claim, in miniature: starting from a pre-trained
  // model needs fewer fine-tuning epochs than starting from scratch.
  data::C3OGeneratorConfig gcfg;
  gcfg.seed = 77;
  const auto corpus = data::C3OGenerator(gcfg).generate_algorithm("sgd", 6);
  const auto groups = corpus.contexts();
  const auto& target = groups.front();

  PreTrainConfig pre = fast_pretrain();
  pre.epochs = 400;
  FineTuneConfig fine = fast_finetune();
  fine.mae_target_seconds = 30.0;
  fine.max_epochs = 1500;
  fine.patience = 1500;

  BellamyModel pretrained(BellamyConfig{}, 12);
  data::Dataset rest = corpus.exclude_context(target.key);
  pretrain(pretrained, rest.runs(), pre);
  const auto r_pre = finetune(pretrained, group_first_half(target.runs), fine);

  BellamyModel local(BellamyConfig{}, 12);
  FineTuneConfig fine_local = fine;
  fine_local.unlock_f_immediately = true;
  const auto r_local = finetune(local, group_first_half(target.runs), fine_local);

  EXPECT_LE(r_pre.epochs_run, r_local.epochs_run + 100);
}

TEST(Finetune, EmptyRunsThrows) {
  BellamyModel model(BellamyConfig{}, 13);
  EXPECT_THROW(finetune(model, {}, fast_finetune()), std::invalid_argument);
}

}  // namespace
}  // namespace bellamy::core
