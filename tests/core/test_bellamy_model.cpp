#include "core/bellamy_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/c3o_generator.hpp"
#include "nn/optimizer.hpp"

namespace bellamy::core {
namespace {

data::JobRun make_run(int x = 4, double rt = 300.0) {
  data::JobRun r;
  r.algorithm = "sgd";
  r.node_type = "m4.2xlarge";
  r.job_parameters = "25";
  r.dataset_size_mb = 19353;
  r.data_characteristics = "features-100-dense";
  r.memory_mb = 32768;
  r.cpu_cores = 8;
  r.scale_out = x;
  r.runtime_s = rt;
  return r;
}

std::vector<data::JobRun> small_context() {
  std::vector<data::JobRun> runs;
  for (int x = 2; x <= 12; x += 2) {
    runs.push_back(make_run(x, 100.0 + 600.0 / x));
  }
  return runs;
}

TEST(BellamyModel, PropertyExtraction) {
  const data::JobRun r = make_run();
  const auto ess = essential_properties(r);
  ASSERT_EQ(ess.size(), 4u);
  EXPECT_EQ(std::get<std::string>(ess[0]), "m4.2xlarge");
  EXPECT_EQ(std::get<std::string>(ess[1]), "25");
  EXPECT_EQ(std::get<std::uint64_t>(ess[2]), 19353u);
  EXPECT_EQ(std::get<std::string>(ess[3]), "features-100-dense");
  const auto opt = optional_properties(r);
  ASSERT_EQ(opt.size(), 3u);
  EXPECT_EQ(std::get<std::uint64_t>(opt[0]), 32768u);
  EXPECT_EQ(std::get<std::uint64_t>(opt[1]), 8u);
  EXPECT_EQ(std::get<std::string>(opt[2]), "sgd");
}

TEST(BellamyModel, CombinedDimensionMatchesPaperFormula) {
  // F + (m+1) * M = 8 + 5*4 = 28.
  BellamyConfig cfg;
  EXPECT_EQ(cfg.combined_dim(), 28u);
  EXPECT_EQ(cfg.props_per_sample(), 7u);
}

TEST(BellamyModel, MakeBatchShapes) {
  BellamyConfig cfg;
  BellamyModel model(cfg, 1);
  const auto batch = model.make_batch(small_context());
  EXPECT_EQ(batch.batch_size, 6u);
  EXPECT_EQ(batch.scaleout_raw.rows(), 6u);
  EXPECT_EQ(batch.scaleout_raw.cols(), 3u);
  // All six runs share the same context, so the deduplicated property matrix
  // holds exactly one batch's worth of rows; the stacked view restores the
  // full sample-major layout.
  EXPECT_EQ(batch.properties.rows(), 7u);
  EXPECT_EQ(batch.properties.cols(), 40u);
  EXPECT_EQ(batch.prop_row.size(), 6u * 7u);
  const auto stacked = batch.stacked_properties();
  EXPECT_EQ(stacked.rows(), 6u * 7u);
  EXPECT_EQ(stacked.cols(), 40u);
  EXPECT_EQ(batch.targets_raw.rows(), 6u);
  double total_weight = 0.0;
  for (double w : batch.prop_weight) total_weight += w;
  EXPECT_DOUBLE_EQ(total_weight, 6.0 * 7.0);
}

TEST(BellamyModel, GatherBatchMatchesMakeBatch) {
  BellamyModel model(BellamyConfig{}, 1);
  const auto runs = small_context();
  const auto encoded = model.encode_runs(runs);
  const std::vector<std::size_t> idx{4, 1, 2};
  const auto gathered = model.gather_batch(encoded, idx);
  const std::vector<data::JobRun> subset{runs[4], runs[1], runs[2]};
  const auto direct = model.make_batch(subset);
  EXPECT_EQ(gathered.scaleout_raw, direct.scaleout_raw);
  EXPECT_EQ(gathered.targets_raw, direct.targets_raw);
  EXPECT_EQ(gathered.stacked_properties(), direct.stacked_properties());
  EXPECT_EQ(gathered.prop_weight, direct.prop_weight);
  EXPECT_THROW(model.gather_batch(encoded, std::vector<std::size_t>{}),
               std::invalid_argument);
  EXPECT_THROW(model.gather_batch(encoded, std::vector<std::size_t>{99}), std::out_of_range);
}

TEST(BellamyModel, MakeBatchScaleoutFeatures) {
  BellamyModel model(BellamyConfig{}, 1);
  const auto batch = model.make_batch({make_run(4)});
  EXPECT_DOUBLE_EQ(batch.scaleout_raw(0, 0), 0.25);
  EXPECT_NEAR(batch.scaleout_raw(0, 1), std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(batch.scaleout_raw(0, 2), 4.0);
}

TEST(BellamyModel, MakeBatchRejectsEmptyAndInvalid) {
  BellamyModel model(BellamyConfig{}, 1);
  EXPECT_THROW(model.make_batch({}), std::invalid_argument);
  EXPECT_THROW(model.make_batch({make_run(0)}), std::invalid_argument);
}

TEST(BellamyModel, ForwardRequiresNormalization) {
  BellamyModel model(BellamyConfig{}, 1);
  const auto batch = model.make_batch(small_context());
  EXPECT_THROW(model.forward(batch, false), std::logic_error);
}

TEST(BellamyModel, ForwardShapes) {
  BellamyModel model(BellamyConfig{}, 1);
  const auto runs = small_context();
  model.fit_normalization(runs);
  const auto batch = model.make_batch(runs);
  const auto fw = model.forward(batch, false);
  EXPECT_EQ(fw.prediction_raw.rows(), 6u);
  EXPECT_EQ(fw.prediction_raw.cols(), 1u);
  // codes/reconstruction cover the batch's unique property rows (one shared
  // context here); the stacked views expand to sample-major layout.
  EXPECT_EQ(fw.codes.rows(), batch.num_unique_properties());
  EXPECT_EQ(fw.codes.cols(), 4u);
  EXPECT_EQ(fw.reconstruction.rows(), batch.num_unique_properties());
  EXPECT_EQ(fw.reconstruction.cols(), 40u);
  EXPECT_EQ(fw.stacked_codes().rows(), 42u);
  EXPECT_EQ(fw.stacked_reconstruction().rows(), 42u);
  EXPECT_EQ(fw.combined.rows(), 6u);
  EXPECT_EQ(fw.combined.cols(), 28u);
}

TEST(BellamyModel, EvalForwardDeterministic) {
  BellamyModel model(BellamyConfig{}, 2);
  const auto runs = small_context();
  model.fit_normalization(runs);
  const auto batch = model.make_batch(runs);
  const auto a = model.forward(batch, false);
  const auto b = model.forward(batch, false);
  EXPECT_EQ(a.prediction_raw, b.prediction_raw);
}

TEST(BellamyModel, CombinedVectorLayout) {
  // The combined vector must be [e | essential codes | mean(optional codes)].
  BellamyModel model(BellamyConfig{}, 3);
  const auto runs = small_context();
  model.fit_normalization(runs);
  const auto batch = model.make_batch({runs[0]});
  const auto fw = model.forward(batch, false);
  const auto codes = fw.stacked_codes();
  const auto& cfg = model.config();
  const std::size_t F = cfg.scaleout_out;
  const std::size_t M = cfg.code_dim;
  // Essential code p occupies columns F + p*M .. F + (p+1)*M.
  for (std::size_t p = 0; p < cfg.num_essential; ++p) {
    for (std::size_t j = 0; j < M; ++j) {
      EXPECT_DOUBLE_EQ(fw.combined(0, F + p * M + j), codes(p, j));
    }
  }
  // Mean of optional codes in the last M columns.
  for (std::size_t j = 0; j < M; ++j) {
    double mean = 0.0;
    for (std::size_t p = 0; p < cfg.num_optional; ++p) {
      mean += codes(cfg.num_essential + p, j);
    }
    mean /= static_cast<double>(cfg.num_optional);
    EXPECT_NEAR(fw.combined(0, F + cfg.num_essential * M + j), mean, 1e-12);
  }
}

TEST(BellamyModel, TrainStepReducesLoss) {
  BellamyModel model(BellamyConfig{}, 4);
  const auto runs = small_context();
  model.fit_normalization(runs);
  model.set_dropout_rate(0.0);
  const auto batch = model.make_batch(runs);

  nn::Adam::Config adam;
  adam.lr = 1e-2;
  nn::Adam opt(model.parameters(), adam);
  const double initial = model.evaluate(batch, 1.0).total;
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    model.train_step(batch, 1.0);
    opt.step();
  }
  const double after = model.evaluate(batch, 1.0).total;
  EXPECT_LT(after, initial);
}

TEST(BellamyModel, ReconstructionLossDecreases) {
  BellamyModel model(BellamyConfig{}, 5);
  const auto runs = small_context();
  model.fit_normalization(runs);
  model.set_dropout_rate(0.0);
  const auto batch = model.make_batch(runs);
  nn::Adam::Config adam;
  adam.lr = 1e-2;
  nn::Adam opt(model.parameters(), adam);
  const double initial = model.evaluate(batch, 1.0).reconstruction;
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    model.train_step(batch, 1.0);
    opt.step();
  }
  EXPECT_LT(model.evaluate(batch, 1.0).reconstruction, initial);
}

TEST(BellamyModel, DecoderGetsNoGradientWithoutReconstructionLoss) {
  // Fine-tuning disables the reconstruction term: h must receive no gradient
  // while f, g and z still do.
  BellamyModel model(BellamyConfig{}, 6);
  const auto runs = small_context();
  model.fit_normalization(runs);
  model.set_dropout_rate(0.0);
  const auto batch = model.make_batch(runs);
  for (nn::Parameter* p : model.parameters()) p->zero_grad();
  model.train_step(batch, /*reconstruction_weight=*/0.0);
  for (nn::Parameter* p : model.h().parameters()) {
    EXPECT_DOUBLE_EQ(p->grad.squared_norm(), 0.0) << p->name;
  }
  double fz_grad = 0.0;
  for (nn::Parameter* p : model.f().parameters()) fz_grad += p->grad.squared_norm();
  for (nn::Parameter* p : model.z().parameters()) fz_grad += p->grad.squared_norm();
  EXPECT_GT(fz_grad, 0.0);
}

TEST(BellamyModel, FiniteDifferenceOnJointLoss) {
  // Check one representative weight of each component against central
  // differences of the full joint objective.
  BellamyConfig cfg;
  BellamyModel model(cfg, 7);
  const auto runs = small_context();
  model.fit_normalization(runs);
  model.set_dropout_rate(0.0);
  const auto batch = model.make_batch(runs);

  for (nn::Parameter* p : model.parameters()) p->zero_grad();
  model.train_step(batch, 1.0);

  auto loss_value = [&]() { return model.evaluate(batch, 1.0).total; };
  const double eps = 1e-6;
  for (nn::Parameter* p : model.parameters()) {
    // Probe the first entry of every parameter tensor.
    const double analytic = p->grad.data()[0];
    const double orig = p->value.data()[0];
    p->value.data()[0] = orig + eps;
    const double up = loss_value();
    p->value.data()[0] = orig - eps;
    const double down = loss_value();
    p->value.data()[0] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic, numeric, 1e-4) << p->name;
  }
}

TEST(BellamyModel, PredictDenormalizesToSeconds) {
  BellamyModel model(BellamyConfig{}, 8);
  const auto runs = small_context();
  model.fit_normalization(runs);
  const auto preds = model.predict(runs);
  ASSERT_EQ(preds.size(), runs.size());
  // Untrained predictions are near the target mean (network outputs ~0).
  double mean_rt = 0.0;
  for (const auto& r : runs) mean_rt += r.runtime_s;
  mean_rt /= runs.size();
  for (double p : preds) EXPECT_NEAR(p, mean_rt, 400.0);
}

TEST(BellamyModel, CheckpointRoundTripPreservesPredictions) {
  BellamyModel model(BellamyConfig{}, 9);
  const auto runs = small_context();
  model.fit_normalization(runs);
  const auto before = model.predict(runs);
  const nn::Checkpoint ckpt = model.to_checkpoint();
  BellamyModel restored = BellamyModel::from_checkpoint(ckpt);
  const auto after = restored.predict(runs);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
}

TEST(BellamyModel, CheckpointPreservesConfig) {
  BellamyConfig cfg;
  cfg.scaleout_hidden = 12;
  cfg.code_dim = 5;
  cfg.dropout = 0.2;
  BellamyModel model(cfg, 10);
  model.fit_normalization(small_context());
  BellamyModel restored = BellamyModel::from_checkpoint(model.to_checkpoint());
  EXPECT_EQ(restored.config().scaleout_hidden, 12u);
  EXPECT_EQ(restored.config().code_dim, 5u);
  EXPECT_DOUBLE_EQ(restored.config().dropout, 0.2);
}

TEST(BellamyModel, FromCheckpointRejectsForeignFormat) {
  nn::Checkpoint ckpt;
  ckpt.meta["format"] = "something-else";
  EXPECT_THROW(BellamyModel::from_checkpoint(ckpt), std::runtime_error);
}

TEST(BellamyModel, SetTrainableComponents) {
  BellamyModel model(BellamyConfig{}, 11);
  model.set_trainable_components(false, false, false, true);
  for (nn::Parameter* p : model.f().parameters()) EXPECT_FALSE(p->trainable);
  for (nn::Parameter* p : model.g().parameters()) EXPECT_FALSE(p->trainable);
  for (nn::Parameter* p : model.h().parameters()) EXPECT_FALSE(p->trainable);
  for (nn::Parameter* p : model.z().parameters()) EXPECT_TRUE(p->trainable);
}

TEST(BellamyModel, ReinitChangesOnlyTargetComponents) {
  BellamyModel model(BellamyConfig{}, 12);
  const auto g_before = model.g().parameters()[0]->value;
  const auto f_before = model.f().parameters()[0]->value;
  const auto z_before = model.z().parameters()[0]->value;
  model.reinit_z();
  EXPECT_EQ(model.g().parameters()[0]->value, g_before);
  EXPECT_EQ(model.f().parameters()[0]->value, f_before);
  EXPECT_NE(model.z().parameters()[0]->value, z_before);
  model.reinit_f();
  EXPECT_NE(model.f().parameters()[0]->value, f_before);
}

TEST(BellamyModel, SnapshotRestoreRoundTrip) {
  BellamyModel model(BellamyConfig{}, 13);
  const auto runs = small_context();
  model.fit_normalization(runs);
  const auto snap = model.snapshot_parameters();
  const auto before = model.predict(runs);
  model.reinit_f();
  model.reinit_z();
  model.restore_parameters(snap);
  const auto after = model.predict(runs);
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_DOUBLE_EQ(before[i], after[i]);
}

TEST(BellamyModel, NormalizationDegenerateSinglePoint) {
  // One training point: feature range collapses; must not divide by zero.
  BellamyModel model(BellamyConfig{}, 14);
  model.fit_normalization({make_run(4, 100.0)});
  const auto pred = model.predict({make_run(8, 0.0)});
  EXPECT_TRUE(std::isfinite(pred[0]));
}

TEST(BellamyModel, RawTargetModeSkipsStandardization) {
  BellamyConfig cfg;
  cfg.standardize_target = false;
  BellamyModel model(cfg, 15);
  const auto runs = small_context();
  model.fit_normalization(runs);
  // In raw mode the untrained network predicts values near 0 seconds, not
  // near the target mean — the scale must be learned.
  const auto preds = model.predict(runs);
  for (double p : preds) EXPECT_LT(std::abs(p), 50.0);
}

TEST(BellamyModel, RawTargetModeSurvivesCheckpoint) {
  BellamyConfig cfg;
  cfg.standardize_target = false;
  BellamyModel model(cfg, 16);
  model.fit_normalization(small_context());
  BellamyModel restored = BellamyModel::from_checkpoint(model.to_checkpoint());
  EXPECT_FALSE(restored.config().standardize_target);
  const auto a = model.predict(small_context());
  const auto b = restored.predict(small_context());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(BellamyModel, RawTargetModeTrainsTowardsScale) {
  // With an aggressive LR, even raw-seconds targets are reachable — but it
  // takes visibly more work than the standardized mode, which is the
  // mechanism behind the paper's Fig. 7 / training-time results.
  BellamyConfig cfg;
  cfg.standardize_target = false;
  BellamyModel model(cfg, 17);
  const auto runs = small_context();
  model.fit_normalization(runs);
  model.set_dropout_rate(0.0);
  const auto batch = model.make_batch(runs);
  nn::Adam::Config adam;
  adam.lr = 5e-2;
  nn::Adam opt(model.parameters(), adam);
  const double before = model.evaluate(batch, 0.0).mae_seconds;
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    model.train_step(batch, 0.0);
    opt.step();
  }
  const double after = model.evaluate(batch, 0.0).mae_seconds;
  EXPECT_LT(after, before * 0.5);
}

TEST(BellamyModel, RejectsUnsupportedSchema) {
  BellamyConfig cfg;
  cfg.num_essential = 2;
  EXPECT_THROW(BellamyModel(cfg, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bellamy::core
