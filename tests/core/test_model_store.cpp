#include "core/model_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/c3o_generator.hpp"

namespace bellamy::core {
namespace {

class ModelStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bellamy_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  BellamyModel make_model(std::uint64_t seed = 1) {
    BellamyModel model(BellamyConfig{}, seed);
    const auto ds = data::C3OGenerator().generate_algorithm("grep", 1);
    model.fit_normalization(ds.runs());
    return model;
  }

  std::string dir_;
};

TEST_F(ModelStoreTest, CreatesDirectory) {
  ModelStore store(dir_);
  EXPECT_TRUE(std::filesystem::exists(dir_));
}

TEST_F(ModelStoreTest, SaveLoadRoundTrip) {
  ModelStore store(dir_);
  BellamyModel model = make_model();
  store.save(model, "grep", "c3o-full");
  ASSERT_TRUE(store.contains("grep", "c3o-full"));

  BellamyModel loaded = store.load("grep", "c3o-full");
  const auto ds = data::C3OGenerator().generate_algorithm("grep", 1);
  const auto a = model.predict(ds.runs());
  const auto b = loaded.predict(ds.runs());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST_F(ModelStoreTest, ContainsFalseForMissing) {
  ModelStore store(dir_);
  EXPECT_FALSE(store.contains("sgd", "nope"));
}

TEST_F(ModelStoreTest, LoadMissingThrows) {
  ModelStore store(dir_);
  EXPECT_THROW(store.load("sgd", "nope"), std::runtime_error);
}

TEST_F(ModelStoreTest, LoadMissingNamesKeyAndPath) {
  ModelStore store(dir_);
  try {
    store.load("sgd", "nope");
    FAIL() << "load of a missing model must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sgd/nope"), std::string::npos) << what;
    EXPECT_NE(what.find(store.path_for("sgd", "nope")), std::string::npos) << what;
  }
}

TEST_F(ModelStoreTest, LoadCorruptFileNamesPathAndReason) {
  ModelStore store(dir_);
  {
    std::ofstream out(store.path_for("sgd", "bad"));
    out << "this is not a checkpoint\n";
  }
  try {
    store.load("sgd", "bad");
    FAIL() << "load of a corrupt model must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    // A corrupt file must be distinguishable from a missing one: the message
    // carries the path AND the parser's reason.
    EXPECT_NE(what.find(store.path_for("sgd", "bad")), std::string::npos) << what;
    EXPECT_NE(what.find("magic"), std::string::npos) << what;
  }
}

TEST_F(ModelStoreTest, SaveFailureNamesKeyAndBothPaths) {
  ModelStore store(dir_);
  // A directory squatting on the target path: the temp write succeeds, the
  // final rename fails.  The error must name the key AND both paths so the
  // operator can see exactly which file was mid-flight.
  std::filesystem::create_directories(store.path_for("sgd", "blocked"));
  try {
    store.save(make_model(), "sgd", "blocked");
    FAIL() << "save over a directory must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sgd/blocked"), std::string::npos) << what;
    EXPECT_NE(what.find(store.path_for("sgd", "blocked")), std::string::npos) << what;
    EXPECT_NE(what.find(store.path_for("sgd", "blocked") + ".tmp"), std::string::npos)
        << what;
  }
  // The failed save cleaned up after itself: no orphaned temp file.
  EXPECT_FALSE(
      std::filesystem::exists(store.path_for("sgd", "blocked") + ".tmp"));
}

TEST_F(ModelStoreTest, SaveLeavesNoTempFilesBehind) {
  ModelStore store(dir_);
  store.save(make_model(1), "sgd", "a");
  store.save(make_model(2), "sgd", "a");  // overwrite goes through a temp too
  store.save(make_model(3), "grep", "b");
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    ++files;
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  EXPECT_EQ(files, 2u);
  EXPECT_EQ(store.list(), (std::vector<std::string>{"grep/b", "sgd/a"}));
}

TEST_F(ModelStoreTest, FailedSavePreservesTheExistingModel) {
  ModelStore store(dir_);
  BellamyModel original = make_model(1);
  store.save(original, "sgd", "v");

  // Block the TEMP path: the new write cannot even start, and the model
  // already on disk must survive untouched — the crash-safety contract.
  std::filesystem::create_directories(store.path_for("sgd", "v") + ".tmp");
  EXPECT_THROW(store.save(make_model(2), "sgd", "v"), std::runtime_error);

  BellamyModel loaded = store.load("sgd", "v");
  const auto ds = data::C3OGenerator().generate_algorithm("grep", 1);
  const auto a = original.predict(ds.runs());
  const auto b = loaded.predict(ds.runs());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST_F(ModelStoreTest, LoadCheckpointSharesTheStoredState) {
  ModelStore store(dir_);
  BellamyModel model = make_model(5);
  store.save(model, "sgd", "ck");
  const nn::Checkpoint ckpt = store.load_checkpoint("sgd", "ck");
  BellamyModel restored = BellamyModel::from_checkpoint(ckpt);
  EXPECT_EQ(restored.state_stamp(), model.state_stamp());
}

TEST_F(ModelStoreTest, ListSortedKeys) {
  ModelStore store(dir_);
  store.save(make_model(1), "sgd", "v1");
  store.save(make_model(2), "grep", "v1");
  store.save(make_model(3), "grep", "v2");
  EXPECT_EQ(store.list(),
            (std::vector<std::string>{"grep/v1", "grep/v2", "sgd/v1"}));
}

TEST_F(ModelStoreTest, RemoveDeletes) {
  ModelStore store(dir_);
  store.save(make_model(), "sgd", "tmp");
  store.remove("sgd", "tmp");
  EXPECT_FALSE(store.contains("sgd", "tmp"));
  EXPECT_TRUE(store.list().empty());
}

TEST_F(ModelStoreTest, RejectsPathTraversalKeys) {
  ModelStore store(dir_);
  EXPECT_THROW(store.path_for("../evil", "x"), std::invalid_argument);
  EXPECT_THROW(store.path_for("sgd", "a/b"), std::invalid_argument);
  EXPECT_THROW(store.path_for("", "x"), std::invalid_argument);
}

TEST_F(ModelStoreTest, OverwriteReplacesModel) {
  ModelStore store(dir_);
  store.save(make_model(1), "sgd", "v");
  BellamyModel second = make_model(2);
  store.save(second, "sgd", "v");
  BellamyModel loaded = store.load("sgd", "v");
  const auto ds = data::C3OGenerator().generate_algorithm("grep", 1);
  const auto a = second.predict(ds.runs());
  const auto b = loaded.predict(ds.runs());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace bellamy::core
