#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"

namespace bellamy::core {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 31;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
    const auto groups = ds.contexts();
    target_runs = groups.front().runs;
    rest = ds.exclude_context(groups.front().key);
  }
  data::Dataset ds;
  std::vector<data::JobRun> target_runs;
  data::Dataset rest;
};

FineTuneConfig quick_finetune() {
  FineTuneConfig cfg;
  cfg.max_epochs = 150;
  cfg.patience = 80;
  return cfg;
}

BellamyModel quick_pretrained(const data::Dataset& corpus, std::uint64_t seed) {
  BellamyModel model(BellamyConfig{}, seed);
  PreTrainConfig pre;
  pre.epochs = 120;
  pretrain(model, corpus.runs(), pre);
  return model;
}

TEST(BellamyPredictor, LocalFitAndPredict) {
  Fixture fx;
  BellamyPredictor pred(BellamyConfig{}, quick_finetune(), 1);
  EXPECT_EQ(pred.min_training_points(), 1u);
  pred.fit({fx.target_runs.begin(), fx.target_runs.begin() + 4});
  const double p = pred.predict(fx.target_runs[5]);
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GT(pred.last_fit().epochs_run, 0u);
}

TEST(BellamyPredictor, LocalRejectsEmptyFit) {
  BellamyPredictor pred(BellamyConfig{}, quick_finetune(), 2);
  EXPECT_THROW(pred.fit({}), std::invalid_argument);
}

TEST(BellamyPredictor, LocalPredictBeforeFitThrows) {
  BellamyPredictor pred(BellamyConfig{}, quick_finetune(), 3);
  data::JobRun q;
  q.scale_out = 4;
  EXPECT_THROW(pred.predict(q), std::runtime_error);
  EXPECT_THROW(pred.predict_batch({q}), std::runtime_error);
}

TEST(BellamyPredictor, PretrainedAcceptsZeroPoints) {
  Fixture fx;
  const BellamyModel pretrained = quick_pretrained(fx.rest, 4);
  BellamyPredictor pred(pretrained, quick_finetune());
  EXPECT_EQ(pred.min_training_points(), 0u);
  pred.fit({});  // direct reuse, no fine-tuning
  const double p = pred.predict(fx.target_runs[0]);
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_EQ(pred.last_fit().epochs_run, 0u);
}

TEST(BellamyPredictor, RepeatedFitsAreIndependent) {
  // Fitting on split A then split B must equal fitting on split B directly
  // (every fit restarts from the stored checkpoint).
  Fixture fx;
  const BellamyModel pretrained = quick_pretrained(fx.rest, 5);
  const std::vector<data::JobRun> split_a(fx.target_runs.begin(), fx.target_runs.begin() + 3);
  const std::vector<data::JobRun> split_b(fx.target_runs.begin() + 3,
                                          fx.target_runs.begin() + 6);

  BellamyPredictor chained(pretrained, quick_finetune());
  chained.fit(split_a);
  chained.fit(split_b);

  BellamyPredictor direct(pretrained, quick_finetune());
  direct.fit(split_b);

  const double pa = chained.predict(fx.target_runs[10]);
  const double pb = direct.predict(fx.target_runs[10]);
  EXPECT_DOUBLE_EQ(pa, pb);
}

TEST(BellamyPredictor, LocalRefitsAreDeterministic) {
  Fixture fx;
  const std::vector<data::JobRun> split(fx.target_runs.begin(), fx.target_runs.begin() + 4);
  BellamyPredictor a(BellamyConfig{}, quick_finetune(), 42);
  BellamyPredictor b(BellamyConfig{}, quick_finetune(), 42);
  a.fit(split);
  b.fit(split);
  EXPECT_DOUBLE_EQ(a.predict(fx.target_runs[8]), b.predict(fx.target_runs[8]));
}

TEST(BellamyPredictor, StrategiesProduceDifferentModels) {
  Fixture fx;
  const BellamyModel pretrained = quick_pretrained(fx.rest, 6);
  const std::vector<data::JobRun> split(fx.target_runs.begin(), fx.target_runs.begin() + 3);

  BellamyPredictor keep(pretrained, quick_finetune(), ReuseStrategy::kPartialUnfreeze);
  BellamyPredictor reset(pretrained, quick_finetune(), ReuseStrategy::kFullReset);
  keep.fit(split);
  reset.fit(split);
  // Full reset relearns f/z from scratch — almost surely a different model.
  EXPECT_NE(keep.predict(fx.target_runs[9]), reset.predict(fx.target_runs[9]));
}

TEST(BellamyPredictor, NamesArePropagated) {
  Fixture fx;
  BellamyPredictor local(BellamyConfig{}, quick_finetune(), 7, "Bellamy (local)");
  EXPECT_EQ(local.name(), "Bellamy (local)");
  const BellamyModel pretrained = quick_pretrained(fx.rest, 8);
  BellamyPredictor full(pretrained, quick_finetune(), ReuseStrategy::kPartialUnfreeze,
                        "Bellamy (full)");
  EXPECT_EQ(full.name(), "Bellamy (full)");
}

TEST(BellamyPredictor, ModelAccessorThrowsBeforeFit) {
  // Regression: before the fit, the optional holding the model is empty —
  // the accessor must throw a descriptive runtime_error, not dereference it.
  BellamyPredictor pred(BellamyConfig{}, quick_finetune(), 9, "Bellamy (unfitted)");
  try {
    pred.model();
    FAIL() << "model() on an unfitted predictor must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Bellamy (unfitted)"), std::string::npos) << what;
    EXPECT_NE(what.find("fit()"), std::string::npos) << what;
  }
}

TEST(BellamyPredictor, NoexceptIntrospectionAndConstAccess) {
  // The serve layer introspects predictors without exceptions as control
  // flow: fitted()/state_stamp() are noexcept and answer honestly before
  // AND after fit; model() has a const overload with the same throw contract.
  Fixture fx;
  BellamyPredictor pred(BellamyConfig{}, quick_finetune(), 11);
  EXPECT_FALSE(pred.fitted());
  EXPECT_EQ(pred.state_stamp(), 0u);
  static_assert(noexcept(pred.fitted()));
  static_assert(noexcept(pred.state_stamp()));

  const BellamyPredictor& const_unfitted = pred;
  EXPECT_THROW(const_unfitted.model(), std::runtime_error);

  pred.fit({fx.target_runs.begin(), fx.target_runs.begin() + 4});
  EXPECT_TRUE(pred.fitted());
  EXPECT_NE(pred.state_stamp(), 0u);

  const BellamyPredictor& const_fitted = pred;
  EXPECT_EQ(const_fitted.model().state_stamp(), pred.state_stamp());
  EXPECT_EQ(&const_fitted.model(), &pred.model());
}

TEST(BellamyPredictor, FitTimeIsRecorded) {
  Fixture fx;
  BellamyPredictor pred(BellamyConfig{}, quick_finetune(), 10);
  pred.fit({fx.target_runs.begin(), fx.target_runs.begin() + 4});
  EXPECT_GT(pred.last_fit().fit_seconds, 0.0);
}

}  // namespace
}  // namespace bellamy::core
