// Training determinism regression: two Trainer runs from the same seed must
// produce bit-identical checkpoints.  This guards the order of the
// dedup-gradient accumulation (shared property rows sum their slot gradients
// in a fixed slot order) and the encode-once/gather-per-batch pre-training
// loop — any nondeterministic reordering of those sums shows up here as a
// bit difference.

#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "nn/serialize.hpp"

namespace bellamy::core {
namespace {

data::Dataset corpus() {
  data::C3OGeneratorConfig cfg;
  cfg.seed = 61;
  return data::C3OGenerator(cfg).generate_algorithm("sort", 4);
}

PreTrainConfig pretrain_config() {
  PreTrainConfig cfg;
  cfg.epochs = 40;
  cfg.batch_size = 16;  // several mini-batches per epoch, with a ragged tail
  cfg.dropout = 0.10;   // keep the stochastic path in play
  cfg.seed = 5;
  return cfg;
}

void expect_identical_checkpoints(const nn::Checkpoint& a, const nn::Checkpoint& b) {
  ASSERT_EQ(a.matrices.size(), b.matrices.size());
  for (const auto& [name, matrix] : a.matrices) {
    const auto it = b.matrices.find(name);
    ASSERT_NE(it, b.matrices.end()) << name;
    // operator== compares every double bit for bit (no tolerance).
    EXPECT_EQ(matrix, it->second) << name;
  }
  EXPECT_EQ(a.meta, b.meta);
}

TEST(TrainerDeterminism, PretrainSameSeedBitIdentical) {
  const auto runs = corpus().runs();
  BellamyModel first(BellamyConfig{}, 21);
  BellamyModel second(BellamyConfig{}, 21);
  const auto r1 = pretrain(first, runs, pretrain_config());
  const auto r2 = pretrain(second, runs, pretrain_config());
  EXPECT_EQ(r1.loss_history, r2.loss_history);
  EXPECT_EQ(r1.final_mae_seconds, r2.final_mae_seconds);
  expect_identical_checkpoints(first.to_checkpoint(), second.to_checkpoint());
}

TEST(TrainerDeterminism, FinetuneSameSeedBitIdentical) {
  const auto ds = corpus();
  const auto groups = ds.contexts();
  const auto& target = groups.front().runs;
  const auto rest = ds.exclude_context(groups.front().key);

  FineTuneConfig ft;
  ft.max_epochs = 80;
  ft.patience = 40;

  auto fit_once = [&](BellamyModel& model) {
    PreTrainConfig pre = pretrain_config();
    pre.epochs = 30;
    pretrain(model, rest.runs(), pre);
    return finetune(model, target, ft);
  };

  BellamyModel first(BellamyConfig{}, 33);
  BellamyModel second(BellamyConfig{}, 33);
  const auto f1 = fit_once(first);
  const auto f2 = fit_once(second);
  EXPECT_EQ(f1.epochs_run, f2.epochs_run);
  EXPECT_EQ(f1.best_mae_seconds, f2.best_mae_seconds);
  expect_identical_checkpoints(first.to_checkpoint(), second.to_checkpoint());
}

TEST(TrainerDeterminism, PretrainedPredictionsIdenticalAcrossRuns) {
  const auto runs = corpus().runs();
  BellamyModel first(BellamyConfig{}, 77);
  BellamyModel second(BellamyConfig{}, 77);
  pretrain(first, runs, pretrain_config());
  pretrain(second, runs, pretrain_config());
  const auto p1 = first.predict_batch(runs);
  const auto p2 = second.predict_batch(runs);
  EXPECT_EQ(p1, p2);
}

}  // namespace
}  // namespace bellamy::core
