// The batched prediction engine's contract: predict_batch must equal the
// per-sample predict loop (to 1e-9) for every RuntimeModel — Bellamy, Ernest
// and Bell — including the B=0 and B=1 edges, and threaded split evaluation
// must be bit-identical to the serial reference path.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bell_model.hpp"
#include "baselines/ernest.hpp"
#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "eval/experiment.hpp"
#include "parallel/thread_pool.hpp"

namespace bellamy::core {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 47;
    ds = data::C3OGenerator(cfg).generate_algorithm("sort", 5);
    const auto groups = ds.contexts();
    target_runs = groups.front().runs;
    rest = ds.exclude_context(groups.front().key);
  }
  data::Dataset ds;
  std::vector<data::JobRun> target_runs;
  data::Dataset rest;
};

FineTuneConfig quick_finetune() {
  FineTuneConfig cfg;
  cfg.max_epochs = 120;
  cfg.patience = 60;
  return cfg;
}

BellamyModel quick_pretrained(const data::Dataset& corpus, std::uint64_t seed) {
  BellamyModel model(BellamyConfig{}, seed);
  PreTrainConfig pre;
  pre.epochs = 100;
  pretrain(model, corpus.runs(), pre);
  return model;
}

void expect_batch_matches_loop(data::RuntimeModel& model,
                               const std::vector<data::JobRun>& queries) {
  const auto batched = model.predict_batch(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double scalar = model.predict(queries[i]);
    EXPECT_TRUE(std::isfinite(batched[i]));
    EXPECT_NEAR(batched[i], scalar, 1e-9) << "query " << i;
  }
}

TEST(BatchPredict, BellamyMatchesPerSampleLoop) {
  Fixture fx;
  const BellamyModel pretrained = quick_pretrained(fx.rest, 3);
  BellamyPredictor pred(pretrained, quick_finetune());
  pred.fit({fx.target_runs.begin(), fx.target_runs.begin() + 4});
  expect_batch_matches_loop(pred, fx.target_runs);
}

TEST(BatchPredict, BellamyModelDirectBatch) {
  Fixture fx;
  BellamyModel model = quick_pretrained(fx.rest, 5);
  const auto batched = model.predict_batch(fx.target_runs);
  ASSERT_EQ(batched.size(), fx.target_runs.size());
  for (std::size_t i = 0; i < fx.target_runs.size(); ++i) {
    EXPECT_NEAR(batched[i], model.predict_one(fx.target_runs[i]), 1e-9);
  }
}

TEST(BatchPredict, ErnestMatchesPerSampleLoop) {
  Fixture fx;
  baselines::ErnestModel model;
  model.fit(fx.target_runs);
  expect_batch_matches_loop(model, fx.target_runs);
}

TEST(BatchPredict, BellMatchesPerSampleLoop) {
  Fixture fx;
  baselines::BellModel model;
  model.fit(fx.target_runs);
  expect_batch_matches_loop(model, fx.target_runs);
}

TEST(BatchPredict, EmptyBatchYieldsEmptyVector) {
  Fixture fx;
  baselines::ErnestModel ernest;
  ernest.fit(fx.target_runs);
  EXPECT_TRUE(ernest.predict_batch({}).empty());

  baselines::BellModel bell;
  bell.fit(fx.target_runs);
  EXPECT_TRUE(bell.predict_batch({}).empty());

  BellamyModel bellamy = quick_pretrained(fx.rest, 9);
  EXPECT_TRUE(bellamy.predict_batch({}).empty());
  BellamyPredictor pred(bellamy, quick_finetune());
  pred.fit({});
  EXPECT_TRUE(pred.predict_batch({}).empty());
}

TEST(BatchPredict, SingleElementBatchMatchesScalar) {
  Fixture fx;
  const BellamyModel pretrained = quick_pretrained(fx.rest, 11);
  BellamyPredictor pred(pretrained, quick_finetune());
  pred.fit({fx.target_runs.begin(), fx.target_runs.begin() + 3});
  const std::vector<data::JobRun> one{fx.target_runs[0]};
  const auto batched = pred.predict_batch(one);
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_NEAR(batched[0], pred.predict(fx.target_runs[0]), 1e-9);
}

// ---- chunked large-batch prediction ----------------------------------------

std::vector<data::JobRun> scaleout_sweep(const data::JobRun& context_template, std::size_t b) {
  std::vector<data::JobRun> queries;
  queries.reserve(b);
  for (std::size_t i = 0; i < b; ++i) {
    data::JobRun q = context_template;
    q.scale_out = static_cast<int>(1 + i % 60);
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(BatchPredict, ChunkedMatchesUnchunkedBitForBit) {
  Fixture fx;
  BellamyModel model = quick_pretrained(fx.rest, 17);
  const auto queries = scaleout_sweep(fx.target_runs.front(), 403);  // ragged chunks

  model.set_predict_chunk_threshold(0);  // force the single-pass path
  const auto unchunked = model.predict_batch(queries);

  parallel::ThreadPool pool(3);
  for (const std::size_t chunks : {std::size_t{2}, std::size_t{3}, std::size_t{7}}) {
    const auto chunked = model.predict_batch_chunked(queries, &pool, chunks);
    ASSERT_EQ(chunked.size(), unchunked.size()) << chunks << " chunks";
    // Bit-identical, not merely close: a prediction's arithmetic must not
    // depend on which chunk (or batch) the query rides in.
    EXPECT_EQ(chunked, unchunked) << chunks << " chunks";
  }
}

TEST(BatchPredict, AutoChunkThresholdRoutesThroughChunkedPath) {
  Fixture fx;
  BellamyModel model = quick_pretrained(fx.rest, 19);
  const auto queries = scaleout_sweep(fx.target_runs.front(), 96);

  model.set_predict_chunk_threshold(0);
  const auto baseline = model.predict_batch(queries);
  // A tiny threshold forces auto-chunking (when the global pool has >1
  // worker; with 1 worker predict_batch falls back to the serial path —
  // either way the contract is identical output).
  model.set_predict_chunk_threshold(8);
  EXPECT_EQ(model.predict_batch(queries), baseline);
  EXPECT_EQ(model.predict_chunk_threshold(), 8u);
}

TEST(BatchPredict, ChunkedSingleChunkAndEmptyEdges) {
  Fixture fx;
  BellamyModel model = quick_pretrained(fx.rest, 23);
  EXPECT_TRUE(model.predict_batch_chunked({}).empty());
  const auto queries = scaleout_sweep(fx.target_runs.front(), 5);
  parallel::ThreadPool pool(2);
  model.set_predict_chunk_threshold(0);
  const auto serial = model.predict_batch(queries);
  EXPECT_EQ(model.predict_batch_chunked(queries, &pool, 1), serial);
  // More chunks than queries degenerates to one query per chunk.
  EXPECT_EQ(model.predict_batch_chunked(queries, &pool, 64), serial);
}

// Tiny end-to-end experiment used by the determinism checks below.
eval::CrossContextConfig tiny_config(std::size_t eval_threads) {
  eval::CrossContextConfig cfg;
  cfg.algorithms = {"grep"};
  cfg.contexts_per_algorithm = 2;
  cfg.max_splits = 2;
  cfg.max_points = 2;
  cfg.pretrain.epochs = 30;
  cfg.finetune.max_epochs = 40;
  cfg.finetune.patience = 20;
  cfg.seed = 13;
  cfg.eval_threads = eval_threads;
  return cfg;
}

void expect_identical_records(const eval::ExperimentResult& a,
                              const eval::ExperimentResult& b) {
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (std::size_t i = 0; i < a.evals.size(); ++i) {
    const auto& ra = a.evals[i];
    const auto& rb = b.evals[i];
    EXPECT_EQ(ra.model, rb.model) << i;
    EXPECT_EQ(ra.task, rb.task) << i;
    EXPECT_EQ(ra.context_key, rb.context_key) << i;
    EXPECT_EQ(ra.num_points, rb.num_points) << i;
    // Bit-identical, not merely close: the threaded path must rebuild each
    // contender from the same seed/checkpoint and replay the same arithmetic.
    EXPECT_EQ(ra.predicted, rb.predicted) << i;
    EXPECT_EQ(ra.actual, rb.actual) << i;
  }
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_EQ(a.fits[i].model, b.fits[i].model) << i;
    EXPECT_EQ(a.fits[i].num_points, b.fits[i].num_points) << i;
    EXPECT_EQ(a.fits[i].epochs, b.fits[i].epochs) << i;
  }
}

TEST(BatchPredict, ThreadedEvaluationMatchesSerial) {
  data::C3OGeneratorConfig gen;
  gen.seed = 23;
  const auto ds = data::C3OGenerator(gen).generate_algorithm("grep", 3);
  const auto serial = eval::run_cross_context(ds, tiny_config(1));
  const auto threaded = eval::run_cross_context(ds, tiny_config(3));
  ASSERT_FALSE(serial.evals.empty());
  expect_identical_records(serial, threaded);
}

TEST(BatchPredict, ThreadedEvaluationDeterministicAcrossRuns) {
  data::C3OGeneratorConfig gen;
  gen.seed = 29;
  const auto ds = data::C3OGenerator(gen).generate_algorithm("grep", 3);
  const auto first = eval::run_cross_context(ds, tiny_config(3));
  const auto second = eval::run_cross_context(ds, tiny_config(3));
  ASSERT_FALSE(first.evals.empty());
  expect_identical_records(first, second);
}

}  // namespace
}  // namespace bellamy::core
