#include "serve/serve_result.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bellamy::serve {
namespace {

TEST(ServeResult, SuccessCarriesValue) {
  ServeResult<double> r(3.5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.status(), ServeStatus::kOk);
  EXPECT_TRUE(r.message().empty());
  EXPECT_DOUBLE_EQ(r.value(), 3.5);
  EXPECT_DOUBLE_EQ(r.value_or(-1.0), 3.5);
}

TEST(ServeResult, FailureCarriesStatusAndMessage) {
  auto r = ServeResult<double>::failure(ServeStatus::kNotFitted, "no model yet");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), ServeStatus::kNotFitted);
  EXPECT_EQ(r.message(), "no model yet");
  EXPECT_DOUBLE_EQ(r.value_or(-1.0), -1.0);
  EXPECT_EQ(r.error_text(), "not fitted: no model yet");
}

TEST(ServeResult, ValueOnFailureIsALogicError) {
  auto r = ServeResult<int>::failure(ServeStatus::kUnknownModel, "gone");
  EXPECT_THROW(r.value(), std::logic_error);
  EXPECT_THROW(r.take(), std::logic_error);
}

TEST(ServeResult, UnwrapConvertsToLegacyException) {
  ServeResult<int> good(7);
  EXPECT_EQ(good.unwrap(), 7);

  auto bad = ServeResult<int>::failure(ServeStatus::kStoreError, "disk on fire");
  try {
    bad.unwrap();
    FAIL() << "unwrap on failure must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("store error"), std::string::npos) << what;
    EXPECT_NE(what.find("disk on fire"), std::string::npos) << what;
  }
}

TEST(ServeResult, ExpectOnUnitResults) {
  EXPECT_NO_THROW(ok().expect());
  auto bad = ServeResult<Unit>::failure(ServeStatus::kShutdown, "");
  EXPECT_THROW(bad.expect(), std::runtime_error);
  EXPECT_EQ(bad.error_text(), "shutdown");  // no message -> status name alone
}

TEST(ServeResult, TakeMovesThePayload) {
  ServeResult<std::vector<int>> r(std::vector<int>{1, 2, 3});
  const std::vector<int> taken = r.take();
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
}

TEST(ServeResult, EveryStatusHasAName) {
  for (const ServeStatus s :
       {ServeStatus::kOk, ServeStatus::kUnknownModel, ServeStatus::kNotFitted,
        ServeStatus::kInvalidArgument, ServeStatus::kStoreError, ServeStatus::kShutdown,
        ServeStatus::kConflict, ServeStatus::kInternalError}) {
    EXPECT_STRNE(to_string(s), "unknown status");
  }
}

}  // namespace
}  // namespace bellamy::serve
