#include "serve/prediction_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <random>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "core/variants.hpp"
#include "data/c3o_generator.hpp"
#include "serve/serve.hpp"

namespace bellamy::serve {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 83;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
    model.emplace(core::BellamyConfig{}, 17);
    core::PreTrainConfig pre;
    pre.epochs = 80;
    core::pretrain(*model, ds.runs(), pre);
  }

  /// A deterministic query stream: the context template with scale-outs
  /// swept 1..60.
  std::vector<data::JobRun> make_queries(std::size_t n) const {
    std::vector<data::JobRun> queries;
    queries.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      data::JobRun q = ds.runs().front();
      q.scale_out = static_cast<int>(1 + i % 60);
      queries.push_back(std::move(q));
    }
    return queries;
  }

  data::Dataset ds;
  std::optional<core::BellamyModel> model;
};

core::FineTuneConfig quick_finetune() {
  core::FineTuneConfig cfg;
  cfg.max_epochs = 100;
  cfg.patience = 50;
  return cfg;
}

// The acceptance-criteria soak: >= 8 concurrent client threads with
// randomized arrival, every response bit-identical to a serial
// predict-one-by-one loop over the same stream, and exactly one response per
// request (nothing lost, nothing duplicated, nothing cross-wired — a value
// landing on the wrong request would break bit-identity, because every
// scale-out predicts differently).
TEST(PredictionService, ConcurrentSoakIsBitIdenticalToSerialLoop) {
  Fixture fx;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 48;

  const std::vector<data::JobRun> queries = fx.make_queries(kThreads * kPerThread);
  // Serial reference BEFORE publishing: the per-sample loop on the source.
  std::vector<double> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expected[i] = fx.model->predict_one(queries[i]);
  }

  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "soak"}, *fx.model).unwrap();

  ServeOptions cfg;
  cfg.max_batch = 16;
  cfg.max_queue = 64;
  cfg.flush_deadline = std::chrono::microseconds(200);
  cfg.workers = 2;
  PredictionService service(registry, cfg);

  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(1234 + t));
      std::uniform_int_distribution<int> jitter_us(0, 120);
      std::uniform_int_distribution<int> coin(0, 3);
      // A small async window per client so micro-batches actually fill.
      std::vector<std::pair<std::size_t, std::future<ServeResult<double>>>> window;
      auto drain_one = [&] {
        auto [index, future] = std::move(window.front());
        window.erase(window.begin());
        ServeResult<double> r = future.get();
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        responses.fetch_add(1);
        if (r.value() != expected[index]) mismatches.fetch_add(1);
      };
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t index = t * kPerThread + i;
        window.emplace_back(index, service.predict_async(handle, queries[index]));
        if (window.size() >= 8) drain_one();
        if (coin(rng) == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(jitter_us(rng)));
        }
      }
      while (!window.empty()) drain_one();
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(responses.load(), queries.size());  // one response per request

  const ServeMetrics m = service.metrics(handle).unwrap();
  EXPECT_EQ(m.requests, queries.size());
  EXPECT_EQ(m.responses, queries.size());
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_GE(m.batches, 1u);
  EXPECT_LE(m.batches, m.responses);
  EXPECT_LE(m.max_queue_depth, cfg.max_queue);
  // Every batch was flushed for exactly one reason.
  EXPECT_EQ(m.coalesced + m.deadline_flushes + m.drain_flushes, m.batches);
}

TEST(PredictionService, CoalescesBurstsIntoFullBatches) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "burst"}, *fx.model).unwrap();

  ServeOptions cfg;
  cfg.max_batch = 16;
  cfg.flush_deadline = std::chrono::seconds(10);  // only full batches may flush
  cfg.workers = 1;
  PredictionService service(registry, cfg);

  const std::vector<data::JobRun> queries = fx.make_queries(64);
  std::vector<std::future<ServeResult<double>>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(service.predict_async(handle, q));
  for (auto& f : futures) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.error_text();
  }

  const ServeMetrics m = service.metrics(handle).unwrap();
  EXPECT_EQ(m.responses, 64u);
  EXPECT_EQ(m.batches, 4u);  // 64 requests / full batches of 16
  EXPECT_EQ(m.coalesced, 4u);  // every flush was size-triggered
  EXPECT_EQ(m.coalesced_requests, 64u);
  EXPECT_EQ(m.deadline_flushes, 0u);
  EXPECT_EQ(m.drain_flushes, 0u);
  EXPECT_DOUBLE_EQ(m.mean_batch_fill(), 16.0);
}

TEST(PredictionService, DeadlineFlushesAPartialBatch) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "deadline"}, *fx.model).unwrap();

  ServeOptions cfg;
  cfg.max_batch = 1000;  // a single request can never fill a batch
  cfg.flush_deadline = std::chrono::milliseconds(5);
  PredictionService service(registry, cfg);

  const data::JobRun query = fx.make_queries(1)[0];
  const auto r = service.predict(handle, query);
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.value(), fx.model->predict_one(query));

  const ServeMetrics m = service.metrics(handle).unwrap();
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.deadline_flushes, 1u);
  EXPECT_EQ(m.coalesced, 0u);           // the flush was deadline-, not size-triggered
  EXPECT_EQ(m.coalesced_requests, 0u);  // a batch of one shared nothing
}

TEST(PredictionService, TypedErrorsForUnknownAndUnfittedHandles) {
  Fixture fx;
  ModelRegistry registry;
  PredictionService service(registry);

  const data::JobRun query = fx.make_queries(1)[0];
  EXPECT_EQ(service.predict(ModelHandle{}, query).status(), ServeStatus::kUnknownModel);
  EXPECT_EQ(service.metrics(ModelHandle{}).status(), ServeStatus::kUnknownModel);

  const ModelHandle reserved = registry.reserve({"sgd", "pending"}).unwrap();
  const auto r = service.predict(reserved, query);
  ASSERT_EQ(r.status(), ServeStatus::kNotFitted);
  EXPECT_NE(r.message().find("sgd/pending"), std::string::npos) << r.message();

  // predict_many surfaces the first per-request error.
  const auto many = service.predict_many(reserved, fx.make_queries(3));
  EXPECT_EQ(many.status(), ServeStatus::kNotFitted);
  // ...and an empty batch succeeds trivially.
  EXPECT_TRUE(service.predict_many(reserved, {}).ok());
}

TEST(PredictionService, StopDrainsAcceptedRequestsAndRejectsNewOnes) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "stop"}, *fx.model).unwrap();

  ServeOptions cfg;
  cfg.max_batch = 1000;
  cfg.flush_deadline = std::chrono::seconds(10);  // parked until stop() drains
  PredictionService service(registry, cfg);

  const std::vector<data::JobRun> queries = fx.make_queries(12);
  std::vector<std::future<ServeResult<double>>> futures;
  for (const auto& q : queries) futures.push_back(service.predict_async(handle, q));
  service.stop();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.error_text();  // accepted requests are never lost
    EXPECT_EQ(r.value(), fx.model->predict_one(queries[i]));
  }
  EXPECT_EQ(service.predict(handle, queries[0]).status(), ServeStatus::kShutdown);
}

TEST(PredictionService, RefitHotSwapsBetweenMicroBatches) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "swap"}, *fx.model).unwrap();
  PredictionService service(registry);

  const data::JobRun query = fx.make_queries(1)[0];
  EXPECT_EQ(service.predict(handle, query).unwrap(), fx.model->predict_one(query));

  // Refit on a few target-context runs; the service must serve the NEW
  // weights afterwards, bit-identically to the legacy fine-tune recipe.
  const auto groups = fx.ds.contexts();
  const std::vector<data::JobRun> observed(groups.front().runs.begin(),
                                           groups.front().runs.begin() + 3);
  registry.refit(handle, observed, quick_finetune()).expect();

  auto reference = core::BellamyModel::from_checkpoint(*registry.base_checkpoint(handle));
  const core::FineTuneConfig cfg = core::apply_reuse_strategy(
      core::ReuseStrategy::kPartialUnfreeze, reference, quick_finetune());
  core::finetune(reference, observed, cfg);

  EXPECT_EQ(service.predict(handle, query).unwrap(), reference.predict_one(query));

  const ServeMetrics m = service.metrics(handle).unwrap();
  // Two distinct weight states were served: the pool deserialized a replica
  // for each, and the second acquire observed the stamp change.
  EXPECT_GE(m.replica_misses, 2u);
  EXPECT_GE(m.replica_invalidations, 1u);
}

// Adaptive flush: a trickle lane (inter-arrival far beyond the band) drops
// to the band FLOOR — waiting longer could never fill a batch, so it answers
// near-immediately.  The deterministic anchor: sleep_for guarantees a
// MINIMUM gap, so the EWMA is bounded below and the expected-fill rule's
// branch is forced.
TEST(PredictionService, AdaptiveDeadlineDropsToBandFloorForTrickleTraffic) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "trickle"}, *fx.model).unwrap();

  ServeOptions opt;
  opt.max_batch = 16;
  opt.flush_deadline = std::chrono::microseconds(500);
  opt.flush_deadline_min = std::chrono::microseconds(200);
  opt.flush_deadline_max = std::chrono::microseconds(2000);
  PredictionService service(registry, opt);

  // Before any traffic the lane does not exist yet: metrics are zeroed.
  EXPECT_EQ(service.metrics(handle).unwrap().effective_flush_deadline_us, 0u);

  // Trickle: >= 5 ms between requests.  expected_fill = ewma * 15 >> 2 ms
  // band ceiling, so the effective deadline must sit exactly on the floor.
  for (int i = 0; i < 4; ++i) {
    const auto r = service.predict(handle, fx.make_queries(1)[0]);
    ASSERT_TRUE(r.ok()) << r.error_text();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const ServeMetrics m = service.metrics(handle).unwrap();
  EXPECT_GE(m.interarrival_ewma_us, 5000.0);
  EXPECT_EQ(m.effective_flush_deadline_us, 200u);
}

// ...and a lane whose arrival rate CAN fill a batch inside the band gets a
// deadline proportional to the expected fill time (>= (max_batch-1) * the
// guaranteed-minimum gap), i.e. it coalesces far more aggressively than the
// band floor.
TEST(PredictionService, AdaptiveDeadlineGrowsWithExpectedBatchFillTime) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "paced"}, *fx.model).unwrap();

  ServeOptions opt;
  opt.max_batch = 8;
  opt.flush_deadline = std::chrono::microseconds(500);
  opt.flush_deadline_min = std::chrono::microseconds(100);
  // A band ceiling far above any plausible fill time keeps the expected-fill
  // branch deterministic even on a machine where sleep_for oversleeps badly.
  opt.flush_deadline_max = std::chrono::seconds(60);
  PredictionService service(registry, opt);

  // Async sends with a paced gap: the EWMA must measure the ARRIVAL spacing,
  // not the serve latency (a blocking loop would feed the flush wait back
  // into the inter-arrival signal).
  const std::vector<data::JobRun> queries = fx.make_queries(12);
  std::vector<std::future<ServeResult<double>>> futures;
  for (const auto& q : queries) {
    futures.push_back(service.predict_async(handle, q));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& f : futures) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.error_text();
  }
  const ServeMetrics m = service.metrics(handle).unwrap();
  // Every gap was >= 1 ms, so ewma >= 1000 us and expected fill >= 7000 us.
  EXPECT_GE(m.interarrival_ewma_us, 1000.0);
  EXPECT_GE(m.effective_flush_deadline_us, 7000u);

  // QoS weight divides the deadline: doubling the urgency halves it.
  const std::uint64_t neutral = m.effective_flush_deadline_us;
  service.set_qos(handle, HandleQos{QosClass::kInteractive, 2.0}).expect();
  const std::uint64_t urgent =
      service.metrics(handle).unwrap().effective_flush_deadline_us;
  EXPECT_LE(urgent, neutral / 2 + 1);
  EXPECT_GE(urgent, neutral / 2 - 1);
}

TEST(PredictionService, QosValidationAndIntrospection) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "qos"}, *fx.model).unwrap();
  ServeOptions opt;
  opt.default_qos = HandleQos{QosClass::kBulk, 0.5};
  PredictionService service(registry, opt);

  // Untouched lanes report the service default.
  EXPECT_EQ(service.qos(handle).unwrap().qos, QosClass::kBulk);
  EXPECT_DOUBLE_EQ(service.qos(handle).unwrap().weight, 0.5);

  service.set_qos(handle, HandleQos{QosClass::kInteractive, 4.0}).expect();
  EXPECT_EQ(service.qos(handle).unwrap().qos, QosClass::kInteractive);
  EXPECT_DOUBLE_EQ(service.qos(handle).unwrap().weight, 4.0);

  EXPECT_EQ(service.set_qos(handle, HandleQos{QosClass::kBulk, 0.0}).status(),
            ServeStatus::kInvalidArgument);
  EXPECT_EQ(service.set_qos(handle, HandleQos{QosClass::kBulk, -1.0}).status(),
            ServeStatus::kInvalidArgument);
  EXPECT_EQ(service.set_qos(ModelHandle{}, HandleQos{}).status(),
            ServeStatus::kUnknownModel);
  EXPECT_EQ(service.qos(ModelHandle{}).status(), ServeStatus::kUnknownModel);
}

// The acceptance-criteria starvation test: one handle saturated by bulk
// traffic must not starve an interactive handle.  The hot handle is created
// FIRST (lower id), which under the old id-order lane scan made it win every
// dispatch while its queue was non-empty — the cold handle's latency was
// unbounded at saturation.  The deadline-ordered dispatcher bounds it: a
// cold request's virtual deadline expires while hot batches are merely
// recent, so the cold lane sorts ahead.
TEST(PredictionService, SaturatedBulkHandleCannotStarveInteractiveHandle) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle hot = registry.publish({"sgd", "hot-bulk"}, *fx.model).unwrap();
  const ModelHandle cold = registry.publish({"sgd", "cold-interactive"}, *fx.model).unwrap();

  ServeOptions opt;
  opt.max_batch = 16;
  opt.max_queue = 256;
  opt.flush_deadline = std::chrono::microseconds(500);
  opt.workers = 1;  // a single dispatcher makes the ordering decision visible
  PredictionService service(registry, opt);
  service.set_qos(hot, HandleQos{QosClass::kBulk, 1.0}).expect();
  service.set_qos(cold, HandleQos{QosClass::kInteractive, 4.0}).expect();

  const std::vector<data::JobRun> queries = fx.make_queries(60);
  constexpr std::size_t kColdProbes = 60;

  auto cold_latencies_ms = [&](std::size_t n) {
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto start = std::chrono::steady_clock::now();
      const auto r = service.predict(cold, queries[i % queries.size()]);
      const auto end = std::chrono::steady_clock::now();
      EXPECT_TRUE(r.ok()) << r.error_text();
      out.push_back(std::chrono::duration<double, std::milli>(end - start).count());
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto p99 = [](const std::vector<double>& sorted) {
    return sorted[(sorted.size() * 99) / 100];
  };

  // Unloaded reference first.
  const std::vector<double> unloaded = cold_latencies_ms(kColdProbes);

  // Saturate the hot handle: 3 producers, each keeping a deep async window
  // in flight until the cold probes finish.
  std::atomic<bool> stop_flood{false};
  std::atomic<std::uint64_t> hot_ok{0};
  std::vector<std::thread> flood;
  for (int t = 0; t < 3; ++t) {
    flood.emplace_back([&] {
      std::deque<std::future<ServeResult<double>>> window;
      std::size_t i = 0;
      while (!stop_flood.load(std::memory_order_relaxed)) {
        window.push_back(service.predict_async(hot, queries[i++ % queries.size()]));
        if (window.size() >= 48) {
          if (window.front().get().ok()) hot_ok.fetch_add(1, std::memory_order_relaxed);
          window.pop_front();
        }
      }
      while (!window.empty()) {
        if (window.front().get().ok()) hot_ok.fetch_add(1, std::memory_order_relaxed);
        window.pop_front();
      }
    });
  }
  // Let the flood reach saturation before probing.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const std::vector<double> loaded = cold_latencies_ms(kColdProbes);
  stop_flood.store(true);
  for (std::thread& t : flood) t.join();

  // The hot handle really was saturated the whole time...
  EXPECT_GT(hot_ok.load(), kColdProbes * 10);
  // ...yet the cold handle's p99 stays within a bounded factor of its
  // unloaded p99.  The factor is deliberately generous (shared CI runners);
  // under the old id-order scan the loaded probes do not complete until the
  // flood stops, which fails this by orders of magnitude.
  EXPECT_LT(p99(loaded), 50.0 * p99(unloaded) + 100.0)
      << "unloaded p99 " << p99(unloaded) << " ms, loaded p99 " << p99(loaded) << " ms";

  const ServeMetrics cold_m = service.metrics(cold).unwrap();
  EXPECT_EQ(cold_m.requests, cold_m.responses + cold_m.queue_depth);
  // Dispatch lag of the interactive lane stayed bounded (no starvation).
  EXPECT_LT(cold_m.max_dispatch_lag_us, 1000000u);
}

// Satellite: metrics consistency under the cross-handle dispatcher.  A
// randomized multi-handle soak with mixed priorities and a concurrent
// refit_async must leave every lane's books balanced:
//   requests == responses,  coalesced + deadline_flushes == batches
// (no drain flushes — the service is still running when we check), and the
// refit neither blocks nor fails a single predict call.
TEST(PredictionService, MetricsStayConsistentUnderMixedPrioritySoakWithRefitAsync) {
  Fixture fx;
  ModelRegistry registry;
  constexpr std::size_t kHandles = 4;
  std::vector<ModelHandle> handles;
  for (std::size_t h = 0; h < kHandles; ++h) {
    handles.push_back(
        registry.publish({"sgd", "soak-" + std::to_string(h)}, *fx.model).unwrap());
  }

  ServeOptions opt;
  opt.max_batch = 8;
  opt.max_queue = 64;
  opt.flush_deadline = std::chrono::microseconds(300);
  opt.flush_deadline_min = std::chrono::microseconds(100);
  opt.flush_deadline_max = std::chrono::microseconds(1500);
  opt.workers = 2;
  PredictionService service(registry, opt);
  service.set_qos(handles[0], HandleQos{QosClass::kInteractive, 4.0}).expect();
  service.set_qos(handles[1], HandleQos{QosClass::kBulk, 1.0}).expect();
  service.set_qos(handles[2], HandleQos{QosClass::kBulk, 0.5}).expect();
  // handles[3] keeps the default policy.

  const std::vector<data::JobRun> queries = fx.make_queries(60);
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 80;

  std::atomic<std::size_t> failures{0};
  std::array<std::atomic<std::uint64_t>, kHandles> issued{};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(99 + t));
      std::uniform_int_distribution<std::size_t> pick_handle(0, kHandles - 1);
      std::uniform_int_distribution<int> jitter_us(0, 150);
      std::deque<std::future<ServeResult<double>>> window;
      auto drain_one = [&] {
        if (!window.front().get().ok()) failures.fetch_add(1);
        window.pop_front();
      };
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t h = pick_handle(rng);
        issued[h].fetch_add(1, std::memory_order_relaxed);
        window.push_back(service.predict_async(handles[h], queries[i % queries.size()]));
        if (window.size() >= 6) drain_one();
        std::this_thread::sleep_for(std::chrono::microseconds(jitter_us(rng)));
      }
      while (!window.empty()) drain_one();
    });
  }

  // Two background refits of handle 0 mid-soak: serving continues on the old
  // weights until each swap; no predict call may fail or wait for them.
  const auto groups = fx.ds.contexts();
  const std::vector<data::JobRun> observed(groups.front().runs.begin(),
                                           groups.front().runs.begin() + 3);
  auto refit1 = registry.refit_async(handles[0], observed, quick_finetune());
  auto refit2 = registry.refit_async(handles[0], observed, quick_finetune());

  for (std::thread& c : clients) c.join();
  ASSERT_TRUE(refit1.get().ok()) << refit1.get().error_text();
  ASSERT_TRUE(refit2.get().ok()) << refit2.get().error_text();
  EXPECT_EQ(failures.load(), 0u);

  for (std::size_t h = 0; h < kHandles; ++h) {
    const ServeMetrics m = service.metrics(handles[h]).unwrap();
    EXPECT_EQ(m.requests, issued[h].load()) << "handle " << h;
    EXPECT_EQ(m.responses, m.requests) << "handle " << h;
    EXPECT_EQ(m.queue_depth, 0u) << "handle " << h;
    EXPECT_EQ(m.coalesced + m.deadline_flushes, m.batches) << "handle " << h;
    EXPECT_EQ(m.drain_flushes, 0u) << "handle " << h;
    EXPECT_LE(m.batches, m.responses) << "handle " << h;
  }

  // Post-swap predictions are bit-identical to a manual fine-tune of the
  // same base with the same recipe.
  auto reference = core::BellamyModel::from_checkpoint(*registry.base_checkpoint(handles[0]));
  const core::FineTuneConfig cfg = core::apply_reuse_strategy(
      core::ReuseStrategy::kPartialUnfreeze, reference, quick_finetune());
  core::finetune(reference, observed, cfg);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(service.predict(handles[0], queries[i]).unwrap(),
              reference.predict_one(queries[i]));
  }
}

TEST(PredictionService, ManyQueriesMatchLegacyBatchPredictions) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "many"}, *fx.model).unwrap();
  PredictionService service(registry);

  const std::vector<data::JobRun> queries = fx.make_queries(100);
  const auto served = service.predict_many(handle, queries);
  ASSERT_TRUE(served.ok()) << served.error_text();
  const std::vector<double> direct = fx.model->predict_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(served.value()[i], direct[i]);
  }
}

TEST(PredictionService, LatencyPercentilesTrackEveryResponse) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "latency"}, *fx.model).unwrap();
  ServeOptions cfg;
  cfg.max_batch = 8;
  cfg.flush_deadline = std::chrono::microseconds(200);
  PredictionService service(registry, cfg);

  const std::vector<data::JobRun> queries = fx.make_queries(120);
  service.predict_many(handle, queries).expect();

  const ServeMetrics m = service.metrics(handle).unwrap();
  EXPECT_EQ(m.responses, queries.size());
  // Every response was measured into the histogram, and the quantiles are
  // ordered and non-zero (a response cannot take 0 us end to end).
  EXPECT_EQ(m.latency_count, m.responses);
  EXPECT_GT(m.latency_p50_us, 0u);
  EXPECT_LE(m.latency_p50_us, m.latency_p95_us);
  EXPECT_LE(m.latency_p95_us, m.latency_p99_us);
}

TEST(PredictionService, MaxLagCapsTheEffectiveDeadlineOfADownWeightedLane) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "aging"}, *fx.model).unwrap();
  ServeOptions cfg;
  cfg.max_batch = 64;
  cfg.flush_deadline = std::chrono::microseconds(2000);
  PredictionService service(registry, cfg);

  // Touch the lane so metrics report it, then down-weight it hard: the
  // weighted deadline would be 2000 / 0.1 = 20000 us.
  service.predict(handle, fx.make_queries(1).front()).expect();
  HandleQos slow;
  slow.qos = QosClass::kBulk;
  slow.weight = 0.1;
  service.set_qos(handle, slow).expect();
  EXPECT_EQ(service.metrics(handle).unwrap().effective_flush_deadline_us, 20000u);

  // The aging cap bounds it: effective deadline == max_lag, not the
  // weight-stretched value.
  slow.max_lag = std::chrono::microseconds(700);
  service.set_qos(handle, slow).expect();
  EXPECT_EQ(service.metrics(handle).unwrap().effective_flush_deadline_us, 700u);

  // And the cap is real scheduling, not just a reported number: a single
  // request on the capped lane (which can never fill a 64-batch) flushes
  // within the cap's order of magnitude rather than after 20 ms.
  const auto start = std::chrono::steady_clock::now();
  service.predict(handle, fx.make_queries(1).front()).expect();
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::microseconds>(waited).count(), 15000);

  // Validation: a negative cap is rejected like a bad weight.
  HandleQos bad;
  bad.max_lag = std::chrono::microseconds(-5);
  EXPECT_EQ(service.set_qos(handle, bad).status(), ServeStatus::kInvalidArgument);
}

}  // namespace
}  // namespace bellamy::serve
